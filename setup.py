"""Setuptools shim.

All project metadata lives in ``pyproject.toml``; this file exists only so
that legacy (non-PEP-660) editable installs — ``pip install -e . --no-use-pep517``
— work in offline environments that lack the ``wheel`` package.
"""

from setuptools import setup

setup()
