"""Extension benchmarks (beyond the paper's figure): depth and delta sweeps.

These back the "optional / future work" analysis in EXPERIMENTS.md: how the
privilege gap grows with hierarchy depth, and what the Gaussian delta costs
in accuracy at a fixed epsilon_g.
"""

from __future__ import annotations

from benchmarks.conftest import BENCH_SEED, save_text
from repro.evaluation.extensions import run_delta_sweep, run_depth_sweep
from repro.evaluation.reporting import format_table
from repro.utils.serialization import to_json_file


def test_bench_depth_sweep(benchmark, bench_graph, results_dir):
    """Privilege gap and per-level error vs hierarchy depth."""
    rows = benchmark.pedantic(
        run_depth_sweep,
        kwargs={"depths": (3, 5, 7, 9), "seed": BENCH_SEED, "graph": bench_graph},
        rounds=1,
        iterations=1,
    )
    to_json_file({"rows": rows}, results_dir / "extension_depth.json")
    save_text(results_dir / "extension_depth.txt", format_table(rows))
    print()
    print(format_table([row for row in rows if row["kind"] == "summary"]))

    summaries = {row["depth"]: row for row in rows if row["kind"] == "summary"}
    assert set(summaries) == {3, 5, 7, 9}
    # More levels -> more distinct privilege tiers and a wider accuracy gap.
    assert summaries[9]["num_released_levels"] > summaries[3]["num_released_levels"]
    assert summaries[9]["privilege_gap"] >= summaries[3]["privilege_gap"]


def test_bench_delta_sweep(benchmark, bench_graph, results_dir):
    """Per-level error vs the Gaussian mechanism's delta."""
    rows = benchmark.pedantic(
        run_delta_sweep,
        kwargs={"deltas": (1e-3, 1e-5, 1e-7, 1e-9), "num_levels": 9, "seed": BENCH_SEED, "graph": bench_graph},
        rounds=1,
        iterations=1,
    )
    to_json_file({"rows": rows}, results_dir / "extension_delta.json")
    save_text(results_dir / "extension_delta.txt", format_table(rows))

    by_delta = {}
    for row in rows:
        by_delta.setdefault(row["delta"], {})[row["level"]] = row["expected_rer"]
    # Error grows as delta shrinks, at every level, but only logarithmically:
    # six orders of magnitude in delta cost less than a 2x error increase.
    for level in by_delta[1e-3]:
        assert by_delta[1e-9][level] > by_delta[1e-3][level]
        assert by_delta[1e-9][level] < 2.0 * by_delta[1e-3][level]
