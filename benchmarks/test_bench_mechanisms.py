"""Micro-benchmarks of the DP mechanism primitives.

Not tied to a specific paper artefact; they document the throughput of the
noise samplers and the Exponential-Mechanism selection step, which together
dominate the pipeline's phase-2 and phase-1 inner loops.
"""

from __future__ import annotations

import numpy as np

from repro.mechanisms.exponential import ExponentialMechanism
from repro.mechanisms.gaussian import GaussianMechanism
from repro.mechanisms.geometric import GeometricMechanism
from repro.mechanisms.laplace import LaplaceMechanism

VECTOR = np.arange(10_000, dtype=float)


def test_bench_laplace_vector_noise(benchmark):
    mech = LaplaceMechanism(epsilon=0.5, sensitivity=3.0, rng=0)
    out = benchmark(mech.randomise, VECTOR)
    assert out.shape == VECTOR.shape


def test_bench_gaussian_vector_noise(benchmark):
    mech = GaussianMechanism(epsilon=0.5, delta=1e-5, sensitivity=3.0, rng=0)
    out = benchmark(mech.randomise, VECTOR)
    assert out.shape == VECTOR.shape


def test_bench_geometric_vector_noise(benchmark):
    mech = GeometricMechanism(epsilon=0.5, sensitivity=3.0, rng=0)
    out = benchmark(mech.randomise, VECTOR)
    assert out.shape == VECTOR.shape


def test_bench_exponential_selection(benchmark):
    mech = ExponentialMechanism(epsilon=1.0, rng=0)
    scores = np.linspace(-5.0, 5.0, 64).tolist()
    index = benchmark(mech.select_index, scores)
    assert 0 <= index < 64
