"""Experiment E6 — the paper's approach vs baseline disclosure algorithms.

For every released level the comparison records the realised RER of the count
release and the *group* epsilon actually guaranteed at that level:

* ``group_dp_multilevel`` — the paper's pipeline (group-calibrated Gaussian);
* ``naive_group_dp`` — group privacy via the generic lemma bound (correct but
  drastically over-noised);
* ``uniform_noise`` — one noise scale for every level (no privilege gradient);
* ``individual_dp`` — record-level DP (tiny error, but the implied group
  epsilon explodes with group size);
* ``safe_grouping`` — the syntactic Cormode-style release (exact counts, no DP).
"""

from __future__ import annotations

import math

from benchmarks.conftest import BENCH_SEED, save_text
from repro.evaluation.experiments import run_e6_baselines
from repro.evaluation.reporting import format_table
from repro.utils.serialization import to_json_file


def test_bench_baseline_comparison(benchmark, bench_graph, results_dir):
    """RER and guaranteed group epsilon per level for every method."""
    rows = benchmark.pedantic(
        run_e6_baselines,
        kwargs={"num_levels": 7, "epsilon": 0.999, "seed": BENCH_SEED, "graph": bench_graph},
        rounds=1,
        iterations=1,
    )

    to_json_file({"rows": rows}, results_dir / "baselines.json")
    save_text(results_dir / "baselines.txt", format_table(rows))
    print()
    print(format_table(rows))

    methods = {row["method"] for row in rows}
    assert {"group_dp_multilevel", "naive_group_dp", "uniform_noise", "individual_dp", "safe_grouping"} == methods

    paper = {r["level"]: r for r in rows if r["method"] == "group_dp_multilevel"}
    naive = {r["level"]: r for r in rows if r["method"] == "naive_group_dp"}
    uniform = {r["level"]: r for r in rows if r["method"] == "uniform_noise"}
    individual = {r["level"]: r for r in rows if r["method"] == "individual_dp"}
    safe = {r["level"]: r for r in rows if r["method"] == "safe_grouping"}

    finest = min(paper)
    coarsest = max(paper)

    # The lemma-based baseline is never less noisy (it coincides with the
    # calibrated approach only at the individual level, where a "group" is a
    # single node), and is drastically worse at coarse levels where the
    # group-size x max-degree bound far exceeds the measured association mass.
    for level in paper:
        assert naive[level]["noise_scale"] >= paper[level]["noise_scale"] * 0.999
    assert naive[coarsest]["noise_scale"] > 5 * paper[coarsest]["noise_scale"]

    # The uniform strawman destroys the privilege gradient: its finest level is
    # as noisy as the paper's coarsest level.
    assert uniform[finest]["noise_scale"] >= paper[coarsest]["noise_scale"] * 0.99

    # Individual DP is nearly exact but its group guarantee at the coarsest
    # level is orders of magnitude weaker than the paper's epsilon_g.
    assert individual[coarsest]["group_epsilon"] > 100 * paper[coarsest]["group_epsilon"]

    # Safe grouping reports exact counts and no DP guarantee at all.
    for level in safe:
        assert safe[level]["rer"] == 0.0
        assert math.isinf(safe[level]["group_epsilon"])
