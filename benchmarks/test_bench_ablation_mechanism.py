"""Experiment E5 (ablation) — phase-2 mechanism choice and budget allocation.

Two comparisons on the same 9-level hierarchy:

* **Mechanism**: the paper's classic Gaussian calibration vs the tighter
  analytic Gaussian calibration vs a Laplace release (pure DP).
* **Budget allocation**: when a *single* end-to-end epsilon is spread over all
  levels instead of the paper's per-level budgets, how uniform / geometric /
  sensitivity-proportional splits shape the per-level error profile.
"""

from __future__ import annotations

from benchmarks.conftest import BENCH_SEED, save_text
from repro.evaluation.experiments import run_e5_ablation_mechanism
from repro.evaluation.reporting import format_table
from repro.utils.serialization import to_json_file


def test_bench_ablation_mechanism_and_allocation(benchmark, bench_graph, results_dir):
    """Expected per-level RER under the mechanism and allocation variants."""
    rows = benchmark.pedantic(
        run_e5_ablation_mechanism,
        kwargs={"num_levels": 7, "epsilon_g": 0.999, "seed": BENCH_SEED, "graph": bench_graph},
        rounds=1,
        iterations=1,
    )

    to_json_file({"rows": rows}, results_dir / "ablation_mechanism.json")
    save_text(results_dir / "ablation_mechanism.txt", format_table(rows))
    print()
    print(format_table(rows))

    mechanism_rows = [row for row in rows if row["comparison"] == "mechanism"]
    allocation_rows = [row for row in rows if row["comparison"] == "allocation"]
    assert mechanism_rows and allocation_rows

    classic = {r["level"]: r["expected_rer"] for r in mechanism_rows if r["variant"] == "gaussian"}
    analytic = {
        r["level"]: r["expected_rer"] for r in mechanism_rows if r["variant"] == "analytic_gaussian"
    }
    laplace = {r["level"]: r["expected_rer"] for r in mechanism_rows if r["variant"] == "laplace"}

    # The analytic calibration never injects more noise than the classic one.
    for level in classic:
        assert analytic[level] <= classic[level] + 1e-12

    # Laplace (pure DP, L1-calibrated) is competitive at eps ~ 1 for a scalar
    # count: it avoids the sqrt(2 ln(1.25/delta)) factor entirely.
    for level in classic:
        assert laplace[level] <= classic[level] + 1e-12

    # Allocation comparison: the proportional strategy equalises the expected
    # RER across levels, the uniform strategy does not.
    proportional = [r["expected_rer"] for r in allocation_rows if r["variant"] == "proportional"]
    uniform = [r["expected_rer"] for r in allocation_rows if r["variant"] == "uniform"]
    prop_spread = max(proportional) / max(min(proportional), 1e-12)
    uniform_spread = max(uniform) / max(min(uniform), 1e-12)
    assert prop_spread < 1.0001
    assert uniform_spread > prop_spread
