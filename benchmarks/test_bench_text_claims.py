"""Experiment E2 — the narrative claims of the evaluation section at eps_g = 0.999.

The paper quotes specific RER values at epsilon_g = 0.999:
I9,1 ~ 0.2%, I9,2 ~ 0.33%, I9,5 ~ 4%, I9,6 ~ 11%, I9,7 ~ 35%, with RER
increasing monotonically in the information level and the low levels staying
usable even at epsilon_g = 0.1.  We assert the *shape* of those claims on the
synthetic DBLP-like graph (absolute values differ because the graph is a
scaled surrogate; see DESIGN.md section 5) and record paper-vs-measured rows.
"""

from __future__ import annotations

from benchmarks.conftest import BENCH_SCALE, BENCH_SEED, save_text
from repro.evaluation.experiments import PAPER_TEXT_CLAIMS
from repro.evaluation.figure1 import Figure1Config, run_figure1_analytic
from repro.evaluation.reporting import format_table
from repro.utils.serialization import to_json_file


def _claims_rows(result):
    rows = []
    for level in result.levels():
        rows.append(
            {
                "information_level": result.information_level_name(level),
                "level": level,
                "measured_rer": result.series_for(level)[0],
                "paper_rer": PAPER_TEXT_CLAIMS.get(level),
                "sensitivity": result.sensitivities[level],
            }
        )
    return rows


def test_bench_text_claims_at_0p999(benchmark, bench_graph, bench_hierarchy, results_dir):
    """Expected RER of every information level at the paper's quoted eps_g = 0.999."""
    config = Figure1Config(epsilons=(0.999,), num_levels=9, scale=BENCH_SCALE, seed=BENCH_SEED)
    result = benchmark.pedantic(
        run_figure1_analytic,
        kwargs={"graph": bench_graph, "config": config, "hierarchy": bench_hierarchy},
        rounds=1,
        iterations=1,
    )
    rows = _claims_rows(result)
    to_json_file({"rows": rows}, results_dir / "text_claims.json")
    save_text(results_dir / "text_claims.txt", format_table(rows))
    print()
    print(format_table(rows))

    measured = {row["level"]: row["measured_rer"] for row in rows}

    # Monotone increase of RER with the information level.
    ordered = [measured[level] for level in sorted(measured)]
    assert all(b >= a - 1e-12 for a, b in zip(ordered, ordered[1:]))

    # The privilege gap: the coarsest level is at least an order of magnitude
    # worse than level 1, as in the paper (35% vs 0.2%).
    assert measured[7] >= 10 * measured[1]

    # The coarsest level is heavily perturbed (tens of percent), the finest
    # levels stay in the low percent range at eps_g ~ 1 on this surrogate.
    assert measured[7] > 0.10
    assert measured[0] < 0.60


def test_bench_low_budget_claim(benchmark, bench_graph, bench_hierarchy, results_dir):
    """At eps_g = 0.1 the low levels still show acceptable utility (paper's closing claim)."""
    config = Figure1Config(epsilons=(0.1,), num_levels=9, scale=BENCH_SCALE, seed=BENCH_SEED)
    result = benchmark.pedantic(
        run_figure1_analytic,
        kwargs={"graph": bench_graph, "config": config, "hierarchy": bench_hierarchy},
        rounds=1,
        iterations=1,
    )
    rows = _claims_rows(result)
    to_json_file({"rows": rows}, results_dir / "text_claims_eps_0p1.json")

    measured = {row["level"]: row["measured_rer"] for row in rows}
    # The high levels blow up at the restricted budget ...
    assert measured[7] > 0.5
    # ... while the relative ordering (more privilege -> more accuracy) is preserved.
    ordered = [measured[level] for level in sorted(measured)]
    assert all(b >= a - 1e-12 for a, b in zip(ordered, ordered[1:]))
    # And the finest levels remain the most usable answers available.
    assert measured[0] == min(ordered)
