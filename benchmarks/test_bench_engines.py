"""Reference vs vectorized engine wall-time on the scalability sizes.

Writes ``benchmarks/results/engines.json`` so the perf trajectory of the
vectorized execution layer is recorded run over run.  Two measurements per
graph size:

* **workload evaluation** — the four-query workload (total count, per-group
  induced counts, degree histogram, cross-group matrix) answered by the
  reference per-group/per-edge Python path vs one compiled
  :class:`~repro.graphs.arrays.GraphArrays` pass;
* **noise injection** — per-answer ``randomise`` loops vs one batched
  ``randomise_many`` draw.

The full sweep is marked ``slow`` (run with ``pytest -m slow``); a small
smoke size stays in tier 1 so the comparison machinery itself is always
exercised.
"""

from __future__ import annotations

import time
from typing import Dict, List

import pytest

from benchmarks.conftest import save_text
from repro.datasets.dblp_like import generate_dblp_like
from repro.graphs.bipartite import BipartiteGraph, Side
from repro.grouping.partition import Partition
from repro.mechanisms.laplace import LaplaceMechanism
from repro.queries.counts import GroupedAssociationCountQuery, TotalAssociationCountQuery
from repro.queries.cross import CrossGroupCountQuery
from repro.queries.degree import DegreeHistogramQuery
from repro.queries.workload import QueryWorkload
from repro.utils.serialization import to_json_file

#: Author counts mirroring the scalability experiment.
AUTHOR_COUNTS = (500, 1_000, 2_000, 4_000)

#: Nodes per group in the benchmark partitions.
GROUP_SIZE = 25


def _chunk_partition(nodes: List, prefix: str) -> Partition:
    mapping = {
        f"{prefix}{index}": nodes[start : start + GROUP_SIZE]
        for index, start in enumerate(range(0, len(nodes), GROUP_SIZE))
    }
    return Partition.from_mapping(mapping)


def _build_workload(graph: BipartiteGraph) -> QueryWorkload:
    left = list(graph.left_nodes())
    right = list(graph.right_nodes())
    return QueryWorkload(
        [
            TotalAssociationCountQuery(),
            GroupedAssociationCountQuery(_chunk_partition(left + right, "g")),
            DegreeHistogramQuery(side=Side.LEFT, max_degree=50),
            CrossGroupCountQuery(_chunk_partition(left, "L"), _chunk_partition(right, "R")),
        ],
        name="engine-benchmark",
    )


def _best_of(fn, repeats: int = 3) -> float:
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best


def _measure_size(num_authors: int) -> Dict[str, float]:
    graph = generate_dblp_like(num_authors=num_authors, seed=3)
    workload = _build_workload(graph)

    reference_seconds = _best_of(lambda: workload.evaluate(graph))

    compile_start = time.perf_counter()
    arrays = graph.arrays()
    compile_seconds = time.perf_counter() - compile_start
    vectorized_seconds = _best_of(lambda: workload.evaluate_batch(graph, arrays=arrays))

    # Parity double-check inside the benchmark: speed must not change answers.
    reference_answers = workload.evaluate(graph)
    vectorized_answers = workload.evaluate_batch(graph, arrays=arrays)
    for name, answer in reference_answers.items():
        assert answer.as_dict() == vectorized_answers[name].as_dict()

    answers = [a.values for a in reference_answers.values()]

    def noise_reference():
        mech = LaplaceMechanism(epsilon=0.5, sensitivity=2.0, rng=0)
        for values in answers:
            mech.randomise(values)

    def noise_batched():
        LaplaceMechanism(epsilon=0.5, sensitivity=2.0, rng=0).randomise_many(answers)

    return {
        "num_authors": float(graph.num_left()),
        "num_associations": float(graph.num_associations()),
        "num_answers": float(sum(a.size for a in answers)),
        "workload_reference_seconds": reference_seconds,
        "workload_vectorized_seconds": vectorized_seconds,
        "arrays_compile_seconds": compile_seconds,
        "workload_speedup": reference_seconds / max(vectorized_seconds, 1e-9),
        "noise_reference_seconds": _best_of(noise_reference, repeats=5),
        "noise_batched_seconds": _best_of(noise_batched, repeats=5),
    }


def _format_table(rows: List[Dict[str, float]]) -> str:
    header = (
        f"{'authors':>9} {'assoc':>9} {'ref_s':>10} {'vec_s':>10} "
        f"{'compile_s':>10} {'speedup':>9}"
    )
    lines = [header]
    for row in rows:
        lines.append(
            f"{int(row['num_authors']):>9} {int(row['num_associations']):>9} "
            f"{row['workload_reference_seconds']:>10.4f} {row['workload_vectorized_seconds']:>10.4f} "
            f"{row['arrays_compile_seconds']:>10.4f} {row['workload_speedup']:>8.1f}x"
        )
    return "\n".join(lines)


def test_bench_engine_smoke(results_dir):
    """Tier-1 smoke: the comparison harness runs and the engines agree."""
    row = _measure_size(300)
    assert row["workload_reference_seconds"] > 0
    assert row["workload_vectorized_seconds"] > 0


@pytest.mark.slow
def test_bench_engines(results_dir):
    """Full sweep over the scalability sizes; records the speedup trajectory."""
    rows = [_measure_size(num_authors) for num_authors in AUTHOR_COUNTS]

    payload = {
        "author_counts": list(AUTHOR_COUNTS),
        "group_size": GROUP_SIZE,
        "rows": rows,
    }
    to_json_file(payload, results_dir / "engines.json")
    save_text(results_dir / "engines.txt", _format_table(rows))
    print()
    print(_format_table(rows))

    largest = rows[-1]
    assert largest["workload_speedup"] >= 5.0, (
        f"vectorized workload evaluation is only {largest['workload_speedup']:.1f}x faster "
        f"on the largest graph ({int(largest['num_authors'])} authors); expected >= 5x"
    )
    # Batched noise must never be slower than the per-answer loop at scale.
    assert largest["noise_batched_seconds"] <= largest["noise_reference_seconds"] * 1.5
