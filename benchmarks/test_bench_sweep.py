"""Sweep-orchestration benchmark: combinations/sec per executor + overhead.

Two sections, both sweeping a fixed ``epsilon_g`` grid of small disclosures:

* **executors** — the same :class:`~repro.evaluation.sweep.ParameterSweep`
  run through the ``serial``, ``process`` and ``manager`` executors (the
  pools at :data:`POOL_WORKERS` wide), reporting wall time and
  **combinations/sec** for each.  The rows are asserted identical across
  executors — the determinism contract the parity suite proves per-release
  holds for whole sweeps too.
* **scheduler overhead** — the serial sweep run bare vs run through a
  :class:`~repro.execution.SweepScheduler` with a live
  :class:`~repro.evaluation.snapshot.SweepSnapshot` and a progress callback.
  The difference is the full observability tax (budget negotiation, task
  events, aggregate reduction, progress serialisation), reported in
  milliseconds and as a fraction and asserted < 30% — observation must stay
  cheap relative to disclosure work.

Results go to ``benchmarks/results/sweep.json`` / ``sweep.txt``.  Only
ratios and sanity are asserted — absolute numbers are hardware-bound.
"""

from __future__ import annotations

import json
import time
from typing import Dict

import pytest

from benchmarks.conftest import BENCH_SEED, save_text
from repro.core.config import DisclosureConfig
from repro.core.discloser import MultiLevelDiscloser
from repro.datasets.dblp_like import generate_dblp_like
from repro.evaluation.sweep import ParameterSweep
from repro.execution import SweepScheduler
from repro.grouping.specialization import SpecializationConfig
from repro.utils.serialization import to_json_file

#: Grid width of the benchmarked sweep.
NUM_COMBINATIONS = 16

#: Authors in each combination's synthetic graph (small on purpose: the
#: benchmark measures orchestration, not disclosure throughput).
NUM_AUTHORS = 120

#: Hierarchy depth of each combination's disclosure.
NUM_LEVELS = 3

#: Width of the process/manager pools (passed as the worker budget too, so
#: the benchmark runs identically on single-core CI runners).
POOL_WORKERS = 4

#: Upper bound on the scheduler+snapshot observability tax.
MAX_OVERHEAD_FRACTION = 0.30

EPSILONS = [round(0.1 * (i + 1), 1) for i in range(NUM_COMBINATIONS)]


def _disclose_combo(epsilon_g):
    graph = generate_dblp_like(num_authors=NUM_AUTHORS, seed=BENCH_SEED % 997)
    config = DisclosureConfig(
        epsilon_g=epsilon_g,
        specialization=SpecializationConfig(num_levels=NUM_LEVELS),
    )
    release = MultiLevelDiscloser(config=config, rng=7).disclose(graph)
    return {"num_levels": len(release.levels())}


def _timed_sweep(**run_kwargs):
    sweep = ParameterSweep(_disclose_combo, {"epsilon_g": EPSILONS}, name="bench-sweep")
    start = time.perf_counter()
    result = sweep.run(**run_kwargs)
    elapsed = time.perf_counter() - start
    assert len(result.rows) == NUM_COMBINATIONS
    return elapsed, result


def _bench_executors() -> Dict[str, object]:
    section: Dict[str, object] = {}
    baseline_rows = None
    for spec in ("serial", "process", "manager"):
        workers = 1 if spec == "serial" else POOL_WORKERS
        scheduler = SweepScheduler(executor=spec, workers=workers, budget=POOL_WORKERS)
        elapsed, result = _timed_sweep(
            scheduler=scheduler, snapshot=None, progress=lambda line: None
        )
        if baseline_rows is None:
            baseline_rows = result.rows
        else:
            # Parity: every executor produces the same rows, bit for bit.
            assert result.rows == baseline_rows, spec
        assert result.snapshot is not None and result.snapshot.is_converged()
        section[spec] = {
            "workers": workers,
            "wall_s": round(elapsed, 3),
            "combinations_per_sec": round(NUM_COMBINATIONS / elapsed, 2),
            "plan": result.snapshot.plan,
        }
    return section


def _bench_scheduler_overhead() -> Dict[str, object]:
    bare_s, _ = _timed_sweep(executor="serial")
    observed_s, result = _timed_sweep(
        scheduler=SweepScheduler(executor="serial", budget=POOL_WORKERS),
        snapshot=None,
        progress=lambda line: None,
    )
    assert result.snapshot.counts()["DONE"] == NUM_COMBINATIONS
    overhead_s = max(0.0, observed_s - bare_s)
    overhead_fraction = overhead_s / bare_s if bare_s > 0 else 0.0
    assert overhead_fraction < MAX_OVERHEAD_FRACTION, (
        f"scheduler+snapshot overhead is {overhead_fraction:.1%} of the bare "
        f"sweep ({observed_s:.3f}s vs {bare_s:.3f}s)"
    )
    return {
        "bare_wall_s": round(bare_s, 3),
        "observed_wall_s": round(observed_s, 3),
        "overhead_ms": round(overhead_s * 1e3, 3),
        "overhead_fraction": round(overhead_fraction, 4),
    }


@pytest.mark.slow
def test_bench_sweep(results_dir):
    results: Dict[str, object] = {
        "seed": BENCH_SEED,
        "combinations": NUM_COMBINATIONS,
        "authors_per_combination": NUM_AUTHORS,
        "levels": NUM_LEVELS,
        "executors": _bench_executors(),
        "scheduler_overhead": _bench_scheduler_overhead(),
    }

    to_json_file(results, results_dir / "sweep.json")
    lines = [
        f"sweep orchestration benchmark ({NUM_COMBINATIONS} combinations, seed={BENCH_SEED})",
        json.dumps(results, indent=2, sort_keys=True),
    ]
    save_text(results_dir / "sweep.txt", "\n".join(lines))
