"""Experiment E4 (ablation) — how the split-selection strategy affects utility.

Compares the Exponential-Mechanism specializer (the paper's choice) against a
non-private deterministic median splitter and a data-independent random
splitter.  The comparison is on the expected RER of the count query per level
(given the same epsilon_g) plus the privacy cost of the specialization phase
itself, which is where the three differ.
"""

from __future__ import annotations

import math

from benchmarks.conftest import BENCH_SEED, save_text
from repro.evaluation.experiments import run_e4_ablation_split
from repro.evaluation.reporting import format_table
from repro.utils.serialization import to_json_file


def test_bench_ablation_split_strategies(benchmark, bench_graph, results_dir):
    """Expected per-level RER under exponential / deterministic / random specialization."""
    rows = benchmark.pedantic(
        run_e4_ablation_split,
        kwargs={"num_levels": 7, "epsilon_g": 0.999, "seed": BENCH_SEED, "graph": bench_graph},
        rounds=1,
        iterations=1,
    )

    to_json_file({"rows": rows}, results_dir / "ablation_split.json")
    save_text(results_dir / "ablation_split.txt", format_table(rows))
    print()
    print(format_table(rows))

    methods = {row["method"] for row in rows}
    assert methods == {"exponential", "deterministic", "random"}

    by_method = {
        method: {row["level"]: row for row in rows if row["method"] == method} for method in methods
    }

    # Privacy cost of the grouping structure: only the Exponential Mechanism
    # provides a finite, non-zero DP guarantee for the structure itself.
    assert math.isinf(next(iter(by_method["deterministic"].values()))["specialization_epsilon"])
    assert next(iter(by_method["random"].values()))["specialization_epsilon"] == 0.0
    assert 0 < next(iter(by_method["exponential"].values()))["specialization_epsilon"] < math.inf

    # Utility: the EM-driven grouping should be competitive with the
    # non-private deterministic grouping (within 2x on every level) and both
    # preserve the monotone level structure.
    for method in methods:
        levels = sorted(by_method[method])
        rers = [by_method[method][level]["expected_rer"] for level in levels]
        assert all(b >= a - 1e-12 for a, b in zip(rers, rers[1:]))
    for level, row in by_method["exponential"].items():
        deterministic_rer = by_method["deterministic"][level]["expected_rer"]
        assert row["expected_rer"] <= 2.5 * deterministic_rer + 1e-9
