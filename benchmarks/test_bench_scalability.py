"""Experiment E3 — scalability of the disclosure pipeline.

The paper claims the techniques are "effective, scalable".  This benchmark
times specialization and noise injection on DBLP-like graphs of increasing
size and checks that the end-to-end cost grows roughly linearly with the
association count (sub-quadratic is asserted, linear is typical).
"""

from __future__ import annotations

import os

import pytest

from benchmarks.conftest import save_text
from repro.evaluation.scalability import run_scalability
from repro.utils.serialization import to_json_file

#: Author counts for the scaling sweep (override the largest via env for big runs).
AUTHOR_COUNTS = (500, 1_000, 2_000, 4_000)
if os.environ.get("REPRO_BENCH_SCALE") in ("medium", "paper"):
    AUTHOR_COUNTS = (1_000, 4_000, 16_000, 50_000)


@pytest.mark.slow
def test_bench_scalability_pipeline(benchmark, results_dir):
    """Wall-clock of specialization + noise injection vs graph size."""
    result = benchmark.pedantic(
        run_scalability,
        kwargs={"author_counts": AUTHOR_COUNTS, "num_levels": 6, "epsilon_g": 0.5, "seed": 3},
        rounds=1,
        iterations=1,
    )

    to_json_file(result.to_dict(), results_dir / "scalability.json")
    save_text(results_dir / "scalability.txt", result.format_table())
    print()
    print(result.format_table())

    sizes = result.sizes()
    seconds = result.total_seconds()
    assert len(sizes) == len(AUTHOR_COUNTS)
    assert all(b > a for a, b in zip(sizes, sizes[1:])), "graphs must grow monotonically"

    # Sub-quadratic scaling: time ratio grows slower than the square of the size ratio.
    size_ratio = sizes[-1] / sizes[0]
    time_ratio = max(seconds[-1], 1e-9) / max(seconds[0], 1e-9)
    assert time_ratio < size_ratio**2, (
        f"pipeline scaled super-quadratically: sizes x{size_ratio:.1f}, time x{time_ratio:.1f}"
    )


def test_bench_single_disclosure_run(benchmark, bench_graph, bench_hierarchy):
    """Throughput of phase 2 alone (noise injection over all levels, hierarchy reused)."""
    from repro.core.config import DisclosureConfig
    from repro.core.discloser import MultiLevelDiscloser
    from repro.grouping.specialization import SpecializationConfig

    config = DisclosureConfig(
        epsilon_g=0.999, specialization=SpecializationConfig(num_levels=9)
    )

    def run():
        return MultiLevelDiscloser(config=config, rng=1).disclose(bench_graph, hierarchy=bench_hierarchy)

    release = benchmark.pedantic(run, rounds=3, iterations=1)
    assert release.levels() == list(range(8))
