"""Throughput and latency of the read-only HTTP serving layer.

Populates a store with one release of the benchmark graph, starts a
:class:`~repro.serving.ReleaseServer` on a free port, and measures the
request path the way a consumer sees it — full HTTP round-trips through the
stdlib client fetching per-role views.  Two store configurations are timed:

* **cold cache** (``cache_size=0``): every request re-reads and re-parses
  the stored JSON+npz artefacts;
* **warm cache** (``cache_size=32``): after the first load the parsed
  release is served from the LRU read-through cache (each hit re-validated
  against the backend's change fingerprint).

A third **overload** section bounds the server's in-flight work
(``max_in_flight``) and drives it with twice that many closed-loop clients,
recording the shed rate (``503`` + ``Retry-After`` answers) and the latency
the *served* requests pay at 2x saturation.  A small injected backend delay
gives every request a fixed work floor, so "saturation" means the same
thing on any host.

Those three sections run with the response byte cache *off*
(``response_cache_size=0``) so they stay comparable with the historical
baseline.  Two further sections measure the scaling work:

* **response_cache** — the same warm store with the fingerprint-keyed
  response cache on: cached GETs (zero serialisation, zero store reads) and
  ``If-None-Match`` → ``304`` revalidations, asserted to beat the
  single-process warm baseline;
* **grid** — a processes × client-threads sweep over a
  :class:`~repro.serving.ServerFleet` (``SO_REUSEPORT``), with client-side
  200/304 counting; the ≥ 2x multi-process speedup assertion is gated on
  the host actually having ≥ 4 cores (mirroring
  ``test_bench_parallel.py``), so single-core CI still records honest
  numbers without asserting the impossible.

Results — requests/sec plus p50/p99 latency per configuration — go to
``benchmarks/results/serving.json`` / ``serving.txt``.  The benchmark
asserts only sanity (every response 200 and bit-stable, warm no slower than
half of cold, cached no slower than warm, overload sheds something and
serves something) because absolute numbers are hardware-bound.
"""

from __future__ import annotations

import os
import threading
import time
from typing import Dict, List

import numpy as np
import pytest

from benchmarks.conftest import BENCH_SCALE, BENCH_SEED, save_text
from repro.core.access import AccessPolicy
from repro.core.config import DisclosureConfig
from repro.core.discloser import MultiLevelDiscloser
from repro.core.store import ReleaseStore
from repro.execution.faults import FaultInjectingBackend
from repro.grouping.specialization import SpecializationConfig
from repro.serving import (
    ReleaseServer,
    ServerFleet,
    http_get,
    http_get_response,
    reuseport_available,
)
from repro.utils.serialization import to_json_file

#: Hierarchy depth of the benchmark release.
NUM_LEVELS = 9

#: Requests measured per store configuration (after warm-up).
NUM_REQUESTS = 400

#: Unmeasured warm-up requests (connection setup, first cache fill).
NUM_WARMUP = 25

#: In-flight bound of the overloaded server; clients run at 2x this.
OVERLOAD_MAX_IN_FLIGHT = 4

#: Per-request backend floor (seconds) making saturation host-independent.
OVERLOAD_FLOOR = 0.005

#: Requests each overload client issues.
OVERLOAD_REQUESTS_PER_CLIENT = 50

#: Cores below which the >= 2x fleet speedup assertion is skipped.
MIN_CORES_FOR_FLEET_SPEEDUP = 4

#: Fleet sizes swept by the grid section: up to 4 processes where the host
#: has the cores to drive them, else just the 1-vs-2 comparison (recorded,
#: never asserted, on small hosts).
GRID_PROCESSES = (
    (1, 2, 4) if (os.cpu_count() or 1) >= MIN_CORES_FOR_FLEET_SPEEDUP else (1, 2)
)

#: Closed-loop client threads swept by the grid section.
GRID_CLIENT_THREADS = (1, 4)

#: Requests each grid client thread issues (half of them revalidations).
GRID_REQUESTS_PER_CLIENT = 100


def _measure(server: ReleaseServer, paths: List[str], num_requests: int) -> Dict:
    """Round-robin ``paths`` for ``num_requests`` full HTTP round-trips."""
    bodies = {}
    for index in range(NUM_WARMUP):
        status, body = http_get(server.url + paths[index % len(paths)])
        assert status == 200
        bodies.setdefault(paths[index % len(paths)], body)

    latencies = []
    start = time.perf_counter()
    for index in range(num_requests):
        path = paths[index % len(paths)]
        tick = time.perf_counter()
        status, body = http_get(server.url + path)
        latencies.append(time.perf_counter() - tick)
        assert status == 200
        # Serving is deterministic: every response for a path is bit-stable.
        assert body == bodies[path]
    elapsed = time.perf_counter() - start

    latencies_ms = np.asarray(latencies) * 1000.0
    return {
        "requests": num_requests,
        "seconds": elapsed,
        "requests_per_second": num_requests / elapsed,
        "latency_ms": {
            "p50": float(np.percentile(latencies_ms, 50)),
            "p90": float(np.percentile(latencies_ms, 90)),
            "p99": float(np.percentile(latencies_ms, 99)),
            "mean": float(latencies_ms.mean()),
            "max": float(latencies_ms.max()),
        },
    }


def _overload(server: ReleaseServer, paths: List[str]) -> Dict:
    """Drive the server with 2x ``max_in_flight`` closed-loop clients."""
    num_clients = 2 * OVERLOAD_MAX_IN_FLIGHT
    barrier = threading.Barrier(num_clients)
    outcomes: List[List] = [[] for _ in range(num_clients)]

    def drive(worker: int) -> None:
        barrier.wait()
        for index in range(OVERLOAD_REQUESTS_PER_CLIENT):
            path = paths[(worker + index) % len(paths)]
            tick = time.perf_counter()
            status, _ = http_get(server.url + path)
            outcomes[worker].append((status, time.perf_counter() - tick))

    threads = [
        threading.Thread(target=drive, args=(worker,)) for worker in range(num_clients)
    ]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()

    flat = [outcome for per_client in outcomes for outcome in per_client]
    assert {status for status, _ in flat} <= {200, 503}
    served_ms = np.asarray(
        [seconds for status, seconds in flat if status == 200]
    ) * 1000.0
    shed = sum(1 for status, _ in flat if status == 503)
    return {
        "clients": num_clients,
        "max_in_flight": OVERLOAD_MAX_IN_FLIGHT,
        "backend_floor_ms": OVERLOAD_FLOOR * 1000.0,
        "requests": len(flat),
        "served": int(len(served_ms)),
        "shed": shed,
        "shed_rate": shed / len(flat),
        "served_latency_ms": {
            "p50": float(np.percentile(served_ms, 50)),
            "p99": float(np.percentile(served_ms, 99)),
        },
    }


def _measure_revalidation(server_url: str, paths: List[str], num_requests: int) -> Dict:
    """Closed-loop ``If-None-Match`` revalidations — every answer a 304."""
    etags = {path: http_get_response(server_url + path).etag for path in paths}
    latencies = []
    start = time.perf_counter()
    for index in range(num_requests):
        path = paths[index % len(paths)]
        tick = time.perf_counter()
        response = http_get_response(server_url + path, etag=etags[path])
        latencies.append(time.perf_counter() - tick)
        assert response.status == 304
        assert response.body == b""
    elapsed = time.perf_counter() - start
    latencies_ms = np.asarray(latencies) * 1000.0
    return {
        "requests": num_requests,
        "seconds": elapsed,
        "requests_per_second": num_requests / elapsed,
        "latency_ms": {
            "p50": float(np.percentile(latencies_ms, 50)),
            "p99": float(np.percentile(latencies_ms, 99)),
        },
    }


def _drive_grid_cell(url: str, paths: List[str], num_threads: int) -> Dict:
    """``num_threads`` closed-loop clients over one (fleet) endpoint.

    Every client alternates plain GETs with ``If-None-Match`` revalidations,
    so each cell reports both throughput and the 304 hit rate.  Statuses are
    counted client-side: a fleet's ``/healthz`` counters are per worker
    process, so only the client sees the whole fleet's traffic.  Clients ask
    for identity bodies — decompressing gzip in the (GIL-bound) measuring
    process would bottleneck the client before the fleet.
    """
    etags = {path: http_get_response(url + path).etag for path in paths}
    outcomes: List[List] = [[] for _ in range(num_threads)]
    barrier = threading.Barrier(num_threads)

    def drive(worker: int) -> None:
        barrier.wait()
        for index in range(GRID_REQUESTS_PER_CLIENT):
            path = paths[(worker + index) % len(paths)]
            etag = etags[path] if index % 2 else None
            tick = time.perf_counter()
            response = http_get_response(url + path, etag=etag, accept_gzip=False)
            outcomes[worker].append((response.status, time.perf_counter() - tick))

    threads = [
        threading.Thread(target=drive, args=(worker,)) for worker in range(num_threads)
    ]
    start = time.perf_counter()
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    elapsed = time.perf_counter() - start

    flat = [outcome for per_client in outcomes for outcome in per_client]
    statuses = {status for status, _ in flat}
    assert statuses <= {200, 304}, statuses
    revalidations = sum(1 for status, _ in flat if status == 304)
    latencies_ms = np.asarray([seconds for _, seconds in flat]) * 1000.0
    return {
        "client_threads": num_threads,
        "requests": len(flat),
        "seconds": elapsed,
        "requests_per_second": len(flat) / elapsed,
        "responses_200": len(flat) - revalidations,
        "responses_304": revalidations,
        "etag_hit_rate": revalidations / len(flat),
        "latency_ms": {
            "p50": float(np.percentile(latencies_ms, 50)),
            "p99": float(np.percentile(latencies_ms, 99)),
        },
    }


@pytest.mark.slow
def test_bench_serving_throughput_and_latency(bench_graph, results_dir, tmp_path):
    """requests/sec + latency percentiles of per-role view serving."""
    config = DisclosureConfig(
        epsilon_g=0.5, specialization=SpecializationConfig(num_levels=NUM_LEVELS)
    )
    release = MultiLevelDiscloser(config, rng=BENCH_SEED).disclose(bench_graph)
    policy = AccessPolicy(
        {"analyst": 0, "partner": release.levels()[len(release.levels()) // 2],
         "public": release.levels()[-1]},
        top_level=NUM_LEVELS,
    )

    record = {
        "benchmark": "serving-http-views",
        "scale": BENCH_SCALE,
        "num_levels": NUM_LEVELS,
        "seed": BENCH_SEED,
        "roles": policy.roles(),
    }
    for label, cache_size in (("cold_cache", 0), ("warm_cache", 32)):
        store = ReleaseStore(tmp_path / f"store-{label}", cache_size=cache_size)
        key = store.save(release)
        paths = [f"/releases/{key}/views/{role}" for role in policy.roles()]
        # response_cache_size=0 keeps these sections the historical baseline:
        # every request serialises, exactly as pre-response-cache serving did.
        with ReleaseServer(store, policy, port=0, response_cache_size=0) as server:
            record[label] = _measure(server, paths, NUM_REQUESTS)
            record[label]["cache"] = store.cache_info()

    # Response byte cache on: a warm GET replays precomputed bytes (zero
    # serialisation, zero store reads), and revalidations answer empty 304s.
    store = ReleaseStore(tmp_path / "store-respcache", cache_size=32)
    key = store.save(release)
    paths = [f"/releases/{key}/views/{role}" for role in policy.roles()]
    with ReleaseServer(store, policy, port=0) as server:
        record["response_cache"] = _measure(server, paths, NUM_REQUESTS)
        record["response_cache"]["revalidation_304"] = _measure_revalidation(
            server.url, paths, NUM_REQUESTS
        )
        stats = server.stats.snapshot()
        cache_stats = server.response_cache.stats()
        total_hits = cache_stats["hits"]
        record["response_cache"]["server_stats"] = {
            "etag_hits": stats["etag_hits"],
            "gzip_responses": stats["gzip_responses"],
            "cache_invalidations": stats["cache_invalidations"],
            "cache": cache_stats,
            "etag_hit_rate": stats["etag_hits"] / max(1, total_hits),
            "gzip_hit_rate": stats["gzip_responses"] / max(1, total_hits),
        }

    # Overload: bound in-flight work and drive the server at 2x saturation,
    # recording how much it sheds and what the surviving requests pay.
    inner = ReleaseStore(tmp_path / "store-overload")
    key = inner.save(release)
    slow_store = ReleaseStore(
        FaultInjectingBackend(inner.backend, delay={"get_document": OVERLOAD_FLOOR})
    )
    paths = [f"/releases/{key}/views/{role}" for role in policy.roles()]
    with ReleaseServer(
        slow_store,
        policy,
        port=0,
        max_in_flight=OVERLOAD_MAX_IN_FLIGHT,
        response_cache_size=0,  # cached hits bypass shedding by design
    ) as server:
        record["overload"] = _overload(server, paths)
        record["overload"]["server_stats"] = server.stats.snapshot()

    # Grid: fleet size x client threads, all requests served from the
    # response cache (the scaling configuration the tentpole targets).
    store_dir = tmp_path / "store-grid"
    key = ReleaseStore(store_dir).save(release)
    paths = [f"/releases/{key}/views/{role}" for role in policy.roles()]
    record["grid"] = {
        "cpu_count": os.cpu_count(),
        "reuseport": reuseport_available(),
        "requests_per_client": GRID_REQUESTS_PER_CLIENT,
        "cells": {},
    }
    for processes in GRID_PROCESSES:
        with ServerFleet(store_dir, policy, processes=processes) as fleet:
            for num_threads in GRID_CLIENT_THREADS:
                cell = _drive_grid_cell(fleet.url, paths, num_threads)
                cell["processes"] = fleet.processes
                cell["fallback_reason"] = fleet.fallback_reason
                record["grid"]["cells"][f"p{processes}_c{num_threads}"] = cell

    busiest = max(GRID_CLIENT_THREADS)
    single = record["grid"]["cells"][f"p{GRID_PROCESSES[0]}_c{busiest}"]
    multi = record["grid"]["cells"][f"p{GRID_PROCESSES[-1]}_c{busiest}"]
    fleet_speedup = multi["requests_per_second"] / single["requests_per_second"]
    record["grid"]["fleet_speedup"] = fleet_speedup

    to_json_file(record, results_dir / "serving.json")
    lines = [f"HTTP serving of per-role views (scale={BENCH_SCALE}, "
             f"{NUM_REQUESTS} requests/config)"]
    for label in ("cold_cache", "warm_cache", "response_cache"):
        stats = record[label]
        lines.append(
            f"{label}\t{stats['requests_per_second']:.0f} req/s"
            f"\tp50 {stats['latency_ms']['p50']:.2f} ms"
            f"\tp99 {stats['latency_ms']['p99']:.2f} ms"
        )
    revalidation = record["response_cache"]["revalidation_304"]
    lines.append(
        f"revalidation_304\t{revalidation['requests_per_second']:.0f} req/s"
        f"\tp50 {revalidation['latency_ms']['p50']:.2f} ms"
        f"\tp99 {revalidation['latency_ms']['p99']:.2f} ms"
    )
    overload = record["overload"]
    lines.append(
        f"overload_2x\tshed {overload['shed_rate']:.0%} of {overload['requests']}"
        f"\tp50 {overload['served_latency_ms']['p50']:.2f} ms"
        f"\tp99 {overload['served_latency_ms']['p99']:.2f} ms"
    )
    for cell_key, cell in record["grid"]["cells"].items():
        lines.append(
            f"grid {cell_key}\t{cell['requests_per_second']:.0f} req/s"
            f"\t304s {cell['etag_hit_rate']:.0%}"
            f"\tp99 {cell['latency_ms']['p99']:.2f} ms"
        )
    save_text(results_dir / "serving.txt", "\n".join(lines))
    print("\n" + "\n".join(lines[1:]))

    # The warm cache skipped (almost) every re-parse...
    assert record["warm_cache"]["cache"]["hits"] >= NUM_REQUESTS - len(policy.roles())
    # ...so warm serving must not be materially slower than cold.
    assert (
        record["warm_cache"]["requests_per_second"]
        >= 0.5 * record["cold_cache"]["requests_per_second"]
    )
    # At 2x saturation the server must shed rather than queue — and the
    # requests it accepts must still all complete.
    assert record["overload"]["shed"] >= 1
    assert record["overload"]["served"] >= 1
    assert record["overload"]["server_stats"]["shed"] == record["overload"]["shed"]

    # The response byte cache must beat the serialise-every-request warm
    # baseline: a warm cached GET does zero serialisation and zero store
    # reads, so losing to the baseline means the cache is broken.
    assert (
        record["response_cache"]["requests_per_second"]
        >= record["warm_cache"]["requests_per_second"]
    )
    # 304 throughput is recorded but not ranked against the 200 path: on
    # loopback with small bodies the round-trip (and urllib's exception-path
    # handling of 304) dominates, so the revalidation win is bytes saved,
    # not closed-loop latency.
    assert revalidation["requests"] == NUM_REQUESTS
    served_gets = record["response_cache"]["server_stats"]["cache"]["hits"]
    assert served_gets >= NUM_REQUESTS  # warm requests all hit the byte cache
    assert record["response_cache"]["server_stats"]["gzip_responses"] >= 1
    assert record["response_cache"]["server_stats"]["etag_hits"] >= NUM_REQUESTS

    # The fleet speedup assertion is honest about its preconditions: it
    # needs real spare cores and SO_REUSEPORT.  Everything above has already
    # been recorded and asserted either way.
    cores = os.cpu_count() or 1
    if cores < MIN_CORES_FOR_FLEET_SPEEDUP or not reuseport_available():
        pytest.skip(
            f"fleet speedup recorded ({fleet_speedup:.2f}x) but the >= 2x "
            f"assertion needs >= {MIN_CORES_FOR_FLEET_SPEEDUP} cores and "
            f"SO_REUSEPORT (cores={cores})"
        )
    assert fleet_speedup >= 2.0, (
        f"expected >= 2x from {GRID_PROCESSES[-1]} SO_REUSEPORT processes on "
        f"{cores} cores, measured {fleet_speedup:.2f}x"
    )
