"""Throughput and latency of the read-only HTTP serving layer.

Populates a store with one release of the benchmark graph, starts a
:class:`~repro.serving.ReleaseServer` on a free port, and measures the
request path the way a consumer sees it — full HTTP round-trips through the
stdlib client fetching per-role views.  Two store configurations are timed:

* **cold cache** (``cache_size=0``): every request re-reads and re-parses
  the stored JSON+npz artefacts;
* **warm cache** (``cache_size=32``): after the first load the parsed
  release is served from the LRU read-through cache (each hit re-validated
  against the backend's change fingerprint).

A third **overload** section bounds the server's in-flight work
(``max_in_flight``) and drives it with twice that many closed-loop clients,
recording the shed rate (``503`` + ``Retry-After`` answers) and the latency
the *served* requests pay at 2x saturation.  A small injected backend delay
gives every request a fixed work floor, so "saturation" means the same
thing on any host.

Results — requests/sec plus p50/p99 latency per configuration — go to
``benchmarks/results/serving.json`` / ``serving.txt``.  The benchmark
asserts only sanity (every response 200 and bit-stable, warm no slower than
half of cold, overload sheds something and serves something) because
absolute numbers are hardware-bound.
"""

from __future__ import annotations

import threading
import time
from typing import Dict, List

import numpy as np
import pytest

from benchmarks.conftest import BENCH_SCALE, BENCH_SEED, save_text
from repro.core.access import AccessPolicy
from repro.core.config import DisclosureConfig
from repro.core.discloser import MultiLevelDiscloser
from repro.core.store import ReleaseStore
from repro.execution.faults import FaultInjectingBackend
from repro.grouping.specialization import SpecializationConfig
from repro.serving import ReleaseServer, http_get
from repro.utils.serialization import to_json_file

#: Hierarchy depth of the benchmark release.
NUM_LEVELS = 9

#: Requests measured per store configuration (after warm-up).
NUM_REQUESTS = 400

#: Unmeasured warm-up requests (connection setup, first cache fill).
NUM_WARMUP = 25

#: In-flight bound of the overloaded server; clients run at 2x this.
OVERLOAD_MAX_IN_FLIGHT = 4

#: Per-request backend floor (seconds) making saturation host-independent.
OVERLOAD_FLOOR = 0.005

#: Requests each overload client issues.
OVERLOAD_REQUESTS_PER_CLIENT = 50


def _measure(server: ReleaseServer, paths: List[str], num_requests: int) -> Dict:
    """Round-robin ``paths`` for ``num_requests`` full HTTP round-trips."""
    bodies = {}
    for index in range(NUM_WARMUP):
        status, body = http_get(server.url + paths[index % len(paths)])
        assert status == 200
        bodies.setdefault(paths[index % len(paths)], body)

    latencies = []
    start = time.perf_counter()
    for index in range(num_requests):
        path = paths[index % len(paths)]
        tick = time.perf_counter()
        status, body = http_get(server.url + path)
        latencies.append(time.perf_counter() - tick)
        assert status == 200
        # Serving is deterministic: every response for a path is bit-stable.
        assert body == bodies[path]
    elapsed = time.perf_counter() - start

    latencies_ms = np.asarray(latencies) * 1000.0
    return {
        "requests": num_requests,
        "seconds": elapsed,
        "requests_per_second": num_requests / elapsed,
        "latency_ms": {
            "p50": float(np.percentile(latencies_ms, 50)),
            "p90": float(np.percentile(latencies_ms, 90)),
            "p99": float(np.percentile(latencies_ms, 99)),
            "mean": float(latencies_ms.mean()),
            "max": float(latencies_ms.max()),
        },
    }


def _overload(server: ReleaseServer, paths: List[str]) -> Dict:
    """Drive the server with 2x ``max_in_flight`` closed-loop clients."""
    num_clients = 2 * OVERLOAD_MAX_IN_FLIGHT
    barrier = threading.Barrier(num_clients)
    outcomes: List[List] = [[] for _ in range(num_clients)]

    def drive(worker: int) -> None:
        barrier.wait()
        for index in range(OVERLOAD_REQUESTS_PER_CLIENT):
            path = paths[(worker + index) % len(paths)]
            tick = time.perf_counter()
            status, _ = http_get(server.url + path)
            outcomes[worker].append((status, time.perf_counter() - tick))

    threads = [
        threading.Thread(target=drive, args=(worker,)) for worker in range(num_clients)
    ]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()

    flat = [outcome for per_client in outcomes for outcome in per_client]
    assert {status for status, _ in flat} <= {200, 503}
    served_ms = np.asarray(
        [seconds for status, seconds in flat if status == 200]
    ) * 1000.0
    shed = sum(1 for status, _ in flat if status == 503)
    return {
        "clients": num_clients,
        "max_in_flight": OVERLOAD_MAX_IN_FLIGHT,
        "backend_floor_ms": OVERLOAD_FLOOR * 1000.0,
        "requests": len(flat),
        "served": int(len(served_ms)),
        "shed": shed,
        "shed_rate": shed / len(flat),
        "served_latency_ms": {
            "p50": float(np.percentile(served_ms, 50)),
            "p99": float(np.percentile(served_ms, 99)),
        },
    }


@pytest.mark.slow
def test_bench_serving_throughput_and_latency(bench_graph, results_dir, tmp_path):
    """requests/sec + latency percentiles of per-role view serving."""
    config = DisclosureConfig(
        epsilon_g=0.5, specialization=SpecializationConfig(num_levels=NUM_LEVELS)
    )
    release = MultiLevelDiscloser(config, rng=BENCH_SEED).disclose(bench_graph)
    policy = AccessPolicy(
        {"analyst": 0, "partner": release.levels()[len(release.levels()) // 2],
         "public": release.levels()[-1]},
        top_level=NUM_LEVELS,
    )

    record = {
        "benchmark": "serving-http-views",
        "scale": BENCH_SCALE,
        "num_levels": NUM_LEVELS,
        "seed": BENCH_SEED,
        "roles": policy.roles(),
    }
    for label, cache_size in (("cold_cache", 0), ("warm_cache", 32)):
        store = ReleaseStore(tmp_path / f"store-{label}", cache_size=cache_size)
        key = store.save(release)
        paths = [f"/releases/{key}/views/{role}" for role in policy.roles()]
        with ReleaseServer(store, policy, port=0) as server:
            record[label] = _measure(server, paths, NUM_REQUESTS)
            record[label]["cache"] = store.cache_info()

    # Overload: bound in-flight work and drive the server at 2x saturation,
    # recording how much it sheds and what the surviving requests pay.
    inner = ReleaseStore(tmp_path / "store-overload")
    key = inner.save(release)
    slow_store = ReleaseStore(
        FaultInjectingBackend(inner.backend, delay={"get_document": OVERLOAD_FLOOR})
    )
    paths = [f"/releases/{key}/views/{role}" for role in policy.roles()]
    with ReleaseServer(
        slow_store, policy, port=0, max_in_flight=OVERLOAD_MAX_IN_FLIGHT
    ) as server:
        record["overload"] = _overload(server, paths)
        record["overload"]["server_stats"] = server.stats.snapshot()

    to_json_file(record, results_dir / "serving.json")
    lines = [f"HTTP serving of per-role views (scale={BENCH_SCALE}, "
             f"{NUM_REQUESTS} requests/config)"]
    for label in ("cold_cache", "warm_cache"):
        stats = record[label]
        lines.append(
            f"{label}\t{stats['requests_per_second']:.0f} req/s"
            f"\tp50 {stats['latency_ms']['p50']:.2f} ms"
            f"\tp99 {stats['latency_ms']['p99']:.2f} ms"
        )
    overload = record["overload"]
    lines.append(
        f"overload_2x\tshed {overload['shed_rate']:.0%} of {overload['requests']}"
        f"\tp50 {overload['served_latency_ms']['p50']:.2f} ms"
        f"\tp99 {overload['served_latency_ms']['p99']:.2f} ms"
    )
    save_text(results_dir / "serving.txt", "\n".join(lines))
    print("\n" + "\n".join(lines[1:]))

    # The warm cache skipped (almost) every re-parse...
    assert record["warm_cache"]["cache"]["hits"] >= NUM_REQUESTS - len(policy.roles())
    # ...so warm serving must not be materially slower than cold.
    assert (
        record["warm_cache"]["requests_per_second"]
        >= 0.5 * record["cold_cache"]["requests_per_second"]
    )
    # At 2x saturation the server must shed rather than queue — and the
    # requests it accepts must still all complete.
    assert record["overload"]["shed"] >= 1
    assert record["overload"]["served"] >= 1
    assert record["overload"]["server_stats"]["shed"] == record["overload"]["shed"]
