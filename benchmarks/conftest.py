"""Shared fixtures for the benchmark harness.

The benchmarks regenerate every table/figure of the paper (see DESIGN.md's
per-experiment index).  They default to the ``small`` synthetic DBLP scale
(5,000 authors, ~25k associations) so the whole suite finishes in a couple of
minutes; set ``REPRO_BENCH_SCALE=medium`` (50k authors) or ``paper`` for
larger runs.

Every benchmark writes its reproduced table to ``benchmarks/results/`` as both
JSON and plain text, so the numbers are inspectable without re-running.
"""

from __future__ import annotations

import os
from pathlib import Path

import pytest

from repro.datasets.registry import load_dataset
from repro.evaluation.figure1 import Figure1Config, build_figure1_hierarchy

RESULTS_DIR = Path(__file__).resolve().parent / "results"

#: Scale used for the DBLP-like benchmark graph (override with REPRO_BENCH_SCALE).
BENCH_SCALE = os.environ.get("REPRO_BENCH_SCALE", "small")

#: Seed shared by all benchmarks so reported numbers are reproducible.
BENCH_SEED = 20170605


@pytest.fixture(scope="session")
def bench_graph():
    """The DBLP-like graph all figure benchmarks run on."""
    return load_dataset("dblp", scale=BENCH_SCALE, seed=BENCH_SEED)


@pytest.fixture(scope="session")
def bench_hierarchy(bench_graph):
    """A 9-level specialization of the benchmark graph (built once per session)."""
    config = Figure1Config(num_levels=9, scale=BENCH_SCALE, seed=BENCH_SEED)
    return build_figure1_hierarchy(bench_graph, config, rng=BENCH_SEED)


@pytest.fixture(scope="session")
def results_dir() -> Path:
    """Directory the reproduced tables are written to."""
    RESULTS_DIR.mkdir(parents=True, exist_ok=True)
    return RESULTS_DIR


def save_text(path: Path, text: str) -> None:
    """Write a plain-text artefact (helper used by the benchmark modules)."""
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(text + "\n", encoding="utf-8")
