"""Experiment E1 — Figure 1: relative error rate vs epsilon_g per information level.

Reproduces the paper's only figure.  The benchmark times the two pipeline
phases separately (specialization and the per-epsilon noise evaluation) and
writes the reproduced curve family to ``benchmarks/results/figure1.*``.

The shape assertions encode the figure's qualitative claims:

* RER decreases as epsilon_g grows, for every information level;
* RER increases with the information level (coarser protection, more noise);
* the highest level is dramatically (>5x) worse than the lowest at every
  epsilon_g, while the lowest levels stay within usable error.
"""

from __future__ import annotations

import pytest

from benchmarks.conftest import BENCH_SCALE, BENCH_SEED, save_text
from repro.evaluation.figure1 import (
    Figure1Config,
    build_figure1_hierarchy,
    run_figure1,
    run_figure1_analytic,
)
from repro.utils.serialization import to_json_file


def test_bench_figure1_specialization_phase(benchmark, bench_graph):
    """Time phase 1: building the 9-level hierarchy with the Exponential Mechanism."""
    config = Figure1Config(num_levels=9, scale=BENCH_SCALE, seed=BENCH_SEED)
    hierarchy = benchmark.pedantic(
        build_figure1_hierarchy,
        args=(bench_graph, config),
        kwargs={"rng": BENCH_SEED},
        rounds=1,
        iterations=1,
    )
    assert hierarchy.top_level == 9
    assert hierarchy.bottom_level == 0


def test_bench_figure1_curves(benchmark, bench_graph, bench_hierarchy, results_dir):
    """Time and reproduce the full Figure 1 sweep (Monte-Carlo, 40 trials per point)."""
    config = Figure1Config(num_levels=9, num_trials=40, scale=BENCH_SCALE, seed=BENCH_SEED)

    result = benchmark.pedantic(
        run_figure1,
        kwargs={"graph": bench_graph, "config": config, "hierarchy": bench_hierarchy},
        rounds=1,
        iterations=1,
    )

    # Persist the reproduced figure.
    to_json_file(result.to_dict(), results_dir / "figure1.json")
    save_text(results_dir / "figure1.txt", result.format_table())
    print()
    print(result.format_table())

    levels = result.levels()
    assert levels == list(range(8)), "Figure 1 has information levels I9,0 .. I9,7"

    # RER decreases with epsilon for every level (paper: all curves fall as eps grows).
    for level in levels:
        series = result.series_for(level)
        assert series[0] > series[-1]

    # RER is monotone non-decreasing in the information level at every epsilon.
    for index in range(len(result.epsilons)):
        column = [result.series_for(level)[index] for level in levels]
        assert all(b >= a - 1e-12 for a, b in zip(column, column[1:]))

    # The coarsest level is much worse than the finest (paper: 35% vs 0.2%).
    assert result.rer_at(7, 1.0) > 5 * result.rer_at(0, 1.0)


@pytest.mark.slow
def test_bench_figure1_golden_cross_engine():
    """Bench-scale golden check: both engines reproduce identical curves.

    The small-graph golden regression lives in ``tests/test_golden_figure1.py``
    (tier 1); this slow variant repeats the cross-engine comparison at the
    benchmark scale, where any engine divergence hidden by small graphs
    would surface.  Each engine gets its own freshly loaded graph — the
    session ``bench_graph`` may carry compiled arrays from earlier
    benchmarks, which would let the cached-arrays fast path leak into the
    reference run.
    """
    from repro.datasets.registry import load_dataset

    results = {}
    for engine in ("reference", "vectorized"):
        graph = load_dataset("dblp", scale=BENCH_SCALE, seed=BENCH_SEED)
        config = Figure1Config(
            num_levels=9, num_trials=40, scale=BENCH_SCALE, seed=BENCH_SEED, engine=engine
        )
        results[engine] = run_figure1(graph=graph, config=config)
    reference, vectorized = results["reference"], results["vectorized"]
    assert reference.sensitivities == vectorized.sensitivities
    for level in reference.levels():
        assert reference.series_for(level) == vectorized.series_for(level)


def test_bench_figure1_analytic_fast_path(benchmark, bench_graph, bench_hierarchy, results_dir):
    """Time the closed-form (deterministic) variant used by regression tests."""
    config = Figure1Config(num_levels=9, scale=BENCH_SCALE, seed=BENCH_SEED)
    result = benchmark.pedantic(
        run_figure1_analytic,
        kwargs={"graph": bench_graph, "config": config, "hierarchy": bench_hierarchy},
        rounds=1,
        iterations=1,
    )
    to_json_file(result.to_dict(), results_dir / "figure1_analytic.json")
    # Analytic expected RER scales exactly as 1/epsilon.
    for level in result.levels():
        series = result.series_for(level)
        assert series[0] / series[-1] == (
            result.epsilons[-1] / result.epsilons[0]
        ) or abs(series[0] / series[-1] - result.epsilons[-1] / result.epsilons[0]) < 1e-6
