"""Churn benchmark: incremental re-disclosure of a live, mutating graph.

Three sections, all on the benchmark-scale DBLP-like graph:

* **delta_compile** — compile the :class:`~repro.graphs.arrays.GraphArrays`
  view once, apply a small mutation batch (≤ 1% of the edges), and time
  :meth:`GraphArrays.delta_compile` against a full recompile of the mutated
  graph.  The patched view is asserted bit-identical to the full compile
  (same invariant the hypothesis parity suite proves on random graphs), and
  the speedup is asserted ≥ 5x — the point of the delta path.
* **refresh** — disclose once, mutate, then time
  :meth:`~repro.core.discloser.MultiLevelDiscloser.refresh` against a
  from-scratch disclosure of the mutated graph.  A no-op refresh (nothing
  changed) reuses every level and is asserted ≥ 5x faster than a full
  disclosure; a real mutation's refresh skips specialization and reuses
  whatever levels its fingerprints allow, and is asserted no slower.  Both
  refreshed releases are asserted bit-identical to the same-seed
  from-scratch disclosure (the parity contract of ``tests/test_refresh.py``).
* **churn** — a publisher thread applies a sustained stream of edge
  mutations (recompiling the arrays incrementally every batch) while a
  :class:`~repro.serving.ServerFleet` serves metadata and view reads from
  the store; afterwards one ``refresh`` republishes the live key and the
  served metadata is asserted fresh (``staleness.stale == false``).  The
  section records sustained **mutations/sec** alongside the concurrent
  reads/sec.

Results go to ``benchmarks/results/churn.json`` / ``churn.txt``.  Only
ratios and sanity are asserted — absolute numbers are hardware-bound.
"""

from __future__ import annotations

import json
import threading
import time
from typing import Dict, List

import numpy as np
import pytest

from benchmarks.conftest import BENCH_SCALE, BENCH_SEED, save_text
from repro.accounting.budget import PrivacyBudget
from repro.core.access import AccessPolicy
from repro.core.config import DisclosureConfig
from repro.core.discloser import MultiLevelDiscloser
from repro.core.publisher import GraphPublisher
from repro.core.store import ReleaseStore
from repro.graphs.arrays import GraphArrays
from repro.grouping.specialization import SpecializationConfig
from repro.serving import ServerFleet, fetch_json, http_get
from repro.utils.serialization import to_json_file

#: Fraction of the edge count mutated by the delta-compile batch (the
#: acceptance bound: delta must win by >= 5x at <= 1% churn).
DELTA_BATCH_FRACTION = 0.01

#: Timing repetitions per compile variant (minimum is reported).
TIMING_REPEATS = 3

#: Required delta-compile speedup at the small-batch operating point.
MIN_DELTA_SPEEDUP = 5.0

#: Required speedup of a no-op refresh (every level reused) over a full
#: from-scratch disclosure.
MIN_NOOP_REFRESH_SPEEDUP = 5.0

#: Hierarchy depth of the refresh/churn sections (smaller than Figure 1's 9
#: so the serving store stays light while still exercising level reuse).
NUM_LEVELS = 5

#: Wall-clock seconds the churn section sustains mutations under read load.
CHURN_DURATION = 5.0

#: Mutations applied per incremental-recompile batch in the churn loop.
CHURN_BATCH = 50

#: Closed-loop reader threads hammering the fleet during churn.
CHURN_READERS = 2


def _assert_views_identical(delta: GraphArrays, full: GraphArrays) -> None:
    assert delta.left_ids == full.left_ids
    assert delta.right_ids == full.right_ids
    for attr in (
        "edge_left",
        "edge_right",
        "left_indptr",
        "left_degrees",
        "right_degrees",
    ):
        assert np.array_equal(getattr(delta, attr), getattr(full, attr)), attr
        assert getattr(delta, attr).dtype == getattr(full, attr).dtype, attr


def _best_of(repeats: int, fn) -> float:
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best


def _mutation_batch(graph, rng, size: int) -> List[tuple]:
    """``size`` (left, right) pairs not currently associated."""
    lefts = list(graph.left_nodes())
    rights = list(graph.right_nodes())
    batch = []
    while len(batch) < size:
        left = lefts[int(rng.integers(len(lefts)))]
        right = rights[int(rng.integers(len(rights)))]
        if not graph.has_association(left, right):
            batch.append((left, right))
    return batch


def _bench_delta_compile(bench_graph, rng) -> Dict[str, object]:
    graph = bench_graph.copy()
    old = graph.arrays()
    batch_size = max(1, int(graph.num_associations() * DELTA_BATCH_FRACTION))
    for left, right in _mutation_batch(graph, rng, batch_size):
        graph.add_association(left, right)

    delta_s = _best_of(TIMING_REPEATS, lambda: GraphArrays.delta_compile(old, graph))
    full_s = _best_of(TIMING_REPEATS, lambda: GraphArrays.compile(graph))
    delta = GraphArrays.delta_compile(old, graph)
    full = GraphArrays.compile(graph)
    _assert_views_identical(delta, full)
    assert delta.compiled_incrementally

    speedup = full_s / delta_s if delta_s > 0 else float("inf")
    assert speedup >= MIN_DELTA_SPEEDUP, (
        f"delta_compile only {speedup:.1f}x faster than full compile "
        f"({delta_s * 1e3:.2f} ms vs {full_s * 1e3:.2f} ms) for a "
        f"{batch_size}-edge batch"
    )
    return {
        "edges": graph.num_associations(),
        "batch_edges": batch_size,
        "full_compile_ms": round(full_s * 1e3, 3),
        "delta_compile_ms": round(delta_s * 1e3, 3),
        "speedup": round(speedup, 2),
        "bit_identical": True,
    }


def _bench_refresh(bench_graph, rng) -> Dict[str, object]:
    graph = bench_graph.copy()
    config = DisclosureConfig(
        epsilon_g=0.5, specialization=SpecializationConfig(num_levels=NUM_LEVELS)
    )
    discloser = MultiLevelDiscloser(config=config, rng=BENCH_SEED)
    hierarchy = discloser.build_hierarchy(graph)
    release = discloser.disclose(graph, hierarchy=hierarchy)

    full_s = _best_of(
        1, lambda: MultiLevelDiscloser(config=config, rng=BENCH_SEED).disclose(graph)
    )
    noop_s = _best_of(1, lambda: discloser.refresh(release, graph, hierarchy=hierarchy))
    noop = discloser.refresh(release, graph, hierarchy=hierarchy)
    assert noop.affected_levels == []

    for left, right in _mutation_batch(graph, rng, CHURN_BATCH):
        graph.add_association(left, right)
    refresh_s = _best_of(1, lambda: discloser.refresh(release, graph, hierarchy=hierarchy))
    refreshed = discloser.refresh(release, graph, hierarchy=hierarchy)
    # Parity: the refreshed release equals a same-seed from-scratch
    # disclosure of the mutated graph (modulo lineage provenance).
    expected = MultiLevelDiscloser(config=config, rng=BENCH_SEED).disclose(
        graph, hierarchy=hierarchy
    )
    refreshed_doc = refreshed.release.to_dict()
    expected_doc = expected.to_dict()
    refreshed_doc.pop("provenance")
    expected_doc.pop("provenance")
    assert refreshed_doc == expected_doc

    noop_speedup = full_s / noop_s if noop_s > 0 else float("inf")
    assert noop_speedup >= MIN_NOOP_REFRESH_SPEEDUP, (
        f"no-op refresh only {noop_speedup:.1f}x faster than full disclosure"
    )
    return {
        "levels": NUM_LEVELS,
        "full_disclose_ms": round(full_s * 1e3, 3),
        "noop_refresh_ms": round(noop_s * 1e3, 3),
        "noop_speedup": round(noop_speedup, 2),
        "mutated_refresh_ms": round(refresh_s * 1e3, 3),
        "mutated_speedup": round(full_s / refresh_s, 2) if refresh_s > 0 else None,
        "affected_levels": refreshed.affected_levels,
        "reused_levels": refreshed.reused_levels,
        "parity": True,
    }


def _bench_churn_while_serving(bench_graph, rng, tmp_path) -> Dict[str, object]:
    graph = bench_graph.copy()
    publisher = GraphPublisher(
        graph,
        total_budget=PrivacyBudget(epsilon=1000.0, delta=1e-2),
        base_config=DisclosureConfig(
            epsilon_g=0.5, specialization=SpecializationConfig(num_levels=NUM_LEVELS)
        ),
        rng=BENCH_SEED,
    )
    release = publisher.release()
    store_dir = tmp_path / "churn-store"
    store = ReleaseStore(store_dir)
    store.save(release, key="live")
    policy = AccessPolicy({"public": min(2, NUM_LEVELS - 2)}, top_level=NUM_LEVELS)

    reads = {"count": 0, "errors": 0}
    reads_lock = threading.Lock()
    stop = threading.Event()

    with ServerFleet(store_dir, policy, port=0, processes=2) as fleet:

        def reader() -> None:
            routes = ("/releases/live", "/releases/live/views/public")
            i = 0
            while not stop.is_set():
                status, _ = http_get(fleet.url + routes[i % len(routes)])
                with reads_lock:
                    reads["count"] += 1
                    if status != 200:
                        reads["errors"] += 1
                i += 1

        threads = [threading.Thread(target=reader, daemon=True) for _ in range(CHURN_READERS)]
        for thread in threads:
            thread.start()

        mutations = 0
        start = time.perf_counter()
        while time.perf_counter() - start < CHURN_DURATION:
            for left, right in _mutation_batch(graph, rng, CHURN_BATCH):
                graph.add_association(left, right)
            mutations += CHURN_BATCH
            graph.arrays()  # incremental recompile keeps the view hot
        elapsed = time.perf_counter() - start

        result = publisher.refresh(release=release, store=store, key="live")
        metadata = fetch_json(fleet.url, "/releases/live")
        fleet_processes = fleet.processes
        stop.set()
        for thread in threads:
            thread.join(timeout=5.0)

    assert metadata["staleness"]["stale"] is False
    assert metadata["provenance"]["graph_revision"] == graph.revision
    assert reads["count"] > 0 and reads["errors"] == 0
    assert mutations / elapsed > 0

    return {
        "duration_s": round(elapsed, 2),
        "mutations": mutations,
        "mutations_per_sec": round(mutations / elapsed, 1),
        "concurrent_reads": reads["count"],
        "reads_per_sec": round(reads["count"] / elapsed, 1),
        "read_errors": reads["errors"],
        "fleet_processes": fleet_processes,
        "refresh_affected_levels": result.affected_levels,
        "staleness_cleared": True,
    }


@pytest.mark.slow
def test_bench_churn(bench_graph, results_dir, tmp_path):
    rng = np.random.default_rng(BENCH_SEED)
    results: Dict[str, object] = {
        "scale": BENCH_SCALE,
        "seed": BENCH_SEED,
        "graph": {
            "left": bench_graph.num_left(),
            "right": bench_graph.num_right(),
            "edges": bench_graph.num_associations(),
        },
        "delta_compile": _bench_delta_compile(bench_graph, rng),
        "refresh": _bench_refresh(bench_graph, rng),
        "churn": _bench_churn_while_serving(bench_graph, rng, tmp_path),
    }

    to_json_file(results, results_dir / "churn.json")
    lines = [
        f"churn benchmark (scale={BENCH_SCALE}, seed={BENCH_SEED})",
        json.dumps(results, indent=2, sort_keys=True),
    ]
    save_text(results_dir / "churn.txt", "\n".join(lines))
