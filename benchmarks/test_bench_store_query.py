"""Catalog query cost: indexed SQL vs full-scan, as the store grows.

Seeds a SQLite store and a directory store with the *same* releases (one
small release re-put under many keys with varying epsilons, so seeding is
cheap but the catalog is wide), then times a selective
:class:`~repro.core.catalog.ReleaseFilter` through
:class:`~repro.core.catalog.ReleaseCatalog` on both:

* **sqlite** — the backend's ``query_catalog`` path: one parameterized
  ``SELECT`` over the extracted catalog columns, no document blobs read;
* **scan** — the fallback every other backend uses: read and parse every
  stored document, filter in Python.

The benchmark asserts only sanity — both paths return identical rows and
the indexed path is no slower than the scan at the largest store size —
because absolute numbers are hardware-bound.  Results go to
``benchmarks/results/store_query.json`` / ``store_query.txt``.
"""

from __future__ import annotations

import json
import time
from typing import Dict, List

import pytest

from benchmarks.conftest import BENCH_SEED, save_text
from repro.core.catalog import ReleaseCatalog, ReleaseFilter
from repro.core.config import DisclosureConfig
from repro.core.discloser import MultiLevelDiscloser
from repro.core.store import ReleaseStore
from repro.datasets.dblp_like import generate_dblp_like
from repro.grouping.specialization import SpecializationConfig

pytestmark = pytest.mark.slow

STORE_SIZES = (16, 64, 256)
QUERY_REPEATS = 5


def _seed_stores(tmp_path, num_releases):
    """Two same-content stores with `num_releases` catalog rows each."""
    release = MultiLevelDiscloser(
        DisclosureConfig(
            epsilon_g=0.5, specialization=SpecializationConfig(num_levels=4)
        ),
        rng=BENCH_SEED,
    ).disclose(generate_dblp_like(num_authors=120, seed=BENCH_SEED))
    document = release.to_dict()

    sqlite_store = ReleaseStore(tmp_path / f"catalog-{num_releases}.db")
    directory_store = ReleaseStore(tmp_path / f"catalog-{num_releases}")
    # Vary epsilon in the stored document so the filter is selective
    # (~1/4 of rows match) without paying for fresh disclosures.
    for index in range(num_releases):
        document["config"]["epsilon_g"] = 0.25 * (1 + index % 4)
        from repro.core.release import MultiLevelRelease

        variant = MultiLevelRelease.from_dict(document)
        key = f"bench-{index:04d}"
        sqlite_store.save(variant, key=key)
        directory_store.save(variant, key=key)
    return sqlite_store, directory_store


def _time_rows(catalog, release_filter):
    best = float("inf")
    rows = None
    for _ in range(QUERY_REPEATS):
        start = time.perf_counter()
        rows = catalog.rows(release_filter)
        best = min(best, time.perf_counter() - start)
    return rows, best


class TestStoreQueryBench:
    def test_indexed_query_vs_full_scan(self, tmp_path, results_dir):
        release_filter = ReleaseFilter(epsilon=0.5, key_glob="bench-*")
        table: List[Dict] = []
        for size in STORE_SIZES:
            sqlite_store, directory_store = _seed_stores(tmp_path, size)
            sql_rows, sql_time = _time_rows(
                ReleaseCatalog(sqlite_store), release_filter
            )
            scan_rows, scan_time = _time_rows(
                ReleaseCatalog(directory_store), release_filter
            )
            assert sql_rows == scan_rows  # parity before performance
            assert len(sql_rows) == size // 4
            table.append(
                {
                    "releases": size,
                    "matching": len(sql_rows),
                    "sqlite_ms": round(sql_time * 1e3, 3),
                    "scan_ms": round(scan_time * 1e3, 3),
                    "speedup": round(scan_time / sql_time, 1),
                }
            )

        # The indexed path reads no blobs; by the largest size it must not
        # lose to parsing every document.
        assert table[-1]["sqlite_ms"] <= table[-1]["scan_ms"]

        (results_dir / "store_query.json").write_text(
            json.dumps(table, indent=2) + "\n", encoding="utf-8"
        )
        lines = ["releases  matching  sqlite_ms  scan_ms  speedup"]
        for row in table:
            lines.append(
                f"{row['releases']:>8}  {row['matching']:>8}"
                f"  {row['sqlite_ms']:>9}  {row['scan_ms']:>7}  {row['speedup']:>6}x"
            )
        save_text(results_dir / "store_query.txt", "\n".join(lines))
