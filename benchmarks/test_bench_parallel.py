"""Serial vs parallel wall-time of the per-trial Figure-1 Monte-Carlo.

The 25-trial Figure-1 run re-executes the full pipeline (specialization,
sensitivity calibration, noise injection) once per trial; trials are
completely independent and carry their own derived random streams, so they
fan out through the :class:`~repro.execution.ProcessExecutor` with
bit-identical results.  This benchmark times the same run under the serial
and process executors and records both wall times plus the speedup in
``benchmarks/results/parallel.json``.

The ≥ 2x speedup assertion is gated on the machine actually having spare
cores: on a single-core container a process pool can only add overhead, so
there the benchmark still records the measured (honest) numbers and skips
the assertion.  Parity of the results themselves is asserted everywhere —
and again, against tier-1's seed-level locks, in
``tests/test_engine_parity.py``.
"""

from __future__ import annotations

import os
import time
from typing import Dict

import pytest

from benchmarks.conftest import BENCH_SCALE, BENCH_SEED, save_text
from repro.evaluation.figure1 import Figure1Config, run_figure1_trials
from repro.execution import default_max_workers
from repro.utils.serialization import to_json_file

#: Trial count of the paper's Figure-1 sweep.
NUM_TRIALS = 25

#: Hierarchy depth for the benchmark runs.
NUM_LEVELS = 9

#: Cores needed before a >= 2x process speedup is a reasonable expectation.
MIN_CORES_FOR_SPEEDUP = 4


def _timed_run(executor: str) -> Dict:
    config = Figure1Config(
        num_levels=NUM_LEVELS,
        num_trials=NUM_TRIALS,
        scale=BENCH_SCALE,
        seed=BENCH_SEED,
        executor=executor,
    )
    start = time.perf_counter()
    result = run_figure1_trials(config=config)
    return {"seconds": time.perf_counter() - start, "result": result}


@pytest.mark.slow
def test_bench_parallel_figure1_trials(results_dir):
    """Wall-clock of the 25-trial Figure-1 run: serial vs process executor."""
    serial = _timed_run("serial")
    process = _timed_run("process")

    # Parity first: parallel execution must not change the science.
    assert process["result"].to_dict()["series"] == serial["result"].to_dict()["series"]

    speedup = serial["seconds"] / max(process["seconds"], 1e-9)
    workers = default_max_workers()
    record = {
        "benchmark": "figure1-per-trial-monte-carlo",
        "scale": BENCH_SCALE,
        "num_trials": NUM_TRIALS,
        "num_levels": NUM_LEVELS,
        "seed": BENCH_SEED,
        "cpu_count": os.cpu_count(),
        "max_workers": workers,
        "serial_seconds": serial["seconds"],
        "process_seconds": process["seconds"],
        "speedup": speedup,
        "results_identical": True,
    }
    to_json_file(record, results_dir / "parallel.json")
    save_text(
        results_dir / "parallel.txt",
        "\n".join(
            [
                f"figure1 per-trial Monte-Carlo ({NUM_TRIALS} trials, scale={BENCH_SCALE})",
                f"workers\t{workers}",
                f"serial\t{serial['seconds']:.3f}s",
                f"process\t{process['seconds']:.3f}s",
                f"speedup\t{speedup:.2f}x",
            ]
        ),
    )
    print(f"\nserial {serial['seconds']:.3f}s | process {process['seconds']:.3f}s "
          f"| speedup {speedup:.2f}x on {workers} workers")

    if workers < MIN_CORES_FOR_SPEEDUP:
        pytest.skip(
            f"only {workers} worker(s) available; speedup recorded "
            f"({speedup:.2f}x) but the >= 2x assertion needs "
            f">= {MIN_CORES_FOR_SPEEDUP} cores"
        )
    assert speedup >= 2.0, (
        f"expected >= 2x speedup from the process executor on {workers} workers, "
        f"measured {speedup:.2f}x"
    )
