"""Integration tests: the full pipeline across modules, small scale."""

import pytest

from repro import (
    AccessPolicy,
    DisclosureConfig,
    MultiLevelDiscloser,
    MultiLevelRelease,
    generate_dblp_like,
    generate_pharmacy_purchases,
    verify_release,
)
from repro.baselines.naive_group import NaiveGroupDPDiscloser
from repro.evaluation.figure1 import Figure1Config, run_figure1_analytic
from repro.evaluation.metrics import expected_rer_gaussian, release_error_report
from repro.grouping.specialization import SpecializationConfig
from repro.utils.serialization import from_json_file, to_json_file


class TestEndToEndDisclosure:
    @pytest.fixture(scope="class")
    def graph(self):
        return generate_dblp_like(num_authors=400, seed=31)

    @pytest.fixture(scope="class")
    def release(self, graph):
        config = DisclosureConfig(
            epsilon_g=0.9, specialization=SpecializationConfig(num_levels=6)
        )
        return MultiLevelDiscloser(config=config, rng=31).disclose(graph)

    def test_release_verifies(self, release):
        verify_release(release)

    def test_release_serialises_and_still_verifies(self, release, tmp_path):
        path = to_json_file(release.to_dict(), tmp_path / "release.json")
        restored = MultiLevelRelease.from_dict(from_json_file(path))
        verify_release(restored)
        assert restored.levels() == release.levels()

    def test_errors_track_noise_scale(self, graph, release):
        # The realised RER per level should be on the order of the expected
        # RER implied by the level's noise scale (within a generous factor,
        # since a single draw has high variance).
        report = release_error_report(release, graph)
        true_count = graph.num_associations()
        for level, row in report.items():
            expected = expected_rer_gaussian(row["noise_scale"], true_count)
            assert row["rer"] <= 20 * expected + 1e-6

    def test_access_policy_view_matches_release(self, release):
        policy = AccessPolicy({"owner": 0, "partner": 2, "public": 4}, top_level=6)
        for role in policy.roles():
            view = policy.view_for(role, release)
            assert view.level >= policy.level_for(role)

    def test_privilege_ordering_of_expected_error(self, release):
        # Noise scale (hence expected error) must not decrease with level.
        scales = [release.level(level).noise_scale for level in release.levels()]
        assert scales == sorted(scales)


class TestEndToEndWithAttributes:
    def test_pharmacy_pipeline_runs(self):
        graph = generate_pharmacy_purchases(num_patients=200, num_drugs=40, seed=2)
        config = DisclosureConfig(
            epsilon_g=0.5, specialization=SpecializationConfig(num_levels=4)
        )
        release = MultiLevelDiscloser(config=config, rng=2).disclose(graph)
        verify_release(release)
        assert release.levels() == [0, 1, 2]


class TestFigureOneConsistencyWithPipeline:
    def test_analytic_figure_matches_pipeline_noise_scales(self):
        graph = generate_dblp_like(num_authors=300, seed=11)
        num_levels = 5
        config = DisclosureConfig(
            epsilon_g=0.5, specialization=SpecializationConfig(num_levels=num_levels)
        )
        discloser = MultiLevelDiscloser(config=config, rng=11)
        hierarchy = discloser.specializer.build(graph).hierarchy
        release = discloser.disclose(graph, hierarchy=hierarchy)

        fig_config = Figure1Config(num_levels=num_levels, epsilons=(0.5,), seed=11)
        figure = run_figure1_analytic(graph=graph, config=fig_config, hierarchy=hierarchy)

        true_count = graph.num_associations()
        for level in release.levels():
            expected_from_release = expected_rer_gaussian(release.level(level).noise_scale, true_count)
            assert figure.rer_at(level, 0.5) == pytest.approx(expected_from_release, rel=1e-9)

    def test_naive_baseline_worse_at_every_level(self):
        graph = generate_dblp_like(num_authors=300, seed=12)
        config = DisclosureConfig(epsilon_g=0.5, specialization=SpecializationConfig(num_levels=5))
        discloser = MultiLevelDiscloser(config=config, rng=12)
        hierarchy = discloser.specializer.build(graph).hierarchy
        paper = discloser.disclose(graph, hierarchy=hierarchy)
        naive = NaiveGroupDPDiscloser(epsilon_g=0.5, rng=12).disclose(graph, hierarchy, levels=paper.levels())
        for level in paper.levels():
            assert naive.level(level).noise_scale >= paper.level(level).noise_scale
