"""Tests for candidate-split generation."""

import pytest

from repro.exceptions import SpecializationError
from repro.grouping.splitters import (
    CandidateSplit,
    DegreeOrderSplitter,
    HashOrderSplitter,
    RandomOrderSplitter,
    split_into_parts,
)


class TestCandidateSplit:
    def test_parts_and_size(self):
        split = CandidateSplit(("a", "b"), ("c",))
        assert split.size() == 3
        assert split.parts() == (("a", "b"), ("c",))

    def test_overlap_rejected(self):
        with pytest.raises(SpecializationError):
            CandidateSplit(("a",), ("a", "b"))


class TestSplitters:
    @pytest.fixture
    def members(self, dblp_graph):
        import itertools

        return list(itertools.islice(dblp_graph.left_nodes(), 20))

    def test_propose_covers_all_members(self, dblp_graph, members):
        for splitter in (HashOrderSplitter(), DegreeOrderSplitter(), RandomOrderSplitter()):
            for split in splitter.propose(dblp_graph, members, rng=0):
                assert sorted(split.part_a + split.part_b, key=str) == sorted(members, key=str)

    def test_propose_generates_multiple_candidates(self, dblp_graph, members):
        candidates = HashOrderSplitter().propose(dblp_graph, members)
        assert len(candidates) >= 2
        assert all(len(c.part_a) >= 1 and len(c.part_b) >= 1 for c in candidates)

    def test_propose_two_members(self, dblp_graph, members):
        candidates = HashOrderSplitter().propose(dblp_graph, members[:2])
        assert len(candidates) == 1
        assert candidates[0].size() == 2

    def test_propose_too_small_raises(self, dblp_graph, members):
        with pytest.raises(SpecializationError):
            HashOrderSplitter().propose(dblp_graph, members[:1])
        with pytest.raises(SpecializationError):
            HashOrderSplitter().propose(dblp_graph, [])

    def test_invalid_cut_fractions(self):
        with pytest.raises(SpecializationError):
            HashOrderSplitter(cut_fractions=[])
        with pytest.raises(SpecializationError):
            HashOrderSplitter(cut_fractions=[0.0, 0.5])

    def test_hash_ordering_deterministic(self, dblp_graph, members):
        a = HashOrderSplitter(salt="s").order(dblp_graph, members)
        b = HashOrderSplitter(salt="s").order(dblp_graph, members)
        assert a == b

    def test_hash_salt_changes_order(self, dblp_graph, members):
        a = HashOrderSplitter(salt="s1").order(dblp_graph, members)
        b = HashOrderSplitter(salt="s2").order(dblp_graph, members)
        assert a != b

    def test_degree_order_descending(self, dblp_graph, members):
        ordering = DegreeOrderSplitter().order(dblp_graph, members)
        degrees = [dblp_graph.degree(n) for n in ordering]
        assert degrees == sorted(degrees, reverse=True)

    def test_random_order_seeded(self, dblp_graph, members):
        a = RandomOrderSplitter().order(dblp_graph, members, rng=5)
        b = RandomOrderSplitter().order(dblp_graph, members, rng=5)
        c = RandomOrderSplitter().order(dblp_graph, members, rng=6)
        assert a == b
        assert a != c


class TestSplitIntoParts:
    def choose_first(self, candidates):
        return candidates[0]

    def test_produces_requested_parts(self, dblp_graph):
        import itertools

        members = list(itertools.islice(dblp_graph.left_nodes(), 16))
        parts = split_into_parts(dblp_graph, members, 4, HashOrderSplitter(), self.choose_first, rng=0)
        assert len(parts) == 4
        assert sorted(sum(parts, []), key=str) == sorted(members, key=str)

    def test_small_input_returns_fewer_parts(self, dblp_graph):
        parts = split_into_parts(
            dblp_graph, list(dblp_graph.left_nodes())[:1], 4, HashOrderSplitter(), self.choose_first
        )
        assert len(parts) == 1

    def test_empty_input(self, dblp_graph):
        assert split_into_parts(dblp_graph, [], 4, HashOrderSplitter(), self.choose_first) == []

    def test_parts_are_disjoint(self, dblp_graph):
        import itertools

        members = list(itertools.islice(dblp_graph.left_nodes(), 23))
        parts = split_into_parts(dblp_graph, members, 5, HashOrderSplitter(), self.choose_first, rng=1)
        seen = set()
        for part in parts:
            assert not (seen & set(part))
            seen.update(part)
