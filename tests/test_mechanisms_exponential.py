"""Tests for the Exponential Mechanism."""

import numpy as np
import pytest

from repro.exceptions import ValidationError
from repro.mechanisms.exponential import ExponentialMechanism


class TestSelectionProbabilities:
    def test_uniform_for_equal_scores(self):
        mech = ExponentialMechanism(epsilon=1.0)
        probs = mech.selection_probabilities([3.0, 3.0, 3.0])
        assert np.allclose(probs, 1 / 3)

    def test_higher_score_higher_probability(self):
        mech = ExponentialMechanism(epsilon=1.0)
        probs = mech.selection_probabilities([0.0, 5.0])
        assert probs[1] > probs[0]

    def test_probability_ratio_matches_theory(self):
        epsilon, sensitivity = 2.0, 1.0
        mech = ExponentialMechanism(epsilon=epsilon, score_sensitivity=sensitivity)
        scores = [0.0, 1.0]
        probs = mech.selection_probabilities(scores)
        expected_ratio = np.exp(epsilon * (scores[1] - scores[0]) / (2 * sensitivity))
        assert probs[1] / probs[0] == pytest.approx(expected_ratio)

    def test_probabilities_sum_to_one(self):
        mech = ExponentialMechanism(epsilon=0.3)
        probs = mech.selection_probabilities([1.0, -2.0, 0.5, 7.0])
        assert probs.sum() == pytest.approx(1.0)

    def test_large_scores_do_not_overflow(self):
        mech = ExponentialMechanism(epsilon=10.0)
        probs = mech.selection_probabilities([1e6, 1e6 - 1])
        assert np.all(np.isfinite(probs))

    def test_empty_scores_rejected(self):
        with pytest.raises(ValidationError):
            ExponentialMechanism(epsilon=1.0).selection_probabilities([])

    def test_non_finite_scores_rejected(self):
        with pytest.raises(ValidationError):
            ExponentialMechanism(epsilon=1.0).selection_probabilities([1.0, np.inf])


class TestSelect:
    def test_select_with_scores(self):
        mech = ExponentialMechanism(epsilon=1.0, rng=0)
        choice = mech.select(["a", "b", "c"], scores=[0.0, 0.0, 100.0])
        assert choice == "c"

    def test_select_with_score_fn(self):
        mech = ExponentialMechanism(epsilon=5.0, rng=0)
        choice = mech.select([1, 2, 3, 10], score_fn=lambda x: float(x))
        assert choice in (1, 2, 3, 10)

    def test_score_length_mismatch_raises(self):
        with pytest.raises(ValidationError):
            ExponentialMechanism(1.0).select(["a", "b"], scores=[1.0])

    def test_missing_scores_and_fn_raises(self):
        with pytest.raises(ValidationError):
            ExponentialMechanism(1.0).select(["a", "b"])

    def test_empty_candidates_raises(self):
        with pytest.raises(ValidationError):
            ExponentialMechanism(1.0).select([], scores=[])

    def test_seeded_reproducibility(self):
        a = ExponentialMechanism(1.0, rng=4).select(list("abcdef"), scores=[1, 2, 3, 4, 5, 6])
        b = ExponentialMechanism(1.0, rng=4).select(list("abcdef"), scores=[1, 2, 3, 4, 5, 6])
        assert a == b


class TestStatisticalPreference:
    def test_empirically_prefers_best_candidate(self):
        mech = ExponentialMechanism(epsilon=1.5, score_sensitivity=1.0, rng=9)
        scores = [0.0, 1.0, 3.0]
        counts = np.zeros(3)
        for _ in range(3000):
            counts[mech.select_index(scores)] += 1
        assert counts[2] > counts[1] > counts[0]

    def test_small_epsilon_approaches_uniform(self):
        mech = ExponentialMechanism(epsilon=1e-6, rng=10)
        probs = mech.selection_probabilities([0.0, 10.0, 20.0])
        assert np.allclose(probs, 1 / 3, atol=1e-4)

    def test_privacy_cost(self):
        cost = ExponentialMechanism(epsilon=0.25).privacy_cost()
        assert cost.epsilon == 0.25
        assert cost.delta == 0.0
