"""Tests for groups and partitions."""

import pytest

from repro.exceptions import InvalidPartitionError, ValidationError
from repro.grouping.partition import Group, Partition


class TestGroup:
    def test_construction_and_len(self):
        group = Group("g1", frozenset(["a", "b"]), side="left", level=2)
        assert len(group) == 2
        assert "a" in group
        assert set(group) == {"a", "b"}
        assert not group.is_singleton()

    def test_members_coerced_to_frozenset(self):
        group = Group("g1", ["a", "a", "b"])
        assert isinstance(group.members, frozenset)
        assert len(group) == 2

    def test_singleton(self):
        assert Group("g", ["only"]).is_singleton()

    def test_invalid_id(self):
        with pytest.raises(ValidationError):
            Group("", ["a"])
        with pytest.raises(ValidationError):
            Group(123, ["a"])

    def test_invalid_side(self):
        with pytest.raises(ValidationError):
            Group("g", ["a"], side="middle")

    def test_dict_round_trip(self):
        group = Group("g1", frozenset(["a", "b"]), side="right", level=3)
        back = Group.from_dict(group.to_dict())
        assert back == group


class TestPartitionConstruction:
    def test_from_groups(self):
        partition = Partition([Group("g1", ["a"]), Group("g2", ["b", "c"])])
        assert partition.num_groups() == 2
        assert partition.num_elements() == 3

    def test_duplicate_group_id_rejected(self):
        with pytest.raises(InvalidPartitionError):
            Partition([Group("g", ["a"]), Group("g", ["b"])])

    def test_overlapping_groups_rejected(self):
        with pytest.raises(InvalidPartitionError):
            Partition([Group("g1", ["a", "b"]), Group("g2", ["b"])])

    def test_universe_cover_enforced(self):
        with pytest.raises(InvalidPartitionError):
            Partition([Group("g1", ["a"])], universe=["a", "b"])

    def test_extra_elements_rejected(self):
        with pytest.raises(InvalidPartitionError):
            Partition([Group("g1", ["a", "b"])], universe=["a"])

    def test_exact_cover_accepted(self):
        Partition([Group("g1", ["a"]), Group("g2", ["b"])], universe=["a", "b"])

    def test_non_group_rejected(self):
        with pytest.raises(ValidationError):
            Partition([{"id": "g"}])

    def test_from_mapping(self):
        partition = Partition.from_mapping({"g1": ["a", "b"], "g2": ["c"]}, level=2)
        assert partition.group("g1").level == 2
        assert partition.group_of("c").group_id == "g2"

    def test_singletons(self):
        partition = Partition.singletons(["b", "a", "c"])
        assert partition.num_groups() == 3
        assert all(group.is_singleton() for group in partition)
        assert partition.max_group_size() == 1

    def test_trivial(self):
        partition = Partition.trivial(["a", "b", "c"], level=9)
        assert partition.num_groups() == 1
        assert partition.max_group_size() == 3


class TestPartitionLookups:
    @pytest.fixture
    def partition(self):
        return Partition([Group("left", ["a", "b"]), Group("right", ["x", "y", "z"])])

    def test_group_of(self, partition):
        assert partition.group_of("a").group_id == "left"
        assert partition.group_of("z").group_id == "right"
        with pytest.raises(KeyError):
            partition.group_of("missing")

    def test_group_by_id(self, partition):
        assert partition.group("left").members == frozenset(["a", "b"])
        with pytest.raises(KeyError):
            partition.group("nope")

    def test_sizes_and_max(self, partition):
        assert partition.sizes() == {"left": 2, "right": 3}
        assert partition.max_group_size() == 3

    def test_universe_and_contains(self, partition):
        assert partition.universe() == frozenset(["a", "b", "x", "y", "z"])
        assert partition.contains_element("a")
        assert not partition.contains_element("q")
        assert "left" in partition

    def test_iteration_and_len(self, partition):
        assert len(partition) == 2
        assert {group.group_id for group in partition} == {"left", "right"}

    def test_empty_partition(self):
        empty = Partition([])
        assert empty.max_group_size() == 0
        assert empty.num_elements() == 0


class TestPartitionDerived:
    def test_dict_round_trip(self):
        partition = Partition([Group("g1", ["a"]), Group("g2", ["b"])])
        back = Partition.from_dict(partition.to_dict())
        assert back.sizes() == partition.sizes()
        assert back.universe() == partition.universe()

    def test_restricted_to(self):
        partition = Partition([Group("g1", ["a", "b"]), Group("g2", ["c"])])
        restricted = partition.restricted_to(["a", "c"])
        assert restricted.sizes() == {"g1": 1, "g2": 1}

    def test_restricted_drops_empty_groups(self):
        partition = Partition([Group("g1", ["a"]), Group("g2", ["b"])])
        restricted = partition.restricted_to(["a"])
        assert restricted.num_groups() == 1

    def test_merged_with_disjoint(self):
        left = Partition([Group("g1", ["a"])])
        right = Partition([Group("g2", ["b"])])
        merged = left.merged_with(right)
        assert merged.num_groups() == 2

    def test_merged_with_overlap_rejected(self):
        left = Partition([Group("g1", ["a"])])
        right = Partition([Group("g2", ["a"])])
        with pytest.raises(InvalidPartitionError):
            left.merged_with(right)
