"""Property-based tests for DP mechanisms and accounting arithmetic."""

import math

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.accounting.composition import basic_composition, parallel_composition
from repro.mechanisms.base import PrivacyCost
from repro.mechanisms.calibration import analytic_gaussian_sigma, gaussian_sigma, laplace_scale
from repro.mechanisms.exponential import ExponentialMechanism
from repro.mechanisms.gaussian import GaussianMechanism
from repro.mechanisms.laplace import LaplaceMechanism

epsilons = st.floats(min_value=0.01, max_value=10.0, allow_nan=False)
deltas = st.floats(min_value=1e-10, max_value=0.1, allow_nan=False)
sensitivities = st.floats(min_value=0.01, max_value=1e6, allow_nan=False)


class TestCalibrationProperties:
    @given(epsilon=epsilons, sensitivity=sensitivities)
    @settings(max_examples=80, deadline=None)
    def test_laplace_scale_positive_and_monotone(self, epsilon, sensitivity):
        scale = laplace_scale(epsilon, sensitivity)
        assert scale > 0
        assert laplace_scale(epsilon / 2, sensitivity) > scale
        assert laplace_scale(epsilon, sensitivity * 2) > scale

    @given(epsilon=epsilons, delta=deltas, sensitivity=sensitivities)
    @settings(max_examples=80, deadline=None)
    def test_gaussian_sigma_positive_and_linear_in_sensitivity(self, epsilon, delta, sensitivity):
        sigma = gaussian_sigma(epsilon, delta, sensitivity)
        assert sigma > 0
        assert gaussian_sigma(epsilon, delta, 2 * sensitivity) == np.float64(2 * sigma) or math.isclose(
            gaussian_sigma(epsilon, delta, 2 * sensitivity), 2 * sigma, rel_tol=1e-9
        )

    @given(epsilon=st.floats(min_value=0.05, max_value=3.0), delta=deltas)
    @settings(max_examples=30, deadline=None)
    def test_analytic_not_worse_than_classic_below_one(self, epsilon, delta):
        # The classic formula is only stated for epsilon < 1; restrict there.
        if epsilon < 1.0:
            assert analytic_gaussian_sigma(epsilon, delta, 1.0) <= gaussian_sigma(epsilon, delta, 1.0) + 1e-9
        else:
            assert analytic_gaussian_sigma(epsilon, delta, 1.0) > 0


class TestMechanismProperties:
    @given(epsilon=epsilons, sensitivity=st.floats(min_value=0.1, max_value=100.0), seed=st.integers(0, 2**20))
    @settings(max_examples=40, deadline=None)
    def test_laplace_output_is_finite(self, epsilon, sensitivity, seed):
        mech = LaplaceMechanism(epsilon, sensitivity, rng=seed)
        assert math.isfinite(mech.randomise(123.0))

    @given(epsilon=epsilons, delta=deltas, seed=st.integers(0, 2**20))
    @settings(max_examples=40, deadline=None)
    def test_gaussian_output_is_finite(self, epsilon, delta, seed):
        mech = GaussianMechanism(epsilon, delta, 1.0, rng=seed)
        out = mech.randomise(np.array([1.0, 2.0, 3.0]))
        assert np.all(np.isfinite(out))

    @given(
        scores=st.lists(st.floats(min_value=-100, max_value=100), min_size=1, max_size=10),
        epsilon=epsilons,
    )
    @settings(max_examples=60, deadline=None)
    def test_exponential_probabilities_form_distribution(self, scores, epsilon):
        mech = ExponentialMechanism(epsilon=epsilon)
        probs = mech.selection_probabilities(scores)
        assert np.all(probs >= 0)
        assert probs.sum() == np.float64(1.0) or math.isclose(float(probs.sum()), 1.0, rel_tol=1e-9)

    @given(
        scores=st.lists(st.floats(min_value=-50, max_value=50), min_size=2, max_size=8),
        epsilon=epsilons,
    )
    @settings(max_examples=60, deadline=None)
    def test_exponential_respects_privacy_ratio_bound(self, scores, epsilon):
        # For any two candidates, the probability ratio is bounded by
        # exp(epsilon * |score difference| / (2 * sensitivity)).
        mech = ExponentialMechanism(epsilon=epsilon, score_sensitivity=1.0)
        probs = mech.selection_probabilities(scores)
        for i in range(len(scores)):
            for j in range(len(scores)):
                if probs[j] == 0:
                    continue
                bound = math.exp(epsilon * abs(scores[i] - scores[j]) / 2.0)
                assert probs[i] / probs[j] <= bound * (1 + 1e-9)


class TestAccountingProperties:
    costs = st.lists(
        st.builds(
            PrivacyCost,
            st.floats(min_value=0.0, max_value=5.0),
            st.floats(min_value=0.0, max_value=0.01),
        ),
        min_size=1,
        max_size=10,
    )

    @given(costs=costs)
    @settings(max_examples=60, deadline=None)
    def test_parallel_never_exceeds_basic(self, costs):
        parallel = parallel_composition(costs)
        basic = basic_composition(costs)
        assert parallel.epsilon <= basic.epsilon + 1e-12
        assert parallel.delta <= basic.delta + 1e-12

    @given(costs=costs)
    @settings(max_examples=60, deadline=None)
    def test_basic_composition_is_sum(self, costs):
        total = basic_composition(costs)
        assert math.isclose(total.epsilon, sum(c.epsilon for c in costs), rel_tol=1e-9)

    @given(costs=costs)
    @settings(max_examples=60, deadline=None)
    def test_composition_order_invariance(self, costs):
        total_fwd = basic_composition(costs)
        total_rev = basic_composition(list(reversed(costs)))
        assert math.isclose(total_fwd.epsilon, total_rev.epsilon, rel_tol=1e-9)
