"""Tests for the command-line interface."""

import json

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_generate_defaults(self):
        args = build_parser().parse_args(["generate", "--output", "g.tsv"])
        assert args.dataset == "dblp"
        assert args.scale == "small"

    def test_disclose_mechanism_choices(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["disclose", "--output", "r.json", "--mechanism", "magic"])


class TestCommands:
    def test_generate_writes_edge_list(self, tmp_path, capsys):
        output = tmp_path / "graph.tsv"
        code = main(["generate", "--dataset", "dblp", "--scale", "tiny", "--seed", "1", "--output", str(output)])
        assert code == 0
        assert output.exists()
        assert "associations" in capsys.readouterr().out

    def test_disclose_synthetic(self, tmp_path, capsys):
        output = tmp_path / "release.json"
        code = main(
            [
                "disclose",
                "--scale",
                "tiny",
                "--levels",
                "4",
                "--epsilon-g",
                "0.5",
                "--seed",
                "2",
                "--output",
                str(output),
            ]
        )
        assert code == 0
        document = json.loads(output.read_text())
        assert set(document["levels"]) == {"0", "1", "2"}
        assert "Privacy certificate" in capsys.readouterr().out

    def test_disclose_from_edge_list(self, tmp_path, capsys):
        graph_path = tmp_path / "graph.tsv"
        main(["generate", "--dataset", "pharmacy", "--scale", "tiny", "--output", str(graph_path)])
        release_path = tmp_path / "release.json"
        code = main(
            [
                "disclose",
                "--input",
                str(graph_path),
                "--levels",
                "3",
                "--mechanism",
                "laplace",
                "--output",
                str(release_path),
            ]
        )
        assert code == 0
        document = json.loads(release_path.read_text())
        assert document["dataset_name"] == "graph"

    def test_figure1_analytic(self, tmp_path, capsys):
        output = tmp_path / "figure1.json"
        code = main(
            [
                "figure1",
                "--scale",
                "tiny",
                "--levels",
                "5",
                "--analytic",
                "--output",
                str(output),
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "I5,0" in out
        assert output.exists()

    def test_figure1_sampled_without_output(self, capsys):
        code = main(["figure1", "--scale", "tiny", "--levels", "4", "--trials", "5"])
        assert code == 0
        assert "eps_g" in capsys.readouterr().out
