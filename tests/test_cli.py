"""Tests for the command-line interface."""

import json

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_generate_defaults(self):
        args = build_parser().parse_args(["generate", "--output", "g.tsv"])
        assert args.dataset == "dblp"
        assert args.scale == "small"

    def test_disclose_mechanism_choices(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["disclose", "--output", "r.json", "--mechanism", "magic"])

    def test_figure1_analytic_and_per_trial_mutually_exclusive(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["figure1", "--analytic", "--per-trial"])


class TestCommands:
    def test_generate_writes_edge_list(self, tmp_path, capsys):
        output = tmp_path / "graph.tsv"
        code = main(["generate", "--dataset", "dblp", "--scale", "tiny", "--seed", "1", "--output", str(output)])
        assert code == 0
        assert output.exists()
        assert "associations" in capsys.readouterr().out

    def test_disclose_synthetic(self, tmp_path, capsys):
        output = tmp_path / "release.json"
        code = main(
            [
                "disclose",
                "--scale",
                "tiny",
                "--levels",
                "4",
                "--epsilon-g",
                "0.5",
                "--seed",
                "2",
                "--output",
                str(output),
            ]
        )
        assert code == 0
        document = json.loads(output.read_text())
        assert set(document["levels"]) == {"0", "1", "2"}
        assert "Privacy certificate" in capsys.readouterr().out

    def test_disclose_from_edge_list(self, tmp_path, capsys):
        graph_path = tmp_path / "graph.tsv"
        main(["generate", "--dataset", "pharmacy", "--scale", "tiny", "--output", str(graph_path)])
        release_path = tmp_path / "release.json"
        code = main(
            [
                "disclose",
                "--input",
                str(graph_path),
                "--levels",
                "3",
                "--mechanism",
                "laplace",
                "--output",
                str(release_path),
            ]
        )
        assert code == 0
        document = json.loads(release_path.read_text())
        assert document["dataset_name"] == "graph"

    def test_figure1_analytic(self, tmp_path, capsys):
        output = tmp_path / "figure1.json"
        code = main(
            [
                "figure1",
                "--scale",
                "tiny",
                "--levels",
                "5",
                "--analytic",
                "--output",
                str(output),
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "I5,0" in out
        assert output.exists()

    def test_figure1_sampled_without_output(self, capsys):
        code = main(["figure1", "--scale", "tiny", "--levels", "4", "--trials", "5"])
        assert code == 0
        assert "eps_g" in capsys.readouterr().out

    def test_figure1_per_trial_with_executor(self, capsys):
        code = main(
            [
                "figure1",
                "--scale",
                "tiny",
                "--levels",
                "4",
                "--trials",
                "3",
                "--per-trial",
                "--executor",
                "thread",
            ]
        )
        assert code == 0
        assert "eps_g" in capsys.readouterr().out

    def test_disclose_requires_output_or_store(self, capsys):
        code = main(["disclose", "--scale", "tiny", "--levels", "3"])
        assert code == 2
        assert "--output and/or --store" in capsys.readouterr().err

    def test_disclose_into_store_then_report(self, tmp_path, capsys):
        store_dir = tmp_path / "store"
        code = main(
            [
                "disclose",
                "--scale",
                "tiny",
                "--levels",
                "4",
                "--seed",
                "2",
                "--executor",
                "thread",
                "--store",
                str(store_dir),
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "stored release under key" in out

        # `report` with no key lists the stored releases...
        code = main(["report", "--store", str(store_dir)])
        assert code == 0
        keys = capsys.readouterr().out.split()
        assert len(keys) == 1

        # ...and with a key re-renders per-level metrics from the stored
        # artefact alone — no graph, no re-disclosure, no budget spend.
        metrics_path = tmp_path / "metrics.json"
        code = main(
            ["report", "--store", str(store_dir), "--key", keys[0], "--output", str(metrics_path)]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "levels=[0, 1, 2]" in out
        rows = json.loads(metrics_path.read_text())["rows"]
        assert [row["level"] for row in rows] == [0, 1, 2]
        assert all(row["expected_rer"] is not None for row in rows)

    def test_report_empty_store(self, tmp_path, capsys):
        code = main(["report", "--store", str(tmp_path / "empty")])
        assert code == 0
        assert "no releases stored" in capsys.readouterr().out

    def test_report_unknown_key_fails_cleanly(self, tmp_path, capsys):
        code = main(["report", "--store", str(tmp_path / "empty"), "--key", "typo"])
        assert code == 2
        assert "no release stored under key 'typo'" in capsys.readouterr().err

class TestRefreshCommand:
    def _publish(self, tmp_path, seed="9"):
        """generate → disclose into a store; returns (edge list, store dir)."""
        edges = tmp_path / "graph.tsv"
        store_dir = tmp_path / "store"
        assert (
            main(
                ["generate", "--dataset", "dblp", "--scale", "tiny", "--seed", "4", "--output", str(edges)]
            )
            == 0
        )
        assert (
            main(
                [
                    "disclose",
                    "--input", str(edges),
                    "--levels", "4",
                    "--seed", seed,
                    "--store", str(store_dir),
                    "--key", "live",
                ]
            )
            == 0
        )
        return edges, store_dir

    def test_refresh_after_mutation_republishes(self, tmp_path, capsys):
        from repro.core.store import ReleaseStore

        edges, store_dir = self._publish(tmp_path)
        with edges.open("a") as handle:
            handle.write("brand-new-author\tbrand-new-paper\n")
        code = main(
            ["refresh", "--store", str(store_dir), "--key", "live", "--input", str(edges), "--seed", "9"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "re-perturbed level(s) [0, 1, 2]" in out
        assert "staleness cleared" in out

        store = ReleaseStore(store_dir)
        refreshed = store.load("live")
        provenance = refreshed.provenance
        assert provenance["affected_levels"] == [0, 1, 2]
        assert provenance["refreshed_from_revision"] is not None
        assert provenance["graph_revision"] > provenance["refreshed_from_revision"]
        # Archived under the revision-qualified key as well.
        archive_key = f"live-r{provenance['graph_revision']}"
        assert archive_key in store.keys()

    def test_refresh_matches_from_scratch_disclosure(self, tmp_path, capsys):
        from repro.core.store import ReleaseStore

        edges, store_dir = self._publish(tmp_path)
        with edges.open("a") as handle:
            handle.write("brand-new-author\tbrand-new-paper\n")
        assert (
            main(
                ["refresh", "--store", str(store_dir), "--key", "live", "--input", str(edges), "--seed", "9"]
            )
            == 0
        )
        # From-scratch disclosure of the *mutated* graph under the same seed.
        assert (
            main(
                [
                    "disclose",
                    "--input", str(edges),
                    "--levels", "4",
                    "--seed", "9",
                    "--store", str(store_dir),
                    "--key", "scratch",
                ]
            )
            == 0
        )
        store = ReleaseStore(store_dir)
        refreshed = store.load("live").to_dict()
        scratch = store.load("scratch").to_dict()
        refreshed.pop("provenance")
        scratch.pop("provenance")
        assert refreshed == scratch

    def test_noop_refresh_spends_nothing(self, tmp_path, capsys):
        edges, store_dir = self._publish(tmp_path)
        code = main(
            ["refresh", "--store", str(store_dir), "--key", "live", "--input", str(edges), "--seed", "9"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "re-perturbed level(s) none" in out
        assert "epsilon spent: 0" in out

    def test_refresh_unknown_key_fails_cleanly(self, tmp_path, capsys):
        edges, store_dir = self._publish(tmp_path)
        code = main(
            ["refresh", "--store", str(store_dir), "--key", "typo", "--input", str(edges)]
        )
        assert code == 2
        assert "typo" in capsys.readouterr().err


class TestSweepCommand:
    def _run(self, tmp_path, extra=()):
        return main(
            [
                "sweep", "--dataset", "dblp", "--scale", "tiny",
                "--epsilon-g", "0.5", "--levels", "3", "--seed", "7",
                "--store", str(tmp_path / "store"),
                "--journal", str(tmp_path / "state.json"),
                *extra,
            ]
        )

    def test_sweep_discloses_grid_into_store(self, tmp_path, capsys):
        assert self._run(tmp_path) == 0
        out = capsys.readouterr().out
        assert "sweep-dblp-tiny-l3-eps0.5-seed7" in out
        assert "1 of 1 combination(s) done" in out

    def test_rerun_resumes_from_journal(self, tmp_path, capsys):
        assert self._run(tmp_path) == 0
        first = capsys.readouterr().out
        assert self._run(tmp_path) == 0
        resumed = capsys.readouterr().out
        # The resumed run reuses the journaled row verbatim — identical
        # store key, metrics and even the recorded elapsed time.
        assert resumed == first

    def test_foreign_journal_is_a_one_line_error(self, tmp_path, capsys):
        assert self._run(tmp_path) == 0
        capsys.readouterr()
        # Same journal path, different grid -> fingerprint mismatch must be
        # a one-line `repro sweep:` message on stderr, never a traceback.
        code = main(
            [
                "sweep", "--dataset", "dblp", "--scale", "tiny",
                "--epsilon-g", "0.7", "--levels", "3", "--seed", "7",
                "--store", str(tmp_path / "store"),
                "--journal", str(tmp_path / "state.json"),
            ]
        )
        assert code == 2
        err = capsys.readouterr().err
        assert err.startswith("repro sweep:")
        assert "different run" in err
        assert "Traceback" not in err

class TestSweepOrchestrationFlags:
    """The scheduler/snapshot switches: --progress, --workers, --worker-budget,
    --inner-workers, --executor manager."""

    def _run(self, tmp_path, extra=()):
        return main(
            [
                "sweep", "--dataset", "dblp", "--scale", "tiny",
                "--epsilon-g", "0.5", "1.0",
                "--levels", "3", "--seed", "7",
                "--store", str(tmp_path / "store"),
                "--journal", str(tmp_path / "state.json"),
                *extra,
            ]
        )

    def test_progress_streams_canonical_json_lines_on_stderr(self, tmp_path, capsys):
        assert self._run(tmp_path, extra=["--progress"]) == 0
        err = capsys.readouterr().err
        lines = [line for line in err.splitlines() if line.strip()]
        assert lines, "expected sweep-progress lines on stderr"
        for line in lines:
            payload = json.loads(line)
            assert payload["event"] == "sweep-progress"
            assert payload["total"] == 2
        final = json.loads(lines[-1])
        assert final["done"] == 2
        assert final["pending"] == final["running"] == 0

    def test_progress_persists_the_event_stream_beside_the_journal(self, tmp_path, capsys):
        assert self._run(tmp_path, extra=["--progress"]) == 0
        stream = tmp_path / "state.json.events.jsonl"
        assert stream.is_file()
        states = [json.loads(line)["state"] for line in stream.read_text().splitlines()]
        assert states.count("DONE") == 2

    def test_workers_over_budget_is_a_one_line_exit_2(self, tmp_path, capsys):
        code = self._run(
            tmp_path,
            extra=["--executor", "process", "--workers", "8", "--worker-budget", "2"],
        )
        assert code == 2
        err = capsys.readouterr().err
        assert err.startswith("repro sweep:")
        assert "--workers 8 exceeds the worker budget of 2 slot(s)" in err
        assert "raise --worker-budget" in err
        assert "Traceback" not in err

    def test_bogus_inner_workers_is_a_one_line_exit_2(self, tmp_path, capsys):
        code = self._run(tmp_path, extra=["--inner-workers", "many"])
        assert code == 2
        err = capsys.readouterr().err
        assert err.startswith("repro sweep:")
        assert "--inner-workers must be an integer or 'auto'" in err

    def test_manager_executor_runs_the_sweep(self, tmp_path, capsys):
        assert self._run(
            tmp_path,
            extra=["--executor", "manager", "--workers", "2", "--worker-budget", "2"],
        ) == 0
        out = capsys.readouterr().out
        assert "2 of 2 combination(s) done" in out


class TestQueryCommand:
    """`repro query` — the catalog CLI — over both store backends."""

    def _seed(self, store_path):
        """Disclose two releases (different epsilon) into `store_path`."""
        for epsilon, seed in (("0.5", "2"), ("1.0", "3")):
            code = main(
                [
                    "disclose", "--scale", "tiny", "--levels", "4",
                    "--epsilon-g", epsilon, "--seed", seed,
                    "--key", f"rel-eps{epsilon}",
                    "--store", str(store_path),
                ]
            )
            assert code == 0

    def test_table_output_lists_catalog_columns(self, tmp_path, capsys):
        store = tmp_path / "releases.db"
        self._seed(store)
        capsys.readouterr()
        assert main(["query", "--store", str(store)]) == 0
        out = capsys.readouterr().out
        for column in ("key", "mechanism", "epsilon", "levels", "graph", "created_at"):
            assert column in out
        assert "rel-eps0.5" in out and "rel-eps1.0" in out
        # The CLI write path stamps wall-clock created_at timestamps.
        assert out.count("T") >= 2

    def test_epsilon_filter_and_json_output(self, tmp_path, capsys):
        store = tmp_path / "releases.db"
        self._seed(store)
        capsys.readouterr()
        assert main(["query", "--store", str(store), "--epsilon", "0.5", "--format", "json"]) == 0
        rows = json.loads(capsys.readouterr().out)
        assert [row["key"] for row in rows] == ["rel-eps0.5"]
        assert rows[0]["epsilon"] == 0.5
        assert rows[0]["mechanism"] == "gaussian"

    def test_key_glob_and_csv_output(self, tmp_path, capsys):
        store = tmp_path / "store-dir"
        self._seed(store)
        capsys.readouterr()
        assert main(["query", "--store", str(store), "--key-glob", "*eps1.0", "--format", "csv"]) == 0
        lines = capsys.readouterr().out.strip().splitlines()
        assert lines[0].startswith("key,")
        assert len(lines) == 2 and lines[1].startswith("rel-eps1.0,")

    def test_empty_result_prints_placeholder(self, tmp_path, capsys):
        store = tmp_path / "releases.db"
        self._seed(store)
        capsys.readouterr()
        assert main(["query", "--store", str(store), "--mechanism", "laplace"]) == 0
        assert "(no matching releases)" in capsys.readouterr().out

    def test_missing_store_is_exit_2_not_a_fresh_store(self, tmp_path, capsys):
        missing = tmp_path / "nowhere.db"
        assert main(["query", "--store", str(missing)]) == 2
        assert "does not exist" in capsys.readouterr().err
        # Querying must never materialise an empty store on disk.
        assert not missing.exists()

    def test_json_output_identical_across_backends(self, tmp_path, capsys):
        """Acceptance criterion: `repro query --epsilon 0.5 --format json`
        returns byte-identical output for a directory store and a SQLite
        store seeded with the same releases."""
        from repro.core.store import ReleaseStore

        from backend_matrix import make_release_store

        outputs = {}
        for kind in ("directory", "sqlite"):
            store = make_release_store(kind, tmp_path / kind)
            for epsilon, key in ((0.5, "rel-a"), (1.0, "rel-b")):
                from repro.core.config import DisclosureConfig
                from repro.core.discloser import MultiLevelDiscloser
                from repro.datasets.dblp_like import generate_dblp_like
                from repro.grouping.specialization import SpecializationConfig

                release = MultiLevelDiscloser(
                    DisclosureConfig(
                        epsilon_g=epsilon,
                        specialization=SpecializationConfig(num_levels=4),
                    ),
                    rng=9,
                ).disclose(generate_dblp_like(num_authors=60, seed=4))
                store.save(release, key=key)
            capsys.readouterr()
            root = store.backend.root
            assert main(["query", "--store", str(root), "--epsilon", "0.5", "--format", "json"]) == 0
            outputs[kind] = capsys.readouterr().out
        assert outputs["directory"] == outputs["sqlite"]
        rows = json.loads(outputs["sqlite"])
        assert [row["key"] for row in rows] == ["rel-a"]


class TestKeyboardInterrupt:
    def test_ctrl_c_is_exit_130_with_one_line_message(self, capsys, monkeypatch):
        import repro.cli as cli_module

        def interrupted(args):
            raise KeyboardInterrupt

        monkeypatch.setitem(cli_module._COMMANDS, "figure1", interrupted)
        code = main(["figure1", "--scale", "tiny"])
        assert code == 130
        err = capsys.readouterr().err
        assert err == "repro figure1: interrupted\n"
        assert "Traceback" not in err
