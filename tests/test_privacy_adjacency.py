"""Tests for adjacency relations."""

import pytest

from repro.exceptions import ValidationError
from repro.grouping.partition import Group, Partition
from repro.privacy.adjacency import (
    EdgeAdjacency,
    GroupAdjacency,
    IndividualAdjacency,
    NodeAdjacency,
)


class TestIndividualAdjacency:
    def test_unit_and_sensitivity(self, tiny_graph):
        relation = IndividualAdjacency()
        assert relation.unit() == "association"
        assert relation.count_query_sensitivity(tiny_graph) == 1.0

    def test_edge_alias(self, tiny_graph):
        relation = EdgeAdjacency()
        assert relation.unit() == "edge"
        assert relation.count_query_sensitivity(tiny_graph) == 1.0

    def test_describe_mentions_unit(self):
        assert "association" in IndividualAdjacency().describe()


class TestNodeAdjacency:
    def test_sensitivity_is_max_degree(self, tiny_graph):
        assert NodeAdjacency().count_query_sensitivity(tiny_graph) == 2.0

    def test_degree_bound_clamps(self, tiny_graph):
        assert NodeAdjacency(degree_bound=1).count_query_sensitivity(tiny_graph) == 1.0

    def test_empty_graph_sensitivity_floor(self):
        from repro.graphs.bipartite import BipartiteGraph

        assert NodeAdjacency().count_query_sensitivity(BipartiteGraph()) == 1.0

    def test_invalid_degree_bound(self):
        with pytest.raises(ValidationError):
            NodeAdjacency(degree_bound=0)


class TestGroupAdjacency:
    def test_sensitivity_is_worst_incident_count(self, tiny_graph, tiny_partition):
        relation = GroupAdjacency(tiny_partition)
        # Either group ("buyers" or "drugs") touches every association.
        assert relation.count_query_sensitivity(tiny_graph) == 5.0

    def test_fine_partition_has_smaller_sensitivity(self, tiny_graph):
        fine = Partition.singletons(tiny_graph.nodes())
        relation = GroupAdjacency(fine)
        assert relation.count_query_sensitivity(tiny_graph) == 2.0

    def test_unit_and_describe(self, tiny_partition):
        relation = GroupAdjacency(tiny_partition)
        assert relation.unit() == "group"
        assert "groups=2" in relation.describe()

    def test_max_group_size(self, tiny_partition):
        assert GroupAdjacency(tiny_partition).max_group_size() == 4

    def test_requires_partition_instance(self):
        with pytest.raises(ValidationError):
            GroupAdjacency({"g": ["a"]})

    def test_sensitivity_floor_for_edgeless_groups(self, tiny_graph):
        partition = Partition([Group("isolated", frozenset(["erin", "zoloft"]))])
        assert GroupAdjacency(partition).count_query_sensitivity(tiny_graph) == 1.0

    def test_group_sensitivity_at_least_individual(self, dblp_graph, dblp_hierarchy):
        individual = IndividualAdjacency().count_query_sensitivity(dblp_graph)
        for level in dblp_hierarchy.level_indices():
            group = GroupAdjacency(dblp_hierarchy.partition_at(level))
            assert group.count_query_sensitivity(dblp_graph) >= individual
