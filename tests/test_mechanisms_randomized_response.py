"""Tests for randomized response."""

import math

import numpy as np
import pytest

from repro.mechanisms.randomized_response import RandomizedResponse


class TestRandomizedResponse:
    def test_truth_probability_formula(self):
        rr = RandomizedResponse(epsilon=1.0)
        assert rr.p_truth == pytest.approx(math.exp(1.0) / (1 + math.exp(1.0)))

    def test_output_is_binary_scalar(self):
        rr = RandomizedResponse(epsilon=1.0, rng=0)
        assert rr.randomise(1) in (0, 1)
        assert rr.randomise(0) in (0, 1)

    def test_output_is_binary_array(self):
        rr = RandomizedResponse(epsilon=1.0, rng=0)
        bits = rr.randomise(np.array([0, 1, 1, 0, 1]))
        assert set(np.unique(bits)) <= {0, 1}

    def test_non_binary_input_rejected(self):
        rr = RandomizedResponse(epsilon=1.0, rng=0)
        with pytest.raises(ValueError):
            rr.randomise(np.array([0, 2]))

    def test_high_epsilon_mostly_truthful(self):
        rr = RandomizedResponse(epsilon=8.0, rng=1)
        bits = rr.randomise(np.ones(5000, dtype=int))
        assert bits.mean() > 0.99

    def test_frequency_estimator_debiases(self):
        rng_truth = np.random.default_rng(3)
        true_bits = (rng_truth.uniform(size=30_000) < 0.3).astype(int)
        rr = RandomizedResponse(epsilon=1.0, rng=4)
        reported = rr.randomise(true_bits)
        estimate = rr.estimate_frequency(reported)
        assert estimate == pytest.approx(0.3, abs=0.02)

    def test_estimate_frequency_empty_input(self):
        rr = RandomizedResponse(epsilon=1.0)
        assert rr.estimate_frequency(np.array([])) == 0.0

    def test_privacy_cost_pure(self):
        cost = RandomizedResponse(epsilon=0.5).privacy_cost()
        assert cost.epsilon == 0.5 and cost.delta == 0.0
