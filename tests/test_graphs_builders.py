"""Tests for graph builders and NetworkX conversion."""

import networkx as nx
import numpy as np
import pytest

from repro.exceptions import ValidationError
from repro.graphs.builders import from_association_list, from_biadjacency, from_networkx, to_networkx
from repro.graphs.bipartite import Side


class TestFromAssociationList:
    def test_builds_graph_with_auto_added_nodes(self):
        g = from_association_list([("a", "x"), ("a", "y"), ("b", "x")])
        assert g.num_left() == 2
        assert g.num_right() == 2
        assert g.num_associations() == 3

    def test_isolated_nodes_registered(self):
        g = from_association_list([("a", "x")], left_nodes=["a", "lonely"], right_nodes=["x", "unused"])
        assert g.has_node("lonely")
        assert g.degree("lonely") == 0
        assert g.has_node("unused")

    def test_duplicate_pairs_collapse(self):
        g = from_association_list([("a", "x"), ("a", "x")])
        assert g.num_associations() == 1


class TestFromBiadjacency:
    def test_matrix_to_graph(self):
        matrix = np.array([[1, 0, 1], [0, 1, 0]])
        g = from_biadjacency(matrix)
        assert g.num_left() == 2
        assert g.num_right() == 3
        assert g.num_associations() == 3
        assert g.has_association("L0", "R0")
        assert g.has_association("L1", "R1")

    def test_custom_labels(self):
        g = from_biadjacency(np.eye(2), left_labels=["u", "v"], right_labels=["x", "y"])
        assert g.has_association("u", "x")
        assert g.has_association("v", "y")

    def test_wrong_dimensionality_rejected(self):
        with pytest.raises(ValidationError):
            from_biadjacency(np.zeros(3))

    def test_label_length_mismatch_rejected(self):
        with pytest.raises(ValidationError):
            from_biadjacency(np.eye(2), left_labels=["only-one"])


class TestNetworkxRoundTrip:
    def test_to_networkx_sets_bipartite_attribute(self, tiny_graph):
        nxg = to_networkx(tiny_graph)
        assert nxg.number_of_edges() == tiny_graph.num_associations()
        assert nxg.nodes["bob"]["bipartite"] == 0
        assert nxg.nodes["insulin"]["bipartite"] == 1

    def test_round_trip_preserves_structure(self, tiny_graph):
        back = from_networkx(to_networkx(tiny_graph))
        assert back.num_left() == tiny_graph.num_left()
        assert back.num_right() == tiny_graph.num_right()
        assert set(back.associations()) == set(tiny_graph.associations())

    def test_round_trip_preserves_attributes(self):
        g = from_association_list([("a", "x")])
        g.node_attributes("a")["zipcode"] = "15213"
        back = from_networkx(to_networkx(g))
        assert back.node_attributes("a") == {"zipcode": "15213"}

    def test_from_networkx_missing_bipartite_attr_raises(self):
        nxg = nx.Graph()
        nxg.add_node("a")
        with pytest.raises(ValidationError):
            from_networkx(nxg)

    def test_from_networkx_same_side_edge_raises(self):
        nxg = nx.Graph()
        nxg.add_node("a", bipartite=0)
        nxg.add_node("b", bipartite=0)
        nxg.add_edge("a", "b")
        with pytest.raises(ValidationError):
            from_networkx(nxg)

    def test_from_networkx_edge_order_agnostic(self):
        nxg = nx.Graph()
        nxg.add_node("x", bipartite=1)
        nxg.add_node("a", bipartite=0)
        nxg.add_edge("x", "a")
        g = from_networkx(nxg)
        assert g.has_association("a", "x")
        assert g.side_of("a") is Side.LEFT

    def test_from_networkx_invalid_bipartite_value(self):
        nxg = nx.Graph()
        nxg.add_node("a", bipartite=2)
        with pytest.raises(ValidationError):
            from_networkx(nxg)
