"""Tests for count queries."""

import pytest

from repro.exceptions import SensitivityError
from repro.grouping.partition import Group, Partition
from repro.queries.counts import GroupedAssociationCountQuery, TotalAssociationCountQuery


class TestTotalAssociationCountQuery:
    def test_evaluate(self, tiny_graph):
        answer = TotalAssociationCountQuery().evaluate(tiny_graph)
        assert answer.scalar() == 5.0
        assert answer.labels == ["total"]

    def test_individual_sensitivity(self, tiny_graph):
        assert TotalAssociationCountQuery().l1_sensitivity(tiny_graph, "individual") == 1.0

    def test_node_sensitivity(self, tiny_graph):
        assert TotalAssociationCountQuery().l1_sensitivity(tiny_graph, "node") == 2.0

    def test_group_sensitivity(self, tiny_graph, tiny_partition):
        query = TotalAssociationCountQuery()
        assert query.l1_sensitivity(tiny_graph, "group", partition=tiny_partition) == 5.0
        assert query.l2_sensitivity(tiny_graph, "group", partition=tiny_partition) == 5.0

    def test_group_without_partition_raises(self, tiny_graph):
        with pytest.raises(SensitivityError):
            TotalAssociationCountQuery().l1_sensitivity(tiny_graph, "group")

    def test_unknown_adjacency_raises(self, tiny_graph):
        with pytest.raises(SensitivityError):
            TotalAssociationCountQuery().l1_sensitivity(tiny_graph, "postcode")


class TestGroupedAssociationCountQuery:
    @pytest.fixture
    def query_partition(self):
        return Partition(
            [
                Group("hA", ["bob", "insulin", "aspirin"]),
                Group("hB", ["carol", "dave", "statin", "erin", "zoloft"]),
            ]
        )

    def test_evaluate_per_group_counts(self, tiny_graph, query_partition):
        answer = GroupedAssociationCountQuery(query_partition).evaluate(tiny_graph)
        values = answer.as_dict()
        assert values["hA"] == 2.0  # bob-insulin, bob-aspirin
        assert values["hB"] == 1.0  # dave-statin

    def test_individual_sensitivity_is_one(self, tiny_graph, query_partition):
        query = GroupedAssociationCountQuery(query_partition)
        assert query.l1_sensitivity(tiny_graph, "individual") == 1.0

    def test_group_sensitivity_same_partition(self, tiny_graph, query_partition):
        query = GroupedAssociationCountQuery(query_partition)
        sensitivity = query.l1_sensitivity(tiny_graph, "group", partition=query_partition)
        assert sensitivity == 2.0  # the largest induced count

    def test_group_sensitivity_different_partition_uses_incident_bound(
        self, tiny_graph, query_partition, tiny_partition
    ):
        query = GroupedAssociationCountQuery(query_partition)
        sensitivity = query.l1_sensitivity(tiny_graph, "group", partition=tiny_partition)
        assert sensitivity == 5.0

    def test_requires_partition_instance(self):
        with pytest.raises(SensitivityError):
            GroupedAssociationCountQuery({"g": ["a"]})

    def test_answer_labels_are_group_ids(self, tiny_graph, query_partition):
        answer = GroupedAssociationCountQuery(query_partition).evaluate(tiny_graph)
        assert set(answer.labels) == {"hA", "hB"}


class TestQueryAnswer:
    def test_scalar_on_vector_raises(self, tiny_graph):
        partition = Partition([Group("a", ["bob"]), Group("b", ["carol"])])
        answer = GroupedAssociationCountQuery(partition).evaluate(tiny_graph)
        with pytest.raises(ValueError):
            answer.scalar()

    def test_label_count_mismatch_rejected(self):
        from repro.queries.base import QueryAnswer

        with pytest.raises(ValueError):
            QueryAnswer(name="q", values=[1.0, 2.0], labels=["only-one"])

    def test_default_labels_generated(self):
        from repro.queries.base import QueryAnswer

        answer = QueryAnswer(name="q", values=[1.0, 2.0])
        assert answer.labels == ["q[0]", "q[1]"]

    def test_to_dict(self):
        from repro.queries.base import QueryAnswer

        data = QueryAnswer(name="q", values=[3.0], labels=["x"]).to_dict()
        assert data == {"name": "q", "labels": ["x"], "values": [3.0]}
