"""Tests for DisclosureConfig."""

import pytest

from repro.core.config import DisclosureConfig
from repro.exceptions import ValidationError
from repro.grouping.specialization import SpecializationConfig


class TestDisclosureConfig:
    def test_defaults(self):
        config = DisclosureConfig()
        assert config.epsilon_g == 1.0
        assert config.mechanism == "gaussian"
        assert config.budget_mode == "per_level"
        assert config.specialization.num_levels == 9

    def test_paper_defaults_factory(self):
        config = DisclosureConfig.paper_defaults(epsilon_g=0.3)
        assert config.epsilon_g == 0.3
        assert config.specialization.num_levels == 9
        assert config.resolved_release_levels() == list(range(0, 8))

    def test_resolved_release_levels_default(self):
        config = DisclosureConfig(specialization=SpecializationConfig(num_levels=5))
        assert config.resolved_release_levels() == [0, 1, 2, 3]

    def test_resolved_release_levels_without_individual_level(self):
        config = DisclosureConfig(
            specialization=SpecializationConfig(num_levels=5, include_individual_level=False)
        )
        assert config.resolved_release_levels() == [1, 2, 3]

    def test_explicit_release_levels_sorted_and_deduped(self):
        config = DisclosureConfig(
            specialization=SpecializationConfig(num_levels=5), release_levels=[3, 1, 3]
        )
        assert config.resolved_release_levels() == [1, 3]

    def test_release_levels_out_of_range_rejected(self):
        with pytest.raises(ValidationError):
            DisclosureConfig(specialization=SpecializationConfig(num_levels=4), release_levels=[7])

    def test_empty_release_levels_rejected(self):
        with pytest.raises(ValidationError):
            DisclosureConfig(release_levels=[])

    def test_invalid_mechanism(self):
        with pytest.raises(ValidationError):
            DisclosureConfig(mechanism="exponential")

    def test_invalid_budget_mode(self):
        with pytest.raises(ValidationError):
            DisclosureConfig(budget_mode="weekly")

    def test_invalid_epsilon_and_delta(self):
        with pytest.raises(ValidationError):
            DisclosureConfig(epsilon_g=0.0)
        with pytest.raises(ValidationError):
            DisclosureConfig(delta=0.0)

    def test_uses_l2_sensitivity(self):
        assert DisclosureConfig(mechanism="gaussian").uses_l2_sensitivity()
        assert DisclosureConfig(mechanism="analytic_gaussian").uses_l2_sensitivity()
        assert not DisclosureConfig(mechanism="laplace").uses_l2_sensitivity()

    def test_specialization_type_enforced(self):
        with pytest.raises(ValidationError):
            DisclosureConfig(specialization={"num_levels": 9})

    def test_to_dict(self):
        data = DisclosureConfig().to_dict()
        assert data["mechanism"] == "gaussian"
        assert data["specialization"]["num_levels"] == 9
