"""Tests for individual <-> group guarantee conversions."""

import math

import pytest

from repro.exceptions import ValidationError
from repro.privacy.conversion import (
    group_guarantee_from_individual,
    individual_budget_for_group_target,
)
from repro.privacy.guarantees import PrivacyGuarantee, PrivacyUnit


class TestGroupFromIndividual:
    def test_pure_dp_scales_linearly(self):
        base = PrivacyGuarantee(epsilon=0.2)
        lifted = group_guarantee_from_individual(base, group_size=5)
        assert lifted.epsilon == pytest.approx(1.0)
        assert lifted.delta == 0.0
        assert lifted.unit is PrivacyUnit.GROUP
        assert lifted.max_group_size == 5

    def test_group_size_one_is_identity_on_epsilon(self):
        base = PrivacyGuarantee(epsilon=0.7, delta=1e-6)
        lifted = group_guarantee_from_individual(base, group_size=1)
        assert lifted.epsilon == pytest.approx(0.7)
        assert lifted.delta == pytest.approx(1e-6)

    def test_approximate_dp_delta_grows(self):
        base = PrivacyGuarantee(epsilon=0.5, delta=1e-6)
        lifted = group_guarantee_from_individual(base, group_size=4)
        expected_delta = 4 * math.exp(3 * 0.5) * 1e-6
        assert lifted.epsilon == pytest.approx(2.0)
        assert lifted.delta == pytest.approx(expected_delta)

    def test_delta_capped_at_one(self):
        base = PrivacyGuarantee(epsilon=2.0, delta=0.01)
        lifted = group_guarantee_from_individual(base, group_size=50)
        assert lifted.delta == 1.0

    def test_level_recorded(self):
        base = PrivacyGuarantee(epsilon=0.1)
        assert group_guarantee_from_individual(base, 3, level=4).level == 4

    def test_invalid_group_size(self):
        with pytest.raises(ValidationError):
            group_guarantee_from_individual(PrivacyGuarantee(epsilon=1.0), group_size=0)


class TestIndividualBudgetForGroupTarget:
    def test_inverse_of_lemma(self):
        assert individual_budget_for_group_target(1.0, 10) == pytest.approx(0.1)

    def test_round_trip_with_lemma(self):
        group_eps, k = 0.8, 7
        individual = individual_budget_for_group_target(group_eps, k)
        lifted = group_guarantee_from_individual(PrivacyGuarantee(epsilon=individual), k)
        assert lifted.epsilon == pytest.approx(group_eps)

    def test_invalid_inputs(self):
        with pytest.raises(ValidationError):
            individual_budget_for_group_target(0.0, 5)
        with pytest.raises(ValidationError):
            individual_budget_for_group_target(1.0, 0)
