"""Tests for the fingerprint-keyed response cache (:mod:`repro.serving.respcache`)
and its integration into the serving hot path: ETag/304 revalidation, gzip
negotiation, staleness-on-republish, and the zero-work acceptance criterion
(a warm cached GET performs zero JSON serialisation and zero store reads).
"""

import gzip
import http.client
import json
import threading
from types import SimpleNamespace

import pytest

from backend_matrix import make_release_store, store_backend_matrix
from repro.core.access import AccessPolicy
from repro.core.config import DisclosureConfig
from repro.core.discloser import MultiLevelDiscloser
from repro.core.store import MemoryBackend, ReleaseStore
from repro.exceptions import ValidationError
from repro.execution.faults import FaultInjectingBackend
from repro.grouping.specialization import SpecializationConfig
from repro.serving import (
    ReleaseServer,
    ResponseCache,
    ServingError,
    fetch_json,
    http_get,
    http_get_response,
    make_etag,
)
from repro.serving.respcache import CachedResponse


@pytest.fixture(scope="module")
def release(dblp_graph):
    config = DisclosureConfig(
        epsilon_g=0.5, specialization=SpecializationConfig(num_levels=4)
    )
    return MultiLevelDiscloser(config, rng=11).disclose(dblp_graph)


@pytest.fixture(scope="module")
def other_release(dblp_graph):
    """A second disclosure of the same graph — different noise, different bytes."""
    config = DisclosureConfig(
        epsilon_g=0.5, specialization=SpecializationConfig(num_levels=4)
    )
    return MultiLevelDiscloser(config, rng=12).disclose(dblp_graph)


@pytest.fixture(scope="module")
def policy():
    return AccessPolicy({"analyst": 0, "public": 2}, top_level=4)


@pytest.fixture
def served(release, policy, tmp_path):
    """A caching server over a directory store holding one release."""
    store = ReleaseStore(tmp_path / "store", cache_size=8)
    key = store.save(release)
    with ReleaseServer(store, policy, port=0) as server:
        yield SimpleNamespace(server=server, store=store, key=key)


class TestResponseCacheUnit:
    def test_make_etag_is_strong_and_distinct(self):
        tag = make_etag("fp-1", "/releases/k")
        assert tag.startswith('"') and tag.endswith('"')
        assert tag != make_etag("fp-2", "/releases/k")  # fingerprint pins it
        assert tag != make_etag("fp-1", "/releases/j")  # so does the route

    def test_cached_gzip_variant_is_deterministic_and_round_trips(self):
        body = b'{"answer": 42}\n' * 100
        one = CachedResponse("fp", "/r", body)
        two = CachedResponse("fp", "/r", body)
        assert one.gzip_body == two.gzip_body  # mtime=0: byte-stable
        assert gzip.decompress(one.gzip_body) == body
        assert len(one.gzip_body) < len(body)

    def test_get_requires_matching_fingerprint(self):
        cache = ResponseCache(max_entries=4)
        cache.put("/r", "fp-1", b"body")
        assert cache.get("/r", "fp-1").body == b"body"
        assert cache.get("/r", None) is None  # absent key: nothing valid
        assert cache.get("/missing", "fp-1") is None

    def test_stale_fingerprint_invalidates_and_fires_callback(self):
        fired = []
        cache = ResponseCache(max_entries=4, on_invalidation=lambda: fired.append(1))
        cache.put("/r", "fp-1", b"old")
        assert cache.get("/r", "fp-2") is None  # republished behind the cache
        assert fired == [1]
        assert len(cache) == 0
        assert cache.stats()["invalidations"] == 1

    def test_lru_eviction_beyond_max_entries(self):
        cache = ResponseCache(max_entries=2)
        cache.put("/a", "fp", b"a")
        cache.put("/b", "fp", b"b")
        assert cache.get("/a", "fp") is not None  # refresh /a
        cache.put("/c", "fp", b"c")  # evicts /b, the LRU entry
        assert cache.get("/b", "fp") is None
        assert cache.get("/a", "fp") is not None
        assert cache.get("/c", "fp") is not None

    def test_stats_counters(self):
        cache = ResponseCache(max_entries=4)
        cache.put("/r", "fp", b"x")
        cache.get("/r", "fp")
        cache.get("/other", "fp")
        stats = cache.stats()
        assert stats["hits"] == 1
        assert stats["misses"] == 1
        assert stats["entries"] == 1
        assert stats["max_entries"] == 4

    def test_zero_or_negative_max_entries_rejected(self):
        with pytest.raises(ValidationError):
            ResponseCache(max_entries=0)
        with pytest.raises(ValidationError):
            ResponseCache(max_entries=-1)


class TestCounterAudit:
    """The accounting invariant: every lookup is exactly one hit or miss
    (``hits + misses == lookups``), and an invalidate-and-rebuild request
    is one miss plus one invalidation — never double-counted."""

    def test_hits_plus_misses_equals_lookups(self):
        cache = ResponseCache(max_entries=4)
        cache.get("/r", "fp-1")  # cold miss
        cache.put("/r", "fp-1", b"x")
        cache.get("/r", "fp-1")  # hit
        cache.get("/r", "fp-2")  # stale: one invalidation, same single miss
        cache.put("/r", "fp-2", b"y")  # rebuild: touches no counter
        cache.get("/r", "fp-2")  # hit
        cache.get("/r", None)  # absent key: entry dropped, one miss
        stats = cache.stats()
        assert stats["hits"] + stats["misses"] == stats["lookups"]
        assert stats["lookups"] == 5
        assert stats["hits"] == 2
        assert stats["misses"] == 3
        assert stats["invalidations"] == 2

    def test_stale_rebuild_counts_one_miss_and_one_invalidation(self):
        cache = ResponseCache(max_entries=4)
        cache.put("/r", "fp-1", b"old")
        cache.get("/r", "fp-1")
        before = cache.stats()
        # One republished-key request: stale lookup, then rebuild.
        assert cache.get("/r", "fp-2") is None
        cache.put("/r", "fp-2", b"new")
        after = cache.stats()
        assert after["lookups"] == before["lookups"] + 1
        assert after["misses"] == before["misses"] + 1
        assert after["invalidations"] == before["invalidations"] + 1
        assert after["hits"] == before["hits"]


class TestConditionalGet:
    def test_cacheable_routes_carry_a_strong_etag_and_vary(self, served):
        for path in (
            f"/releases/{served.key}",
            f"/releases/{served.key}/roles",
            f"/releases/{served.key}/views/public",
        ):
            response = http_get_response(served.server.url + path)
            assert response.status == 200, path
            assert response.etag is not None and response.etag.startswith('"'), path
            assert response.headers["vary"] == "Accept-Encoding", path

    def test_uncacheable_routes_have_no_etag(self, served):
        for path in ("/", "/healthz", "/releases"):
            response = http_get_response(served.server.url + path)
            assert response.status == 200, path
            assert response.etag is None, path

    def test_if_none_match_hit_is_an_empty_304(self, served):
        url = f"{served.server.url}/releases/{served.key}/views/public"
        first = http_get_response(url)
        revalidated = http_get_response(url, etag=first.etag)
        assert revalidated.status == 304
        assert revalidated.body == b""
        assert revalidated.etag == first.etag
        # A 304 has no body by definition — no Content-Length is sent.
        assert "content-length" not in revalidated.headers
        assert served.server.stats.etag_hits >= 1

    def test_if_none_match_miss_gets_the_full_body(self, served):
        url = f"{served.server.url}/releases/{served.key}/views/public"
        fresh = http_get_response(url, etag='"0000feedbeef0000"')
        assert fresh.status == 200
        assert fresh.body  # a non-matching tag revalidates nothing

    def test_weak_and_wildcard_if_none_match_forms(self, served):
        url = f"{served.server.url}/releases/{served.key}/views/public"
        etag = http_get_response(url).etag
        assert http_get_response(url, etag=f"W/{etag}").status == 304
        assert http_get_response(url, etag="*").status == 304
        assert http_get_response(url, etag=f'"zzz", {etag}').status == 304

    def test_304_keeps_the_keep_alive_connection_aligned(self, served):
        """http.client reuses the socket across a 304 — the next request on
        the same connection must parse cleanly (no stray body bytes)."""
        url_path = f"/releases/{served.key}/views/public"
        etag = http_get_response(served.server.url + url_path).etag
        connection = http.client.HTTPConnection(
            served.server.host, served.server.port
        )
        try:
            connection.request("GET", url_path, headers={"If-None-Match": etag})
            response = connection.getresponse()
            assert response.status == 304
            assert response.read() == b""
            connection.request("GET", "/healthz")
            response = connection.getresponse()
            assert response.status == 200
            assert json.loads(response.read())["status"] == "ok"
        finally:
            connection.close()

    def test_head_on_a_cached_route_sends_headers_only(self, served):
        url_path = f"/releases/{served.key}/views/public"
        http_get(served.server.url + url_path)  # warm the cache
        connection = http.client.HTTPConnection(
            served.server.host, served.server.port
        )
        try:
            connection.request("HEAD", url_path, headers={"Accept-Encoding": "identity"})
            response = connection.getresponse()
            assert response.status == 200
            assert int(response.getheader("Content-Length")) > 0
            assert response.getheader("ETag") is not None
            assert response.read() == b""
        finally:
            connection.close()

    def test_error_responses_are_never_cached(self, served):
        assert http_get_response(f"{served.server.url}/releases/nope").etag is None
        assert (
            http_get_response(
                f"{served.server.url}/releases/{served.key}/views/nobody"
            ).etag
            is None
        )
        assert len(served.server.response_cache) <= 3  # only the 200 routes


class TestInvalidationOnRepublish:
    def test_republished_key_is_never_served_stale(
        self, release, other_release, policy, tmp_path
    ):
        store = ReleaseStore(tmp_path / "store", cache_size=8)
        key = store.save(release)
        with ReleaseServer(store, policy, port=0) as server:
            url = f"{server.url}/releases/{key}/views/public"
            before = http_get_response(url)
            assert before.status == 200

            store.save(other_release, key=key)  # republish behind the server

            after = http_get_response(url)
            assert after.status == 200
            assert after.etag != before.etag
            assert after.body != before.body
            assert json.loads(after.body)["release"] == policy.view_for(
                "public", other_release
            ).to_dict()
            assert server.stats.cache_invalidations >= 1

            # The old ETag no longer revalidates: full fresh body, not a 304.
            assert http_get_response(url, etag=before.etag).status == 200

    def test_republish_invalidates_on_a_memory_backend_too(
        self, release, other_release, policy
    ):
        store = ReleaseStore.in_memory()
        key = store.save(release)
        with ReleaseServer(store, policy, port=0) as server:
            url = f"{server.url}/releases/{key}/views/analyst"
            before = http_get_response(url)
            store.save(other_release, key=key)  # rev counter bumps
            after = http_get_response(url)
            assert after.etag != before.etag
            assert after.body != before.body

    def test_republish_invalidates_on_a_sqlite_backend_too(
        self, release, other_release, policy, tmp_path
    ):
        store = ReleaseStore(tmp_path / "store.db")
        key = store.save(release)
        with ReleaseServer(store, policy, port=0) as server:
            url = f"{server.url}/releases/{key}/views/analyst"
            before = http_get_response(url)
            store.save(other_release, key=key)  # revision column bumps
            after = http_get_response(url)
            assert after.etag != before.etag
            assert after.body != before.body


class TestBackendParityWithCache:
    @pytest.mark.parametrize("backend_kind", store_backend_matrix("memory", "sqlite"))
    def test_cached_bodies_byte_identical_across_backends(
        self, release, policy, tmp_path, backend_kind
    ):
        """With the response cache on, a directory-backed server and a
        server on any other backend still serve byte-identical bodies
        (their ETags differ — fingerprints are backend-specific — but the
        canonical bytes cannot)."""
        directory_store = ReleaseStore(tmp_path / "store")
        other_store = make_release_store(backend_kind, tmp_path)
        key = directory_store.save(release)
        assert other_store.save(release) == key
        with ReleaseServer(directory_store, policy, port=0) as on_disk:
            with ReleaseServer(other_store, policy, port=0) as other:
                for path in (
                    f"/releases/{key}",
                    f"/releases/{key}/views/analyst",
                    f"/releases/{key}/views/public",
                ):
                    for _ in range(2):  # cold then cached
                        body_a = http_get_response(on_disk.url + path).body
                        body_b = http_get_response(other.url + path).body
                        assert body_a == body_b, path

    def test_cached_body_matches_cache_disabled_body(self, release, policy, tmp_path):
        """The cache must be invisible in the bytes: a caching server and a
        cache-disabled server serialise the same stored release identically."""
        store = ReleaseStore(tmp_path / "store")
        key = store.save(release)
        path = f"/releases/{key}/views/public"
        with ReleaseServer(store, policy, port=0) as caching:
            with ReleaseServer(
                store, policy, port=0, response_cache_size=0
            ) as uncached:
                cached_body = http_get_response(caching.url + path).body
                plain = http_get_response(uncached.url + path)
                assert cached_body == plain.body
                assert plain.etag is None  # no cache, no ETag support


class TestGzipNegotiation:
    def _raw_get(self, server, path, accept_encoding):
        connection = http.client.HTTPConnection(server.host, server.port)
        try:
            headers = {}
            if accept_encoding is not None:
                headers["Accept-Encoding"] = accept_encoding
            connection.request("GET", path, headers=headers)
            response = connection.getresponse()
            return SimpleNamespace(
                status=response.status,
                body=response.read(),
                encoding=response.getheader("Content-Encoding"),
                vary=response.getheader("Vary"),
            )
        finally:
            connection.close()

    def test_gzip_negotiated_and_decodes_to_identity_bytes(self, served):
        path = f"/releases/{served.key}/views/public"
        plain = self._raw_get(served.server, path, "identity")
        zipped = self._raw_get(served.server, path, "gzip")
        assert plain.encoding is None
        assert zipped.encoding == "gzip"
        assert gzip.decompress(zipped.body) == plain.body
        assert len(zipped.body) < len(plain.body)
        assert plain.vary == zipped.vary == "Accept-Encoding"
        assert served.server.stats.gzip_responses >= 1

    def test_accept_encoding_q_values(self, served):
        path = f"/releases/{served.key}/views/public"
        assert self._raw_get(served.server, path, "gzip;q=0").encoding is None
        assert self._raw_get(served.server, path, "gzip;q=0.5").encoding == "gzip"
        assert self._raw_get(served.server, path, "*").encoding == "gzip"
        assert self._raw_get(served.server, path, "*;q=0").encoding is None
        assert self._raw_get(served.server, path, "br").encoding is None
        assert self._raw_get(served.server, path, None).encoding is None

    def test_gzip_disabled_server_always_serves_identity(
        self, release, policy, tmp_path
    ):
        store = ReleaseStore(tmp_path / "store")
        key = store.save(release)
        with ReleaseServer(store, policy, port=0, gzip_enabled=False) as server:
            response = self._raw_get(server, f"/releases/{key}/views/public", "gzip")
            assert response.encoding is None
            json.loads(response.body)  # identity bytes, parseable as-is
            # ETag/304 revalidation still works without gzip.
            url = f"{server.url}/releases/{key}/views/public"
            etag = http_get_response(url).etag
            assert etag is not None
            assert http_get_response(url, etag=etag).status == 304


class TestZeroWorkWhenWarm:
    """The acceptance criterion: a warm cached GET does zero JSON
    serialisation and zero store reads — only a fingerprint check."""

    @pytest.mark.parametrize("backend_kind", store_backend_matrix())
    def test_warm_cached_get_reads_nothing_and_serialises_nothing(
        self, release, policy, tmp_path, monkeypatch, backend_kind
    ):
        from repro.core.sqlite_backend import SqliteBackend
        from repro.core.store import DirectoryBackend
        from repro.serving import server as server_module

        if backend_kind == "directory":
            inner = DirectoryBackend(tmp_path / "store")
        elif backend_kind == "sqlite":
            inner = SqliteBackend(tmp_path / "store.db")
        else:
            inner = MemoryBackend()
        backend = FaultInjectingBackend(inner)
        # cache_size=0: every uncached view request would hit the backend,
        # so a flat call count below is attributable to the response cache.
        store = ReleaseStore(backend, cache_size=0)
        key = store.save(release)

        serialisations = {"count": 0}
        real_canonical_json = server_module.canonical_json

        def counting_canonical_json(payload):
            serialisations["count"] += 1
            return real_canonical_json(payload)

        monkeypatch.setattr(server_module, "canonical_json", counting_canonical_json)

        with ReleaseServer(store, policy, port=0) as server:
            url = f"{server.url}/releases/{key}/views/public"
            first = http_get_response(url)
            assert first.status == 200

            warm_reads = dict(backend.calls)
            warm_serialisations = serialisations["count"]
            assert warm_serialisations >= 1  # the cold request did serialise

            for _ in range(3):
                assert http_get_response(url).status == 200
            for _ in range(3):
                assert http_get_response(url, etag=first.etag).status == 304

            assert serialisations["count"] == warm_serialisations
            assert backend.calls.get("get_document", 0) == warm_reads.get(
                "get_document", 0
            )
            assert backend.calls.get("get_answers", 0) == warm_reads.get(
                "get_answers", 0
            )
            # The freshness check is the only backend traffic left.
            assert backend.calls["fingerprint"] > warm_reads["fingerprint"]

    def test_cache_disabled_server_serialises_every_request(
        self, release, policy, monkeypatch
    ):
        from repro.serving import server as server_module

        backend = FaultInjectingBackend(MemoryBackend())
        store = ReleaseStore(backend, cache_size=0)
        key = store.save(release)
        with ReleaseServer(store, policy, port=0, response_cache_size=0) as server:
            url = f"{server.url}/releases/{key}/views/public"
            http_get(url)
            reads_after_one = backend.calls["get_document"]
            http_get(url)
            assert backend.calls["get_document"] == reads_after_one + 1


class TestHealthzCacheCounters:
    def test_healthz_surfaces_cache_and_stats_counters(self, served):
        url = f"{served.server.url}/releases/{served.key}/views/public"
        first = http_get_response(url)  # miss + fill
        http_get_response(url)  # hit (gzip variant)
        http_get_response(url, etag=first.etag)  # 304

        health = fetch_json(served.server.url, "/healthz")
        cache = health["response_cache"]
        assert cache["enabled"] is True
        assert cache["gzip"] is True
        assert cache["entries"] >= 1
        assert cache["hits"] >= 1
        assert cache["misses"] >= 1
        fault_tolerance = health["fault_tolerance"]
        assert fault_tolerance["etag_hits"] >= 1
        assert fault_tolerance["gzip_responses"] >= 1
        assert "cache_invalidations" in fault_tolerance

    def test_healthz_response_cache_counters_add_up(
        self, release, other_release, policy, tmp_path
    ):
        """Through a real request mix — cold fill, warm hits, a 304, and an
        invalidate-and-rebuild after a republish — the ``/healthz`` numbers
        must satisfy ``hits + misses == lookups``."""
        store = ReleaseStore(tmp_path / "store", cache_size=8)
        key = store.save(release)
        with ReleaseServer(store, policy, port=0) as server:
            url = f"{server.url}/releases/{key}/views/public"
            first = http_get_response(url)  # miss + fill
            http_get_response(url)  # hit
            http_get_response(url, etag=first.etag)  # 304 off the cached entry
            store.save(other_release, key=key)  # republish behind the server
            http_get_response(url)  # invalidation + single miss + rebuild
            cache = fetch_json(server.url, "/healthz")["response_cache"]
            assert cache["hits"] + cache["misses"] == cache["lookups"]
            assert cache["invalidations"] >= 1
            assert cache["misses"] >= 2

    def test_healthz_reports_disabled_cache(self, release, policy):
        store = ReleaseStore.in_memory()
        store.save(release)
        with ReleaseServer(store, policy, port=0, response_cache_size=0) as server:
            cache = fetch_json(server.url, "/healthz")["response_cache"]
            assert cache["enabled"] is False
            assert "hits" not in cache

    def test_negative_response_cache_size_rejected(self, release, policy):
        store = ReleaseStore.in_memory()
        with pytest.raises(ValidationError):
            ReleaseServer(store, policy, port=0, response_cache_size=-1)


def _canned_server(status, body, headers):
    """A one-trick HTTP server answering every GET with canned bytes."""
    from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer

    class Canned(BaseHTTPRequestHandler):
        def log_message(self, *args):
            pass

        def do_GET(self):
            self.send_response(status)
            for name, value in headers:
                self.send_header(name, value)
            self.send_header("Content-Length", str(len(body)))
            self.end_headers()
            self.wfile.write(body)

    httpd = ThreadingHTTPServer(("127.0.0.1", 0), Canned)
    thread = threading.Thread(target=httpd.serve_forever, daemon=True)
    thread.start()
    return httpd, thread, f"http://127.0.0.1:{httpd.server_address[1]}"


class TestClientDecoding:
    """Satellite (a): the stdlib client decodes gzip, rejects unknown
    encodings, and bounds body size on the wire and after decompression."""

    def test_http_get_transparently_decodes_gzip(self, served):
        url = f"{served.server.url}/releases/{served.key}/views/public"
        status, body = http_get(url)  # default accept_gzip=True
        assert status == 200
        payload = json.loads(body)  # identity bytes, whatever the transfer
        assert payload["role"] == "public"

    def test_unknown_content_encoding_raises(self):
        httpd, thread, url = _canned_server(
            200, b"\x00\x01\x02", [("Content-Encoding", "br")]
        )
        try:
            with pytest.raises(ServingError, match="Content-Encoding"):
                http_get(f"{url}/x")
        finally:
            httpd.shutdown()
            thread.join()
            httpd.server_close()

    def test_wire_cap_rejects_oversized_identity_bodies(self):
        httpd, thread, url = _canned_server(200, b"x" * 100_000, [])
        try:
            with pytest.raises(ServingError, match="max_body_bytes"):
                http_get(f"{url}/x", max_body_bytes=1_000)
        finally:
            httpd.shutdown()
            thread.join()
            httpd.server_close()

    def test_decompression_cap_rejects_gzip_bombs(self):
        bomb = gzip.compress(b"\x00" * 5_000_000, mtime=0)  # ~5 KB on the wire
        httpd, thread, url = _canned_server(
            200, bomb, [("Content-Encoding", "gzip")]
        )
        try:
            with pytest.raises(ServingError, match="max_body_bytes"):
                http_get(f"{url}/x", max_body_bytes=100_000)
        finally:
            httpd.shutdown()
            thread.join()
            httpd.server_close()

    def test_corrupt_gzip_body_raises(self):
        httpd, thread, url = _canned_server(
            200, b"not gzip at all", [("Content-Encoding", "gzip")]
        )
        try:
            with pytest.raises(ServingError, match="gzip"):
                http_get(f"{url}/x")
        finally:
            httpd.shutdown()
            thread.join()
            httpd.server_close()

    def test_served_response_carries_lowercased_headers(self, served):
        response = http_get_response(served.server.url + "/healthz")
        assert "content-type" in response.headers
        assert response.headers["content-type"].startswith("application/json")
