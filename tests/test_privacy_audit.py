"""Tests for the empirical privacy audit harness."""

import numpy as np
import pytest

from repro.exceptions import ValidationError
from repro.mechanisms.calibration import gaussian_sigma, laplace_scale
from repro.privacy.audit import audit_count_release, audit_scalar_mechanism


class TestAuditCountRelease:
    def test_correctly_calibrated_laplace_passes(self):
        epsilon, sensitivity = 1.0, 10.0
        result = audit_count_release(
            noise_scale=laplace_scale(epsilon, sensitivity),
            sensitivity=sensitivity,
            claimed_epsilon=epsilon,
            kind="laplace",
            num_trials=30_000,
            rng=0,
        )
        assert result.consistent

    def test_correctly_calibrated_gaussian_passes(self):
        epsilon, delta, sensitivity = 0.8, 1e-5, 50.0
        result = audit_count_release(
            noise_scale=gaussian_sigma(epsilon, delta, sensitivity),
            sensitivity=sensitivity,
            claimed_epsilon=epsilon,
            claimed_delta=delta,
            kind="gaussian",
            num_trials=30_000,
            rng=1,
        )
        assert result.consistent

    def test_undercalibrated_noise_is_flagged(self):
        # Noise calibrated to sensitivity 1 while the adjacent answers differ
        # by 50 (a group-privacy calibration bug): the audit must notice.
        epsilon = 0.5
        result = audit_count_release(
            noise_scale=laplace_scale(epsilon, 1.0),
            sensitivity=50.0,
            claimed_epsilon=epsilon,
            kind="laplace",
            num_trials=20_000,
            rng=2,
        )
        assert not result.consistent
        assert result.observed_epsilon > epsilon

    def test_invalid_kind_rejected(self):
        with pytest.raises(ValidationError):
            audit_count_release(1.0, 1.0, 1.0, kind="uniform")

    def test_result_to_dict(self):
        result = audit_count_release(
            noise_scale=10.0, sensitivity=1.0, claimed_epsilon=1.0, kind="laplace", num_trials=2_000, rng=3
        )
        data = result.to_dict()
        assert set(data) >= {"claimed_epsilon", "observed_epsilon", "consistent"}


class TestAuditScalarMechanism:
    def test_constant_mechanism_has_zero_loss(self):
        result = audit_scalar_mechanism(
            lambda value, rng: 42.0, 0.0, 100.0, claimed_epsilon=0.1, num_trials=500, rng=0
        )
        assert result.observed_epsilon == 0.0
        assert result.consistent

    def test_identity_mechanism_is_flagged(self):
        # Releasing the exact answer is infinitely revealing; the audit sees a
        # large loss (bounded by the histogram resolution, but clearly above the claim).
        result = audit_scalar_mechanism(
            lambda value, rng: value + float(rng.normal(0, 1e-6)),
            0.0,
            100.0,
            claimed_epsilon=0.5,
            num_trials=4_000,
            num_bins=10,
            rng=1,
        )
        assert not result.consistent

    def test_invalid_parameters(self):
        with pytest.raises(ValidationError):
            audit_scalar_mechanism(lambda v, r: v, 0.0, 1.0, claimed_epsilon=1.0, claimed_delta=1.0)
        with pytest.raises(Exception):
            audit_scalar_mechanism(lambda v, r: v, 0.0, 1.0, claimed_epsilon=0.0)

    def test_pipeline_release_survives_audit(self, dblp_graph, dblp_hierarchy):
        """Defence in depth: audit the actual pipeline calibration at one level."""
        from repro.core.config import DisclosureConfig
        from repro.core.discloser import MultiLevelDiscloser
        from repro.grouping.specialization import SpecializationConfig

        config = DisclosureConfig(epsilon_g=0.8, specialization=SpecializationConfig(num_levels=5))
        release = MultiLevelDiscloser(config=config, rng=5).disclose(dblp_graph, hierarchy=dblp_hierarchy)
        level_release = release.level(2)
        result = audit_count_release(
            noise_scale=level_release.noise_scale,
            sensitivity=level_release.sensitivity,
            claimed_epsilon=level_release.guarantee.epsilon,
            claimed_delta=level_release.guarantee.delta,
            kind="gaussian",
            num_trials=20_000,
            rng=6,
        )
        assert result.consistent
