"""Tests for privacy guarantee records."""

import math

import pytest

from repro.exceptions import InvalidPrivacyParameterError
from repro.privacy.guarantees import (
    GroupPrivacyGuarantee,
    IndividualPrivacyGuarantee,
    PrivacyGuarantee,
    PrivacyUnit,
)


class TestPrivacyGuarantee:
    def test_construction_and_flags(self):
        g = PrivacyGuarantee(epsilon=0.5, delta=1e-5)
        assert g.is_private()
        assert not g.is_pure()
        assert PrivacyGuarantee(epsilon=0.5).is_pure()

    def test_infinite_epsilon_means_non_private(self):
        assert not PrivacyGuarantee(epsilon=math.inf).is_private()

    def test_invalid_epsilon(self):
        with pytest.raises(InvalidPrivacyParameterError):
            PrivacyGuarantee(epsilon=-1.0)
        with pytest.raises(InvalidPrivacyParameterError):
            PrivacyGuarantee(epsilon="strong")

    def test_invalid_delta(self):
        with pytest.raises(InvalidPrivacyParameterError):
            PrivacyGuarantee(epsilon=1.0, delta=2.0)
        with pytest.raises(InvalidPrivacyParameterError):
            PrivacyGuarantee(epsilon=1.0, delta=-0.1)

    def test_stronger_than(self):
        strong = PrivacyGuarantee(epsilon=0.1, delta=1e-7)
        weak = PrivacyGuarantee(epsilon=1.0, delta=1e-5)
        assert strong.stronger_than(weak)
        assert not weak.stronger_than(strong)

    def test_unit_coercion_from_string(self):
        g = PrivacyGuarantee(epsilon=1.0, unit="group")
        assert g.unit is PrivacyUnit.GROUP

    def test_dict_round_trip(self):
        g = PrivacyGuarantee(epsilon=0.3, delta=1e-6, unit=PrivacyUnit.NODE, description="d")
        back = PrivacyGuarantee.from_dict(g.to_dict())
        assert back == g


class TestSubclasses:
    def test_individual_guarantee_default_unit(self):
        assert IndividualPrivacyGuarantee(epsilon=1.0).unit is PrivacyUnit.ASSOCIATION

    def test_group_guarantee_extra_fields(self):
        g = GroupPrivacyGuarantee(epsilon=0.5, level=3, num_groups=16, max_group_size=100)
        assert g.unit is PrivacyUnit.GROUP
        data = g.to_dict()
        assert data["level"] == 3
        assert data["num_groups"] == 16
        assert data["max_group_size"] == 100

    def test_group_guarantee_dict_round_trip(self):
        g = GroupPrivacyGuarantee(epsilon=0.5, delta=1e-5, level=2, num_groups=4, max_group_size=9)
        back = GroupPrivacyGuarantee.from_dict(g.to_dict())
        assert back == g

    def test_group_guarantee_level_validation_is_not_enforced_here(self):
        # Levels are validated by the hierarchy, not the guarantee record.
        assert GroupPrivacyGuarantee(epsilon=1.0, level=None).level is None
