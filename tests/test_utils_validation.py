"""Tests for repro.utils.validation."""

import math

import pytest

from repro.exceptions import ValidationError
from repro.utils.validation import (
    check_fraction,
    check_non_negative,
    check_positive,
    check_positive_int,
    check_probability,
    check_type,
)


class TestCheckPositive:
    def test_accepts_positive_float(self):
        assert check_positive(0.5, "x") == 0.5

    def test_accepts_positive_int(self):
        assert check_positive(3, "x") == 3.0

    def test_rejects_zero(self):
        with pytest.raises(ValidationError, match="x"):
            check_positive(0, "x")

    def test_rejects_negative(self):
        with pytest.raises(ValidationError):
            check_positive(-1.0, "x")

    def test_rejects_nan(self):
        with pytest.raises(ValidationError):
            check_positive(math.nan, "x")

    def test_rejects_inf(self):
        with pytest.raises(ValidationError):
            check_positive(math.inf, "x")

    def test_rejects_string(self):
        with pytest.raises(ValidationError):
            check_positive("1", "x")

    def test_rejects_bool(self):
        with pytest.raises(ValidationError):
            check_positive(True, "x")


class TestCheckNonNegative:
    def test_accepts_zero(self):
        assert check_non_negative(0, "x") == 0.0

    def test_accepts_positive(self):
        assert check_non_negative(2.5, "x") == 2.5

    def test_rejects_negative(self):
        with pytest.raises(ValidationError):
            check_non_negative(-0.1, "x")


class TestCheckPositiveInt:
    def test_accepts_int(self):
        assert check_positive_int(4, "n") == 4

    def test_rejects_zero(self):
        with pytest.raises(ValidationError):
            check_positive_int(0, "n")

    def test_rejects_float(self):
        with pytest.raises(ValidationError):
            check_positive_int(2.0, "n")

    def test_rejects_bool(self):
        with pytest.raises(ValidationError):
            check_positive_int(True, "n")


class TestCheckProbability:
    def test_accepts_bounds(self):
        assert check_probability(0.0, "p") == 0.0
        assert check_probability(1.0, "p") == 1.0

    def test_rejects_above_one(self):
        with pytest.raises(ValidationError):
            check_probability(1.1, "p")

    def test_rejects_negative(self):
        with pytest.raises(ValidationError):
            check_probability(-0.2, "p")


class TestCheckFraction:
    def test_accepts_interior_value(self):
        assert check_fraction(0.3, "f") == 0.3

    def test_rejects_zero_and_one(self):
        with pytest.raises(ValidationError):
            check_fraction(0.0, "f")
        with pytest.raises(ValidationError):
            check_fraction(1.0, "f")


class TestCheckType:
    def test_accepts_matching_type(self):
        assert check_type("abc", str, "s") == "abc"

    def test_accepts_tuple_of_types(self):
        assert check_type(5, (int, float), "n") == 5

    def test_rejects_wrong_type(self):
        with pytest.raises(ValidationError, match="s must be of type str"):
            check_type(1, str, "s")
