"""Tests for the compiled :class:`GraphArrays` view and its cache invalidation.

The stale-cache hazard is the critical property here: a compiled view must
never be served after the graph mutates.  Every structural mutation bumps
``BipartiteGraph.revision`` and drops the cached view, so ``graph.arrays()``
recompiles and ``graph.cached_arrays()`` returns ``None`` until it does.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.graphs.arrays import GraphArrays
from repro.graphs.bipartite import BipartiteGraph, Side
from repro.grouping.partition import Partition


def test_compile_layout(tiny_graph):
    arrays = GraphArrays.compile(tiny_graph)
    assert arrays.num_left == 4 and arrays.num_right == 4
    assert arrays.num_nodes == 8 and arrays.num_edges == 5
    # CSR row pointers cover every left node; degrees agree with the graph.
    assert arrays.left_indptr.shape == (5,)
    assert int(arrays.left_indptr[-1]) == 5
    for node in tiny_graph.left_nodes():
        assert int(arrays.left_degrees[arrays.left_index[node]]) == tiny_graph.degree(node)
    for node in tiny_graph.right_nodes():
        assert int(arrays.right_degrees[arrays.right_index[node]]) == tiny_graph.degree(node)
    # Edge arrays reproduce the adjacency exactly.
    edges = {
        (arrays.left_ids[i], arrays.right_ids[j])
        for i, j in zip(arrays.edge_left.tolist(), arrays.edge_right.tolist())
    }
    assert edges == set(tiny_graph.associations())


def test_neighbor_slice_is_sorted(tiny_graph):
    arrays = tiny_graph.arrays()
    for node in tiny_graph.left_nodes():
        cols = arrays.neighbor_slice(arrays.left_index[node])
        assert list(cols) == sorted(cols.tolist())
        neighbours = {arrays.right_ids[j] for j in cols.tolist()}
        assert neighbours == tiny_graph.neighbors(node)


def test_empty_graph_compiles():
    graph = BipartiteGraph(name="empty")
    arrays = graph.arrays()
    assert arrays.num_nodes == 0 and arrays.num_edges == 0
    assert arrays.degrees.size == 0


def test_arrays_are_read_only(tiny_graph):
    arrays = tiny_graph.arrays()
    with pytest.raises(ValueError):
        arrays.edge_left[0] = 99
    with pytest.raises(ValueError):
        arrays.degrees[0] = 99


def test_arrays_cached_until_mutation(tiny_graph):
    first = tiny_graph.arrays()
    assert tiny_graph.arrays() is first  # cache hit, no recompile
    assert tiny_graph.cached_arrays() is first
    assert first.is_fresh(tiny_graph)


@pytest.mark.parametrize(
    "mutate",
    [
        pytest.param(lambda g: g.add_left_node("newbie"), id="add_node"),
        pytest.param(lambda g: g.remove_node("bob"), id="remove_node"),
        pytest.param(lambda g: g.add_association("carol", "statin"), id="add_association"),
        pytest.param(lambda g: g.remove_association("bob", "insulin"), id="remove_association"),
        pytest.param(lambda g: g.remove_nodes(["bob", "insulin"]), id="remove_nodes"),
    ],
)
def test_mutation_never_serves_stale_arrays(tiny_graph, mutate):
    stale = tiny_graph.arrays()
    revision = tiny_graph.revision
    mutate(tiny_graph)
    assert tiny_graph.revision > revision
    assert not stale.is_fresh(tiny_graph)
    assert tiny_graph.cached_arrays() is None
    fresh = tiny_graph.arrays()
    assert fresh is not stale
    assert fresh.num_edges == tiny_graph.num_associations()
    assert fresh.num_nodes == tiny_graph.num_nodes()


def test_noop_mutations_keep_cache(tiny_graph):
    arrays = tiny_graph.arrays()
    # Re-adding an existing association / node attribute merge is structural
    # no-op and must not invalidate the compiled view.
    assert tiny_graph.add_association("bob", "insulin") is False
    tiny_graph.add_left_node("bob", specialty="endocrinology")
    assert tiny_graph.cached_arrays() is arrays


def test_copy_does_not_share_cache(tiny_graph):
    original = tiny_graph.arrays()
    clone = tiny_graph.copy()
    clone.add_association("carol", "aspirin")
    assert tiny_graph.cached_arrays() is original
    assert clone.arrays().num_edges == original.num_edges + 1


def test_partition_codes_and_kernels(tiny_graph, tiny_partition):
    arrays = tiny_graph.arrays()
    codes = arrays.partition_codes(tiny_partition)
    assert codes.shape == (arrays.num_nodes,)
    # Memoised per (partition, scope).
    assert arrays.partition_codes(tiny_partition) is codes
    # buyers/drugs split puts every edge across groups: no induced edges,
    # every edge incident to both groups.
    induced = arrays.induced_counts(tiny_partition)
    assert induced.tolist() == [0, 0]
    incident = arrays.incident_counts(tiny_partition)
    assert incident.tolist() == [5, 5]


def test_degree_mass_ignores_absent_nodes(tiny_graph):
    arrays = tiny_graph.arrays()
    assert arrays.degree_mass(["bob", "ghost"]) == tiny_graph.degree("bob")
    assert arrays.degree_mass([]) == 0


def test_degrees_aligned_pads_absent_and_handles_empty_graph(tiny_graph):
    arrays = tiny_graph.arrays()
    aligned = arrays.degrees_aligned(["ghost", "bob", "erin"])
    assert aligned.tolist() == [0, tiny_graph.degree("bob"), 0]
    # An empty graph must not crash on a non-empty node list (the -1
    # sentinel used to index into a size-0 degree vector).
    empty_arrays = BipartiteGraph(name="void").arrays()
    assert empty_arrays.degrees_aligned(["ghost"]).tolist() == [0]
    assert empty_arrays.degrees_aligned([]).size == 0


def test_cross_group_matrix_matches_manual_count(tiny_graph):
    arrays = tiny_graph.arrays()
    left = Partition.from_mapping({"bc": ["bob", "carol"], "de": ["dave", "erin"]})
    right = Partition.from_mapping({"ia": ["insulin", "aspirin"], "sz": ["statin", "zoloft"]})
    matrix = arrays.cross_group_matrix(left, right)
    assert matrix.tolist() == [[3.0, 0.0], [1.0, 1.0]]


def test_degree_histogram_kernel(tiny_graph):
    arrays = tiny_graph.arrays()
    histogram = arrays.degree_histogram(Side.LEFT, max_degree=1)
    # degrees: bob=2 (clamped to 1), carol=1, dave=2 (clamped), erin=0.
    assert histogram.tolist() == [1, 3]
