"""Tests for privacy budgets and ledgers."""

import pytest

from repro.accounting.budget import BudgetLedger, PrivacyBudget
from repro.exceptions import BudgetExceededError, InvalidPrivacyParameterError
from repro.mechanisms.base import PrivacyCost


class TestPrivacyBudget:
    def test_construction(self):
        budget = PrivacyBudget(epsilon=1.0, delta=1e-5)
        assert budget.epsilon == 1.0
        assert budget.delta == 1e-5

    def test_invalid_epsilon(self):
        with pytest.raises(InvalidPrivacyParameterError):
            PrivacyBudget(epsilon=0.0)
        with pytest.raises(InvalidPrivacyParameterError):
            PrivacyBudget(epsilon=-1.0)

    def test_invalid_delta(self):
        with pytest.raises(InvalidPrivacyParameterError):
            PrivacyBudget(epsilon=1.0, delta=1.2)

    def test_split_fractions(self):
        parts = PrivacyBudget(epsilon=1.0, delta=1e-4).split([0.25, 0.75])
        assert parts[0].epsilon == pytest.approx(0.25)
        assert parts[1].epsilon == pytest.approx(0.75)
        assert parts[0].delta == pytest.approx(2.5e-5)

    def test_split_rejects_oversubscription(self):
        with pytest.raises(InvalidPrivacyParameterError):
            PrivacyBudget(epsilon=1.0).split([0.7, 0.7])

    def test_split_rejects_nonpositive_fraction(self):
        with pytest.raises(InvalidPrivacyParameterError):
            PrivacyBudget(epsilon=1.0).split([0.5, 0.0])

    def test_to_dict(self):
        assert PrivacyBudget(2.0, 1e-6).to_dict() == {"epsilon": 2.0, "delta": 1e-6}


class TestBudgetLedger:
    def test_unlimited_ledger_records_spends(self):
        ledger = BudgetLedger()
        ledger.charge(PrivacyCost(0.5), label="a")
        ledger.charge(PrivacyCost(0.7, 1e-5), label="b")
        assert len(ledger) == 2
        assert ledger.spent().epsilon == pytest.approx(1.2)
        assert ledger.remaining() is None

    def test_limited_ledger_tracks_remaining(self):
        ledger = BudgetLedger(PrivacyBudget(1.0, 1e-4))
        ledger.charge(PrivacyCost(0.4, 1e-5))
        remaining = ledger.remaining()
        assert remaining.epsilon == pytest.approx(0.6)
        assert remaining.delta == pytest.approx(9e-5)

    def test_overspend_raises(self):
        ledger = BudgetLedger(PrivacyBudget(1.0))
        ledger.charge(PrivacyCost(0.9))
        with pytest.raises(BudgetExceededError):
            ledger.charge(PrivacyCost(0.2))

    def test_delta_overspend_raises(self):
        ledger = BudgetLedger(PrivacyBudget(10.0, 1e-6))
        with pytest.raises(BudgetExceededError):
            ledger.charge(PrivacyCost(0.1, 1e-5))

    def test_can_spend(self):
        ledger = BudgetLedger(PrivacyBudget(1.0))
        assert ledger.can_spend(PrivacyCost(1.0))
        assert not ledger.can_spend(PrivacyCost(1.01))

    def test_exact_spend_allowed(self):
        ledger = BudgetLedger(PrivacyBudget(1.0))
        ledger.charge(PrivacyCost(0.5))
        ledger.charge(PrivacyCost(0.5))
        assert ledger.remaining().epsilon == pytest.approx(0.0)

    def test_entries_preserve_labels(self):
        ledger = BudgetLedger()
        ledger.charge(PrivacyCost(0.1), label="specialization")
        assert ledger.entries()[0].label == "specialization"

    def test_to_dict(self):
        ledger = BudgetLedger(PrivacyBudget(1.0))
        ledger.charge(PrivacyCost(0.25), label="x")
        data = ledger.to_dict()
        assert data["budget"]["epsilon"] == 1.0
        assert data["entries"][0]["label"] == "x"
        assert data["spent"]["epsilon"] == 0.25


class TestPrivacyCostArithmetic:
    def test_addition(self):
        total = PrivacyCost(0.5, 1e-5) + PrivacyCost(0.25, 1e-5)
        assert total.epsilon == pytest.approx(0.75)
        assert total.delta == pytest.approx(2e-5)

    def test_scaled(self):
        cost = PrivacyCost(0.2, 1e-6).scaled(5)
        assert cost.epsilon == pytest.approx(1.0)
        assert cost.delta == pytest.approx(5e-6)

    def test_scaled_rejects_negative(self):
        with pytest.raises(ValueError):
            PrivacyCost(0.1).scaled(-1)

    def test_delta_capped_on_addition(self):
        total = PrivacyCost(1.0, 0.9) + PrivacyCost(1.0, 0.9)
        assert total.delta == 1.0

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            PrivacyCost(-0.1)
        with pytest.raises(ValueError):
            PrivacyCost(0.1, 1.5)
