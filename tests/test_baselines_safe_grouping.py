"""Tests for the safe-grouping baseline."""

import pytest

from repro.baselines.safe_grouping import SafeGroupingDiscloser
from repro.exceptions import GroupingError
from repro.graphs.bipartite import BipartiteGraph


class TestSafeGroupingDiscloser:
    def test_release_covers_both_sides(self, dblp_graph):
        release = SafeGroupingDiscloser(k=3, rng=0).disclose(dblp_graph)
        assert release.left_partition.universe() == frozenset(dblp_graph.left_nodes())
        assert release.right_partition.universe() == frozenset(dblp_graph.right_nodes())

    def test_total_associations_exact(self, dblp_graph):
        release = SafeGroupingDiscloser(k=3, rng=0).disclose(dblp_graph)
        assert release.total_associations() == dblp_graph.num_associations()

    def test_group_pair_counts_consistent(self, tiny_graph):
        release = SafeGroupingDiscloser(k=2, rng=1).disclose(tiny_graph)
        assert sum(release.group_pair_counts.values()) == 5
        left_id = release.left_partition.group_of("bob").group_id
        right_id = release.right_partition.group_of("insulin").group_id
        assert release.count_between(left_id, right_id) >= 1
        assert release.count_between("SGL999", "SGR999") == 0

    def test_group_sizes_respect_k_on_large_graphs(self, dblp_graph):
        k = 4
        release = SafeGroupingDiscloser(k=k, rng=0).disclose(dblp_graph)
        sizes = list(release.left_partition.sizes().values())
        # Greedy construction targets n/k groups; the average size is >= k.
        assert sum(sizes) / len(sizes) >= k - 1

    def test_safety_violations_reported(self, dblp_graph):
        discloser = SafeGroupingDiscloser(k=3, rng=0)
        release = discloser.disclose(dblp_graph)
        violations = SafeGroupingDiscloser.safety_violations(dblp_graph, release)
        assert violations >= 0
        # Safety violations must be far fewer than the number of within-group pairs.
        total_pairs = sum(
            len(group) * (len(group) - 1) // 2
            for partition in (release.left_partition, release.right_partition)
            for group in partition.groups()
        )
        assert violations < total_pairs

    def test_empty_graph_rejected(self):
        with pytest.raises(GroupingError):
            SafeGroupingDiscloser().disclose(BipartiteGraph())

    def test_seeded_reproducibility(self, tiny_graph):
        a = SafeGroupingDiscloser(k=2, rng=5).disclose(tiny_graph)
        b = SafeGroupingDiscloser(k=2, rng=5).disclose(tiny_graph)
        assert a.group_pair_counts == b.group_pair_counts

    def test_to_dict(self, tiny_graph):
        release = SafeGroupingDiscloser(k=2, rng=5).disclose(tiny_graph)
        data = release.to_dict()
        assert data["k"] == 2
        assert len(data["group_pair_counts"]) == len(release.group_pair_counts)

    def test_invalid_k(self):
        with pytest.raises(Exception):
            SafeGroupingDiscloser(k=0)
