"""Tests for staleness tracking in the serving layer.

The contract: a served release is *stale* when the store holds a newer
same-dataset disclosure (the refresh path archives revision-qualified keys
and republishes the live alias).  Metadata responses carry the verdict,
``/healthz`` carries the store-wide summary, and a republish anywhere in the
store invalidates cached metadata bodies — including those of *sibling*
keys whose own bytes did not change.
"""

import pytest

from repro.accounting.budget import PrivacyBudget
from repro.core.access import AccessPolicy
from repro.core.config import DisclosureConfig
from repro.core.discloser import MultiLevelDiscloser
from repro.core.publisher import GraphPublisher
from repro.core.store import ReleaseStore
from repro.grouping.specialization import SpecializationConfig
from repro.serving import ReleaseServer, StalenessIndex, fetch_json


@pytest.fixture(scope="module")
def base_release(dblp_graph):
    config = DisclosureConfig(
        epsilon_g=0.5, specialization=SpecializationConfig(num_levels=4)
    )
    return MultiLevelDiscloser(config, rng=11).disclose(dblp_graph)


def save_at_revision(store, release, key, revision, affected=()):
    """Store a copy of ``release`` whose provenance claims ``revision``."""
    from repro.core.release import MultiLevelRelease

    clone = MultiLevelRelease.from_dict(release.to_dict())
    clone.provenance = dict(release.provenance)
    clone.provenance["graph_revision"] = revision
    if affected:
        clone.provenance["affected_levels"] = list(affected)
    return store.save(clone, key=key)


class TestStalenessIndex:
    def test_single_release_is_fresh(self, base_release, tmp_path):
        store = ReleaseStore(tmp_path)
        save_at_revision(store, base_release, "live", 10)
        verdict = StalenessIndex(store).staleness_for("live")
        assert verdict["stale"] is False
        assert verdict["graph_revision"] == 10
        assert verdict["latest_revision"] == 10
        assert verdict["revisions_behind"] == 0

    def test_newer_sibling_marks_release_stale(self, base_release, tmp_path):
        store = ReleaseStore(tmp_path)
        save_at_revision(store, base_release, "live", 10)
        save_at_revision(store, base_release, "live-r13", 13, affected=[1, 2])
        verdict = StalenessIndex(store).staleness_for("live")
        assert verdict["stale"] is True
        assert verdict["latest_revision"] == 13
        assert verdict["revisions_behind"] == 3
        assert verdict["affected_levels"] == 2

    def test_republish_clears_staleness(self, base_release, tmp_path):
        store = ReleaseStore(tmp_path)
        save_at_revision(store, base_release, "live", 10)
        save_at_revision(store, base_release, "live-r13", 13)
        index = StalenessIndex(store)
        assert index.staleness_for("live")["stale"] is True
        save_at_revision(store, base_release, "live", 13)
        assert index.staleness_for("live")["stale"] is False

    def test_different_datasets_do_not_interact(self, base_release, tmp_path):
        from repro.core.release import MultiLevelRelease

        store = ReleaseStore(tmp_path)
        save_at_revision(store, base_release, "live", 10)
        other = MultiLevelRelease.from_dict(base_release.to_dict())
        other.dataset_name = "another-dataset"
        other.provenance = {"graph_revision": 99}
        store.save(other, key="other")
        verdict = StalenessIndex(store).staleness_for("live")
        assert verdict["stale"] is False
        assert verdict["latest_revision"] == 10

    def test_release_without_provenance_is_unknown_not_stale(
        self, base_release, tmp_path
    ):
        from repro.core.release import MultiLevelRelease

        store = ReleaseStore(tmp_path)
        legacy = MultiLevelRelease.from_dict(base_release.to_dict())
        legacy.provenance = {}
        store.save(legacy, key="legacy")
        verdict = StalenessIndex(store).staleness_for("legacy")
        assert verdict["stale"] is False
        assert verdict["graph_revision"] is None

    def test_summary_counts_stale_keys(self, base_release, tmp_path):
        store = ReleaseStore(tmp_path)
        save_at_revision(store, base_release, "live", 10)
        save_at_revision(store, base_release, "live-r13", 13)
        summary = StalenessIndex(store).summary()
        assert summary["tracked"] == 2
        assert summary["stale"] == 1
        assert summary["stale_keys"] == ["live"]

    def test_token_changes_on_any_republish(self, base_release, tmp_path):
        store = ReleaseStore(tmp_path)
        save_at_revision(store, base_release, "live", 10)
        index = StalenessIndex(store)
        before = index.token()
        assert index.token() == before  # stable while the store is quiet
        save_at_revision(store, base_release, "live-r11", 11)
        assert index.token() != before

    def test_unchanged_artifacts_are_parsed_once(self, base_release, tmp_path):
        store = ReleaseStore(tmp_path)
        save_at_revision(store, base_release, "live", 10)
        index = StalenessIndex(store)
        index.staleness_for("live")
        loads = {"count": 0}
        original = store.load_document

        def counting_load(key):
            loads["count"] += 1
            return original(key)

        store.load_document = counting_load
        index.staleness_for("live")
        index.summary()
        assert loads["count"] == 0


class TestServedStaleness:
    @pytest.fixture
    def policy(self):
        return AccessPolicy({"public": 2}, top_level=4)

    def test_metadata_reports_fresh_then_stale_then_cleared(
        self, base_release, policy, tmp_path
    ):
        store = ReleaseStore(tmp_path)
        save_at_revision(store, base_release, "live", 10)
        with ReleaseServer(store, policy, port=0) as server:
            payload = fetch_json(server.url, "/releases/live")
            assert payload["staleness"]["stale"] is False
            assert payload["provenance"]["graph_revision"] == 10

            # A sibling republish (the refresh archive) makes the cached
            # metadata verdict stale even though `live`'s bytes are
            # untouched — the composed cache token must catch it.
            save_at_revision(store, base_release, "live-r13", 13)
            payload = fetch_json(server.url, "/releases/live")
            assert payload["staleness"]["stale"] is True
            assert payload["staleness"]["latest_revision"] == 13

            save_at_revision(store, base_release, "live", 13)
            payload = fetch_json(server.url, "/releases/live")
            assert payload["staleness"]["stale"] is False

    def test_healthz_reports_staleness_summary(self, base_release, policy, tmp_path):
        store = ReleaseStore(tmp_path)
        save_at_revision(store, base_release, "live", 10)
        with ReleaseServer(store, policy, port=0) as server:
            assert fetch_json(server.url, "/healthz")["staleness"] == {
                "tracked": 1,
                "stale": 0,
                "stale_keys": [],
            }
            save_at_revision(store, base_release, "live-r13", 13)
            summary = fetch_json(server.url, "/healthz")["staleness"]
            assert summary["stale"] == 1
            assert summary["stale_keys"] == ["live"]

    def test_publisher_refresh_clears_served_staleness(
        self, dblp_graph, policy, tmp_path
    ):
        """The full loop: publish, mutate, refresh — serving sees it clear."""
        graph = dblp_graph.copy()
        publisher = GraphPublisher(
            graph,
            total_budget=PrivacyBudget(epsilon=50.0, delta=1e-2),
            base_config=DisclosureConfig(
                epsilon_g=0.5, specialization=SpecializationConfig(num_levels=4)
            ),
            rng=7,
        )
        release = publisher.release()
        store = ReleaseStore(tmp_path)
        store.save(release, key="live")
        with ReleaseServer(store, policy, port=0) as server:
            assert fetch_json(server.url, "/releases/live")["staleness"]["stale"] is False

            left = next(iter(graph.left_nodes()))
            graph.add_right_node("breaking-news")
            graph.add_association(left, "breaking-news")
            result = publisher.refresh(release=release, store=store, key="live")

            payload = fetch_json(server.url, "/releases/live")
            assert payload["staleness"]["stale"] is False
            assert payload["provenance"]["graph_revision"] == graph.revision
            assert payload["provenance"]["affected_levels"] == result.affected_levels
            # The archive key is served too, and is equally fresh.
            archived = fetch_json(server.url, f"/releases/{result.store_key}")
            assert archived["staleness"]["stale"] is False
