"""Tests for the pluggable execution backends."""

import pytest

from repro.exceptions import ValidationError
from repro.execution import (
    EXECUTOR_NAMES,
    Executor,
    ProcessExecutor,
    SerialExecutor,
    ThreadExecutor,
    check_executor_name,
    default_max_workers,
    executor_name,
    executor_scope,
    make_executor,
)


def test_executor_name_resolves_specs():
    assert executor_name(None) == "serial"
    assert executor_name("process") == "process"
    assert executor_name(SerialExecutor()) == "serial"
    with ThreadExecutor(max_workers=1) as pool:
        assert executor_name(pool) == "thread"
    with pytest.raises(ValidationError):
        executor_name("gpu")


def _square(value):
    """Module-level so the process executor can pickle it."""
    return value * value


class TestSerialExecutor:
    def test_maps_in_order(self):
        assert SerialExecutor().map(_square, [1, 2, 3]) == [1, 4, 9]

    def test_empty_tasks(self):
        assert SerialExecutor().map(_square, []) == []

    def test_close_is_idempotent(self):
        executor = SerialExecutor()
        executor.close()
        executor.close()
        assert executor.map(_square, [2]) == [4]


@pytest.mark.parametrize("executor_cls", [ThreadExecutor, ProcessExecutor])
class TestPoolExecutors:
    def test_matches_serial_semantics(self, executor_cls):
        tasks = list(range(20))
        expected = SerialExecutor().map(_square, tasks)
        with executor_cls(max_workers=2) as executor:
            assert executor.map(_square, tasks) == expected

    def test_empty_and_single_task(self, executor_cls):
        with executor_cls(max_workers=2) as executor:
            assert executor.map(_square, []) == []
            assert executor.map(_square, [7]) == [49]

    def test_pool_is_lazy_and_closeable(self, executor_cls):
        executor = executor_cls(max_workers=2)
        assert executor._pool is None
        assert executor.map(_square, [1, 2, 3]) == [1, 4, 9]
        assert executor._pool is not None
        executor.close()
        assert executor._pool is None
        # Reusable after close: a fresh pool is created on demand.
        assert executor.map(_square, [4, 5]) == [16, 25]
        executor.close()

    def test_invalid_max_workers_rejected(self, executor_cls):
        with pytest.raises(ValidationError):
            executor_cls(max_workers=0)


def test_thread_single_task_skips_pool_dispatch():
    """Threads never pickle, so the inline single-task shortcut is safe."""
    with ThreadExecutor(max_workers=2) as executor:
        assert executor.map(_square, [7]) == [49]
        assert executor._pool is None


def test_process_enforces_picklability_even_for_one_task():
    """No inline shortcut: a non-picklable task must fail at n==1 exactly as
    it would at n==2, not succeed silently until the task count grows."""
    with ProcessExecutor(max_workers=2) as executor:
        with pytest.raises(Exception):  # PicklingError/AttributeError by backend
            executor.map(lambda value: value, [1])


class TestFactories:
    def test_default_max_workers_floor(self):
        assert default_max_workers() >= 1

    @pytest.mark.parametrize(
        "spec, expected",
        [
            (None, SerialExecutor),
            ("serial", SerialExecutor),
            ("thread", ThreadExecutor),
            ("process", ProcessExecutor),
        ],
    )
    def test_make_executor_by_name(self, spec, expected):
        executor = make_executor(spec, max_workers=2)
        try:
            assert isinstance(executor, expected)
            assert isinstance(executor, Executor)
        finally:
            executor.close()

    def test_make_executor_passes_instances_through(self):
        instance = SerialExecutor()
        assert make_executor(instance) is instance

    def test_unknown_name_rejected(self):
        with pytest.raises(ValidationError):
            make_executor("gpu")
        with pytest.raises(ValidationError):
            check_executor_name("gpu")

    def test_names_are_checkable(self):
        for name in EXECUTOR_NAMES:
            assert check_executor_name(name) == name


class TestExecutorScope:
    def test_scope_closes_pool_it_created(self):
        with executor_scope("thread", max_workers=2) as executor:
            assert executor.map(_square, [1, 2]) == [1, 4]
            assert executor._pool is not None
        assert executor._pool is None

    def test_scope_leaves_caller_owned_instance_open(self):
        owned = ThreadExecutor(max_workers=2)
        try:
            owned.map(_square, [1, 2])
            with executor_scope(owned) as executor:
                assert executor is owned
            # Still open: the caller owns the lifecycle.
            assert owned._pool is not None
            assert owned.map(_square, [3]) == [9]
        finally:
            owned.close()

    def test_scope_defaults_to_serial(self):
        with executor_scope(None) as executor:
            assert isinstance(executor, SerialExecutor)


def test_scope_closes_pool_on_exception_exit():
    """A failure inside the scope still closes the pool it created."""
    with pytest.raises(RuntimeError, match="boom"):
        with executor_scope("thread", max_workers=2) as executor:
            executor.map(_square, [1, 2])
            assert executor._pool is not None
            raise RuntimeError("boom")
    assert executor._pool is None
