"""Tests for the Figure 1 reproduction harness."""

import pytest

from repro.datasets.dblp_like import generate_dblp_like
from repro.evaluation.figure1 import (
    PAPER_EPSILONS,
    Figure1Config,
    build_figure1_hierarchy,
    level_sensitivities,
    run_figure1,
    run_figure1_analytic,
)
from repro.exceptions import EvaluationError


@pytest.fixture(scope="module")
def fig_graph():
    return generate_dblp_like(num_authors=400, seed=17)


@pytest.fixture(scope="module")
def fig_config():
    return Figure1Config(num_levels=6, num_trials=10, seed=17, epsilons=(0.1, 0.5, 1.0))


@pytest.fixture(scope="module")
def analytic_result(fig_graph, fig_config):
    return run_figure1_analytic(graph=fig_graph, config=fig_config)


class TestConfig:
    def test_paper_epsilons(self):
        assert PAPER_EPSILONS == (0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9, 1.0)

    def test_release_levels(self):
        assert Figure1Config(num_levels=9).release_levels() == list(range(8))

    def test_to_dict(self, fig_config):
        data = fig_config.to_dict()
        assert data["num_levels"] == 6
        assert data["epsilons"] == [0.1, 0.5, 1.0]


class TestAnalyticResult:
    def test_series_cover_all_levels(self, analytic_result):
        assert analytic_result.levels() == list(range(5))
        for level in analytic_result.levels():
            assert len(analytic_result.series_for(level)) == 3

    def test_rer_decreases_with_epsilon(self, analytic_result):
        for level in analytic_result.levels():
            series = analytic_result.series_for(level)
            assert series[0] > series[1] > series[2]

    def test_rer_increases_with_level(self, analytic_result):
        for index in range(3):
            values = [analytic_result.series_for(level)[index] for level in analytic_result.levels()]
            assert all(b >= a - 1e-12 for a, b in zip(values, values[1:]))

    def test_exact_inverse_scaling_in_epsilon(self, analytic_result):
        # Analytic expected RER scales exactly as 1/epsilon for Gaussian noise.
        for level in analytic_result.levels():
            series = analytic_result.series_for(level)
            assert series[0] == pytest.approx(10 * series[2], rel=1e-9)

    def test_rer_at_lookup(self, analytic_result):
        assert analytic_result.rer_at(0, 0.5) == analytic_result.series_for(0)[1]
        with pytest.raises(EvaluationError):
            analytic_result.rer_at(0, 0.77)
        with pytest.raises(EvaluationError):
            analytic_result.series_for(99)

    def test_information_level_names(self, analytic_result):
        assert analytic_result.information_level_name(3) == "I6,3"

    def test_rows_and_table(self, analytic_result):
        rows = analytic_result.as_rows()
        assert len(rows) == 5 * 3
        table = analytic_result.format_table()
        assert "I6,0" in table and "eps_g" in table

    def test_to_dict_round_trip_values(self, analytic_result):
        data = analytic_result.to_dict()
        assert data["true_count"] == analytic_result.true_count
        assert data["series"]["0"] == analytic_result.series_for(0)


class TestMonteCarloResult:
    def test_sampled_close_to_analytic(self, fig_graph, fig_config):
        analytic = run_figure1_analytic(graph=fig_graph, config=fig_config)
        sampled_config = Figure1Config(
            num_levels=6, num_trials=400, seed=17, epsilons=(0.5,)
        )
        sampled = run_figure1(graph=fig_graph, config=sampled_config, rng=99)
        for level in sampled.levels():
            assert sampled.series_for(level)[0] == pytest.approx(
                analytic.rer_at(level, 0.5), rel=0.25
            )

    def test_seeded_reproducibility(self, fig_graph, fig_config):
        a = run_figure1(graph=fig_graph, config=fig_config, rng=7)
        b = run_figure1(graph=fig_graph, config=fig_config, rng=7)
        for level in a.levels():
            assert a.series_for(level) == b.series_for(level)

    def test_laplace_mechanism_supported(self, fig_graph):
        config = Figure1Config(num_levels=4, mechanism="laplace", epsilons=(0.5,), seed=3)
        result = run_figure1_analytic(graph=fig_graph, config=config)
        assert result.levels() == [0, 1, 2]

    def test_unknown_mechanism_rejected(self, fig_graph):
        config = Figure1Config(num_levels=4, mechanism="geometric", epsilons=(0.5,), seed=3)
        with pytest.raises(EvaluationError):
            run_figure1_analytic(graph=fig_graph, config=config)


class TestHelpers:
    def test_build_hierarchy_levels(self, fig_graph, fig_config):
        hierarchy = build_figure1_hierarchy(fig_graph, fig_config, rng=0)
        assert hierarchy.top_level == 6
        assert hierarchy.bottom_level == 0

    def test_level_sensitivities_subset(self, fig_graph, fig_config):
        hierarchy = build_figure1_hierarchy(fig_graph, fig_config, rng=0)
        values = level_sensitivities(fig_graph, hierarchy, [0, 3, 99])
        assert set(values) == {0, 3}
