"""Tests for evaluation metrics."""

import math

import numpy as np
import pytest

from repro.core.config import DisclosureConfig
from repro.core.discloser import MultiLevelDiscloser
from repro.evaluation.metrics import (
    absolute_error,
    expected_rer_gaussian,
    expected_rer_laplace,
    l1_error,
    l2_error,
    relative_error_rate,
    release_error_report,
)
from repro.exceptions import EvaluationError
from repro.grouping.specialization import SpecializationConfig


class TestRelativeErrorRate:
    def test_scalar(self):
        assert relative_error_rate(110.0, 100.0) == pytest.approx(0.1)
        assert relative_error_rate(90.0, 100.0) == pytest.approx(0.1)

    def test_exact_answer_is_zero(self):
        assert relative_error_rate(42.0, 42.0) == 0.0

    def test_vector_averages_coordinates(self):
        assert relative_error_rate([110, 80], [100, 100]) == pytest.approx(0.15)

    def test_zero_true_coordinates_skipped(self):
        assert relative_error_rate([5, 110], [0, 100]) == pytest.approx(0.1)

    def test_all_zero_truth_raises(self):
        with pytest.raises(EvaluationError):
            relative_error_rate([1.0], [0.0])

    def test_shape_mismatch_raises(self):
        with pytest.raises(EvaluationError):
            relative_error_rate([1, 2], [1])

    def test_negative_true_values_use_magnitude(self):
        assert relative_error_rate(-90.0, -100.0) == pytest.approx(0.1)


class TestOtherErrors:
    def test_absolute_error(self):
        assert absolute_error([1, 3], [2, 5]) == pytest.approx(1.5)

    def test_l1_error(self):
        assert l1_error([1, 3], [2, 5]) == pytest.approx(3.0)

    def test_l2_error(self):
        assert l2_error([0, 3], [4, 0]) == pytest.approx(5.0)


class TestExpectedRer:
    def test_gaussian_formula(self):
        assert expected_rer_gaussian(10.0, 100.0) == pytest.approx(10 * math.sqrt(2 / math.pi) / 100)

    def test_laplace_formula(self):
        assert expected_rer_laplace(10.0, 100.0) == pytest.approx(0.1)

    def test_zero_true_value_raises(self):
        with pytest.raises(EvaluationError):
            expected_rer_gaussian(1.0, 0.0)
        with pytest.raises(EvaluationError):
            expected_rer_laplace(1.0, 0.0)

    def test_negative_scale_raises(self):
        with pytest.raises(EvaluationError):
            expected_rer_gaussian(-1.0, 10.0)

    def test_matches_empirical_average(self):
        rng = np.random.default_rng(0)
        sigma, truth = 50.0, 1000.0
        noise = rng.normal(0, sigma, size=200_000)
        empirical = np.mean(np.abs(noise)) / truth
        assert empirical == pytest.approx(expected_rer_gaussian(sigma, truth), rel=0.02)


class TestReleaseErrorReport:
    def test_report_contains_every_level(self, dblp_graph):
        config = DisclosureConfig(epsilon_g=0.8, specialization=SpecializationConfig(num_levels=4))
        release = MultiLevelDiscloser(config=config, rng=6).disclose(dblp_graph)
        report = release_error_report(release, dblp_graph)
        assert sorted(report) == release.levels()
        for level, row in report.items():
            assert row["rer"] >= 0
            assert row["noise_scale"] > 0
            assert row["sensitivity"] >= 1
