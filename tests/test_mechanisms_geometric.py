"""Tests for the two-sided geometric mechanism."""

import math

import numpy as np
import pytest

from repro.mechanisms.geometric import GeometricMechanism


class TestGeometricMechanism:
    def test_alpha_formula(self):
        mech = GeometricMechanism(epsilon=1.0, sensitivity=1.0)
        assert mech.alpha == pytest.approx(math.exp(-1.0))

    def test_noise_is_integer_valued(self):
        mech = GeometricMechanism(epsilon=0.5, rng=0)
        samples = mech.sample_noise(size=1000)
        assert np.allclose(samples, np.round(samples))

    def test_randomise_keeps_integrality(self):
        mech = GeometricMechanism(epsilon=0.5, rng=1)
        noisy = mech.randomise(100)
        assert float(noisy) == int(noisy)

    def test_privacy_cost_pure(self):
        cost = GeometricMechanism(epsilon=0.3).privacy_cost()
        assert cost.epsilon == 0.3
        assert cost.delta == 0.0

    def test_empirical_variance_matches_analytic(self):
        mech = GeometricMechanism(epsilon=0.7, rng=5)
        samples = mech.sample_noise(size=60_000)
        assert float(np.var(samples)) == pytest.approx(mech.noise_variance(), rel=0.05)

    def test_noise_scale_is_std(self):
        mech = GeometricMechanism(epsilon=0.7)
        assert mech.noise_scale() == pytest.approx(math.sqrt(mech.noise_variance()))

    def test_symmetric_around_zero(self):
        mech = GeometricMechanism(epsilon=0.5, rng=11)
        samples = mech.sample_noise(size=60_000)
        assert abs(float(samples.mean())) < 0.05

    def test_vector_randomise_shape(self):
        mech = GeometricMechanism(epsilon=1.0, rng=2)
        out = mech.randomise([10, 20, 30])
        assert out.shape == (3,)

    def test_larger_epsilon_less_noise(self):
        low = GeometricMechanism(epsilon=0.1, rng=3).sample_noise(size=10_000)
        high = GeometricMechanism(epsilon=2.0, rng=3).sample_noise(size=10_000)
        assert np.abs(low).mean() > np.abs(high).mean()
