"""Tests for group hierarchies."""

import pytest

from repro.exceptions import HierarchyError
from repro.grouping.hierarchy import GroupHierarchy
from repro.grouping.partition import Group, Partition


def build_three_level_hierarchy():
    """Universe {a, b, c, d}; level 2 = root, level 1 = two groups, level 0 = singletons."""
    level2 = Partition([Group("root", ["a", "b", "c", "d"], level=2)])
    level1 = Partition([Group("root/0", ["a", "b"], level=1), Group("root/1", ["c", "d"], level=1)])
    level0 = Partition([Group(f"u:{x}", [x], level=0) for x in "abcd"])
    parents = {
        "root/0": "root",
        "root/1": "root",
        "u:a": "root/0",
        "u:b": "root/0",
        "u:c": "root/1",
        "u:d": "root/1",
    }
    return GroupHierarchy({0: level0, 1: level1, 2: level2}, parents=parents)


class TestConstruction:
    def test_basic_properties(self):
        hierarchy = build_three_level_hierarchy()
        assert hierarchy.num_levels() == 3
        assert hierarchy.level_indices() == [0, 1, 2]
        assert hierarchy.top_level == 2
        assert hierarchy.bottom_level == 0
        assert hierarchy.universe() == frozenset("abcd")

    def test_parent_child_links(self):
        hierarchy = build_three_level_hierarchy()
        assert hierarchy.parent_of("root/0") == "root"
        assert hierarchy.parent_of("root") is None
        assert sorted(hierarchy.children_of("root")) == ["root/0", "root/1"]
        assert hierarchy.children_of("u:a") == []

    def test_parent_inference_when_not_given(self):
        level1 = Partition([Group("top", ["a", "b"], level=1)])
        level0 = Partition([Group("u:a", ["a"], level=0), Group("u:b", ["b"], level=0)])
        hierarchy = GroupHierarchy({0: level0, 1: level1})
        assert hierarchy.parent_of("u:a") == "top"

    def test_empty_levels_rejected(self):
        with pytest.raises(HierarchyError):
            GroupHierarchy({})

    def test_missing_level_access(self):
        hierarchy = build_three_level_hierarchy()
        with pytest.raises(HierarchyError):
            hierarchy.partition_at(7)
        assert hierarchy.has_level(1)
        assert not hierarchy.has_level(7)

    def test_two_level_constructor(self):
        hierarchy = GroupHierarchy.two_level(["a", "b", "c"], top_level=3)
        assert hierarchy.level_indices() == [0, 3]
        assert hierarchy.partition_at(3).num_groups() == 1
        assert hierarchy.partition_at(0).num_groups() == 3


class TestValidation:
    def test_universe_mismatch_detected(self):
        level1 = Partition([Group("top", ["a", "b"], level=1)])
        level0 = Partition([Group("u:a", ["a"], level=0)])
        with pytest.raises(HierarchyError):
            GroupHierarchy({0: level0, 1: level1})

    def test_child_not_contained_in_parent_detected(self):
        level1 = Partition([Group("p1", ["a"], level=1), Group("p2", ["b"], level=1)])
        level0 = Partition([Group("c1", ["a", "b"], level=0)])
        with pytest.raises(HierarchyError):
            GroupHierarchy({0: level0, 1: level1}, parents={"c1": "p1"})

    def test_unknown_parent_detected(self):
        level1 = Partition([Group("p1", ["a"], level=1)])
        level0 = Partition([Group("c1", ["a"], level=0)])
        with pytest.raises(HierarchyError):
            GroupHierarchy({0: level0, 1: level1}, parents={"c1": "ghost"})

    def test_missing_parent_detected(self):
        level1 = Partition([Group("p1", ["a", "b"], level=1)])
        level0 = Partition([Group("c1", ["a"], level=0), Group("c2", ["b"], level=0)])
        with pytest.raises(HierarchyError):
            GroupHierarchy({0: level0, 1: level1}, parents={"c1": "p1"})


class TestStatisticsAndSerialization:
    def test_level_statistics(self):
        hierarchy = build_three_level_hierarchy()
        stats = {s.level: s for s in hierarchy.level_statistics()}
        assert stats[2].num_groups == 1
        assert stats[2].max_group_size == 4
        assert stats[1].num_groups == 2
        assert stats[0].mean_group_size == 1.0

    def test_groups_at(self):
        hierarchy = build_three_level_hierarchy()
        assert len(hierarchy.groups_at(1)) == 2

    def test_iter_levels_order(self):
        hierarchy = build_three_level_hierarchy()
        levels = [level for level, _ in hierarchy.iter_levels()]
        assert levels == [0, 1, 2]

    def test_dict_round_trip(self):
        hierarchy = build_three_level_hierarchy()
        back = GroupHierarchy.from_dict(hierarchy.to_dict())
        assert back.level_indices() == hierarchy.level_indices()
        assert back.parent_of("u:a") == "root/0"
        assert back.universe() == hierarchy.universe()

    def test_statistics_to_dict(self):
        hierarchy = build_three_level_hierarchy()
        entry = hierarchy.level_statistics()[0].to_dict()
        assert set(entry) == {"level", "num_groups", "max_group_size", "min_group_size", "mean_group_size"}
