"""Tests for reporting helpers."""

from repro.evaluation.reporting import format_table, save_result
from repro.utils.serialization import from_json_file


class TestFormatTable:
    def test_renders_columns_in_order(self):
        rows = [{"a": 1, "b": 2.5}, {"a": 10, "b": 0.125}]
        text = format_table(rows)
        lines = text.splitlines()
        assert lines[0].split() == ["a", "b"]
        assert "10" in lines[3]

    def test_missing_cells_render_empty(self):
        text = format_table([{"a": 1}, {"b": 2}])
        assert "a" in text and "b" in text

    def test_explicit_column_order(self):
        text = format_table([{"x": 1, "y": 2}], columns=["y", "x"])
        assert text.splitlines()[0].split() == ["y", "x"]

    def test_float_formatting(self):
        text = format_table([{"v": 0.123456789}], float_format="{:.2f}")
        assert "0.12" in text

    def test_empty_rows(self):
        assert format_table([], columns=["a"]).splitlines()[0].strip() == "a"


class TestSaveResult:
    def test_saves_mapping(self, tmp_path):
        path = save_result({"x": 1}, tmp_path / "r.json")
        assert from_json_file(path) == {"x": 1}

    def test_saves_object_with_to_dict(self, tmp_path):
        class Result:
            def to_dict(self):
                return {"rows": [1, 2, 3]}

        path = save_result(Result(), tmp_path / "obj.json")
        assert from_json_file(path)["rows"] == [1, 2, 3]
