"""Tests for incremental re-disclosure (`repro.core.refresh`).

The contract under test: a refresh re-perturbs **only** the levels whose
content fingerprints moved, reuses every other level byte-for-byte at zero
privacy cost, and — because affected levels re-derive the *original*
disclosure's noise streams — produces a release bit-identical to disclosing
the mutated graph from scratch under the same seed.
"""

import pytest

from repro.accounting.budget import PrivacyBudget
from repro.core.config import DisclosureConfig
from repro.core.discloser import MultiLevelDiscloser
from repro.core.publisher import GraphPublisher
from repro.core.refresh import RefreshResult, refresh_release
from repro.core.release import MultiLevelRelease
from repro.core.store import ReleaseStore
from repro.exceptions import DisclosureError, ValidationError
from repro.graphs.bipartite import BipartiteGraph
from repro.grouping.hierarchy import GroupHierarchy
from repro.grouping.partition import Group, Partition
from repro.grouping.specialization import SpecializationConfig
from repro.queries.counts import GroupedAssociationCountQuery


def release_payload(release):
    """A release's full content with the lineage-bearing provenance removed.

    Refreshed releases intentionally record extra lineage keys
    (``refreshed_from_revision`` etc.), so bit-parity is asserted on
    everything *except* provenance — plus a separate check that the level
    fingerprints themselves agree.
    """
    payload = release.to_dict()
    payload.pop("provenance")
    return payload


@pytest.fixture
def config():
    return DisclosureConfig(epsilon_g=0.5, specialization=SpecializationConfig(num_levels=4))


@pytest.fixture
def mutated(dblp_graph):
    """A private copy of the shared graph, safe to mutate."""
    return dblp_graph.copy()


class TestRefreshParity:
    def test_refresh_matches_from_scratch_disclosure(self, mutated, config):
        discloser = MultiLevelDiscloser(config=config, rng=123)
        hierarchy = discloser.build_hierarchy(mutated)
        release = discloser.disclose(mutated, hierarchy=hierarchy)

        left = next(iter(mutated.left_nodes()))
        right = next(iter(mutated.right_nodes()))
        if mutated.has_association(left, right):
            mutated.remove_association(left, right)
        else:
            mutated.add_association(left, right)

        result = discloser.refresh(release, mutated, hierarchy=hierarchy)

        # A brand-new discloser with the same seed, disclosing the mutated
        # graph from scratch against the same hierarchy, must agree exactly.
        scratch = MultiLevelDiscloser(config=config, rng=123)
        expected = scratch.disclose(mutated, hierarchy=hierarchy)

        assert release_payload(result.release) == release_payload(expected)
        assert (
            result.release.provenance["level_fingerprints"]
            == expected.provenance["level_fingerprints"]
        )

    def test_refresh_is_deterministic(self, mutated, config):
        discloser = MultiLevelDiscloser(config=config, rng=9)
        hierarchy = discloser.build_hierarchy(mutated)
        release = discloser.disclose(mutated, hierarchy=hierarchy)
        left = next(iter(mutated.left_nodes()))
        mutated.add_right_node("brand-new-paper")
        mutated.add_association(left, "brand-new-paper")
        first = discloser.refresh(release, mutated, hierarchy=hierarchy)
        second = discloser.refresh(release, mutated, hierarchy=hierarchy)
        assert release_payload(first.release) == release_payload(second.release)


class TestNoOpRefresh:
    def test_unmutated_graph_reuses_every_level(self, mutated, config):
        discloser = MultiLevelDiscloser(config=config, rng=5)
        hierarchy = discloser.build_hierarchy(mutated)
        release = discloser.disclose(mutated, hierarchy=hierarchy)
        before = discloser.ledger.spent().epsilon

        result = discloser.refresh(release, mutated, hierarchy=hierarchy)

        assert result.affected_levels == []
        assert result.reused_levels == release.levels()
        assert result.levels_reperturbed == 0
        assert result.cost.epsilon == 0.0 and result.cost.delta == 0.0
        # Reused levels are the *same objects* — nothing was recomputed ...
        for level in release.levels():
            assert result.release.level_releases[level] is release.level_releases[level]
        # ... and nothing was charged.
        assert discloser.ledger.spent().epsilon == pytest.approx(before)

    def test_empty_graph_rejected(self, mutated, config):
        discloser = MultiLevelDiscloser(config=config, rng=5)
        hierarchy = discloser.build_hierarchy(mutated)
        release = discloser.disclose(mutated, hierarchy=hierarchy)
        with pytest.raises(DisclosureError):
            discloser.refresh(release, BipartiteGraph(), hierarchy=hierarchy)

    def test_release_without_fingerprints_refreshes_every_level(self, mutated, config):
        discloser = MultiLevelDiscloser(config=config, rng=5)
        hierarchy = discloser.build_hierarchy(mutated)
        release = discloser.disclose(mutated, hierarchy=hierarchy)
        # A legacy release (stored before fingerprints existed) round-trips
        # with empty provenance: the refresh must conservatively re-perturb
        # everything rather than reuse unverifiable levels.
        legacy = MultiLevelRelease.from_dict(release.to_dict())
        legacy.provenance = {}
        result = discloser.refresh(legacy, mutated, hierarchy=hierarchy)
        assert result.affected_levels == release.levels()
        assert result.reused_levels == []


class TestPartialRefresh:
    """Only the levels whose sensitivity or answers moved are re-perturbed."""

    @staticmethod
    def build_scene():
        """A hand-built graph + 2-level hierarchy with a known worst group.

        Left groups: {a, b} (3 incident associations) and {c, d} (1).  The
        mutation adds ``c--r3``: the root's incident count moves 4 -> 5
        (level 1 affected) while level 0's max stays 3 (level 0 reused).
        The query partition excludes ``c`` and ``r3`` entirely, so the true
        answers are unchanged by the mutation.
        """
        graph = BipartiteGraph(name="partial-refresh")
        graph.add_left_nodes(["a", "b", "c", "d"])
        graph.add_right_nodes(["r1", "r2", "r3", "r4"])
        graph.add_associations([("a", "r1"), ("a", "r2"), ("b", "r1"), ("c", "r4")])
        level1 = Partition([Group("root", ["a", "b", "c", "d"], level=1)])
        level0 = Partition(
            [Group("root/0", ["a", "b"], level=0), Group("root/1", ["c", "d"], level=0)]
        )
        hierarchy = GroupHierarchy({0: level0, 1: level1})
        query = GroupedAssociationCountQuery(
            Partition([Group("probe", ["a", "r1", "r2"], side="mixed")])
        )
        config = DisclosureConfig(
            epsilon_g=1.0,
            mechanism="laplace",
            specialization=SpecializationConfig(num_levels=1),
            release_levels=[0, 1],
        )
        return graph, hierarchy, query, config

    def test_only_sensitivity_shifted_levels_reperturbed(self):
        graph, hierarchy, query, config = self.build_scene()
        discloser = MultiLevelDiscloser(config=config, queries=query, rng=77)
        release = discloser.disclose(graph, hierarchy=hierarchy)

        graph.add_association("c", "r3")
        result = discloser.refresh(release, graph, hierarchy=hierarchy)

        assert result.affected_levels == [1]
        assert result.reused_levels == [0]
        assert result.release.level_releases[0] is release.level_releases[0]
        assert result.release.level_releases[1] is not release.level_releases[1]
        assert result.cost.epsilon == pytest.approx(1.0)
        # The refreshed level-1 release still matches a from-scratch run.
        scratch = MultiLevelDiscloser(config=config, queries=query, rng=77)
        expected = scratch.disclose(graph, hierarchy=hierarchy)
        assert release_payload(result.release) == release_payload(expected)

    def test_answer_only_mutation_refreshes_all_levels(self):
        graph, hierarchy, query, config = self.build_scene()
        discloser = MultiLevelDiscloser(config=config, queries=query, rng=77)
        release = discloser.disclose(graph, hierarchy=hierarchy)
        # b--r2 lands inside the probe group's induced subgraph: the answers
        # move, so every level's fingerprint moves.
        graph.add_association("b", "r2")
        result = discloser.refresh(release, graph, hierarchy=hierarchy)
        assert result.affected_levels == [0, 1]


class TestRefreshProvenance:
    def test_lineage_recorded(self, mutated, config):
        discloser = MultiLevelDiscloser(config=config, rng=2)
        hierarchy = discloser.build_hierarchy(mutated)
        release = discloser.disclose(mutated, hierarchy=hierarchy)
        original_revision = release.provenance["graph_revision"]
        left = next(iter(mutated.left_nodes()))
        mutated.add_right_node("fresh-right")
        mutated.add_association(left, "fresh-right")

        result = discloser.refresh(release, mutated, hierarchy=hierarchy)
        provenance = result.release.provenance
        assert provenance["graph_revision"] == mutated.revision
        assert provenance["refreshed_from_revision"] == original_revision
        assert provenance["affected_levels"] == result.affected_levels
        assert provenance["reused_levels"] == result.reused_levels
        assert provenance["noise_draw"] == release.provenance["noise_draw"]
        assert set(provenance["level_fingerprints"]) == {
            str(level) for level in release.levels()
        }

    def test_revision_override_for_file_loaded_graphs(self, mutated, config):
        discloser = MultiLevelDiscloser(config=config, rng=2)
        hierarchy = discloser.build_hierarchy(mutated)
        release = discloser.disclose(mutated, hierarchy=hierarchy)
        result = refresh_release(
            release,
            mutated,
            hierarchy,
            config=config,
            noise_seed=discloser._noise_seeds.seed_for(1),
            revision=4242,
        )
        assert result.release.provenance["graph_revision"] == 4242

    def test_provenance_survives_store_round_trip(self, mutated, config, tmp_path):
        discloser = MultiLevelDiscloser(config=config, rng=2)
        hierarchy = discloser.build_hierarchy(mutated)
        release = discloser.disclose(mutated, hierarchy=hierarchy)
        store = ReleaseStore(tmp_path)
        key = store.save(release, key="live")
        loaded = store.load(key)
        assert loaded.provenance == release.provenance
        # A refresh driven by the *loaded* release behaves identically.
        result = discloser.refresh(loaded, mutated, hierarchy=hierarchy)
        assert result.affected_levels == []


class TestPublisherRefresh:
    @pytest.fixture
    def publisher(self, mutated, config):
        return GraphPublisher(
            mutated,
            total_budget=PrivacyBudget(epsilon=50.0, delta=1e-2),
            base_config=config,
            rng=7,
        )

    def test_noop_refresh_spends_nothing(self, publisher):
        publisher.release()
        before = publisher.spent().epsilon
        result = publisher.refresh()
        assert result.affected_levels == []
        assert publisher.spent().epsilon == pytest.approx(before)

    def test_mutation_refresh_charges_once(self, publisher, mutated):
        release = publisher.release()
        before = publisher.spent().epsilon
        left = next(iter(mutated.left_nodes()))
        mutated.add_right_node("late-paper")
        mutated.add_association(left, "late-paper")
        result = publisher.refresh(release=release)
        assert result.affected_levels  # the count workload moved
        # Charged exactly the worst affected level's epsilon, once.
        assert publisher.spent().epsilon == pytest.approx(before + result.cost.epsilon)
        assert result.release in publisher.releases()

    def test_foreign_release_rejected(self, publisher, mutated, config):
        publisher.release()
        foreign = MultiLevelDiscloser(config=config, rng=1)
        other = foreign.disclose(mutated, hierarchy=foreign.build_hierarchy(mutated))
        with pytest.raises(ValidationError):
            publisher.refresh(release=other)

    def test_refresh_before_any_release_rejected(self, publisher):
        with pytest.raises(DisclosureError):
            publisher.refresh()

    def test_store_routing_archives_and_republishes(self, publisher, mutated, tmp_path):
        release = publisher.release()
        store = ReleaseStore(tmp_path)
        store.save(release, key="live")
        stale_fingerprint = store.fingerprint("live")

        left = next(iter(mutated.left_nodes()))
        mutated.add_right_node("late-paper")
        mutated.add_association(left, "late-paper")
        result = publisher.refresh(release=release, store=store, key="live")

        # Archived under a revision-qualified key AND republished at the
        # live alias, whose fingerprint change is what serving watches.
        assert result.store_key == f"live-r{mutated.revision}"
        assert result.store_key in store.keys()
        assert store.fingerprint("live") != stale_fingerprint
        assert not result.reused_from_store
        assert (
            store.load_document("live")["provenance"]["graph_revision"] == mutated.revision
        )

    def test_store_repeat_refresh_reuses_artifact_zero_spend(
        self, publisher, mutated, tmp_path
    ):
        release = publisher.release()
        store = ReleaseStore(tmp_path)
        store.save(release, key="live")
        left = next(iter(mutated.left_nodes()))
        mutated.add_right_node("late-paper")
        mutated.add_association(left, "late-paper")
        first = publisher.refresh(release=release, store=store, key="live")
        spent = publisher.spent().epsilon

        second = publisher.refresh(release=release, store=store, key="live")
        assert second.reused_from_store
        assert second.store_key == first.store_key
        assert second.affected_levels == first.affected_levels
        assert publisher.spent().epsilon == pytest.approx(spent)

    def test_store_requires_key(self, publisher, tmp_path):
        publisher.release()
        with pytest.raises(ValidationError):
            publisher.refresh(store=ReleaseStore(tmp_path))
