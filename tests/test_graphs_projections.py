"""Tests for one-mode projections."""

from repro.graphs.projections import project_left, project_right


class TestProjections:
    def test_left_projection_connects_co_purchasers(self, tiny_graph):
        proj = project_left(tiny_graph)
        # bob and carol share insulin; bob and dave share aspirin.
        assert proj.has_edge("bob", "carol")
        assert proj.has_edge("bob", "dave")
        assert not proj.has_edge("carol", "dave")
        assert proj.number_of_nodes() == 4  # erin appears isolated

    def test_right_projection_connects_co_purchased_drugs(self, tiny_graph):
        proj = project_right(tiny_graph)
        # insulin & aspirin share bob; statin & aspirin share dave.
        assert proj.has_edge("insulin", "aspirin")
        assert proj.has_edge("statin", "aspirin")
        assert not proj.has_edge("insulin", "statin")

    def test_projection_weights_count_shared_neighbours(self, tiny_graph):
        tiny_graph.add_association("carol", "aspirin")
        proj = project_left(tiny_graph)
        assert proj["bob"]["carol"]["weight"] == 2

    def test_projection_includes_isolated_nodes(self, tiny_graph):
        proj = project_left(tiny_graph)
        assert "erin" in proj
        assert proj.degree("erin") == 0
