"""Worker-budget negotiation, the manager executor, and the sweep scheduler.

The budget tests lock the ``ValidationError`` message shapes (the CLI shows
them verbatim), the manager-executor tests hold it to the same contract as
the other executors — order-preserving, serial-identical, crash-recovering —
and the scheduler tests prove the negotiated plan reaches the snapshot.
"""

from __future__ import annotations

import time

import pytest

from repro.core.config import DisclosureConfig
from repro.core.discloser import MultiLevelDiscloser
from repro.datasets.dblp_like import generate_dblp_like
from repro.evaluation.sweep import ParameterSweep
from repro.exceptions import (
    TaskTimeoutError,
    TransientError,
    ValidationError,
    WorkerCrashError,
)
from repro.execution import (
    AUTO_INNER,
    EXECUTOR_NAMES,
    BudgetPlan,
    ManagerExecutor,
    SerialExecutor,
    SweepScheduler,
    ThreadExecutor,
    WorkerBudget,
    executor_scope,
    make_executor,
)
from repro.execution.faults import FaultInjectingExecutor, FaultPlan, KillWorkerFault
from repro.grouping.specialization import SpecializationConfig
from repro.utils.serialization import canonical_json_bytes


def _square(task):
    return task * task


def _boom(task):
    raise TransientError(f"boom {task}")


def _sleepy(seconds):
    time.sleep(seconds)
    return seconds


def _pure_runner(x):
    return {"y": x * x}


class TestWorkerBudget:
    def test_defaults_to_cpu_count(self):
        assert WorkerBudget().total >= 1

    def test_rejects_non_positive_total(self):
        with pytest.raises(ValidationError, match="worker budget must be >= 1"):
            WorkerBudget(0)

    def test_resolve_accepts_int_budget_or_none(self):
        assert WorkerBudget.resolve(3).total == 3
        budget = WorkerBudget(2)
        assert WorkerBudget.resolve(budget) is budget
        assert WorkerBudget.resolve(None).total >= 1

    def test_plan_defaults_serial_to_one_worker(self):
        plan = WorkerBudget(4).plan()
        assert plan == BudgetPlan(executor="serial", total=4, outer_workers=1, inner_workers=1)

    def test_plan_pool_executor_takes_the_budget_by_default(self):
        plan = WorkerBudget(4).plan(executor="process")
        assert plan.outer_workers == 4 and plan.inner_workers == 1

    def test_plan_auto_inner_hands_leftover_slots_to_the_inner_layer(self):
        plan = WorkerBudget(8).plan(executor="process", outer_workers=2, inner_workers=AUTO_INNER)
        assert plan.inner_workers == 4
        assert plan.outer_workers * plan.inner_workers <= plan.total

    def test_plan_from_executor_instance_uses_its_width(self):
        pool = ThreadExecutor(max_workers=3)
        try:
            plan = WorkerBudget(4).plan(executor=pool)
            assert plan.executor == "thread" and plan.outer_workers == 3
        finally:
            pool.close()

    def test_workers_over_budget_is_a_clear_validation_error(self):
        """Satellite fix: no silent oversubscription — the message names the
        request, the budget, and both remedies."""
        with pytest.raises(ValidationError) as excinfo:
            WorkerBudget(2).plan(executor="process", outer_workers=5)
        message = str(excinfo.value)
        assert "--workers 5" in message
        assert "exceeds the worker budget of 2 slot(s)" in message
        assert "raise --worker-budget" in message

    def test_nested_oversubscription_names_the_product(self):
        with pytest.raises(ValidationError) as excinfo:
            WorkerBudget(4).plan(executor="process", outer_workers=2, inner_workers=3)
        message = str(excinfo.value)
        assert "oversubscribe" in message
        assert "2 outer worker(s) x 3 inner thread(s) = 6 slots" in message
        assert "budget is 4" in message

    def test_serial_with_workers_points_at_pool_executors(self):
        with pytest.raises(ValidationError, match="one combination at a time"):
            WorkerBudget(4).plan(executor="serial", outer_workers=2)

    def test_plan_dict_is_snapshot_ready(self):
        plan = WorkerBudget(4).plan(executor="thread", outer_workers=2)
        assert plan.to_dict() == {
            "executor": "thread",
            "total": 4,
            "outer_workers": 2,
            "inner_workers": 1,
        }


class TestExecutorScopeBudget:
    def test_scope_without_budget_is_unchanged(self):
        with executor_scope("thread", max_workers=64) as pool:
            assert pool.max_workers == 64

    def test_scope_rejects_workers_over_int_budget(self):
        with pytest.raises(ValidationError, match="exceeds the worker budget of 2"):
            with executor_scope("process", max_workers=3, budget=2):
                pass

    def test_scope_accepts_budget_objects(self):
        with pytest.raises(ValidationError, match="exceeds the worker budget"):
            with executor_scope("thread", max_workers=5, budget=WorkerBudget(4)):
                pass
        with executor_scope("thread", max_workers=4, budget=WorkerBudget(4)) as pool:
            assert pool.max_workers == 4

    def test_scope_checks_executor_instances_too(self):
        pool = ThreadExecutor(max_workers=8)
        try:
            with pytest.raises(ValidationError, match="exceeds the worker budget"):
                with executor_scope(pool, budget=2):
                    pass
        finally:
            pool.close()

    def test_serial_always_fits_any_budget(self):
        with executor_scope(None, budget=1) as pool:
            assert pool.name == "serial"


class TestManagerExecutor:
    def test_registered_in_the_executor_registry(self):
        assert "manager" in EXECUTOR_NAMES
        pool = make_executor("manager", max_workers=2)
        try:
            assert isinstance(pool, ManagerExecutor)
            assert pool.max_workers == 2
        finally:
            pool.close()

    def test_empty_map(self):
        with ManagerExecutor(max_workers=2) as pool:
            assert pool.map(_square, []) == []

    def test_map_preserves_order_and_matches_serial(self):
        tasks = list(range(12))
        with ManagerExecutor(max_workers=3) as pool:
            assert pool.map(_square, tasks) == SerialExecutor().map(_square, tasks)

    def test_reusable_across_maps(self):
        with ManagerExecutor(max_workers=2) as pool:
            assert pool.map(_square, [1, 2]) == [1, 4]
            assert pool.map(_square, [3]) == [9]

    def test_task_exception_propagates(self):
        with ManagerExecutor(max_workers=2) as pool:
            with pytest.raises(TransientError, match="boom"):
                pool.map(_boom, [1, 2])

    def test_task_timeout_raises(self):
        with ManagerExecutor(max_workers=2) as pool:
            with pytest.raises(TaskTimeoutError):
                pool.map(_sleepy, [5.0], timeout=0.3)

    def test_rejects_bad_configuration(self):
        with pytest.raises(ValidationError):
            ManagerExecutor(max_workers=0)
        with pytest.raises(ValidationError):
            ManagerExecutor(max_pool_rebuilds=-1)

    def test_killed_worker_is_recovered_and_announced(self, tmp_path):
        """A SIGKILL'd worker's tasks are resubmitted (results identical to
        serial) and the resubmission is announced through ``on_retry``."""
        plan = FaultPlan({1: (KillWorkerFault(attempts=(1,)),)})
        inner = ManagerExecutor(max_workers=2)
        chaos = FaultInjectingExecutor(inner, plan, tmp_path)
        retried = []
        chaos.on_retry = retried.append
        try:
            assert chaos.map(_square, [3, 4, 5, 6]) == [9, 16, 25, 36]
        finally:
            chaos.close()
        assert chaos.ledger.attempts("map-1", 1) == 2  # killed, then re-ran
        assert any(1 in indices for indices in retried)

    def test_repeated_deaths_exhaust_rebuild_budget(self, tmp_path):
        plan = FaultPlan({0: (KillWorkerFault(attempts=(1, 2, 3, 4)),)})
        inner = ManagerExecutor(max_workers=2, max_pool_rebuilds=2)
        chaos = FaultInjectingExecutor(inner, plan, tmp_path)
        try:
            with pytest.raises(WorkerCrashError) as excinfo:
                chaos.map(_square, [1, 2])
            assert 0 in excinfo.value.unfinished
        finally:
            chaos.close()

    def test_disclosure_parity_with_serial(self):
        """The determinism contract extends to the fourth backend: a
        manager-parallel disclosure is bit-identical to the serial one."""
        graph = generate_dblp_like(num_authors=50, seed=1)
        config = DisclosureConfig(
            epsilon_g=0.5, specialization=SpecializationConfig(num_levels=4)
        )
        baseline = MultiLevelDiscloser(config=config, rng=9).disclose(graph)
        with ManagerExecutor(max_workers=2) as pool:
            parallel = MultiLevelDiscloser(config=config, rng=9).disclose(
                graph, executor=pool
            )
        base_doc, par_doc = baseline.to_dict(), parallel.to_dict()
        # The release's config records which executor produced it (that is
        # the point of provenance); everything else must be bit-identical.
        for document in (base_doc, par_doc):
            document["config"] = {
                key: value
                for key, value in document["config"].items()
                if key not in ("executor", "max_workers")
            }
        assert canonical_json_bytes(base_doc) == canonical_json_bytes(par_doc)


class TestSweepScheduler:
    def test_scope_yields_executor_sized_to_the_plan(self):
        scheduler = SweepScheduler(executor="thread", workers=2, budget=4)
        with scheduler.scope() as pool:
            assert pool.name == "thread"
            assert pool.max_workers == 2

    def test_invalid_request_fails_at_construction(self):
        with pytest.raises(ValidationError, match="exceeds the worker budget"):
            SweepScheduler(executor="process", workers=9, budget=2)

    def test_accepts_executor_instances(self, tmp_path):
        chaos = FaultInjectingExecutor(
            SerialExecutor(), FaultPlan(), tmp_path
        )
        scheduler = SweepScheduler(executor=chaos, budget=4)
        assert scheduler.plan.executor == "chaos-serial"
        with scheduler.scope() as pool:
            assert pool is chaos  # instances stay caller-owned

    def test_plan_lands_in_the_sweep_snapshot(self):
        scheduler = SweepScheduler(executor="serial", budget=3)
        sweep = ParameterSweep(_pure_runner, {"x": [1, 2, 3]})
        result = sweep.run(scheduler=scheduler, snapshot=None, progress=lambda line: None)
        assert result.snapshot is not None
        assert result.snapshot.plan == scheduler.plan.to_dict()
        assert result.snapshot.is_converged()
        assert [row["y"] for row in result.rows] == [1, 4, 9]

    def test_scheduler_and_executor_are_mutually_exclusive(self):
        sweep = ParameterSweep(_pure_runner, {"x": [1]})
        with pytest.raises(Exception, match="not both"):
            sweep.run(scheduler=SweepScheduler(budget=1), executor="thread")
