"""Tests for the persistent release store (JSON + npz round-trip)."""

import json

import pytest

from repro.core.config import DisclosureConfig
from repro.core.discloser import MultiLevelDiscloser
from repro.core.store import ReleaseStore
from repro.exceptions import ReleaseIntegrityError
from repro.grouping.specialization import SpecializationConfig


def _put_many(root, keys):
    from repro.core.store import DirectoryBackend

    backend = DirectoryBackend(root)
    for key in keys:
        backend.put(key, b"{}", b"npz")


@pytest.fixture
def release(dblp_graph):
    config = DisclosureConfig(
        epsilon_g=0.5, specialization=SpecializationConfig(num_levels=4)
    )
    return MultiLevelDiscloser(config, rng=11).disclose(dblp_graph)


@pytest.fixture
def store(tmp_path):
    return ReleaseStore(tmp_path / "releases")


class TestRoundTrip:
    def test_save_load_is_lossless(self, store, release):
        key = store.save(release)
        loaded = store.load(key)
        # Bit-for-bit: answers travel as float64 npz arrays, everything else
        # as JSON, so the full document survives unchanged.
        assert loaded.to_dict() == release.to_dict()

    def test_save_is_idempotent_under_default_key(self, store, release):
        assert store.save(release) == store.save(release)
        assert len(store.keys()) == 1

    def test_explicit_keys_are_slugified(self, store, release):
        key = store.save(release, key="figure 1 / run #7")
        assert key.startswith("figure-1-run-7-")
        assert store.exists(key)
        # The raw key addresses the same release as the canonical slug.
        assert store.exists("figure 1 / run #7")
        assert store.load("figure 1 / run #7").levels() == release.levels()

    def test_lossy_slugs_cannot_collide(self, store, release):
        """Distinct raw keys that sanitise to the same text stay distinct."""
        key_a = store.save(release, key="exp 1")
        key_b = store.save(release, key="exp-1")
        assert key_a != key_b
        assert len(store.keys()) == 2

    def test_keys_lists_stored_releases_sorted(self, store, release):
        assert store.keys() == []
        store.save(release, key="beta")
        store.save(release, key="alpha")
        assert store.keys() == ["alpha", "beta"]

    def test_level_view_round_trip(self, store, release):
        view = release.level(release.levels()[0])
        key = store.save_level(view, key="owner-view")
        loaded = store.load_level(key)
        assert loaded.to_dict() == view.to_dict()

    def test_answers_split_out_of_the_json_document(self, store, release):
        key = store.save(release)
        document = json.loads(
            (store.path_for(key) / ReleaseStore.DOCUMENT_NAME).read_text()
        )
        for level_doc in document["levels"].values():
            for ref in level_doc["answers"].values():
                assert set(ref) == {"labels", "npz_key"}
        assert (store.path_for(key) / ReleaseStore.ANSWERS_NAME).is_file()


class TestErrors:
    def test_load_missing_key_raises(self, store):
        with pytest.raises(ReleaseIntegrityError):
            store.load("nope")

    def test_load_level_missing_key_raises(self, store):
        with pytest.raises(ReleaseIntegrityError):
            store.load_level("nope")

    def test_load_level_rejects_full_release(self, store, release):
        key = store.save(release)
        with pytest.raises(ReleaseIntegrityError):
            store.load_level(key)

    def test_load_rejects_level_view(self, store, release):
        key = store.save_level(release.level(release.levels()[0]), key="one-view")
        with pytest.raises(ReleaseIntegrityError):
            store.load(key)

    def test_load_wraps_corrupt_document(self, store, release):
        key = store.save(release)
        (store.path_for(key) / ReleaseStore.DOCUMENT_NAME).write_text("{not json")
        with pytest.raises(ReleaseIntegrityError):
            store.load(key)

    def test_load_wraps_corrupt_answers(self, store, release):
        key = store.save(release)
        (store.path_for(key) / ReleaseStore.ANSWERS_NAME).write_bytes(b"not an npz")
        with pytest.raises(ReleaseIntegrityError):
            store.load(key)

    def test_load_wraps_invalid_structure(self, store, release):
        key = store.save(release)
        (store.path_for(key) / ReleaseStore.DOCUMENT_NAME).write_text('{"levels": {}}')
        with pytest.raises(ReleaseIntegrityError):
            store.load(key)

    def test_missing_answer_arrays_detected(self, store, release):
        key = store.save(release)
        (store.path_for(key) / ReleaseStore.ANSWERS_NAME).unlink()
        with pytest.raises(ReleaseIntegrityError):
            store.load(key)

    def test_delete_then_absent(self, store, release):
        key = store.save(release)
        store.delete(key)
        assert not store.exists(key)
        store.delete(key)  # idempotent


class TestBackendSurface:
    """The backend abstraction stays invisible through the historical API."""

    def test_directory_store_exposes_root_and_backend(self, store, tmp_path):
        from repro.core.store import DirectoryBackend

        assert isinstance(store.backend, DirectoryBackend)
        assert store.root == tmp_path / "releases"

    def test_index_file_appears_next_to_releases(self, store, release):
        store.save(release, key="alpha")
        assert (store.root / "index.json").is_file()
        assert store.keys() == ["alpha"]

    def test_in_memory_store_round_trips(self, release):
        store = ReleaseStore.in_memory()
        key = store.save(release)
        assert store.load(key).to_dict() == release.to_dict()

    def test_index_survives_concurrent_writer_processes(self, tmp_path):
        """Regression: ``index.json`` maintenance is a read-modify-write, and
        the in-process thread lock cannot serialise *separate processes* (a
        process-pool sweep saving releases from four workers).  Without the
        cross-process file lock, racing writers drop each other's entries and
        ``keys()`` under-reports releases that are all on disk."""
        import multiprocessing

        from repro.core.store import DirectoryBackend

        root = tmp_path / "shared"
        all_keys = [f"rel-{i:03d}" for i in range(48)]
        workers = [
            multiprocessing.Process(target=_put_many, args=(root, all_keys[lane::4]))
            for lane in range(4)
        ]
        for worker in workers:
            worker.start()
        for worker in workers:
            worker.join()
        assert all(worker.exitcode == 0 for worker in workers)
        assert DirectoryBackend(root).keys() == sorted(all_keys)


class TestGetOrCreate:
    def test_builds_once_then_serves_from_store(self, store, release):
        calls = []

        def builder():
            calls.append(1)
            return release

        first, created_first = store.get_or_create("e6-run", builder)
        second, created_second = store.get_or_create("e6-run", builder)
        assert (created_first, created_second) == (True, False)
        assert len(calls) == 1
        assert second.to_dict() == first.to_dict()

    def test_loser_of_a_builder_race_loads_the_winner(self, store, release):
        """S2: a key that appears while our builder runs is served, not
        clobbered — the loser returns the winner's artefact, created=False."""

        def racing_builder():
            # Simulate a concurrent writer finishing first.
            store.save(release, key="raced")
            return release

        loaded, created = store.get_or_create("raced", racing_builder)
        assert created is False
        assert loaded.to_dict() == release.to_dict()

    def test_concurrent_writers_on_one_key_never_error(self, store, release):
        """Racing get_or_create calls (unique temp names per writer) all
        succeed and agree on the stored artefact."""
        import threading

        results, failures = [], []

        def writer():
            try:
                results.append(store.get_or_create("hot-key", lambda: release))
            except Exception as error:  # pragma: no cover - the regression
                failures.append(error)

        threads = [threading.Thread(target=writer) for _ in range(8)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert not failures
        assert len(results) == 8
        assert store.keys().count("hot-key") == 1
        for loaded, _created in results:
            assert loaded.to_dict() == release.to_dict()

    def test_fingerprint_tracks_rewrites(self, store, release):
        assert store.fingerprint("absent") is None
        key = store.save(release, key="fp")
        first = store.fingerprint(key)
        assert first is not None
        (store.path_for(key) / ReleaseStore.DOCUMENT_NAME).write_text("{broken")
        assert store.fingerprint(key) != first
