"""Tests for the cross-group count matrix query."""

import numpy as np
import pytest

from repro.exceptions import ValidationError
from repro.grouping.partition import Group, Partition
from repro.queries.cross import CrossGroupCountQuery


@pytest.fixture
def partitions(tiny_graph):
    left = Partition(
        [
            Group("high-use", ["bob", "dave"], side="left"),
            Group("low-use", ["carol", "erin"], side="left"),
        ]
    )
    right = Partition(
        [
            Group("chronic", ["insulin", "statin"], side="right"),
            Group("acute", ["aspirin", "zoloft"], side="right"),
        ]
    )
    return left, right


class TestCrossGroupCountQuery:
    def test_true_matrix(self, tiny_graph, partitions):
        left, right = partitions
        query = CrossGroupCountQuery(left, right)
        matrix = query.true_matrix(tiny_graph)
        # high-use x chronic: bob-insulin, dave-statin = 2
        # high-use x acute: bob-aspirin, dave-aspirin = 2
        # low-use x chronic: carol-insulin = 1 ; low-use x acute: 0
        assert matrix.tolist() == [[2.0, 2.0], [1.0, 0.0]]

    def test_matrix_sums_to_total_when_partitions_cover(self, tiny_graph, partitions):
        left, right = partitions
        matrix = CrossGroupCountQuery(left, right).true_matrix(tiny_graph)
        assert matrix.sum() == tiny_graph.num_associations()

    def test_evaluate_labels(self, tiny_graph, partitions):
        left, right = partitions
        answer = CrossGroupCountQuery(left, right).evaluate(tiny_graph)
        assert "high-use|chronic" in answer.labels
        assert answer.values.size == 4

    def test_uncovered_associations_ignored(self, tiny_graph):
        left = Partition([Group("only-bob", ["bob"], side="left")])
        right = Partition([Group("only-insulin", ["insulin"], side="right")])
        matrix = CrossGroupCountQuery(left, right).true_matrix(tiny_graph)
        assert matrix.tolist() == [[1.0]]

    def test_overlapping_partitions_rejected(self, tiny_graph):
        left = Partition([Group("g", ["bob"])])
        right = Partition([Group("h", ["bob", "insulin"])])
        with pytest.raises(ValidationError):
            CrossGroupCountQuery(left, right)

    def test_individual_sensitivity(self, tiny_graph, partitions):
        left, right = partitions
        query = CrossGroupCountQuery(left, right)
        assert query.l1_sensitivity(tiny_graph, "individual") == 1.0

    def test_group_sensitivity_matches_incident_bound(self, tiny_graph, partitions, tiny_partition):
        left, right = partitions
        query = CrossGroupCountQuery(left, right)
        assert query.l1_sensitivity(tiny_graph, "group", partition=tiny_partition) == 5.0

    def test_answer_as_matrix_round_trip(self, tiny_graph, partitions):
        left, right = partitions
        query = CrossGroupCountQuery(left, right)
        answer = query.evaluate(tiny_graph)
        mapping = query.answer_as_matrix(answer.as_dict())
        assert mapping[("high-use", "chronic")] == 2.0
        assert mapping[("low-use", "acute")] == 0.0

    def test_malformed_label_rejected(self, tiny_graph, partitions):
        left, right = partitions
        query = CrossGroupCountQuery(left, right)
        with pytest.raises(ValidationError):
            query.answer_as_matrix({"no-separator": 1.0})

    def test_from_attributes(self, pharmacy_graph):
        query = CrossGroupCountQuery.from_attributes(pharmacy_graph, "zipcode", "category")
        matrix = query.true_matrix(pharmacy_graph)
        assert matrix.sum() == pharmacy_graph.num_associations()
        assert matrix.shape[0] == len({
            pharmacy_graph.node_attributes(p)["zipcode"] for p in pharmacy_graph.left_nodes()
        })

    def test_noisy_release_through_discloser(self, pharmacy_graph):
        from repro.core.config import DisclosureConfig
        from repro.core.discloser import MultiLevelDiscloser
        from repro.grouping.specialization import SpecializationConfig

        query = CrossGroupCountQuery.from_attributes(pharmacy_graph, "zipcode", "category")
        config = DisclosureConfig(
            epsilon_g=2.0, specialization=SpecializationConfig(num_levels=3), release_levels=[1]
        )
        release = MultiLevelDiscloser(config=config, queries=query, rng=1).disclose(pharmacy_graph)
        answer = release.level(1).answer("cross_group_count")
        assert len(answer) == query.true_matrix(pharmacy_graph).size
