"""Tests for degree bounding (edge clipping)."""

import pytest

from repro.exceptions import ValidationError
from repro.graphs.bipartite import BipartiteGraph, Side
from repro.graphs.degree_bounding import cap_degrees, clipping_error


class TestCapDegrees:
    def test_degrees_respect_bound_on_both_sides(self, dblp_graph):
        clipped = cap_degrees(dblp_graph, bound=3, rng=0)
        for node in clipped.nodes():
            assert clipped.degree(node) <= 3

    def test_single_side_clipping_leaves_other_side_unbounded(self, dblp_graph):
        clipped = cap_degrees(dblp_graph, bound=2, side=Side.LEFT, rng=0)
        assert all(clipped.degree(n) <= 2 for n in clipped.left_nodes())
        # Right-side nodes may retain any degree (only limited indirectly).
        assert clipped.num_associations() <= dblp_graph.num_associations()

    def test_all_nodes_preserved(self, dblp_graph):
        clipped = cap_degrees(dblp_graph, bound=1, rng=0)
        assert clipped.num_left() == dblp_graph.num_left()
        assert clipped.num_right() == dblp_graph.num_right()

    def test_attributes_preserved(self, pharmacy_graph):
        clipped = cap_degrees(pharmacy_graph, bound=2, rng=1)
        patient = next(clipped.left_nodes())
        assert "zipcode" in clipped.node_attributes(patient)

    def test_no_clipping_when_bound_exceeds_max_degree(self, tiny_graph):
        clipped = cap_degrees(tiny_graph, bound=10, rng=0)
        assert set(clipped.associations()) == set(tiny_graph.associations())

    def test_original_graph_untouched(self, tiny_graph):
        before = tiny_graph.num_associations()
        cap_degrees(tiny_graph, bound=1, rng=0)
        assert tiny_graph.num_associations() == before

    def test_clipped_graph_is_valid(self, dblp_graph):
        cap_degrees(dblp_graph, bound=2, rng=3).validate()

    def test_seeded_reproducibility(self, dblp_graph):
        a = cap_degrees(dblp_graph, bound=2, rng=5)
        b = cap_degrees(dblp_graph, bound=2, rng=5)
        assert set(a.associations()) == set(b.associations())

    def test_invalid_bound(self, tiny_graph):
        with pytest.raises(ValidationError):
            cap_degrees(tiny_graph, bound=0)

    def test_name_default(self, tiny_graph):
        assert cap_degrees(tiny_graph, bound=2, rng=0).name == "tiny-pharmacy-capped2"

    def test_reduces_node_sensitivity(self, dblp_graph):
        from repro.privacy.sensitivity import node_count_sensitivity

        clipped = cap_degrees(dblp_graph, bound=3, rng=0)
        assert node_count_sensitivity(clipped) <= 3
        assert node_count_sensitivity(clipped) <= node_count_sensitivity(dblp_graph)


class TestClippingError:
    def test_reports_dropped_fraction(self, dblp_graph):
        clipped = cap_degrees(dblp_graph, bound=2, rng=0)
        report = clipping_error(dblp_graph, clipped)
        assert report["dropped_associations"] == dblp_graph.num_associations() - clipped.num_associations()
        assert 0.0 <= report["dropped_fraction"] <= 1.0
        assert report["max_degree_after"] <= 2
        assert report["max_degree_before"] >= report["max_degree_after"]

    def test_zero_drop_when_not_clipped(self, tiny_graph):
        clipped = cap_degrees(tiny_graph, bound=10, rng=0)
        report = clipping_error(tiny_graph, clipped)
        assert report["dropped_associations"] == 0
        assert report["dropped_fraction"] == 0.0

    def test_inconsistent_inputs_rejected(self, tiny_graph):
        bigger = tiny_graph.copy()
        bigger.add_association("carol", "zoloft")
        with pytest.raises(ValidationError):
            clipping_error(tiny_graph, bigger)

    def test_empty_graph(self):
        empty = BipartiteGraph()
        report = clipping_error(empty, empty.copy())
        assert report["dropped_fraction"] == 0.0
        assert report["max_degree_before"] == 0
