"""Tests for the Gaussian mechanisms (classic and analytic)."""

import numpy as np
import pytest

from repro.exceptions import ValidationError
from repro.mechanisms.gaussian import AnalyticGaussianMechanism, GaussianMechanism


class TestCalibration:
    def test_sigma_matches_formula(self):
        mech = GaussianMechanism(epsilon=1.0, delta=1e-5, sensitivity=2.0)
        assert mech.sigma == pytest.approx(2.0 * np.sqrt(2 * np.log(1.25 / 1e-5)))

    def test_noise_scale_alias(self):
        mech = GaussianMechanism(epsilon=1.0, delta=1e-5, sensitivity=1.0)
        assert mech.noise_scale() == mech.sigma

    def test_privacy_cost_reports_epsilon_delta(self):
        cost = GaussianMechanism(epsilon=0.4, delta=1e-6).privacy_cost()
        assert cost.epsilon == 0.4
        assert cost.delta == 1e-6

    def test_invalid_delta_rejected(self):
        with pytest.raises(ValidationError):
            GaussianMechanism(epsilon=1.0, delta=0.0)
        with pytest.raises(ValidationError):
            GaussianMechanism(epsilon=1.0, delta=1.5)

    def test_invalid_epsilon_rejected(self):
        with pytest.raises(ValidationError):
            GaussianMechanism(epsilon=-0.1)

    def test_sensitivity_scaling(self):
        base = GaussianMechanism(1.0, 1e-5, 1.0).sigma
        scaled = GaussianMechanism(1.0, 1e-5, 13.0).sigma
        assert scaled == pytest.approx(13 * base)


class TestSampling:
    def test_scalar_and_vector_shapes(self):
        mech = GaussianMechanism(1.0, 1e-5, 1.0, rng=0)
        assert isinstance(mech.randomise(5), float)
        out = mech.randomise(np.arange(4, dtype=float))
        assert out.shape == (4,)

    def test_seeded_reproducibility(self):
        a = GaussianMechanism(1.0, 1e-5, 1.0, rng=3).randomise(100.0)
        b = GaussianMechanism(1.0, 1e-5, 1.0, rng=3).randomise(100.0)
        assert a == b

    def test_empirical_std_close_to_sigma(self):
        mech = GaussianMechanism(0.8, 1e-5, 5.0, rng=21)
        samples = mech.sample_noise(size=50_000)
        assert float(np.std(samples)) == pytest.approx(mech.sigma, rel=0.03)

    def test_expected_absolute_error_formula(self):
        mech = GaussianMechanism(0.8, 1e-5, 5.0, rng=2)
        samples = np.abs(mech.sample_noise(size=50_000))
        assert float(samples.mean()) == pytest.approx(mech.expected_absolute_error(), rel=0.03)

    def test_noise_variance_is_sigma_squared(self):
        mech = GaussianMechanism(0.5, 1e-5, 2.0)
        assert mech.noise_variance() == pytest.approx(mech.sigma**2)


class TestAnalyticGaussian:
    def test_is_drop_in_subclass(self):
        mech = AnalyticGaussianMechanism(0.5, 1e-5, 1.0, rng=0)
        assert isinstance(mech, GaussianMechanism)
        assert isinstance(mech.randomise(3.0), float)

    def test_noise_never_larger_than_classic(self):
        for epsilon in (0.1, 0.5, 0.9):
            classic = GaussianMechanism(epsilon, 1e-5, 1.0).sigma
            analytic = AnalyticGaussianMechanism(epsilon, 1e-5, 1.0).sigma
            assert analytic <= classic + 1e-9

    def test_handles_epsilon_above_one(self):
        mech = AnalyticGaussianMechanism(epsilon=2.5, delta=1e-5, sensitivity=1.0)
        assert mech.sigma > 0
