"""Shared fixtures for the test suite.

Fixtures are deliberately small (hundreds of nodes at most) so the whole
suite runs in well under a minute; scale-sensitive behaviour is exercised by
the benchmarks instead.
"""

from __future__ import annotations

import pytest

from backend_matrix import (  # noqa: F401  (re-exported for fixture use)
    STORE_BACKEND_KINDS,
    make_release_store,
    store_backend_matrix,
)
from repro.core.config import DisclosureConfig
from repro.core.discloser import MultiLevelDiscloser
from repro.datasets.dblp_like import generate_dblp_like
from repro.datasets.pharmacy import generate_pharmacy_purchases
from repro.graphs.bipartite import BipartiteGraph
from repro.grouping.hierarchy import GroupHierarchy
from repro.grouping.partition import Group, Partition
from repro.grouping.specialization import SpecializationConfig, Specializer


@pytest.fixture
def tiny_graph() -> BipartiteGraph:
    """A hand-built 4x4 association graph with known counts.

    Structure (left: buyers, right: drugs)::

        bob   -- insulin, aspirin
        carol -- insulin
        dave  -- statin, aspirin
        erin  -- (no purchases)
        (zoloft has no buyers)
    """
    graph = BipartiteGraph(name="tiny-pharmacy")
    graph.add_left_nodes(["bob", "carol", "dave", "erin"])
    graph.add_right_nodes(["insulin", "aspirin", "statin", "zoloft"])
    graph.add_associations(
        [
            ("bob", "insulin"),
            ("bob", "aspirin"),
            ("carol", "insulin"),
            ("dave", "statin"),
            ("dave", "aspirin"),
        ]
    )
    return graph


@pytest.fixture
def tiny_partition(tiny_graph) -> Partition:
    """Two groups over the tiny graph's universe (buyers vs drugs)."""
    return Partition(
        [
            Group("buyers", frozenset(["bob", "carol", "dave", "erin"]), side="left"),
            Group("drugs", frozenset(["insulin", "aspirin", "statin", "zoloft"]), side="right"),
        ]
    )


@pytest.fixture(scope="session")
def dblp_graph() -> BipartiteGraph:
    """A small seeded DBLP-like graph shared (read-only) across tests."""
    return generate_dblp_like(num_authors=300, seed=42)


@pytest.fixture(scope="session")
def pharmacy_graph() -> BipartiteGraph:
    """A small seeded pharmacy graph with zipcode / category attributes."""
    return generate_pharmacy_purchases(num_patients=150, num_drugs=40, seed=7)


@pytest.fixture(scope="session")
def dblp_hierarchy(dblp_graph) -> GroupHierarchy:
    """A 5-level hierarchy over the shared DBLP-like graph."""
    specializer = Specializer(config=SpecializationConfig(num_levels=5), rng=11)
    return specializer.build(dblp_graph).hierarchy


@pytest.fixture
def small_discloser() -> MultiLevelDiscloser:
    """A discloser with a 4-level hierarchy, suitable for tiny graphs."""
    config = DisclosureConfig(
        epsilon_g=1.0,
        specialization=SpecializationConfig(num_levels=4),
    )
    return MultiLevelDiscloser(config=config, rng=5)
