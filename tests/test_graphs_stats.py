"""Tests for graph statistics."""

import numpy as np

from repro.graphs.bipartite import Side
from repro.graphs.stats import (
    association_count,
    cross_association_count,
    degree_histogram,
    degree_sequence,
    density,
    summarize,
    top_degree_nodes,
)


class TestBasicCounts:
    def test_association_count(self, tiny_graph):
        assert association_count(tiny_graph) == 5

    def test_cross_association_count(self, tiny_graph):
        assert cross_association_count(tiny_graph, ["bob", "dave"], ["aspirin"]) == 2
        assert cross_association_count(tiny_graph, ["erin"], ["aspirin"]) == 0

    def test_density(self, tiny_graph):
        assert density(tiny_graph) == 5 / 16

    def test_density_of_empty_graph(self):
        from repro.graphs.bipartite import BipartiteGraph

        assert density(BipartiteGraph()) == 0.0


class TestDegrees:
    def test_degree_sequence_left(self, tiny_graph):
        degrees = degree_sequence(tiny_graph, Side.LEFT)
        assert sorted(degrees.tolist()) == [0, 1, 2, 2]

    def test_degree_sequence_right(self, tiny_graph):
        degrees = degree_sequence(tiny_graph, Side.RIGHT)
        assert sorted(degrees.tolist()) == [0, 1, 2, 2]

    def test_degree_histogram(self, tiny_graph):
        hist = degree_histogram(tiny_graph, Side.LEFT)
        assert hist == {0: 1, 1: 1, 2: 2}

    def test_degree_sequence_sums_to_association_count(self, dblp_graph):
        left = degree_sequence(dblp_graph, Side.LEFT)
        right = degree_sequence(dblp_graph, Side.RIGHT)
        assert int(left.sum()) == dblp_graph.num_associations()
        assert int(right.sum()) == dblp_graph.num_associations()

    def test_top_degree_nodes(self, tiny_graph):
        top = top_degree_nodes(tiny_graph, Side.LEFT, 2)
        assert len(top) == 2
        assert set(top) == {"bob", "dave"}

    def test_top_degree_nodes_k_larger_than_side(self, tiny_graph):
        assert len(top_degree_nodes(tiny_graph, Side.RIGHT, 100)) == 4


class TestSummary:
    def test_summarize_tiny_graph(self, tiny_graph):
        summary = summarize(tiny_graph)
        assert summary.num_left == 4
        assert summary.num_right == 4
        assert summary.num_associations == 5
        assert summary.max_left_degree == 2
        assert summary.isolated_left == 1
        assert summary.isolated_right == 1
        assert np.isclose(summary.mean_left_degree, 5 / 4)

    def test_summary_to_dict_round_trips_values(self, tiny_graph):
        data = summarize(tiny_graph).to_dict()
        assert data["num_associations"] == 5
        assert data["name"] == "tiny-pharmacy"

    def test_summary_of_empty_graph(self):
        from repro.graphs.bipartite import BipartiteGraph

        summary = summarize(BipartiteGraph(name="empty"))
        assert summary.num_associations == 0
        assert summary.max_left_degree == 0
        assert summary.mean_right_degree == 0.0
