"""Tests for split score functions."""

import pytest

from repro.grouping.scores import BalancedAssociationScore, BalanceScore, EdgeUniformityScore
from repro.grouping.splitters import CandidateSplit


def make_split(part_a, part_b):
    return CandidateSplit(part_a=tuple(part_a), part_b=tuple(part_b))


class TestBalanceScore:
    def test_balanced_split_scores_zero(self, tiny_graph):
        score = BalanceScore()
        assert score.score(tiny_graph, make_split(["bob", "carol"], ["dave", "erin"])) == 0.0

    def test_imbalanced_split_scores_negative(self, tiny_graph):
        score = BalanceScore()
        assert score.score(tiny_graph, make_split(["bob"], ["carol", "dave", "erin"])) == -2.0

    def test_more_balanced_is_better(self, tiny_graph):
        score = BalanceScore()
        balanced = score.score(tiny_graph, make_split(["bob", "carol"], ["dave", "erin"]))
        skewed = score.score(tiny_graph, make_split(["bob"], ["carol", "dave", "erin"]))
        assert balanced > skewed

    def test_sensitivity_is_one(self):
        assert BalanceScore().sensitivity == 1.0

    def test_scores_vector(self, tiny_graph):
        score = BalanceScore()
        splits = [make_split(["bob"], ["carol"]), make_split(["bob", "carol"], ["dave"])]
        assert score.scores(tiny_graph, splits).shape == (2,)


class TestBalancedAssociationScore:
    def test_prefers_equal_association_mass(self, tiny_graph):
        score = BalancedAssociationScore(degree_bound=10)
        # bob has 2 purchases, dave 2, carol 1, erin 0.
        balanced = score.score(tiny_graph, make_split(["bob", "erin"], ["dave", "carol"]))
        skewed = score.score(tiny_graph, make_split(["bob", "dave"], ["carol", "erin"]))
        assert balanced > skewed

    def test_normalised_by_degree_bound(self, tiny_graph):
        tight = BalancedAssociationScore(degree_bound=1.0)
        loose = BalancedAssociationScore(degree_bound=100.0)
        split = make_split(["bob", "dave"], ["carol", "erin"])
        assert abs(tight.score(tiny_graph, split)) > abs(loose.score(tiny_graph, split))

    def test_unknown_nodes_contribute_zero(self, tiny_graph):
        score = BalancedAssociationScore()
        value = score.score(tiny_graph, make_split(["ghost1"], ["ghost2"]))
        assert value == 0.0

    def test_invalid_degree_bound(self):
        with pytest.raises(Exception):
            BalancedAssociationScore(degree_bound=0)


class TestEdgeUniformityScore:
    def test_uniform_degrees_score_best(self, tiny_graph):
        score = EdgeUniformityScore(degree_bound=10)
        uniform = score.score(tiny_graph, make_split(["bob", "dave"], ["carol"]))
        mixed = score.score(tiny_graph, make_split(["bob", "erin"], ["carol", "dave"]))
        assert uniform >= mixed

    def test_empty_parts_score_zero(self, tiny_graph):
        score = EdgeUniformityScore()
        assert score.score(tiny_graph, make_split(["ghost"], ["phantom"])) == 0.0

    def test_scores_are_non_positive(self, tiny_graph):
        score = EdgeUniformityScore()
        split = make_split(["bob", "carol"], ["dave", "erin"])
        assert score.score(tiny_graph, split) <= 0.0
