"""Tests for query workloads."""

import pytest

from repro.exceptions import ValidationError
from repro.queries.counts import TotalAssociationCountQuery
from repro.queries.degree import DegreeHistogramQuery
from repro.queries.workload import QueryWorkload


class TestQueryWorkload:
    def test_evaluate_returns_all_queries(self, tiny_graph):
        workload = QueryWorkload([TotalAssociationCountQuery(), DegreeHistogramQuery(max_degree=3)])
        answers = workload.evaluate(tiny_graph)
        assert set(answers) == {"total_association_count", "degree_histogram"}

    def test_sensitivity_is_sum_of_members(self, tiny_graph, tiny_partition):
        count = TotalAssociationCountQuery()
        degree = DegreeHistogramQuery(max_degree=3)
        workload = QueryWorkload([count, degree])
        expected = count.l1_sensitivity(tiny_graph, "group", partition=tiny_partition) + degree.l1_sensitivity(
            tiny_graph, "group", partition=tiny_partition
        )
        assert workload.l1_sensitivity(tiny_graph, "group", partition=tiny_partition) == expected

    def test_l2_sensitivity_sums_members(self, tiny_graph):
        workload = QueryWorkload([TotalAssociationCountQuery(), DegreeHistogramQuery(max_degree=3)])
        assert workload.l2_sensitivity(tiny_graph, "individual") > 0

    def test_num_answers(self, tiny_graph):
        workload = QueryWorkload([TotalAssociationCountQuery(), DegreeHistogramQuery(max_degree=3)])
        assert workload.num_answers(tiny_graph) == 1 + 4

    def test_empty_workload_rejected(self):
        with pytest.raises(ValidationError):
            QueryWorkload([])

    def test_duplicate_query_names_rejected(self):
        with pytest.raises(ValidationError):
            QueryWorkload([TotalAssociationCountQuery(), TotalAssociationCountQuery()])

    def test_len_and_iter(self):
        workload = QueryWorkload([TotalAssociationCountQuery()])
        assert len(workload) == 1
        assert [q.name for q in workload] == ["total_association_count"]
