"""Tests for the multi-process serving fleet (:mod:`repro.serving.fleet`):
SO_REUSEPORT workers behind one port, readiness, respawn, fallback, and the
structured effective-config line `repro serve` logs.
"""

import json
import os
import signal
import time
from types import SimpleNamespace

import pytest

from repro.core.access import AccessPolicy
from repro.core.config import DisclosureConfig
from repro.core.discloser import MultiLevelDiscloser
from repro.core.store import ReleaseStore
from repro.exceptions import ValidationError
from repro.grouping.specialization import SpecializationConfig
from repro.serving import (
    ServerFleet,
    fetch_json,
    format_config_line,
    http_get_response,
    reuseport_available,
)
from repro.utils.serialization import to_json_file

requires_reuseport = pytest.mark.skipif(
    not reuseport_available(), reason="SO_REUSEPORT unavailable on this platform"
)


@pytest.fixture(scope="module")
def release(dblp_graph):
    config = DisclosureConfig(
        epsilon_g=0.5, specialization=SpecializationConfig(num_levels=4)
    )
    return MultiLevelDiscloser(config, rng=11).disclose(dblp_graph)


@pytest.fixture(scope="module")
def policy():
    return AccessPolicy({"analyst": 0, "public": 2}, top_level=4)


@pytest.fixture(scope="module")
def store_dir(release, tmp_path_factory):
    directory = tmp_path_factory.mktemp("fleet-store")
    key = ReleaseStore(directory).save(release)
    return SimpleNamespace(path=directory, key=key)


def _wait_for(predicate, timeout=15.0):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if predicate():
            return True
        time.sleep(0.1)
    return predicate()


class TestValidation:
    def test_bad_parameters_rejected(self, store_dir, policy, tmp_path):
        with pytest.raises(ValidationError):
            ServerFleet(store_dir.path, policy, processes=0)
        with pytest.raises(ValidationError):
            ServerFleet(store_dir.path, policy, max_respawns=-1)
        with pytest.raises(ValidationError):
            ServerFleet(tmp_path / "not-a-store", policy)

    def test_policy_accepted_as_object_dict_or_file(self, store_dir, policy, tmp_path):
        from_object = ServerFleet(store_dir.path, policy)
        from_dict = ServerFleet(store_dir.path, policy.to_dict())
        path = to_json_file(policy.to_dict(), tmp_path / "policy.json")
        from_file = ServerFleet(store_dir.path, path)
        for fleet in (from_object, from_dict, from_file):
            assert fleet.policy.roles() == policy.roles()


class TestFallback:
    def test_processes_1_serves_in_process(self, store_dir, policy):
        with ServerFleet(store_dir.path, policy, processes=1) as fleet:
            assert fleet.fallback_reason == "processes=1"
            assert fleet.describe()["reuseport"] is False
            assert fleet.worker_pids() == []
            assert fleet.alive_workers() == 1
            assert fetch_json(fleet.url, "/healthz")["status"] == "ok"

    def test_missing_reuseport_falls_back_gracefully(
        self, store_dir, policy, monkeypatch
    ):
        import repro.serving.fleet as fleet_module

        monkeypatch.setattr(fleet_module, "reuseport_available", lambda: False)
        with ServerFleet(store_dir.path, policy, processes=4) as fleet:
            assert fleet.processes == 1
            assert fleet.requested_processes == 4
            assert "SO_REUSEPORT" in fleet.fallback_reason
            path = f"/releases/{store_dir.key}/views/public"
            assert fetch_json(fleet.url, path)["role"] == "public"


@requires_reuseport
class TestFleet:
    @pytest.fixture(scope="class")
    def fleet(self, store_dir, policy):
        with ServerFleet(store_dir.path, policy, processes=2) as fleet:
            yield fleet

    def test_all_workers_bind_one_port(self, fleet):
        assert fleet.processes == 2
        assert fleet.fallback_reason is None
        assert len(fleet.worker_pids()) == 2
        assert fleet.alive_workers() == 2

    def test_healthz_answers_through_the_shared_port(self, fleet):
        assert fetch_json(fleet.url, "/healthz")["status"] == "ok"

    def test_views_and_etags_are_consistent_across_workers(self, fleet, store_dir):
        """Whichever worker the kernel picks, the body and the strong ETag
        are identical — both are pure functions of the stored bytes."""
        url = f"{fleet.url}/releases/{store_dir.key}/views/public"
        responses = [http_get_response(url) for _ in range(8)]
        assert {response.status for response in responses} == {200}
        assert len({response.body for response in responses}) == 1
        assert len({response.etag for response in responses}) == 1
        # The shared ETag revalidates against any worker.
        revalidations = [
            http_get_response(url, etag=responses[0].etag).status for _ in range(4)
        ]
        assert set(revalidations) == {304}

    def test_dead_worker_is_respawned(self, fleet):
        victim = fleet.worker_pids()[0]
        os.kill(victim, signal.SIGKILL)
        assert _wait_for(lambda: fleet.respawns >= 1)
        assert _wait_for(lambda: fleet.alive_workers() == 2)
        assert victim not in fleet.worker_pids()
        assert fetch_json(fleet.url, "/healthz")["status"] == "ok"


@requires_reuseport
class TestRespawnBudget:
    def test_respawns_stop_at_the_budget(self, store_dir, policy):
        with ServerFleet(
            store_dir.path, policy, processes=2, max_respawns=0
        ) as fleet:
            victim = fleet.worker_pids()[0]
            os.kill(victim, signal.SIGKILL)
            assert _wait_for(lambda: fleet.alive_workers() == 1)
            time.sleep(0.5)  # give the monitor time to (wrongly) respawn
            assert fleet.respawns == 0
            assert fleet.alive_workers() == 1
            # The surviving worker still serves.
            assert fetch_json(fleet.url, "/healthz")["status"] == "ok"


class TestConfigLine:
    def test_format_config_line_is_structured_json(self, store_dir, policy):
        fleet = ServerFleet(store_dir.path, policy, processes=2, gzip_enabled=False)
        line = format_config_line(fleet.describe())
        parsed = json.loads(line)
        assert parsed["event"] == "serve-config"
        assert parsed["requested_processes"] == 2
        assert parsed["gzip"] is False
        assert parsed["max_respawns"] == fleet.max_respawns
        # Sorted keys keep the line diff-stable across runs.
        assert list(parsed) == sorted(parsed)

    def test_describe_reports_the_effective_configuration(self, store_dir, policy):
        fleet = ServerFleet(
            store_dir.path,
            policy,
            processes=1,
            response_cache_size=7,
            max_in_flight=3,
        )
        config = fleet.describe()
        assert config["processes"] == 1
        assert config["fallback_reason"] == "processes=1"
        assert config["response_cache_size"] == 7
        assert config["max_in_flight"] == 3


class TestPublisherServe:
    def test_publisher_serve_with_processes_returns_a_fleet(
        self, dblp_graph, policy, tmp_path
    ):
        from repro.core.publisher import GraphPublisher

        publisher = GraphPublisher(dblp_graph, rng=3)
        release = publisher.release(epsilon_g=0.9)
        fleet = publisher.serve(release, policy, tmp_path / "store", processes=2)
        assert isinstance(fleet, ServerFleet)
        key = ReleaseStore(tmp_path / "store").keys()[0]
        with fleet:
            payload = fetch_json(fleet.url, f"/releases/{key}/views/public")
        assert payload["release"] == policy.view_for("public", release).to_dict()

    def test_publisher_serve_rejects_memory_stores_for_fleets(
        self, dblp_graph, policy
    ):
        from repro.core.publisher import GraphPublisher

        publisher = GraphPublisher(dblp_graph, rng=3)
        release = publisher.release(epsilon_g=0.9)
        store = ReleaseStore.in_memory()
        with pytest.raises(ValidationError, match="directory-backed"):
            publisher.serve(release, policy, store, processes=2)

    def test_publisher_serve_default_is_still_a_single_server(
        self, dblp_graph, policy, tmp_path
    ):
        from repro.core.publisher import GraphPublisher
        from repro.serving import ReleaseServer

        publisher = GraphPublisher(dblp_graph, rng=3)
        release = publisher.release(epsilon_g=0.9)
        server = publisher.serve(release, policy, tmp_path / "store")
        assert isinstance(server, ReleaseServer)


class TestCliServeFleet:
    def test_cli_logs_the_effective_config_to_stderr(
        self, store_dir, policy, tmp_path
    ):
        """`repro serve` prints exactly one structured-JSON config line to
        stderr before the human-readable stdout banner."""
        import subprocess
        import sys
        import threading
        from pathlib import Path

        policy_path = to_json_file(policy.to_dict(), tmp_path / "policy.json")
        env = dict(os.environ)
        env["PYTHONPATH"] = str(Path(__file__).resolve().parent.parent / "src")
        process = subprocess.Popen(
            [
                sys.executable,
                "-m",
                "repro.cli",
                "serve",
                "--store",
                str(store_dir.path),
                "--policy",
                str(policy_path),
                "--port",
                "0",
                "--processes",
                "2",
                "--no-gzip",
                "--response-cache-size",
                "64",
            ],
            stdout=subprocess.PIPE,
            stderr=subprocess.PIPE,
            text=True,
            env=env,
        )
        holder = {}

        def read_config_line():
            holder["line"] = process.stderr.readline()

        reader = threading.Thread(target=read_config_line, daemon=True)
        reader.start()
        reader.join(timeout=30)
        try:
            config = json.loads(holder.get("line", "") or "{}")
            assert config.get("event") == "serve-config"
            assert config["requested_processes"] == 2
            assert config["gzip"] is False
            assert config["response_cache_size"] == 64
            if reuseport_available():
                assert config["processes"] == 2
            else:
                assert config["processes"] == 1
            assert (
                fetch_json(f"http://127.0.0.1:{config['port']}", "/healthz")["status"]
                == "ok"
            )
        finally:
            process.terminate()
            process.wait(timeout=15)


class TestServeForeverInterrupt:
    def test_interrupt_stops_the_fleet_then_propagates(self, monkeypatch):
        """Ctrl-C must shut the fleet down gracefully *and* reach the CLI's
        top-level handler, which turns it into the uniform exit status 130."""
        import repro.serving.fleet as fleet_module

        fleet = ServerFleet.__new__(ServerFleet)
        stopped = []
        fleet.stop = lambda: stopped.append(True)

        def interrupted_sleep(seconds):
            raise KeyboardInterrupt

        monkeypatch.setattr(fleet_module.time, "sleep", interrupted_sleep)
        with pytest.raises(KeyboardInterrupt):
            fleet.serve_forever()
        assert stopped == [True]
