"""Tests for the naive group-DP baseline."""

import pytest

from repro.baselines.naive_group import NaiveGroupDPDiscloser
from repro.core.config import DisclosureConfig
from repro.core.discloser import MultiLevelDiscloser
from repro.grouping.specialization import SpecializationConfig
from repro.privacy.guarantees import PrivacyUnit
from repro.privacy.sensitivity import group_count_sensitivity, node_count_sensitivity


class TestNaiveGroupDPDiscloser:
    def test_release_structure(self, dblp_graph, dblp_hierarchy):
        release = NaiveGroupDPDiscloser(epsilon_g=0.5, rng=1).disclose(dblp_graph, dblp_hierarchy)
        assert release.levels() == [level for level in dblp_hierarchy.level_indices() if level < 5]
        for level in release.levels():
            assert release.level(level).guarantee.unit is PrivacyUnit.GROUP

    def test_explicitly_requested_missing_level_raises(self, dblp_graph, dblp_hierarchy):
        """A typo'd level list must fail fast, not silently shrink the release."""
        from repro.exceptions import DisclosureError

        with pytest.raises(DisclosureError, match=r"\[99\]"):
            NaiveGroupDPDiscloser(rng=1).disclose(dblp_graph, dblp_hierarchy, levels=[2, 99])

    def test_sensitivity_is_lemma_bound(self, dblp_graph, dblp_hierarchy):
        baseline = NaiveGroupDPDiscloser(epsilon_g=0.5)
        level = 2
        expected = dblp_hierarchy.partition_at(level).max_group_size() * node_count_sensitivity(dblp_graph)
        assert baseline.level_sensitivity(dblp_graph, dblp_hierarchy, level) == pytest.approx(expected)

    def test_never_tighter_than_measured_group_sensitivity(self, dblp_graph, dblp_hierarchy):
        baseline = NaiveGroupDPDiscloser(epsilon_g=0.5)
        for level in dblp_hierarchy.level_indices():
            lemma = baseline.level_sensitivity(dblp_graph, dblp_hierarchy, level)
            measured = group_count_sensitivity(dblp_graph, dblp_hierarchy.partition_at(level))
            assert lemma >= measured

    def test_noise_larger_than_paper_approach(self, dblp_graph, dblp_hierarchy):
        naive = NaiveGroupDPDiscloser(epsilon_g=0.5, rng=1).disclose(dblp_graph, dblp_hierarchy)
        config = DisclosureConfig(epsilon_g=0.5, specialization=SpecializationConfig(num_levels=5))
        paper = MultiLevelDiscloser(config=config, rng=1).disclose(dblp_graph, hierarchy=dblp_hierarchy)
        for level in paper.levels():
            assert naive.level(level).noise_scale >= paper.level(level).noise_scale

    def test_laplace_variant(self, dblp_graph, dblp_hierarchy):
        release = NaiveGroupDPDiscloser(epsilon_g=0.5, mechanism="laplace", rng=2).disclose(
            dblp_graph, dblp_hierarchy, levels=[1, 2]
        )
        assert release.levels() == [1, 2]
        for level in release.levels():
            assert release.level(level).guarantee.delta == 0.0

    def test_invalid_mechanism(self):
        with pytest.raises(ValueError):
            NaiveGroupDPDiscloser(mechanism="exponential")

    def test_config_recorded(self, dblp_graph, dblp_hierarchy):
        release = NaiveGroupDPDiscloser(epsilon_g=0.25, rng=0).disclose(dblp_graph, dblp_hierarchy, levels=[1])
        assert release.config["baseline"] == "naive_group"
        assert release.config["epsilon_g"] == 0.25
