"""Tests for access policies and information levels."""

import json

import pytest

from repro.core.access import AccessPolicy, InformationLevel
from repro.exceptions import AccessLevelError, ValidationError
from tests.test_core_release import make_release


class TestInformationLevel:
    def test_name_follows_paper_notation(self):
        assert InformationLevel(top=9, level=3).name == "I9,3"
        assert str(InformationLevel(top=9, level=0)) == "I9,0"

    def test_level_bounds_enforced(self):
        with pytest.raises(ValidationError):
            InformationLevel(top=5, level=6)
        with pytest.raises(ValidationError):
            InformationLevel(top=5, level=-1)


class TestAccessPolicy:
    @pytest.fixture
    def policy(self):
        return AccessPolicy({"analyst": 0, "partner": 1, "public": 2}, top_level=9)

    def test_roles_sorted_by_privilege(self, policy):
        assert policy.roles() == ["analyst", "partner", "public"]

    def test_level_for(self, policy):
        assert policy.level_for("partner") == 1
        with pytest.raises(AccessLevelError):
            policy.level_for("stranger")

    def test_information_level(self, policy):
        assert policy.information_level("public").name == "I9,2"

    def test_view_for_exact_level(self, policy):
        release = make_release(levels=(0, 1, 2))
        assert policy.view_for("partner", release).level == 1

    def test_view_for_missing_level_falls_back_to_coarser(self):
        policy = AccessPolicy({"analyst": 1}, top_level=9)
        release = make_release(levels=(3, 5))
        assert policy.view_for("analyst", release).level == 3

    def test_view_never_returns_finer_level(self):
        policy = AccessPolicy({"public": 5}, top_level=9)
        release = make_release(levels=(0, 1, 2))
        with pytest.raises(AccessLevelError):
            policy.view_for("public", release)

    def test_empty_roles_rejected(self):
        with pytest.raises(ValidationError):
            AccessPolicy({}, top_level=9)

    def test_out_of_range_level_rejected(self):
        with pytest.raises(ValidationError):
            AccessPolicy({"role": 10}, top_level=9)

    def test_dict_round_trip(self, policy):
        back = AccessPolicy.from_dict(policy.to_dict())
        assert back.roles() == policy.roles()
        assert back.level_for("public") == 2

    def test_dict_round_trip_is_exact_and_json_safe(self, policy):
        document = policy.to_dict()
        # The document survives a real JSON round-trip (what export_views
        # and the release store write to disk).
        document = json.loads(json.dumps(document))
        back = AccessPolicy.from_dict(document)
        assert back.to_dict() == policy.to_dict()
        assert back.top_level == policy.top_level
        # And the reconstructed policy clamps views exactly like the original.
        release = make_release(levels=(0, 1, 2))
        for role in policy.roles():
            assert back.view_for(role, release).level == policy.view_for(role, release).level

    def test_from_dict_rejects_invalid_documents(self):
        with pytest.raises(ValidationError):
            AccessPolicy.from_dict({"top_level": 9, "role_levels": {}})
        with pytest.raises(ValidationError):
            AccessPolicy.from_dict({"top_level": 3, "role_levels": {"public": 4}})

    def test_uniform_tiers(self):
        policy = AccessPolicy.uniform_tiers([0, 2, 5], top_level=9)
        assert policy.roles() == ["tier0", "tier1", "tier2"]
        assert policy.level_for("tier0") == 0
        assert policy.level_for("tier2") == 5
