"""Tests for the Sparse Vector Technique (AboveThreshold)."""

import pytest

from repro.exceptions import ValidationError
from repro.mechanisms.svt import AboveThreshold


class TestAboveThreshold:
    def test_clear_positive_detected(self):
        svt = AboveThreshold(epsilon=5.0, threshold=100.0, sensitivity=1.0, rng=0)
        flags = svt.run([0.0, 0.0, 10_000.0, 0.0])
        assert flags[2] is True

    def test_stops_after_max_positives(self):
        svt = AboveThreshold(epsilon=5.0, threshold=0.0, sensitivity=1.0, max_positives=2, rng=1)
        flags = svt.run([10_000.0] * 6)
        assert sum(flags) == 2
        assert flags[2:] == [False, False, False, False]

    def test_first_above(self):
        svt = AboveThreshold(epsilon=5.0, threshold=100.0, sensitivity=1.0, rng=2)
        assert svt.first_above([0.0, 10_000.0, 10_000.0]) == 1

    def test_first_above_none_when_all_below(self):
        svt = AboveThreshold(epsilon=5.0, threshold=10_000.0, sensitivity=1.0, rng=3)
        assert svt.first_above([0.0, 1.0, 2.0]) is None

    def test_empty_answers_rejected(self):
        with pytest.raises(ValidationError):
            AboveThreshold(epsilon=1.0, threshold=0.0).run([])

    def test_privacy_cost_independent_of_query_count(self):
        svt = AboveThreshold(epsilon=0.7, threshold=0.0, rng=0)
        cost = svt.privacy_cost()
        svt.run([0.0] * 50)
        assert svt.privacy_cost() == cost
        assert cost.epsilon == 0.7
        assert cost.delta == 0.0

    def test_seeded_reproducibility(self):
        answers = [5.0, 20.0, 1.0, 30.0]
        a = AboveThreshold(epsilon=1.0, threshold=10.0, rng=9).run(answers)
        b = AboveThreshold(epsilon=1.0, threshold=10.0, rng=9).run(answers)
        assert a == b

    def test_noise_actually_randomises_borderline_queries(self):
        # A query exactly at the threshold should sometimes pass, sometimes not.
        outcomes = set()
        for seed in range(40):
            svt = AboveThreshold(epsilon=0.5, threshold=10.0, sensitivity=1.0, rng=seed)
            outcomes.add(svt.run([10.0])[0])
        assert outcomes == {True, False}

    def test_invalid_parameters(self):
        with pytest.raises(ValidationError):
            AboveThreshold(epsilon=0.0, threshold=1.0)
        with pytest.raises(ValidationError):
            AboveThreshold(epsilon=1.0, threshold=1.0, sensitivity=0.0)
        with pytest.raises(ValidationError):
            AboveThreshold(epsilon=1.0, threshold=1.0, max_positives=0)

    def test_level_selection_use_case(self, dblp_graph, dblp_hierarchy):
        """Select the released levels whose sensitivity stays below a bound."""
        from repro.privacy.sensitivity import group_count_sensitivity

        levels = [level for level in dblp_hierarchy.level_indices() if level < dblp_hierarchy.top_level]
        sensitivities = [
            group_count_sensitivity(dblp_graph, dblp_hierarchy.partition_at(level)) for level in levels
        ]
        bound = sorted(sensitivities)[len(sensitivities) // 2]
        svt = AboveThreshold(
            epsilon=8.0, threshold=-bound, sensitivity=1.0, max_positives=len(levels), rng=4
        )
        # "below bound" == "-sensitivity above -bound"; high epsilon keeps the
        # noisy decision close to the exact one for this smoke use-case.
        flags = svt.run([-s for s in sensitivities])
        assert any(flags)
