"""Tests for the specialization (phase-1) procedure."""

import math

import pytest

from repro.exceptions import SpecializationError, ValidationError
from repro.graphs.bipartite import BipartiteGraph
from repro.grouping.specialization import (
    DeterministicSpecializer,
    RandomSpecializer,
    SpecializationConfig,
    Specializer,
)


class TestSpecializationConfig:
    def test_defaults_match_paper(self):
        config = SpecializationConfig()
        assert config.num_levels == 9
        assert config.left_fanout == 2
        assert config.right_fanout == 2
        assert config.single_side_fanout == 4

    def test_round_accounting(self):
        config = SpecializationConfig(num_levels=5, epsilon=1.0)
        assert config.num_transitions() == 4
        assert config.rounds_per_transition() == 2  # fanout 4 needs two bisection rounds
        assert config.total_rounds() == 8
        assert config.epsilon_per_round() == pytest.approx(1.0 / 8)

    def test_rounds_for_binary_fanout(self):
        config = SpecializationConfig(num_levels=3, single_side_fanout=2)
        assert config.rounds_per_transition() == 1

    def test_invalid_parameters(self):
        with pytest.raises(ValidationError):
            SpecializationConfig(num_levels=0)
        with pytest.raises(ValidationError):
            SpecializationConfig(epsilon=0.0)
        with pytest.raises(ValidationError):
            SpecializationConfig(left_fanout=0)

    def test_to_dict(self):
        data = SpecializationConfig(num_levels=4).to_dict()
        assert data["num_levels"] == 4
        assert "cut_fractions" in data


class TestSpecializerStructure:
    @pytest.fixture(scope="class")
    def result(self, dblp_graph):
        return Specializer(config=SpecializationConfig(num_levels=5), rng=3).build(dblp_graph)

    def test_levels_present(self, result):
        assert result.hierarchy.level_indices() == [0, 1, 2, 3, 4, 5]

    def test_top_level_is_whole_universe(self, result, dblp_graph):
        top = result.hierarchy.partition_at(5)
        assert top.num_groups() == 1
        assert top.universe() == frozenset(dblp_graph.nodes())

    def test_bottom_level_is_singletons(self, result):
        bottom = result.hierarchy.partition_at(0)
        assert all(group.is_singleton() for group in bottom.groups())

    def test_every_level_covers_universe(self, result, dblp_graph):
        universe = frozenset(dblp_graph.nodes())
        for level in result.hierarchy.level_indices():
            assert result.hierarchy.partition_at(level).universe() == universe

    def test_group_counts_grow_towards_fine_levels(self, result):
        counts = [
            result.hierarchy.partition_at(level).num_groups()
            for level in sorted(result.hierarchy.level_indices(), reverse=True)
        ]
        assert all(b >= a for a, b in zip(counts, counts[1:]))

    def test_first_split_produces_left_and_right_groups(self, result):
        level = result.hierarchy.top_level - 1
        sides = {group.side for group in result.hierarchy.groups_at(level)}
        assert sides == {"left", "right"}

    def test_privacy_cost_equals_configured_epsilon(self, result):
        assert result.privacy_cost.epsilon == pytest.approx(1.0)
        assert result.privacy_cost.delta == 0.0

    def test_selection_counter_positive(self, result):
        assert result.num_selections > 0

    def test_result_to_dict(self, result):
        data = result.to_dict()
        assert data["method"] == "exponential"
        assert "hierarchy" in data


class TestSpecializerBehaviour:
    def test_seeded_reproducibility(self, dblp_graph):
        config = SpecializationConfig(num_levels=4)
        first = Specializer(config=config, rng=9).build(dblp_graph)
        second = Specializer(config=config, rng=9).build(dblp_graph)
        for level in first.hierarchy.level_indices():
            assert first.hierarchy.partition_at(level).sizes() == second.hierarchy.partition_at(level).sizes()

    def test_different_seeds_differ(self, dblp_graph):
        config = SpecializationConfig(num_levels=4)
        first = Specializer(config=config, rng=1).build(dblp_graph)
        second = Specializer(config=config, rng=2).build(dblp_graph)
        differs = any(
            first.hierarchy.partition_at(level).sizes() != second.hierarchy.partition_at(level).sizes()
            for level in first.hierarchy.level_indices()
            if level not in (0, first.hierarchy.top_level)
        )
        assert differs

    def test_empty_graph_rejected(self):
        with pytest.raises(SpecializationError):
            Specializer().build(BipartiteGraph())

    def test_single_node_graph(self):
        graph = BipartiteGraph()
        graph.add_left_node("only")
        result = Specializer(config=SpecializationConfig(num_levels=3), rng=0).build(graph)
        assert result.hierarchy.partition_at(0).num_groups() == 1
        assert result.hierarchy.partition_at(3).num_groups() == 1

    def test_without_individual_level(self, dblp_graph):
        config = SpecializationConfig(num_levels=3, include_individual_level=False)
        result = Specializer(config=config, rng=0).build(dblp_graph)
        assert 0 not in result.hierarchy.level_indices()
        assert result.hierarchy.bottom_level == 1

    def test_min_group_size_respected(self, dblp_graph):
        config = SpecializationConfig(num_levels=6, min_group_size=50)
        result = Specializer(config=config, rng=0).build(dblp_graph)
        # Groups at or below the floor are carried down, never split further:
        # no level-1 group may have a *sibling set* that splits a <=50 parent.
        hierarchy = result.hierarchy
        for level in range(1, 6):
            for group in hierarchy.groups_at(level):
                children = hierarchy.children_of(group.group_id)
                if len(group) <= 50:
                    assert len(children) <= 1 or all(
                        hierarchy.partition_at(level - 1).group(c).members == group.members
                        for c in children
                    ) or level == 1


class TestBaselineSpecializers:
    def test_deterministic_is_reproducible_without_seed(self, dblp_graph):
        config = SpecializationConfig(num_levels=4)
        first = DeterministicSpecializer(config=config).build(dblp_graph)
        second = DeterministicSpecializer(config=config).build(dblp_graph)
        for level in first.hierarchy.level_indices():
            assert first.hierarchy.partition_at(level).sizes() == second.hierarchy.partition_at(level).sizes()

    def test_deterministic_reports_infinite_cost(self, dblp_graph):
        result = DeterministicSpecializer(config=SpecializationConfig(num_levels=3)).build(dblp_graph)
        assert math.isinf(result.privacy_cost.epsilon)
        assert result.method == "deterministic"

    def test_random_reports_zero_cost(self, dblp_graph):
        result = RandomSpecializer(config=SpecializationConfig(num_levels=3), rng=4).build(dblp_graph)
        assert result.privacy_cost.epsilon == 0.0
        assert result.method == "random"

    def test_random_structure_valid(self, dblp_graph):
        result = RandomSpecializer(config=SpecializationConfig(num_levels=4), rng=4).build(dblp_graph)
        result.hierarchy.validate()
