"""Tests for the parameter sweep runner."""

import pytest

from repro.evaluation.sweep import ParameterSweep, SweepResult
from repro.exceptions import EvaluationError


class TestParameterSweep:
    def test_cartesian_combinations(self):
        sweep = ParameterSweep(lambda x, y: {"sum": x + y}, {"x": [1, 2], "y": [10, 20]})
        assert len(sweep.combinations()) == 4

    def test_run_merges_params_and_results(self):
        result = ParameterSweep(lambda x: {"double": 2 * x}, {"x": [3]}).run()
        assert result.rows == [{"x": 3, "double": 6}]

    def test_record_time_adds_column(self):
        result = ParameterSweep(lambda x: {"v": x}, {"x": [1]}).run(record_time=True)
        assert "elapsed_seconds" in result.rows[0]

    def test_runner_must_return_mapping(self):
        sweep = ParameterSweep(lambda x: x, {"x": [1]})
        with pytest.raises(EvaluationError):
            sweep.run()

    def test_empty_grid_rejected(self):
        with pytest.raises(EvaluationError):
            ParameterSweep(lambda: {}, {})

    def test_empty_parameter_values_rejected(self):
        with pytest.raises(EvaluationError):
            ParameterSweep(lambda x: {}, {"x": []})

    def test_non_callable_runner_rejected(self):
        with pytest.raises(EvaluationError):
            ParameterSweep("not-callable", {"x": [1]})


class TestSweepResult:
    @pytest.fixture
    def result(self):
        rows = [
            {"method": "a", "epsilon": 0.1, "rer": 0.5},
            {"method": "a", "epsilon": 0.2, "rer": 0.25},
            {"method": "b", "epsilon": 0.1, "rer": 0.4},
        ]
        return SweepResult(name="demo", rows=rows)

    def test_column(self, result):
        assert result.column("epsilon") == [0.1, 0.2, 0.1]

    def test_filter(self, result):
        filtered = result.filter(method="a")
        assert len(filtered) == 2
        assert all(row["method"] == "a" for row in filtered.rows)

    def test_filter_multiple_criteria(self, result):
        filtered = result.filter(method="a", epsilon=0.2)
        assert len(filtered) == 1

    def test_to_dict(self, result):
        data = result.to_dict()
        assert data["name"] == "demo"
        assert len(data["rows"]) == 3
