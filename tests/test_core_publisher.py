"""Tests for the GraphPublisher."""

import pytest

from repro.accounting.budget import PrivacyBudget
from repro.core.access import AccessPolicy
from repro.core.config import DisclosureConfig
from repro.core.publisher import GraphPublisher
from repro.core.store import ReleaseStore
from repro.exceptions import BudgetExceededError, DisclosureError
from repro.graphs.bipartite import BipartiteGraph
from repro.grouping.specialization import SpecializationConfig
from repro.utils.serialization import from_json_file


@pytest.fixture
def base_config():
    return DisclosureConfig(epsilon_g=0.5, specialization=SpecializationConfig(num_levels=4))


@pytest.fixture
def publisher(dblp_graph, base_config):
    return GraphPublisher(
        dblp_graph,
        total_budget=PrivacyBudget(epsilon=5.0, delta=1e-3),
        base_config=base_config,
        rng=7,
    )


class TestGraphPublisher:
    def test_empty_graph_rejected(self, base_config):
        with pytest.raises(DisclosureError):
            GraphPublisher(BipartiteGraph(), base_config=base_config)

    def test_first_release_builds_hierarchy_and_charges_budget(self, publisher):
        assert publisher.hierarchy is None
        release = publisher.release()
        assert publisher.hierarchy is not None
        assert release.levels() == [0, 1, 2]
        # specialization (1.0) + release (0.5)
        assert publisher.spent().epsilon == pytest.approx(1.5)

    def test_hierarchy_reused_across_releases(self, publisher):
        publisher.release(label="first")
        spent_after_first = publisher.spent().epsilon
        publisher.release(label="second")
        # Only the release cost is added, not another specialization.
        assert publisher.spent().epsilon == pytest.approx(spent_after_first + 0.5)
        assert len(publisher.releases()) == 2

    def test_epsilon_override(self, publisher):
        release = publisher.release(epsilon_g=0.25)
        for level in release.levels():
            assert release.level(level).guarantee.epsilon == pytest.approx(0.25)

    def test_budget_enforced(self, dblp_graph, base_config):
        publisher = GraphPublisher(
            dblp_graph,
            total_budget=PrivacyBudget(epsilon=1.6, delta=1e-3),
            base_config=base_config,
            rng=3,
        )
        publisher.release()  # 1.0 (specialization) + 0.5
        with pytest.raises(BudgetExceededError):
            publisher.release()  # another 0.5 would exceed 1.6

    def test_specialization_budget_enforced(self, dblp_graph, base_config):
        publisher = GraphPublisher(
            dblp_graph,
            total_budget=PrivacyBudget(epsilon=0.5),
            base_config=base_config,
            rng=3,
        )
        with pytest.raises(BudgetExceededError):
            publisher.release()

    def test_unlimited_budget_only_records(self, dblp_graph, base_config):
        publisher = GraphPublisher(dblp_graph, base_config=base_config, rng=1)
        publisher.release()
        publisher.release()
        assert publisher.remaining() is None
        assert publisher.spent().epsilon == pytest.approx(2.0)

    def test_ledger_labels(self, publisher):
        publisher.release(label="quarterly-report")
        labels = [entry.label for entry in publisher.ledger.entries()]
        assert "specialization" in labels
        assert "quarterly-report" in labels

    def test_releases_are_reproducible_given_seed(self, dblp_graph, base_config):
        a = GraphPublisher(dblp_graph, base_config=base_config, rng=11).release()
        b = GraphPublisher(dblp_graph, base_config=base_config, rng=11).release()
        for level in a.levels():
            assert a.level(level).scalar_answer("total_association_count") == pytest.approx(
                b.level(level).scalar_answer("total_association_count")
            )

    def test_export_views(self, publisher, tmp_path):
        release = publisher.release()
        policy = AccessPolicy({"owner": 0, "public": 2}, top_level=4)
        written = publisher.export_views(release, policy, tmp_path / "views")
        assert set(written) == {"owner", "public"}
        public_doc = from_json_file(written["public"])
        assert public_doc["information_level"] == "I4,2"
        assert public_doc["release"]["level"] == 2
        # The export must not contain any other level's answers.
        assert "levels" not in public_doc

    def test_export_views_without_store_records_no_key(self, publisher, tmp_path):
        release = publisher.release()
        policy = AccessPolicy({"public": 2}, top_level=4)
        written = publisher.export_views(release, policy, tmp_path / "views")
        assert "release_key" not in from_json_file(written["public"])

    def test_export_views_persists_release_into_store(self, publisher, tmp_path):
        release = publisher.release()
        policy = AccessPolicy({"owner": 0, "public": 2}, top_level=4)
        store = ReleaseStore(tmp_path / "store")
        written = publisher.export_views(release, policy, tmp_path / "views", store=store)
        # Every role document records the same store key...
        keys = {from_json_file(path)["release_key"] for path in written.values()}
        assert len(keys) == 1
        (key,) = keys
        # ...and the stored artefact is the full release, so a serving layer
        # can re-derive any view without re-disclosing.
        stored = store.load(key)
        assert stored.to_dict() == release.to_dict()
        for role in policy.roles():
            view = policy.view_for(role, stored)
            assert view.to_dict() == from_json_file(written[role])["release"]

    def test_budget_exhaustion_does_not_record_the_failed_release(
        self, dblp_graph, base_config
    ):
        publisher = GraphPublisher(
            dblp_graph,
            total_budget=PrivacyBudget(epsilon=1.6, delta=1e-3),
            base_config=base_config,
            rng=3,
        )
        publisher.release()
        spent_before = publisher.spent().epsilon
        with pytest.raises(BudgetExceededError):
            publisher.release()
        # The refused release neither spends budget nor appears in history.
        assert publisher.spent().epsilon == pytest.approx(spent_before)
        assert len(publisher.releases()) == 1
        # A cheaper release that still fits the remaining budget goes through.
        release = publisher.release(epsilon_g=0.05)
        assert release.levels() == [0, 1, 2]
