"""Tests for the MultiLevelDiscloser pipeline."""

import pytest

from repro.core.config import DisclosureConfig
from repro.core.discloser import MultiLevelDiscloser
from repro.exceptions import DisclosureError
from repro.graphs.bipartite import BipartiteGraph
from repro.grouping.specialization import DeterministicSpecializer, SpecializationConfig
from repro.privacy.guarantees import PrivacyUnit
from repro.queries.counts import GroupedAssociationCountQuery, TotalAssociationCountQuery
from repro.queries.degree import DegreeHistogramQuery


@pytest.fixture(scope="module")
def graph():
    from repro.datasets.dblp_like import generate_dblp_like

    return generate_dblp_like(num_authors=200, seed=8)


@pytest.fixture(scope="module")
def config():
    return DisclosureConfig(epsilon_g=0.7, specialization=SpecializationConfig(num_levels=5))


@pytest.fixture(scope="module")
def release(graph, config):
    return MultiLevelDiscloser(config=config, rng=13).disclose(graph)


class TestDisclosureStructure:
    def test_released_levels_match_config(self, release, config):
        assert release.levels() == config.resolved_release_levels()

    def test_each_level_has_count_answer(self, release):
        for level in release.levels():
            value = release.level(level).scalar_answer("total_association_count")
            assert isinstance(value, float)

    def test_guarantees_are_group_unit(self, release, config):
        for level in release.levels():
            guarantee = release.level(level).guarantee
            assert guarantee.unit is PrivacyUnit.GROUP
            assert guarantee.epsilon == pytest.approx(config.epsilon_g)
            assert guarantee.delta == pytest.approx(config.delta)
            assert guarantee.level == level

    def test_noise_scale_monotone_in_level(self, release):
        # Coarser levels have larger sensitivity, hence at least as much noise.
        scales = [release.level(level).noise_scale for level in release.levels()]
        assert all(b >= a - 1e-9 for a, b in zip(scales, scales[1:]))

    def test_sensitivity_monotone_in_level(self, release):
        sens = [release.level(level).sensitivity for level in release.levels()]
        assert all(b >= a for a, b in zip(sens, sens[1:]))

    def test_specialization_cost_recorded(self, release):
        assert release.specialization_cost.epsilon == pytest.approx(1.0)

    def test_level_statistics_included(self, release):
        assert len(release.level_statistics) >= len(release.levels())

    def test_config_embedded(self, release):
        assert release.config["epsilon_g"] == 0.7

    def test_dataset_name_recorded(self, release, graph):
        assert release.dataset_name == graph.name


class TestDisclosureBehaviour:
    def test_seeded_reproducibility(self, graph, config):
        first = MultiLevelDiscloser(config=config, rng=21).disclose(graph)
        second = MultiLevelDiscloser(config=config, rng=21).disclose(graph)
        for level in first.levels():
            assert first.level(level).scalar_answer("total_association_count") == pytest.approx(
                second.level(level).scalar_answer("total_association_count")
            )

    def test_different_seeds_give_different_noise(self, graph, config):
        first = MultiLevelDiscloser(config=config, rng=1).disclose(graph)
        second = MultiLevelDiscloser(config=config, rng=2).disclose(graph)
        values_differ = any(
            first.level(level).scalar_answer("total_association_count")
            != second.level(level).scalar_answer("total_association_count")
            for level in first.levels()
        )
        assert values_differ

    def test_empty_graph_rejected(self, config):
        with pytest.raises(DisclosureError):
            MultiLevelDiscloser(config=config).disclose(BipartiteGraph())

    def test_reuse_existing_hierarchy_skips_specialization_cost(self, graph, config):
        discloser = MultiLevelDiscloser(config=config, rng=3)
        hierarchy = discloser.specializer.build(graph).hierarchy
        release = discloser.disclose(graph, hierarchy=hierarchy)
        assert release.specialization_cost.epsilon == 0.0

    def test_requested_levels_missing_from_hierarchy_raises(self, graph):
        config = DisclosureConfig(
            specialization=SpecializationConfig(num_levels=5), release_levels=[1, 2]
        )
        discloser = MultiLevelDiscloser(config=config, rng=3)
        small_hierarchy = MultiLevelDiscloser(
            DisclosureConfig(specialization=SpecializationConfig(num_levels=2)), rng=0
        ).specializer.build(graph).hierarchy
        # The 2-level hierarchy has levels {0, 1, 2}; level 1 and 2 exist, so this works;
        # restrict to a level that does not exist to trigger the error.
        config_bad = DisclosureConfig(
            specialization=SpecializationConfig(num_levels=5), release_levels=[4]
        )
        with pytest.raises(DisclosureError):
            MultiLevelDiscloser(config=config_bad, rng=1).disclose(graph, hierarchy=small_hierarchy)

    def test_ledger_records_spends(self, graph, config):
        discloser = MultiLevelDiscloser(config=config, rng=3)
        discloser.disclose(graph)
        labels = [entry.label for entry in discloser.ledger.entries()]
        assert "specialization" in labels
        assert any(label.startswith("noise-injection-level-") for label in labels)

    def test_build_hierarchy_helper(self, graph, config):
        discloser = MultiLevelDiscloser(config=config, rng=3)
        hierarchy = discloser.build_hierarchy(graph)
        assert hierarchy.top_level == config.specialization.num_levels


class TestMechanismVariants:
    @pytest.mark.parametrize("mechanism", ["gaussian", "analytic_gaussian", "laplace", "geometric"])
    def test_all_supported_mechanisms_run(self, graph, mechanism):
        config = DisclosureConfig(
            epsilon_g=0.5, mechanism=mechanism, specialization=SpecializationConfig(num_levels=3)
        )
        release = MultiLevelDiscloser(config=config, rng=5).disclose(graph)
        assert release.levels()
        for level in release.levels():
            assert release.level(level).mechanism == mechanism

    def test_laplace_uses_pure_dp_guarantee(self, graph):
        config = DisclosureConfig(
            epsilon_g=0.5, mechanism="laplace", specialization=SpecializationConfig(num_levels=3)
        )
        release = MultiLevelDiscloser(config=config, rng=5).disclose(graph)
        for level in release.levels():
            assert release.level(level).guarantee.delta == 0.0

    def test_total_budget_mode_splits_epsilon(self, graph):
        config = DisclosureConfig(
            epsilon_g=1.0,
            budget_mode="total",
            allocation="uniform",
            specialization=SpecializationConfig(num_levels=4),
        )
        release = MultiLevelDiscloser(config=config, rng=5).disclose(graph)
        epsilons = [release.level(level).guarantee.epsilon for level in release.levels()]
        assert sum(epsilons) == pytest.approx(1.0)

    def test_total_budget_proportional_allocation(self, graph):
        config = DisclosureConfig(
            epsilon_g=1.0,
            budget_mode="total",
            allocation="proportional",
            specialization=SpecializationConfig(num_levels=4),
        )
        release = MultiLevelDiscloser(config=config, rng=5).disclose(graph)
        # Proportional allocation equalises sigma = sensitivity/epsilon across levels.
        scales = [release.level(level).noise_scale for level in release.levels()]
        assert max(scales) == pytest.approx(min(scales), rel=1e-6)


class TestCustomWorkloads:
    def test_single_query_instance_accepted(self, graph):
        config = DisclosureConfig(specialization=SpecializationConfig(num_levels=3))
        discloser = MultiLevelDiscloser(config=config, queries=TotalAssociationCountQuery(), rng=1)
        release = discloser.disclose(graph)
        assert "total_association_count" in release.level(0).answers

    def test_multiple_queries_released_together(self, graph):
        config = DisclosureConfig(specialization=SpecializationConfig(num_levels=3))
        discloser = MultiLevelDiscloser(
            config=config,
            queries=[TotalAssociationCountQuery(), DegreeHistogramQuery(max_degree=10)],
            rng=1,
        )
        release = discloser.disclose(graph)
        answers = release.level(1).answers
        assert set(answers) == {"total_association_count", "degree_histogram"}

    def test_grouped_count_workload(self, graph):
        config = DisclosureConfig(specialization=SpecializationConfig(num_levels=3))
        discloser = MultiLevelDiscloser(config=config, rng=2)
        hierarchy = discloser.specializer.build(graph).hierarchy
        query = GroupedAssociationCountQuery(hierarchy.partition_at(1))
        discloser_q = MultiLevelDiscloser(config=config, queries=query, rng=2)
        release = discloser_q.disclose(graph, hierarchy=hierarchy)
        per_group = release.level(1).answer("grouped_association_count")
        assert len(per_group) == hierarchy.partition_at(1).num_groups()
