"""Store-backend parameterization helpers shared by the test suite.

Lives in its own uniquely-named module (not ``conftest.py``) because the
test and benchmark trees each have a ``conftest`` and a bare
``import conftest`` resolves to whichever directory pytest put on
``sys.path`` first.
"""

from __future__ import annotations

import os
from pathlib import Path
from typing import Callable, List, Optional

from repro.core.store import ReleaseStore

#: Every store-backend kind the parameterized suites can target.
STORE_BACKEND_KINDS = ("directory", "memory", "sqlite")


def store_backend_matrix(*kinds: str) -> List[str]:
    """The parameter list for backend-parameterized tests.

    Defaults to ``kinds`` (or every kind), but honours the
    ``REPRO_STORE_BACKEND`` environment pin: CI re-runs the store and
    serving-cache suites with the pin set to ``sqlite``, collapsing each
    parameterized test to the SQLite backend only — same assertions, one
    backend — without a separate test file.
    """
    kinds = kinds or STORE_BACKEND_KINDS
    for kind in kinds:
        if kind not in STORE_BACKEND_KINDS:
            raise ValueError(f"unknown store backend kind {kind!r}")
    pinned = os.environ.get("REPRO_STORE_BACKEND")
    if pinned in kinds:
        return [pinned]
    return list(kinds)


def make_release_store(
    kind: str,
    tmp_path: Path,
    cache_size: int = 0,
    clock: Optional[Callable[[], str]] = None,
) -> ReleaseStore:
    """One fresh :class:`ReleaseStore` of the requested backend kind.

    Directory and SQLite stores land under ``tmp_path`` (``releases/`` and
    ``releases.db``); the memory kind ignores the path.  Construction goes
    through the public ``ReleaseStore(root=...)`` detection, so these
    stores exercise exactly what users get from a path.
    """
    if kind == "directory":
        return ReleaseStore(tmp_path / "releases", cache_size=cache_size, clock=clock)
    if kind == "sqlite":
        return ReleaseStore(tmp_path / "releases.db", cache_size=cache_size, clock=clock)
    if kind == "memory":
        return ReleaseStore.in_memory(cache_size=cache_size)
    raise ValueError(f"unknown store backend kind {kind!r}")
