"""Tests for graph I/O (edge list and JSON formats)."""

import pytest

from repro.exceptions import ValidationError
from repro.graphs.io import read_edge_list, read_json, write_edge_list, write_json


class TestEdgeList:
    def test_round_trip_preserves_structure(self, tiny_graph, tmp_path):
        path = write_edge_list(tiny_graph, tmp_path / "graph.tsv")
        loaded = read_edge_list(path)
        assert loaded.num_associations() == tiny_graph.num_associations()
        assert loaded.num_left() == tiny_graph.num_left()
        assert loaded.num_right() == tiny_graph.num_right()
        assert loaded.has_association("bob", "insulin")

    def test_isolated_nodes_survive_round_trip(self, tiny_graph, tmp_path):
        path = write_edge_list(tiny_graph, tmp_path / "graph.tsv")
        loaded = read_edge_list(path)
        assert loaded.has_node("erin")
        assert loaded.degree("erin") == 0
        assert loaded.has_node("zoloft")

    def test_blank_lines_ignored(self, tmp_path):
        path = tmp_path / "graph.tsv"
        path.write_text("a\tx\n\n\nb\ty\n")
        loaded = read_edge_list(path)
        assert loaded.num_associations() == 2

    def test_malformed_line_raises_with_line_number(self, tmp_path):
        path = tmp_path / "bad.tsv"
        path.write_text("a\tx\nbroken-line\n")
        with pytest.raises(ValidationError, match="2"):
            read_edge_list(path)

    def test_custom_delimiter(self, tiny_graph, tmp_path):
        path = write_edge_list(tiny_graph, tmp_path / "graph.csv", delimiter=",")
        loaded = read_edge_list(path, delimiter=",")
        assert loaded.num_associations() == 5


class TestJson:
    def test_round_trip_preserves_attributes(self, pharmacy_graph, tmp_path):
        path = write_json(pharmacy_graph, tmp_path / "pharmacy.json")
        loaded = read_json(path)
        assert loaded.num_associations() == pharmacy_graph.num_associations()
        patient = next(loaded.left_nodes())
        assert "zipcode" in loaded.node_attributes(patient)

    def test_round_trip_name(self, tiny_graph, tmp_path):
        loaded = read_json(write_json(tiny_graph, tmp_path / "g.json"))
        assert loaded.name == "tiny-pharmacy"

    def test_missing_key_raises(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text('{"name": "x", "left": {}}')
        with pytest.raises(ValidationError):
            read_json(path)
