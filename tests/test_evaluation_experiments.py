"""Tests for the experiment registry (E1-E6 runners) at tiny scale."""

import math

import pytest

from repro.evaluation.experiments import (
    EXPERIMENTS,
    PAPER_TEXT_CLAIMS,
    run_e1_figure1,
    run_e2_text_claims,
    run_e3_scalability,
    run_e4_ablation_split,
    run_e5_ablation_mechanism,
    run_e6_baselines,
    run_experiment,
)
from repro.exceptions import EvaluationError


@pytest.fixture(scope="module")
def tiny_dblp():
    from repro.datasets.dblp_like import generate_dblp_like

    return generate_dblp_like(num_authors=250, seed=23)


class TestRegistry:
    def test_all_experiments_registered(self):
        assert set(EXPERIMENTS) == {"E1", "E2", "E3", "E4", "E5", "E6"}

    def test_run_experiment_dispatch(self, tiny_dblp):
        rows = run_experiment("e2", scale="tiny", num_levels=4, graph=tiny_dblp)
        assert rows

    def test_unknown_experiment_rejected(self):
        with pytest.raises(EvaluationError):
            run_experiment("E9")


class TestE1E2:
    def test_e1_structure(self, tiny_dblp):
        result = run_e1_figure1(scale="tiny", num_levels=5, graph=tiny_dblp)
        assert result.levels() == list(range(4))
        assert len(result.epsilons) == 10

    def test_e2_rows_include_paper_claims(self, tiny_dblp):
        rows = run_e2_text_claims(scale="tiny", num_levels=5, graph=tiny_dblp)
        by_level = {row["level"]: row for row in rows}
        assert by_level[1]["paper_rer"] == PAPER_TEXT_CLAIMS[1]
        assert all(row["measured_rer"] > 0 for row in rows)

    def test_e2_monotone_in_level(self, tiny_dblp):
        rows = run_e2_text_claims(scale="tiny", num_levels=5, graph=tiny_dblp)
        values = [row["measured_rer"] for row in sorted(rows, key=lambda r: r["level"])]
        assert all(b >= a - 1e-12 for a, b in zip(values, values[1:]))


class TestE3:
    def test_scalability_rows(self):
        result = run_e3_scalability(author_counts=(120, 240), num_levels=4)
        assert len(result.rows) == 2
        assert result.sizes()[1] > result.sizes()[0]
        assert all(row["total_seconds"] > 0 for row in result.rows)

    def test_format_table(self):
        result = run_e3_scalability(author_counts=(100,), num_levels=3)
        assert "assoc" in result.format_table()

    def test_sizes_get_independent_derived_seeds(self):
        """Serial and thread runs of the same seed build identical graphs —
        each size carries its own derived seed instead of sharing a
        sequentially advanced generator across tasks."""
        from repro.evaluation.scalability import run_scalability

        graph_fields = ("num_authors", "num_papers", "num_associations")

        def fingerprint(result):
            return [[row[field] for field in graph_fields] for row in result.rows]

        serial = run_scalability(author_counts=(100, 150), num_levels=3, seed=5)
        threaded = run_scalability(
            author_counts=(100, 150), num_levels=3, seed=5, executor="thread"
        )
        assert fingerprint(serial) == fingerprint(threaded)


class TestE4E5:
    def test_e4_compares_three_methods(self, tiny_dblp):
        rows = run_e4_ablation_split(scale="tiny", num_levels=4, graph=tiny_dblp)
        methods = {row["method"] for row in rows}
        assert methods == {"exponential", "deterministic", "random"}

    def test_e4_costs(self, tiny_dblp):
        rows = run_e4_ablation_split(scale="tiny", num_levels=4, graph=tiny_dblp)
        by_method = {row["method"]: row for row in rows}
        assert math.isinf(by_method["deterministic"]["specialization_epsilon"])
        assert by_method["random"]["specialization_epsilon"] == 0.0
        assert by_method["exponential"]["specialization_epsilon"] > 0

    def test_e5_mechanism_and_allocation_rows(self, tiny_dblp):
        rows = run_e5_ablation_mechanism(scale="tiny", num_levels=4, graph=tiny_dblp)
        comparisons = {row["comparison"] for row in rows}
        assert comparisons == {"mechanism", "allocation"}
        variants = {row["variant"] for row in rows if row["comparison"] == "mechanism"}
        assert variants == {"gaussian", "analytic_gaussian", "laplace"}

    def test_e5_analytic_never_worse_than_classic(self, tiny_dblp):
        rows = run_e5_ablation_mechanism(scale="tiny", num_levels=4, graph=tiny_dblp)
        classic = {r["level"]: r["expected_rer"] for r in rows if r["variant"] == "gaussian"}
        analytic = {r["level"]: r["expected_rer"] for r in rows if r["variant"] == "analytic_gaussian"}
        for level in classic:
            assert analytic[level] <= classic[level] + 1e-12


class TestE6:
    @pytest.fixture(scope="class")
    def rows(self, tiny_dblp):
        return run_e6_baselines(scale="tiny", num_levels=4, graph=tiny_dblp)

    def test_all_methods_present(self, rows):
        methods = {row["method"] for row in rows}
        assert methods == {
            "group_dp_multilevel",
            "naive_group_dp",
            "uniform_noise",
            "individual_dp",
            "safe_grouping",
        }

    def test_naive_group_noisier_than_paper(self, rows):
        paper = {r["level"]: r["noise_scale"] for r in rows if r["method"] == "group_dp_multilevel"}
        naive = {r["level"]: r["noise_scale"] for r in rows if r["method"] == "naive_group_dp"}
        for level in paper:
            assert naive[level] >= paper[level]

    def test_individual_dp_accurate_but_weak_group_guarantee(self, rows):
        individual = [r for r in rows if r["method"] == "individual_dp"]
        paper = {r["level"]: r for r in rows if r["method"] == "group_dp_multilevel"}
        for row in individual:
            assert row["group_epsilon"] > paper[row["level"]]["group_epsilon"]

    def test_safe_grouping_exact_but_non_private(self, rows):
        safe = [r for r in rows if r["method"] == "safe_grouping"]
        assert all(math.isinf(r["group_epsilon"]) for r in safe)
        assert all(r["rer"] == 0.0 for r in safe)
