"""Tests for the Laplace mechanism."""

import numpy as np
import pytest

from repro.exceptions import ValidationError
from repro.mechanisms.base import PrivacyCost
from repro.mechanisms.laplace import LaplaceMechanism


class TestConstruction:
    def test_scale_is_sensitivity_over_epsilon(self):
        mech = LaplaceMechanism(epsilon=0.5, sensitivity=3.0)
        assert mech.noise_scale() == pytest.approx(6.0)

    def test_invalid_epsilon(self):
        with pytest.raises(ValidationError):
            LaplaceMechanism(epsilon=0.0)
        with pytest.raises(ValidationError):
            LaplaceMechanism(epsilon=-1.0)

    def test_invalid_sensitivity(self):
        with pytest.raises(ValidationError):
            LaplaceMechanism(epsilon=1.0, sensitivity=0.0)

    def test_privacy_cost_is_pure_dp(self):
        assert LaplaceMechanism(epsilon=0.7).privacy_cost() == PrivacyCost(0.7, 0.0)


class TestRandomise:
    def test_scalar_returns_float(self):
        value = LaplaceMechanism(1.0, rng=0).randomise(100)
        assert isinstance(value, float)

    def test_array_returns_same_shape(self):
        out = LaplaceMechanism(1.0, rng=0).randomise([1.0, 2.0, 3.0])
        assert isinstance(out, np.ndarray)
        assert out.shape == (3,)

    def test_seeded_reproducibility(self):
        a = LaplaceMechanism(1.0, rng=5).randomise(10)
        b = LaplaceMechanism(1.0, rng=5).randomise(10)
        assert a == b

    def test_randomize_alias(self):
        mech = LaplaceMechanism(1.0, rng=3)
        assert callable(mech.randomize)


class TestStatisticalBehaviour:
    def test_empirical_mean_near_true_value(self):
        mech = LaplaceMechanism(epsilon=1.0, sensitivity=1.0, rng=12)
        noisy = mech.randomise(np.full(20_000, 50.0))
        assert abs(float(noisy.mean()) - 50.0) < 0.1

    def test_empirical_std_matches_analytic(self):
        mech = LaplaceMechanism(epsilon=0.5, sensitivity=1.0, rng=7)
        samples = mech.sample_noise(size=50_000)
        assert float(np.std(samples)) == pytest.approx(np.sqrt(mech.noise_variance()), rel=0.05)

    def test_expected_absolute_error_matches_scale(self):
        mech = LaplaceMechanism(epsilon=0.25, sensitivity=2.0, rng=9)
        samples = np.abs(mech.sample_noise(size=50_000))
        assert float(samples.mean()) == pytest.approx(mech.expected_absolute_error(), rel=0.05)

    def test_smaller_epsilon_more_noise(self):
        noisy_small_eps = np.abs(LaplaceMechanism(0.05, rng=1).sample_noise(size=5_000)).mean()
        noisy_large_eps = np.abs(LaplaceMechanism(2.0, rng=1).sample_noise(size=5_000)).mean()
        assert noisy_small_eps > noisy_large_eps
