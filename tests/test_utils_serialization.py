"""Tests for repro.utils.serialization."""

import numpy as np
import pytest

from repro.utils.serialization import from_json_file, to_json_file, to_jsonable


class TestToJsonable:
    def test_passthrough_scalars(self):
        assert to_jsonable(3) == 3
        assert to_jsonable(2.5) == 2.5
        assert to_jsonable("x") == "x"
        assert to_jsonable(None) is None
        assert to_jsonable(True) is True

    def test_numpy_scalars(self):
        assert to_jsonable(np.int64(4)) == 4
        assert isinstance(to_jsonable(np.int64(4)), int)
        assert to_jsonable(np.float64(1.5)) == 1.5
        assert to_jsonable(np.bool_(True)) is True

    def test_numpy_array(self):
        assert to_jsonable(np.array([1, 2, 3])) == [1, 2, 3]

    def test_nested_structures(self):
        data = {"a": [np.float64(1.0), {"b": (1, 2)}], "c": {4, 5} }
        result = to_jsonable(data)
        assert result["a"][0] == 1.0
        assert result["a"][1]["b"] == [1, 2]
        assert sorted(result["c"]) == [4, 5]

    def test_non_string_keys_are_stringified(self):
        result = to_jsonable({(1, 2): "pair", np.int64(3): "n"})
        assert result["(1, 2)"] == "pair"
        assert result[3] == "n"

    def test_object_with_to_dict(self):
        class Thing:
            def to_dict(self):
                return {"value": np.int64(7)}

        assert to_jsonable(Thing()) == {"value": 7}

    def test_unserialisable_raises(self):
        with pytest.raises(TypeError):
            to_jsonable(object())


class TestJsonFileRoundTrip:
    def test_round_trip(self, tmp_path):
        payload = {"rows": [{"x": 1, "y": np.float64(2.0)}], "name": "demo"}
        path = to_json_file(payload, tmp_path / "out" / "result.json")
        assert path.exists()
        loaded = from_json_file(path)
        assert loaded["name"] == "demo"
        assert loaded["rows"][0]["y"] == 2.0

    def test_creates_parent_directories(self, tmp_path):
        path = to_json_file({"a": 1}, tmp_path / "deep" / "nested" / "f.json")
        assert path.exists()
