"""The incremental-recompile path: mutation log and ``delta_compile``.

The contract under test is *bit-identity*: a view produced by
:meth:`GraphArrays.delta_compile` must be indistinguishable — same arrays,
same dtypes, same id orders, same index maps — from a full
:meth:`GraphArrays.compile` of the mutated graph.  The hypothesis suite
drives random interleavings of node/edge adds and removes through both
paths and compares everything.
"""

import pickle

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.exceptions import (
    DuplicateNodeError,
    EdgeNotFoundError,
    NodeNotFoundError,
    ValidationError,
)
from repro.graphs.arrays import GraphArrays
from repro.graphs.bipartite import BipartiteGraph, Mutation, Side


def assert_views_identical(actual: GraphArrays, expected: GraphArrays) -> None:
    """Every observable of the two compiled views must match bit-for-bit."""
    assert actual.revision == expected.revision
    assert actual.left_ids == expected.left_ids
    assert actual.right_ids == expected.right_ids
    assert actual.left_index == expected.left_index
    assert actual.right_index == expected.right_index
    assert actual.global_index == expected.global_index
    for name in (
        "edge_left",
        "edge_right",
        "left_indptr",
        "left_degrees",
        "right_degrees",
        "degrees",
        "edge_right_global",
    ):
        got, want = getattr(actual, name), getattr(expected, name)
        assert got.dtype == want.dtype, name
        assert np.array_equal(got, want), name
        assert not got.flags.writeable, name


def small_graph() -> BipartiteGraph:
    graph = BipartiteGraph(name="delta")
    for i in range(4):
        graph.add_left_node(f"L{i}")
    for j in range(5):
        graph.add_right_node(f"R{j}")
    graph.add_associations([("L0", "R0"), ("L0", "R2"), ("L1", "R1"), ("L3", "R4")])
    return graph


class TestMutationLog:
    def test_one_record_per_revision_and_contiguous(self):
        graph = small_graph()
        log = list(graph._mutation_log)
        assert [rec.revision for rec in log] == list(range(1, graph.revision + 1))

    def test_mutations_since_returns_exact_suffix(self):
        graph = small_graph()
        rev = graph.revision
        graph.add_association("L2", "R3")
        graph.remove_association("L0", "R0")
        records = graph.mutations_since(rev)
        assert [rec.op for rec in records] == ["add_edge", "remove_edge"]
        assert records[0].a == "L2" and records[0].b == "R3"

    def test_mutations_since_current_revision_is_empty(self):
        graph = small_graph()
        assert graph.mutations_since(graph.revision) == []

    def test_future_or_negative_revision_is_unrecoverable(self):
        graph = small_graph()
        assert graph.mutations_since(graph.revision + 1) is None
        assert graph.mutations_since(-1) is None

    def test_truncated_log_is_unrecoverable(self):
        graph = BipartiteGraph(mutation_log_limit=4)
        for i in range(10):
            graph.add_left_node(i)
        assert graph.mutations_since(0) is None
        # The last four mutations are still replayable.
        assert len(graph.mutations_since(graph.revision - 4)) == 4

    def test_remove_node_is_one_record_carrying_its_edges(self):
        graph = small_graph()
        rev = graph.revision
        graph.remove_node("L0")
        records = graph.mutations_since(rev)
        assert len(records) == 1
        (record,) = records
        assert record.op == "remove_node" and record.b is Side.LEFT
        assert sorted(record.neighbors) == ["R0", "R2"]

    def test_attribute_merge_logs_nothing(self):
        graph = small_graph()
        rev = graph.revision
        graph.add_left_node("L0", colour="red")
        assert graph.revision == rev and graph.mutations_since(rev) == []

    def test_duplicate_association_logs_nothing(self):
        graph = small_graph()
        rev = graph.revision
        assert graph.add_association("L0", "R0") is False
        assert graph.mutations_since(rev) == []

    def test_log_survives_pickling_without_sharing(self):
        graph = small_graph()
        twin = pickle.loads(pickle.dumps(graph))
        graph.add_association("L2", "R3")
        assert twin.revision == graph.revision - 1
        assert twin.mutations_since(twin.revision) == []
        assert twin._mutation_log.maxlen == graph._mutation_log.maxlen


class TestDeltaCompile:
    def test_edge_only_delta_reuses_index_maps(self):
        graph = small_graph()
        old = graph.arrays()
        graph.add_association("L2", "R3")
        fresh = graph.arrays()
        assert fresh.compiled_incrementally
        assert fresh.left_index is old.left_index
        assert fresh.right_index is old.right_index
        assert_views_identical(fresh, GraphArrays.compile(graph))

    def test_node_delta_rebuilds_index_maps(self):
        graph = small_graph()
        graph.arrays()
        graph.add_left_node("L9")
        graph.add_association("L9", "R0")
        fresh = graph.arrays()
        assert fresh.compiled_incrementally
        assert_views_identical(fresh, GraphArrays.compile(graph))

    def test_right_removal_remaps_clean_rows(self):
        graph = small_graph()
        old = graph.arrays()
        graph.remove_node("R1")
        fresh = GraphArrays.delta_compile(old, graph)
        assert fresh.compiled_incrementally
        assert_views_identical(fresh, GraphArrays.compile(graph))

    def test_fallback_on_truncated_log(self):
        graph = BipartiteGraph(mutation_log_limit=2)
        for i in range(3):
            graph.add_left_node(i)
        graph.add_right_node("r")
        old = graph.arrays()
        for i in range(3):
            graph.add_association(i, "r")
        assert graph.mutations_since(old.revision) is None
        fresh = graph.arrays()
        assert not fresh.compiled_incrementally
        assert_views_identical(fresh, GraphArrays.compile(graph))

    def test_fallback_past_size_threshold(self):
        graph = small_graph()
        old = graph.arrays()
        for i in range(40):
            graph.add_association(f"L{i % 4}", f"R{i % 5}")
            graph.remove_association(f"L{i % 4}", f"R{i % 5}")
        fresh = GraphArrays.delta_compile(old, graph)
        assert not fresh.compiled_incrementally
        assert_views_identical(fresh, GraphArrays.compile(graph))

    def test_same_revision_returns_the_old_view(self):
        graph = small_graph()
        old = graph.arrays()
        assert GraphArrays.delta_compile(old, graph) is old

    def test_cached_arrays_still_reports_stale_views_absent(self):
        graph = small_graph()
        graph.arrays()
        graph.add_association("L2", "R3")
        assert graph.cached_arrays() is None
        graph.arrays()
        assert graph.cached_arrays() is not None


# Random mutation programs for the hypothesis parity suite.  Each step is a
# (kind, payload) pair decoded against the *current* graph state, so removals
# target live nodes/edges and adds collide with existing ids often.
steps = st.lists(
    st.tuples(st.integers(min_value=0, max_value=5), st.integers(min_value=0, max_value=11)),
    min_size=1,
    max_size=30,
)


def apply_step(graph: BipartiteGraph, kind: int, payload: int) -> None:
    lefts = list(graph.left_nodes())
    rights = list(graph.right_nodes())
    if kind == 0:
        graph.add_left_node(f"L{payload}")
    elif kind == 1:
        graph.add_right_node(f"R{payload}")
    elif kind == 2 and lefts and rights:
        graph.add_association(lefts[payload % len(lefts)], rights[payload % len(rights)])
    elif kind == 3:
        edges = sorted(graph.associations())
        if edges:
            graph.remove_association(*edges[payload % len(edges)])
    elif kind == 4 and lefts:
        graph.remove_node(lefts[payload % len(lefts)])
    elif kind == 5 and rights:
        graph.remove_node(rights[payload % len(rights)])


class TestDeltaCompileParity:
    @given(pairs=st.lists(st.tuples(st.integers(0, 7), st.integers(0, 7)), max_size=40), program=steps)
    @settings(max_examples=120, deadline=None)
    def test_delta_compile_matches_full_compile(self, pairs, program):
        graph = BipartiteGraph(name="parity")
        for left, right in pairs:
            graph.add_association(f"L{left}", f"R{right}", auto_add=True)
        old = GraphArrays.compile(graph)
        for kind, payload in program:
            apply_step(graph, kind, payload)
        # max_fraction high enough that the delta path always runs, so the
        # parity claim is exercised even for large deltas.
        delta = GraphArrays.delta_compile(old, graph, max_fraction=1e9)
        expected = GraphArrays.compile(graph)
        if graph.revision != old.revision:
            assert delta.compiled_incrementally
        assert_views_identical(delta, expected)
        graph.validate()

    @given(pairs=st.lists(st.tuples(st.integers(0, 7), st.integers(0, 7)), max_size=40), program=steps)
    @settings(max_examples=60, deadline=None)
    def test_arrays_accessor_stays_fresh_through_mutations(self, pairs, program):
        graph = BipartiteGraph(name="accessor")
        for left, right in pairs:
            graph.add_association(f"L{left}", f"R{right}", auto_add=True)
        graph.arrays()
        for kind, payload in program:
            apply_step(graph, kind, payload)
        assert_views_identical(graph.arrays(), GraphArrays.compile(graph))


class TestCopyIsolation:
    def test_copy_shares_no_arrays_or_log(self):
        graph = small_graph()
        original_view = graph.arrays()
        clone = graph.copy()
        assert clone._arrays is None
        assert clone._mutation_log is not graph._mutation_log

        clone.add_association("L2", "R3")
        # The original's compiled view and log are untouched by the clone.
        assert graph.arrays() is original_view
        assert graph.has_association("L2", "R3") is False

        graph.remove_node("L0")
        assert clone.has_node("L0")
        assert_views_identical(clone.arrays(), GraphArrays.compile(clone))

    def test_copy_preserves_log_limit(self):
        graph = BipartiteGraph(mutation_log_limit=7)
        graph.add_left_node("a")
        assert graph.copy()._mutation_log.maxlen == 7

    def test_pickle_round_trip_drops_arrays_but_not_structure(self):
        graph = small_graph()
        graph.arrays()
        twin = pickle.loads(pickle.dumps(graph))
        assert twin._arrays is None
        assert sorted(twin.associations()) == sorted(graph.associations())
        assert_views_identical(twin.arrays(), GraphArrays.compile(twin))


class TestUnifiedMutationErrors:
    """Every graph-mutation error is a ValidationError (satellite task)."""

    def test_remove_missing_node_is_a_validation_error(self):
        graph = small_graph()
        with pytest.raises(ValidationError):
            graph.remove_node("ghost")
        with pytest.raises(NodeNotFoundError):
            graph.remove_node("ghost")

    def test_remove_missing_association_is_a_validation_error(self):
        graph = small_graph()
        with pytest.raises(ValidationError):
            graph.remove_association("L0", "R4")
        with pytest.raises(EdgeNotFoundError):
            graph.remove_association("ghost", "R0")

    def test_duplicate_node_is_a_validation_error(self):
        graph = small_graph()
        with pytest.raises(ValidationError):
            graph.add_right_node("L0")
        with pytest.raises(DuplicateNodeError):
            graph.add_left_node("R0")

    def test_failed_mutations_log_nothing(self):
        graph = small_graph()
        rev = graph.revision
        for mutation in (
            lambda: graph.remove_node("ghost"),
            lambda: graph.remove_association("L0", "R4"),
            lambda: graph.add_right_node("L0"),
            lambda: graph.add_association("ghost", "R0"),
        ):
            with pytest.raises(ValidationError):
                mutation()
        assert graph.revision == rev
        assert graph.mutations_since(rev) == []

    def test_mutation_record_shape(self):
        graph = BipartiteGraph()
        graph.add_left_node("a")
        (record,) = graph.mutations_since(0)
        assert record == Mutation(1, "add_node", "a", Side.LEFT, ())
