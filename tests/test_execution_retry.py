"""Tests for the deterministic retry layer (repro.execution.retry)."""

import time

import pytest

from repro.exceptions import TaskTimeoutError, TransientError, ValidationError
from repro.execution import (
    DEFAULT_RETRYABLE,
    RetryPolicy,
    RetryingTask,
    SerialExecutor,
    ThreadExecutor,
    map_with_retries,
)


class TestPolicyValidation:
    def test_defaults_are_valid(self):
        policy = RetryPolicy()
        assert policy.max_attempts == 3
        assert policy.retryable == DEFAULT_RETRYABLE

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"max_attempts": 0},
            {"backoff_base": -1.0},
            {"backoff_factor": 0.5},
            {"max_backoff": -0.1},
            {"jitter": -0.5},
            {"jitter": 1.5},
        ],
    )
    def test_bad_parameters_rejected(self, kwargs):
        with pytest.raises(ValidationError):
            RetryPolicy(**kwargs)

    def test_to_dict_round_trips_scalars(self):
        policy = RetryPolicy(max_attempts=5, backoff_base=0.2, seed=7)
        payload = policy.to_dict()
        assert payload["max_attempts"] == 5
        assert payload["backoff_base"] == 0.2
        assert payload["seed"] == 7


class TestDeterministicBackoff:
    def test_first_attempt_has_no_delay(self):
        assert RetryPolicy().delay_for(1, key="k") == 0.0

    def test_delays_are_deterministic_per_seed_key_attempt(self):
        policy = RetryPolicy(seed=3)
        assert policy.delay_for(2, key="a") == policy.delay_for(2, key="a")
        # Different keys (and different seeds) jitter differently.
        assert policy.delay_for(2, key="a") != RetryPolicy(seed=4).delay_for(2, key="a")

    def test_backoff_grows_then_caps(self):
        policy = RetryPolicy(
            backoff_base=0.1, backoff_factor=2.0, max_backoff=0.3, jitter=0.0
        )
        assert policy.delay_for(2, key="k") == pytest.approx(0.1)
        assert policy.delay_for(3, key="k") == pytest.approx(0.2)
        assert policy.delay_for(5, key="k") == pytest.approx(0.3)  # capped

    def test_jitter_stays_within_fraction(self):
        policy = RetryPolicy(backoff_base=1.0, backoff_factor=1.0, jitter=0.25)
        for key in ("a", "b", "c", "d"):
            delay = policy.delay_for(2, key=key)
            assert 1.0 <= delay < 1.25


class TestCall:
    def test_retries_transient_then_succeeds(self):
        attempts = []

        def flaky():
            attempts.append(1)
            if len(attempts) < 3:
                raise TransientError("try again")
            return "done"

        slept = []
        result = RetryPolicy(max_attempts=3).call(flaky, key="k", sleep=slept.append)
        assert result == "done"
        assert len(attempts) == 3
        assert len(slept) == 2

    def test_exhausted_attempts_reraise_last_failure(self):
        def always_fails():
            raise TransientError("nope")

        with pytest.raises(TransientError, match="nope"):
            RetryPolicy(max_attempts=2).call(always_fails, key="k", sleep=lambda _: None)

    def test_non_retryable_raises_immediately(self):
        attempts = []

        def fails():
            attempts.append(1)
            raise ValueError("fatal")

        with pytest.raises(ValueError):
            RetryPolicy(max_attempts=5).call(fails, key="k", sleep=lambda _: None)
        assert len(attempts) == 1

    def test_on_retry_hook_observes_failures(self):
        seen = []

        def flaky():
            if not seen:
                raise TransientError("first")
            return 42

        policy = RetryPolicy(max_attempts=2)
        result = policy.call(
            flaky, key="k", sleep=lambda _: None, on_retry=lambda a, e: seen.append((a, e))
        )
        assert result == 42
        assert seen[0][0] == 1
        assert isinstance(seen[0][1], TransientError)


class _FlakyByTask:
    """Picklable task fn failing the first attempt of selected payloads."""

    def __init__(self):
        self.attempts = {}

    def __call__(self, task):
        # Thread executor: shared state is fine. (Process chaos tests use
        # the file-backed ledger in repro.execution.faults instead.)
        count = self.attempts.get(task, 0) + 1
        self.attempts[task] = count
        if task % 2 == 0 and count == 1:
            raise TransientError(f"task {task} first attempt")
        return task * 10


class TestMapWithRetries:
    @pytest.mark.parametrize("executor", [SerialExecutor(), ThreadExecutor(max_workers=2)])
    def test_transient_failures_are_absorbed(self, executor):
        fn = _FlakyByTask()
        policy = RetryPolicy(max_attempts=2, backoff_base=0.0, jitter=0.0)
        try:
            assert map_with_retries(executor, fn, [0, 1, 2, 3], policy) == [0, 10, 20, 30]
        finally:
            executor.close()

    def test_default_policy_used_when_none(self):
        executor = SerialExecutor()
        calls = []

        def once_flaky(task):
            calls.append(task)
            if calls.count(task) == 1 and task == 0:
                raise TransientError("flake")
            return task

        # Default RetryPolicy has nonzero backoff; keep the flake count low.
        assert map_with_retries(executor, once_flaky, [0, 1]) == [0, 1]

    def test_retrying_task_records_attempts(self):
        fn = _FlakyByTask()
        wrapper = RetryingTask(
            fn=fn, policy=RetryPolicy(max_attempts=2, backoff_base=0.0, jitter=0.0)
        )
        assert wrapper(2) == 20
        assert wrapper.attempts == [2]  # two attempts for the flaky even task

    def test_exhausted_retries_propagate_through_map(self):
        executor = SerialExecutor()

        def always_fails(task):
            raise TransientError("never works")

        with pytest.raises(TransientError):
            map_with_retries(
                executor,
                always_fails,
                [1],
                RetryPolicy(max_attempts=2, backoff_base=0.0, jitter=0.0),
            )


class TestTaskTimeouts:
    def test_thread_timeout_raises_task_timeout_error(self):
        executor = ThreadExecutor(max_workers=2)
        try:
            with pytest.raises(TaskTimeoutError) as excinfo:
                executor.map(time.sleep, [0.0, 5.0], timeout=0.2)
            assert excinfo.value.timeout == 0.2
        finally:
            executor.close()

    def test_timeout_is_retryable_by_default(self):
        assert RetryPolicy().is_retryable(TaskTimeoutError("slow", task_index=0, timeout=1.0))

    def test_executor_level_timeout_applies_to_whole_map(self):
        executor = ThreadExecutor(max_workers=1, task_timeout=0.2)
        try:
            with pytest.raises(TaskTimeoutError):
                executor.map(time.sleep, [5.0])
        finally:
            executor.close()
