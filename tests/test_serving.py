"""Tests for the read-only HTTP serving layer (:mod:`repro.serving`)."""

import ast
import json
import os
import subprocess
import sys
import threading
from pathlib import Path
from types import SimpleNamespace

import pytest

from repro.core.access import AccessPolicy
from repro.core.config import DisclosureConfig
from repro.core.discloser import MultiLevelDiscloser
from repro.core.store import ReleaseStore
from repro.grouping.specialization import SpecializationConfig
from repro.serving import ReleaseServer, ServingError, fetch_json, http_get
from repro.serving.server import canonical_json, create_server
from repro.utils.serialization import to_json_file


@pytest.fixture(scope="module")
def release(dblp_graph):
    config = DisclosureConfig(
        epsilon_g=0.5, specialization=SpecializationConfig(num_levels=4)
    )
    return MultiLevelDiscloser(config, rng=11).disclose(dblp_graph)


@pytest.fixture(scope="module")
def policy():
    # "auditor" maps to a level coarser than anything the release contains
    # (releases from a 4-level specialization hold levels 0..2), so serving
    # it must refuse rather than hand out a finer level.
    return AccessPolicy(
        {"analyst": 0, "partner": 1, "public": 2, "auditor": 3}, top_level=4
    )


@pytest.fixture(scope="module")
def served(release, policy, tmp_path_factory):
    """A running server over a directory-backed store holding one release."""
    store = ReleaseStore(tmp_path_factory.mktemp("serving-store"), cache_size=8)
    key = store.save(release)
    server = ReleaseServer(store, policy, port=0).start()
    yield SimpleNamespace(server=server, store=store, key=key)
    server.stop()


class TestEndpoints:
    def test_index_lists_endpoints(self, served):
        payload = fetch_json(served.server.url, "/")
        assert "/healthz" in payload["endpoints"]
        assert any("views" in endpoint for endpoint in payload["endpoints"])

    def test_healthz(self, served, policy):
        payload = fetch_json(served.server.url, "/healthz")
        assert payload["status"] == "ok"
        assert payload["releases"] == 1
        assert payload["roles"] == policy.roles()
        assert payload["cache"]["max_size"] == 8

    def test_list_releases(self, served):
        payload = fetch_json(served.server.url, "/releases")
        assert payload["releases"] == [served.key]

    def test_metadata_has_provenance_but_no_answers(self, served, release):
        payload = fetch_json(served.server.url, f"/releases/{served.key}")
        assert payload["key"] == served.key
        assert payload["dataset"] == release.dataset_name
        assert payload["levels"] == release.levels()
        assert payload["config"] == release.to_dict()["config"]
        assert payload["specialization_cost"] == release.specialization_cost.to_dict()
        for level_key, level_meta in payload["level_metadata"].items():
            view = release.level(int(level_key))
            assert level_meta["mechanism"] == view.mechanism
            assert level_meta["noise_scale"] == view.noise_scale
            assert level_meta["guarantee"] == view.guarantee.to_dict()
            assert level_meta["queries"] == sorted(view.answers)
            assert "answers" not in level_meta

    def test_roles_endpoint(self, served, policy):
        payload = fetch_json(served.server.url, f"/releases/{served.key}/roles")
        assert set(payload["roles"]) == set(policy.roles())
        assert payload["roles"]["public"]["information_level"] == "I4,2"


class TestViews:
    def test_views_bit_match_policy_view_for(self, served, release, policy):
        """The served view is exactly AccessPolicy.view_for on the stored release."""
        for role in ("analyst", "partner", "public"):
            payload = fetch_json(served.server.url, f"/releases/{served.key}/views/{role}")
            expected = policy.view_for(role, release)
            assert payload["role"] == role
            assert payload["information_level"] == policy.information_level(role).name
            assert payload["dataset"] == release.dataset_name
            assert payload["release"] == expected.to_dict()

    def test_views_differ_across_roles(self, served):
        analyst = fetch_json(served.server.url, f"/releases/{served.key}/views/analyst")
        public = fetch_json(served.server.url, f"/releases/{served.key}/views/public")
        assert analyst["release"]["level"] < public["release"]["level"]
        assert analyst["release"]["noise_scale"] < public["release"]["noise_scale"]

    def test_unknown_role_is_403(self, served):
        status, body = http_get(f"{served.server.url}/releases/{served.key}/views/nobody")
        assert status == 403
        assert "nobody" in json.loads(body)["error"]

    def test_role_with_unservable_level_is_403(self, served):
        """A role whose level is coarser than every released level is refused —
        never silently handed a finer (more sensitive) level."""
        status, body = http_get(f"{served.server.url}/releases/{served.key}/views/auditor")
        assert status == 403
        assert json.loads(body)["status"] == 403

    def test_unknown_release_is_404(self, served):
        for path in ("/releases/nope", "/releases/nope/roles", "/releases/nope/views/public"):
            status, body = http_get(served.server.url + path)
            assert status == 404, path
            assert "nope" in json.loads(body)["error"]

    def test_traversal_keys_are_404(self, served):
        """Dot keys ('..') must never resolve to paths outside the store root."""
        bait = served.store.root.parent / "release.json"
        bait.write_text('{"levels": {}}')
        try:
            for path in ("/releases/%2e%2e", "/releases/%2e%2e/views/analyst",
                         "/releases/%2e"):
                status, _ = http_get(served.server.url + path)
                assert status == 404, path
        finally:
            bait.unlink()

    def test_unknown_endpoint_is_404(self, served):
        assert http_get(served.server.url + "/budget")[0] == 404
        assert http_get(f"{served.server.url}/releases/{served.key}/raw")[0] == 404

    def test_write_verbs_are_405(self, served):
        import urllib.error
        import urllib.request

        for method in ("POST", "PUT", "DELETE", "PATCH"):
            request = urllib.request.Request(
                served.server.url + "/releases", data=b"{}", method=method
            )
            with pytest.raises(urllib.error.HTTPError) as excinfo:
                urllib.request.urlopen(request)
            assert excinfo.value.code == 405, method

    def test_keep_alive_connection_survives_a_405_with_body(self, served):
        """A rejected write's body is drained, so the next request on the
        same keep-alive connection still parses cleanly."""
        import http.client

        connection = http.client.HTTPConnection(served.server.host, served.server.port)
        try:
            connection.request("POST", "/releases", body=b'{"x": 1}')
            response = connection.getresponse()
            assert response.status == 405
            response.read()
            # Same socket, next request: must be a clean 200, not a 400.
            connection.request("GET", "/healthz")
            response = connection.getresponse()
            assert response.status == 200
            assert json.loads(response.read())["status"] == "ok"
        finally:
            connection.close()

    def test_malformed_content_length_still_gets_a_405(self, served):
        """A broken write request must be answered and closed, not dropped
        with a traceback."""
        import socket

        with socket.create_connection((served.server.host, served.server.port), timeout=10) as sock:
            sock.sendall(
                b"POST /releases HTTP/1.1\r\n"
                b"Host: x\r\nContent-Length: abc\r\n\r\n"
            )
            sock.settimeout(10)
            response = sock.recv(4096)
        assert response.startswith(b"HTTP/1.1 405")

    def test_head_requests_get_headers_without_body(self, served):
        import http.client

        connection = http.client.HTTPConnection(served.server.host, served.server.port)
        try:
            connection.request("HEAD", "/healthz")
            response = connection.getresponse()
            assert response.status == 200
            assert int(response.getheader("Content-Length")) > 0
            assert response.read() == b""
            # The connection stays usable after the body-less response.
            connection.request("GET", "/healthz")
            assert connection.getresponse().status == 200
        finally:
            connection.close()

    def test_fetch_json_raises_serving_error_on_non_200(self, served):
        with pytest.raises(ServingError) as excinfo:
            fetch_json(served.server.url, "/releases/nope")
        assert excinfo.value.status == 404


class TestConcurrency:
    def test_threaded_requests_all_serve_correct_views(self, served, release, policy):
        """ThreadingHTTPServer handles parallel clients; every response is
        complete, parseable, and carries the right role's level."""
        roles = ("analyst", "partner", "public")
        expected = {role: policy.view_for(role, release).to_dict() for role in roles}
        failures = []

        def worker(role):
            try:
                for _ in range(10):
                    payload = fetch_json(
                        served.server.url, f"/releases/{served.key}/views/{role}"
                    )
                    assert payload["release"] == expected[role]
            except Exception as exc:  # noqa: BLE001 - collected for the main thread
                failures.append((role, exc))

        threads = [
            threading.Thread(target=worker, args=(roles[i % len(roles)],))
            for i in range(9)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=30)
        assert not failures, failures


class TestBackendParity:
    def test_views_byte_identical_across_backends(self, release, policy, tmp_path):
        """The same stored release serialises to byte-identical HTTP responses
        whether it sits in a directory store or an in-memory store."""
        directory_store = ReleaseStore(tmp_path / "store")
        memory_store = ReleaseStore.in_memory()
        key = directory_store.save(release)
        assert memory_store.save(release) == key

        with ReleaseServer(directory_store, policy, port=0) as on_disk:
            with ReleaseServer(memory_store, policy, port=0) as in_memory:
                for path in (
                    "/releases",
                    f"/releases/{key}",
                    f"/releases/{key}/views/analyst",
                    f"/releases/{key}/views/public",
                ):
                    status_a, body_a = http_get(on_disk.url + path)
                    status_b, body_b = http_get(in_memory.url + path)
                    assert (status_a, status_b) == (200, 200), path
                    assert body_a == body_b, path

    def test_canonical_json_is_deterministic(self):
        assert canonical_json({"b": 1, "a": [2, 3]}) == canonical_json({"a": [2, 3], "b": 1})
        assert canonical_json({"x": 1}).endswith(b"\n")


class TestFailureModes:
    def test_metadata_and_roles_never_touch_answer_arrays(self, release, policy, tmp_path):
        """Metadata/roles are served from the document alone — they keep
        working with the npz gone, while views (which need it) fail loudly."""
        store = ReleaseStore(tmp_path / "store")
        key = store.save(release)
        (store.path_for(key) / ReleaseStore.ANSWERS_NAME).unlink()
        with ReleaseServer(store, policy, port=0) as server:
            assert http_get(f"{server.url}/releases/{key}")[0] == 200
            assert http_get(f"{server.url}/releases/{key}/roles")[0] == 200
            assert http_get(f"{server.url}/releases/{key}/views/public")[0] == 500

    def test_corrupt_stored_release_is_500(self, release, policy, tmp_path):
        store = ReleaseStore(tmp_path / "store")
        key = store.save(release)
        (store.path_for(key) / ReleaseStore.DOCUMENT_NAME).write_text("{broken")
        with ReleaseServer(store, policy, port=0) as server:
            status, body = http_get(f"{server.url}/releases/{key}/views/public")
            assert status == 500
            assert "cannot be served" in json.loads(body)["error"]


class TestServingImportsNoDisclosureCode:
    #: Modules the serving package may import from repro: persistence, access
    #: resolution, release objects, serialisation — never the pipeline.
    ALLOWED = (
        "repro.core.access",
        "repro.core.release",
        "repro.core.store",
        "repro.exceptions",
        # The client's retry support: deterministic backoff only, stdlib-only
        # by design — it cannot pull pipeline code into the request path.
        "repro.execution.retry",
        "repro.serving",
        "repro.utils.serialization",
    )

    def test_serving_error_is_a_top_level_export(self):
        import repro

        assert repro.ServingError is ServingError
        assert "ServingError" in repro.__all__

    def test_request_path_never_imports_disclosure_code(self):
        """Audit every import in src/repro/serving: zero disclosure/pipeline
        code can run while serving, so serving can never spend budget."""
        serving_dir = Path(__file__).resolve().parent.parent / "src" / "repro" / "serving"
        offenders = []
        for source_path in sorted(serving_dir.glob("*.py")):
            tree = ast.parse(source_path.read_text(), filename=str(source_path))
            for node in ast.walk(tree):
                names = []
                if isinstance(node, ast.Import):
                    names = [alias.name for alias in node.names]
                elif isinstance(node, ast.ImportFrom):
                    names = [node.module or ""]
                for name in names:
                    if name.startswith("repro") and not name.startswith(self.ALLOWED):
                        offenders.append(f"{source_path.name}: {name}")
        assert not offenders, offenders


class TestPublisherServe:
    def test_publisher_serve_persists_then_serves(self, dblp_graph, policy, tmp_path):
        from repro.core.publisher import GraphPublisher

        publisher = GraphPublisher(dblp_graph, rng=3)
        release = publisher.release(epsilon_g=0.9)
        server = publisher.serve(release, policy, tmp_path / "store")
        key = server.store.keys()[0]
        with server:
            payload = fetch_json(server.url, f"/releases/{key}/views/public")
        assert payload["release"] == policy.view_for("public", release).to_dict()


class TestCliServe:
    def _start_cli(self, store_dir, policy_path, *extra):
        env = dict(os.environ)
        env["PYTHONPATH"] = str(Path(__file__).resolve().parent.parent / "src")
        process = subprocess.Popen(
            [
                sys.executable,
                "-m",
                "repro.cli",
                "serve",
                "--store",
                str(store_dir),
                "--policy",
                str(policy_path),
                "--port",
                "0",
                *extra,
            ],
            stdout=subprocess.PIPE,
            stderr=subprocess.PIPE,
            text=True,
            env=env,
        )
        line_holder = {}

        def read_banner():
            line_holder["line"] = process.stdout.readline()

        reader = threading.Thread(target=read_banner, daemon=True)
        reader.start()
        reader.join(timeout=30)
        return process, line_holder.get("line", "")

    def test_repro_serve_end_to_end(self, release, policy, tmp_path):
        """`repro serve` serves a stored release over real HTTP: two roles'
        views bit-match AccessPolicy.view_for applied to the stored release."""
        store = ReleaseStore(tmp_path / "store")
        key = store.save(release)
        policy_path = to_json_file(policy.to_dict(), tmp_path / "policy.json")

        process, banner = self._start_cli(tmp_path / "store", policy_path)
        try:
            assert "http://" in banner, (banner, process.stderr.read() if process.poll() else "")
            url = banner.strip().rsplit(" on ", 1)[1]
            stored = store.load(key)
            for role in ("analyst", "public"):
                payload = fetch_json(url, f"/releases/{key}/views/{role}")
                assert payload["release"] == policy.view_for(role, stored).to_dict()
            assert fetch_json(url, "/healthz")["status"] == "ok"
        finally:
            process.terminate()
            process.wait(timeout=10)

    def test_serve_missing_policy_file_is_error(self, tmp_path, capsys):
        from repro.cli import main

        (tmp_path / "store").mkdir()
        code = main(
            [
                "serve",
                "--store",
                str(tmp_path / "store"),
                "--policy",
                str(tmp_path / "missing.json"),
            ]
        )
        assert code == 2
        assert "does not exist" in capsys.readouterr().err

    def test_serve_missing_store_directory_is_error(self, policy, tmp_path, capsys):
        """A typo'd store path must fail fast, not serve an empty store."""
        from repro.cli import main

        policy_path = to_json_file(policy.to_dict(), tmp_path / "policy.json")
        code = main(
            ["serve", "--store", str(tmp_path / "relaeses"), "--policy", str(policy_path)]
        )
        assert code == 2
        assert "store directory" in capsys.readouterr().err

    def test_serve_parser_requires_store_and_policy(self):
        from repro.cli import build_parser

        with pytest.raises(SystemExit):
            build_parser().parse_args(["serve", "--policy", "p.json"])
        with pytest.raises(SystemExit):
            build_parser().parse_args(["serve", "--store", "s"])


class TestLoadShedding:
    """S3: bounded in-flight requests shed cleanly and recover."""

    def _slow_served(self, release, policy, delay, **server_kwargs):
        from repro.core.store import MemoryBackend
        from repro.execution.faults import FaultInjectingBackend

        backend = FaultInjectingBackend(MemoryBackend(), delay={"get_document": delay})
        store = ReleaseStore(backend)
        key = store.save(release)
        server = ReleaseServer(store, policy, port=0, **server_kwargs)
        return server, key

    def test_overload_sheds_with_retry_after_and_socket_stays_aligned(
        self, release, policy
    ):
        import http.client
        import time

        server, key = self._slow_served(release, policy, delay=1.0, max_in_flight=1)
        with server:
            slow = threading.Thread(
                target=http_get, args=(f"{server.url}/releases/{key}",), daemon=True
            )
            slow.start()
            time.sleep(0.3)  # let the slow request occupy the only slot

            connection = http.client.HTTPConnection(server.host, server.port)
            try:
                # Keep-alive client during overload: clean 503 + Retry-After.
                connection.request("GET", "/releases")
                response = connection.getresponse()
                assert response.status == 503
                assert response.getheader("Retry-After") is not None
                payload = json.loads(response.read())
                assert "in-flight" in payload["error"]

                # /healthz is exempt: the probe sees through the overload
                # and reports the shed on the same, still-aligned socket.
                connection.request("GET", "/healthz")
                response = connection.getresponse()
                assert response.status == 200
                health = json.loads(response.read())
                assert health["fault_tolerance"]["shed"] >= 1

                # Once the load drops the same socket serves 200s again.
                slow.join(timeout=10)
                connection.request("GET", "/releases")
                response = connection.getresponse()
                assert response.status == 200
                assert json.loads(response.read())["releases"] == [key]
            finally:
                connection.close()

    def test_handler_timeout_answers_503(self, release, policy):
        server, key = self._slow_served(
            release, policy, delay=5.0, handler_timeout=0.2
        )
        with server:
            status, body = http_get(f"{server.url}/releases/{key}")
            assert status == 503
            assert "timeout" in json.loads(body)["error"]
            assert server.stats.handler_timeouts == 1
            # No quarantine involved: the server is slow, not corrupt.
            assert fetch_json(server.url, "/healthz")["status"] == "ok"

    def test_unbounded_server_never_sheds(self, served):
        payload = fetch_json(served.server.url, "/healthz")
        assert payload["fault_tolerance"]["shed"] == 0

    def test_bad_limits_rejected(self, release, policy):
        from repro.exceptions import ValidationError

        store = ReleaseStore.in_memory()
        with pytest.raises(ValidationError):
            ReleaseServer(store, policy, port=0, max_in_flight=0)
        with pytest.raises(ValidationError):
            ReleaseServer(store, policy, port=0, handler_timeout=-1.0)


class TestQuarantine:
    """A corrupt stored artefact answers 500 once, then fast 404s."""

    def test_corrupt_release_is_quarantined_then_recovers(
        self, release, policy, tmp_path
    ):
        store = ReleaseStore(tmp_path / "store")
        key = store.save(release)
        (store.path_for(key) / ReleaseStore.DOCUMENT_NAME).write_text("{broken")
        with ReleaseServer(store, policy, port=0) as server:
            # First read: the honest 500 — and the key is quarantined.
            status, body = http_get(f"{server.url}/releases/{key}/views/public")
            assert status == 500
            assert "cannot be served" in json.loads(body)["error"]

            # Later requests: fast 404 with the corruption reason, instead
            # of re-reading (and re-failing on) the artefact.
            for path in (f"/releases/{key}/views/public", f"/releases/{key}"):
                status, body = http_get(server.url + path)
                assert status == 404
                assert "quarantined" in json.loads(body)["error"]

            # Health reports the degradation while it lasts.
            health = fetch_json(server.url, "/healthz")
            assert health["status"] == "degraded"
            assert key in health["fault_tolerance"]["quarantined"]
            assert health["fault_tolerance"]["backend_errors"] >= 1

            # Republishing the key changes the store fingerprint, which
            # clears the quarantine: the next read serves the fresh bytes.
            store.save(release, key=key)
            payload = fetch_json(server.url, f"/releases/{key}/views/public")
            assert payload["role"] == "public"
            assert fetch_json(server.url, "/healthz")["status"] == "ok"


class TestClientRetry:
    def test_retries_503_until_success(self, tmp_path):
        from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer

        from repro.execution.retry import RetryPolicy

        counts = {"requests": 0}

        class Flaky(BaseHTTPRequestHandler):
            def log_message(self, *args):
                pass

            def do_GET(self):
                counts["requests"] += 1
                if counts["requests"] < 3:
                    body = b'{"error": "overloaded"}'
                    self.send_response(503)
                    self.send_header("Retry-After", "1")
                else:
                    body = b'{"ok": true}'
                    self.send_response(200)
                self.send_header("Content-Type", "application/json")
                self.send_header("Content-Length", str(len(body)))
                self.end_headers()
                self.wfile.write(body)

        httpd = ThreadingHTTPServer(("127.0.0.1", 0), Flaky)
        thread = threading.Thread(target=httpd.serve_forever, daemon=True)
        thread.start()
        url = f"http://127.0.0.1:{httpd.server_address[1]}"
        try:
            policy = RetryPolicy(max_attempts=4, backoff_base=0.01, jitter=0.0)
            payload = fetch_json(url, "/anything", retry=policy)
            assert payload == {"ok": True}
            assert counts["requests"] == 3
        finally:
            httpd.shutdown()
            thread.join()
            httpd.server_close()

    def test_503s_exhaust_the_attempt_budget(self, tmp_path):
        from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer

        from repro.execution.retry import RetryPolicy

        class AlwaysShedding(BaseHTTPRequestHandler):
            def log_message(self, *args):
                pass

            def do_GET(self):
                body = b'{"error": "overloaded"}'
                self.send_response(503)
                self.send_header("Content-Length", str(len(body)))
                self.end_headers()
                self.wfile.write(body)

        httpd = ThreadingHTTPServer(("127.0.0.1", 0), AlwaysShedding)
        thread = threading.Thread(target=httpd.serve_forever, daemon=True)
        thread.start()
        url = f"http://127.0.0.1:{httpd.server_address[1]}"
        try:
            policy = RetryPolicy(max_attempts=2, backoff_base=0.01, jitter=0.0)
            status, _ = http_get(f"{url}/x", retry=policy)
            assert status == 503  # final attempt's outcome, returned not raised
        finally:
            httpd.shutdown()
            thread.join()
            httpd.server_close()

    def test_transport_failures_retry_then_raise(self):
        import socket

        from repro.execution.retry import RetryPolicy

        # Reserve a port and close it: connections are refused.
        probe = socket.socket()
        probe.bind(("127.0.0.1", 0))
        port = probe.getsockname()[1]
        probe.close()
        policy = RetryPolicy(max_attempts=2, backoff_base=0.01, jitter=0.0)
        with pytest.raises(ServingError):
            http_get(f"http://127.0.0.1:{port}/healthz", timeout=0.5, retry=policy)
