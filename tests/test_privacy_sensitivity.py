"""Tests for sensitivity computations."""

import pytest

from repro.exceptions import SensitivityError
from repro.grouping.partition import Group, Partition
from repro.privacy.sensitivity import (
    association_count_sensitivity,
    cross_level_sensitivities,
    group_count_sensitivity,
    group_workload_l1_sensitivity,
    group_workload_l2_sensitivity,
    individual_count_sensitivity,
    node_count_sensitivity,
    per_group_incident_counts,
    scale_sensitivity,
)


class TestScalarSensitivities:
    def test_individual_is_one(self):
        assert individual_count_sensitivity() == 1.0

    def test_node_is_max_degree(self, tiny_graph):
        assert node_count_sensitivity(tiny_graph) == 2.0

    def test_node_with_degree_bound(self, tiny_graph):
        assert node_count_sensitivity(tiny_graph, degree_bound=1) == 1.0

    def test_group_sensitivity_two_group_partition(self, tiny_graph, tiny_partition):
        assert group_count_sensitivity(tiny_graph, tiny_partition) == 5.0

    def test_group_sensitivity_monotone_in_coarseness(self, dblp_graph, dblp_hierarchy):
        # Coarser levels can only have larger (or equal) worst-case incident mass.
        values = [
            group_count_sensitivity(dblp_graph, dblp_hierarchy.partition_at(level))
            for level in dblp_hierarchy.level_indices()
        ]
        assert all(b >= a for a, b in zip(values, values[1:]))

    def test_group_sensitivity_empty_partition_raises(self, tiny_graph):
        with pytest.raises(SensitivityError):
            group_count_sensitivity(tiny_graph, Partition([]))


class TestPerGroupCounts:
    def test_incident_counts(self, tiny_graph):
        partition = Partition(
            [
                Group("g1", frozenset(["bob", "carol"])),
                Group("g2", frozenset(["dave", "erin"])),
            ]
        )
        counts = per_group_incident_counts(tiny_graph, partition)
        assert counts == {"g1": 3, "g2": 2}

    def test_workload_l1_is_max_induced_count(self, tiny_graph):
        partition = Partition(
            [
                Group("g1", frozenset(["bob", "insulin", "aspirin"])),
                Group("g2", frozenset(["carol", "dave", "statin", "erin", "zoloft"])),
            ]
        )
        # g1 induces 2 associations, g2 induces 1 (dave-statin).
        assert group_workload_l1_sensitivity(tiny_graph, partition) == 2.0
        assert group_workload_l2_sensitivity(tiny_graph, partition) == 2.0

    def test_workload_sensitivity_empty_partition_raises(self, tiny_graph):
        with pytest.raises(SensitivityError):
            group_workload_l1_sensitivity(tiny_graph, Partition([]))


class TestCrossLevel:
    def test_cross_level_matches_per_level(self, dblp_graph, dblp_hierarchy):
        partitions = {
            level: dblp_hierarchy.partition_at(level) for level in dblp_hierarchy.level_indices()
        }
        values = cross_level_sensitivities(dblp_graph, partitions)
        for level, partition in partitions.items():
            assert values[level] == group_count_sensitivity(dblp_graph, partition)


class TestScaleAndDispatch:
    def test_scale_sensitivity(self):
        assert scale_sensitivity(2.0, 3.0) == 6.0

    def test_scale_sensitivity_rejects_nonpositive(self):
        with pytest.raises(SensitivityError):
            scale_sensitivity(0.0, 1.0)
        with pytest.raises(SensitivityError):
            scale_sensitivity(1.0, -2.0)

    def test_dispatch_individual(self, tiny_graph):
        assert association_count_sensitivity(tiny_graph, "individual") == 1.0

    def test_dispatch_node(self, tiny_graph):
        assert association_count_sensitivity(tiny_graph, "node") == 2.0

    def test_dispatch_group(self, tiny_graph, tiny_partition):
        assert association_count_sensitivity(tiny_graph, "group", partition=tiny_partition) == 5.0

    def test_dispatch_group_without_partition_raises(self, tiny_graph):
        with pytest.raises(SensitivityError):
            association_count_sensitivity(tiny_graph, "group")

    def test_dispatch_unknown_adjacency_raises(self, tiny_graph):
        with pytest.raises(SensitivityError):
            association_count_sensitivity(tiny_graph, "household")
