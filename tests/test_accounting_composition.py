"""Tests for composition theorems."""

import math

import pytest

from repro.accounting.composition import (
    advanced_composition,
    basic_composition,
    parallel_composition,
    tighter_of,
)
from repro.exceptions import InvalidPrivacyParameterError
from repro.mechanisms.base import PrivacyCost


class TestBasicComposition:
    def test_sums_epsilons_and_deltas(self):
        total = basic_composition([PrivacyCost(0.1, 1e-6), PrivacyCost(0.2, 2e-6), PrivacyCost(0.3)])
        assert total.epsilon == pytest.approx(0.6)
        assert total.delta == pytest.approx(3e-6)

    def test_empty_iterable_is_zero(self):
        total = basic_composition([])
        assert total.epsilon == 0.0 and total.delta == 0.0

    def test_delta_capped(self):
        total = basic_composition([PrivacyCost(1.0, 0.8), PrivacyCost(1.0, 0.8)])
        assert total.delta == 1.0


class TestParallelComposition:
    def test_takes_worst_cost(self):
        total = parallel_composition([PrivacyCost(0.1, 1e-7), PrivacyCost(0.5, 1e-9), PrivacyCost(0.3)])
        assert total.epsilon == 0.5
        assert total.delta == 1e-7

    def test_empty_is_zero(self):
        total = parallel_composition([])
        assert total.epsilon == 0.0

    def test_never_exceeds_basic(self):
        costs = [PrivacyCost(0.2, 1e-6)] * 5
        assert parallel_composition(costs).epsilon <= basic_composition(costs).epsilon


class TestAdvancedComposition:
    def test_formula(self):
        epsilon, delta, k, delta_prime = 0.1, 1e-6, 100, 1e-5
        result = advanced_composition(epsilon, delta, k, delta_prime)
        expected_eps = math.sqrt(2 * k * math.log(1 / delta_prime)) * epsilon + k * epsilon * (
            math.exp(epsilon) - 1
        )
        assert result.epsilon == pytest.approx(expected_eps)
        assert result.delta == pytest.approx(k * delta + delta_prime)

    def test_beats_basic_for_many_small_epsilons(self):
        epsilon, k = 0.01, 10_000
        advanced = advanced_composition(epsilon, 0.0, k, 1e-6)
        basic = basic_composition([PrivacyCost(epsilon)] * k)
        assert advanced.epsilon < basic.epsilon

    def test_invalid_parameters(self):
        with pytest.raises(InvalidPrivacyParameterError):
            advanced_composition(-0.1, 0.0, 10, 1e-6)
        with pytest.raises(InvalidPrivacyParameterError):
            advanced_composition(0.1, 0.0, 0, 1e-6)
        with pytest.raises(InvalidPrivacyParameterError):
            advanced_composition(0.1, 0.0, 10, 0.0)
        with pytest.raises(InvalidPrivacyParameterError):
            advanced_composition(0.1, 2.0, 10, 1e-6)


class TestTighterOf:
    def test_returns_smallest_epsilon(self):
        best = tighter_of([PrivacyCost(0.5, 0.0), PrivacyCost(0.2, 1e-5), PrivacyCost(0.9)])
        assert best.epsilon == 0.2

    def test_empty_raises(self):
        with pytest.raises(InvalidPrivacyParameterError):
            tighter_of([])
