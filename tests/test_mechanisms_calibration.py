"""Tests for noise-scale calibration formulas."""

import math

import pytest

from repro.exceptions import ValidationError
from repro.mechanisms.calibration import (
    analytic_gaussian_sigma,
    gaussian_sigma,
    geometric_alpha,
    laplace_scale,
)


class TestLaplaceScale:
    def test_formula(self):
        assert laplace_scale(0.5, 2.0) == 4.0
        assert laplace_scale(1.0, 1.0) == 1.0

    def test_monotone_in_epsilon(self):
        assert laplace_scale(0.1, 1.0) > laplace_scale(1.0, 1.0)

    def test_monotone_in_sensitivity(self):
        assert laplace_scale(1.0, 10.0) > laplace_scale(1.0, 1.0)

    def test_invalid_parameters(self):
        with pytest.raises(ValidationError):
            laplace_scale(0.0, 1.0)
        with pytest.raises(ValidationError):
            laplace_scale(1.0, -1.0)


class TestGaussianSigma:
    def test_known_value(self):
        expected = math.sqrt(2 * math.log(1.25 / 1e-5))
        assert gaussian_sigma(1.0, 1e-5, 1.0) == pytest.approx(expected)

    def test_scales_linearly_with_sensitivity(self):
        assert gaussian_sigma(1.0, 1e-5, 7.0) == pytest.approx(7 * gaussian_sigma(1.0, 1e-5, 1.0))

    def test_inverse_in_epsilon(self):
        assert gaussian_sigma(0.5, 1e-5, 1.0) == pytest.approx(2 * gaussian_sigma(1.0, 1e-5, 1.0))

    def test_smaller_delta_needs_more_noise(self):
        assert gaussian_sigma(1.0, 1e-9, 1.0) > gaussian_sigma(1.0, 1e-3, 1.0)

    def test_invalid_delta(self):
        with pytest.raises(ValidationError):
            gaussian_sigma(1.0, 0.0, 1.0)
        with pytest.raises(ValidationError):
            gaussian_sigma(1.0, 1.0, 1.0)


class TestGeometricAlpha:
    def test_formula(self):
        assert geometric_alpha(1.0, 1.0) == pytest.approx(math.exp(-1.0))

    def test_alpha_in_unit_interval(self):
        for eps in (0.1, 1.0, 5.0):
            assert 0.0 < geometric_alpha(eps, 1.0) < 1.0

    def test_larger_epsilon_smaller_alpha(self):
        assert geometric_alpha(2.0, 1.0) < geometric_alpha(0.5, 1.0)


class TestAnalyticGaussianSigma:
    def test_never_worse_than_classic_for_small_epsilon(self):
        classic = gaussian_sigma(0.5, 1e-5, 1.0)
        analytic = analytic_gaussian_sigma(0.5, 1e-5, 1.0)
        assert analytic <= classic + 1e-9

    def test_valid_for_epsilon_above_one(self):
        sigma = analytic_gaussian_sigma(3.0, 1e-5, 1.0)
        assert 0 < sigma < gaussian_sigma(0.999, 1e-5, 1.0)

    def test_scales_with_sensitivity(self):
        ratio = analytic_gaussian_sigma(1.0, 1e-5, 10.0) / analytic_gaussian_sigma(1.0, 1e-5, 1.0)
        assert ratio == pytest.approx(10.0, rel=1e-3)

    def test_monotone_in_epsilon(self):
        assert analytic_gaussian_sigma(0.2, 1e-5, 1.0) > analytic_gaussian_sigma(1.0, 1e-5, 1.0)

    def test_satisfies_privacy_loss_constraint(self):
        # Verify the returned sigma actually satisfies the analytic condition.
        from scipy import special

        epsilon, delta, sensitivity = 0.7, 1e-6, 3.0
        sigma = analytic_gaussian_sigma(epsilon, delta, sensitivity)

        def phi(t):
            return 0.5 * (1.0 + special.erf(t / math.sqrt(2.0)))

        loss = phi(sensitivity / (2 * sigma) - epsilon * sigma / sensitivity) - math.exp(
            epsilon
        ) * phi(-sensitivity / (2 * sigma) - epsilon * sigma / sensitivity)
        assert loss <= delta + 1e-9
