"""Property-based parity suite: the vectorized engine equals the reference engine.

Three layers of parity, each exact (no tolerances):

* **query parity** — for randomized graphs and partitions every vectorized
  query answer (``evaluate_arrays`` / ``evaluate_batch``) equals the
  reference answer bit for bit;
* **mechanism parity** — ``randomise_batch`` with seed ``s`` matches the
  same-shape draw from a fresh generator for every numeric mechanism, and
  ``randomise_many`` matches per-answer draws for the stream-concatenating
  families (Gaussian, Laplace);
* **pipeline parity** — ``engine="reference"`` and ``engine="vectorized"``
  produce identical multi-level releases under the same seed for the
  Gaussian/Laplace mechanism families, and identical true answers always.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.config import DisclosureConfig
from repro.core.discloser import MultiLevelDiscloser
from repro.baselines.individual_dp import IndividualDPDiscloser
from repro.baselines.naive_group import NaiveGroupDPDiscloser
from repro.baselines.safe_grouping import SafeGroupingDiscloser
from repro.baselines.uniform_noise import UniformNoiseDiscloser
from repro.datasets.dblp_like import generate_dblp_like
from repro.graphs.bipartite import BipartiteGraph, Side
from repro.grouping.partition import Group, Partition
from repro.grouping.specialization import SpecializationConfig, Specializer
from repro.mechanisms.gaussian import AnalyticGaussianMechanism, GaussianMechanism
from repro.mechanisms.geometric import GeometricMechanism
from repro.mechanisms.laplace import LaplaceMechanism
from repro.queries.counts import GroupedAssociationCountQuery, TotalAssociationCountQuery
from repro.queries.cross import CrossGroupCountQuery
from repro.queries.degree import DegreeHistogramQuery
from repro.queries.workload import QueryWorkload

MECHANISMS = [
    pytest.param(lambda rng: LaplaceMechanism(epsilon=0.7, sensitivity=3.0, rng=rng), id="laplace"),
    pytest.param(lambda rng: GeometricMechanism(epsilon=0.7, sensitivity=3.0, rng=rng), id="geometric"),
    pytest.param(lambda rng: GaussianMechanism(epsilon=0.7, delta=1e-5, sensitivity=3.0, rng=rng), id="gaussian"),
    pytest.param(
        lambda rng: AnalyticGaussianMechanism(epsilon=0.7, delta=1e-5, sensitivity=3.0, rng=rng),
        id="analytic_gaussian",
    ),
]


def random_graph(seed: int, max_left: int = 25, max_right: int = 25) -> BipartiteGraph:
    """A small random bipartite graph (may have isolated nodes / empty sides)."""
    rng = np.random.default_rng(seed)
    num_left = int(rng.integers(0, max_left + 1))
    num_right = int(rng.integers(0, max_right + 1))
    graph = BipartiteGraph(name=f"random-{seed}")
    graph.add_left_nodes([f"a{i}" for i in range(num_left)])
    graph.add_right_nodes([f"b{j}" for j in range(num_right)])
    if num_left and num_right:
        density = float(rng.uniform(0.0, 0.35))
        mask = rng.random((num_left, num_right)) < density
        graph.add_associations(
            (f"a{i}", f"b{j}") for i, j in zip(*mask.nonzero())
        )
    return graph


def random_partition(graph: BipartiteGraph, seed: int, num_groups: int, include_absent: bool) -> Partition:
    """A random partition of the graph's nodes, optionally with absent members."""
    rng = np.random.default_rng(seed)
    nodes = list(graph.left_nodes()) + list(graph.right_nodes())
    if include_absent:
        nodes = nodes + ["ghost-1", "ghost-2"]
    assignment = rng.integers(0, num_groups, size=len(nodes))
    mapping = {}
    for gid in range(num_groups):
        members = [node for node, a in zip(nodes, assignment) if a == gid]
        if members:
            mapping[f"g{gid}"] = members
    if not mapping:
        mapping = {"g0": nodes or ["ghost-1"]}
    return Partition.from_mapping(mapping)


def side_partition(graph: BipartiteGraph, side: Side, seed: int, num_groups: int) -> Partition:
    rng = np.random.default_rng(seed)
    prefix = "L" if side is Side.LEFT else "R"
    nodes = list(graph.nodes(side))
    # Leave some nodes uncovered so the ignore-uncovered path is exercised.
    keep = [node for node in nodes if rng.random() < 0.8]
    assignment = rng.integers(0, num_groups, size=len(keep))
    mapping = {}
    for gid in range(num_groups):
        members = [node for node, a in zip(keep, assignment) if a == gid]
        if members:
            mapping[f"{prefix}{gid}"] = members
    if not mapping:
        mapping = {f"{prefix}0": [f"{prefix.lower()}ghost"]}
    return Partition.from_mapping(mapping)


def assert_answers_equal(reference, vectorized) -> None:
    assert reference.name == vectorized.name
    assert reference.labels == vectorized.labels
    assert np.array_equal(reference.values, vectorized.values), (
        reference.values,
        vectorized.values,
    )


# ----------------------------------------------------------------------
# Query parity
# ----------------------------------------------------------------------
@settings(max_examples=40, deadline=None)
@given(seed=st.integers(0, 10_000))
def test_total_count_parity(seed):
    graph = random_graph(seed)
    query = TotalAssociationCountQuery()
    assert_answers_equal(query.evaluate(graph), query.evaluate_arrays(graph))


@settings(max_examples=40, deadline=None)
@given(seed=st.integers(0, 10_000), num_groups=st.integers(1, 8), absent=st.booleans())
def test_grouped_count_parity(seed, num_groups, absent):
    graph = random_graph(seed)
    partition = random_partition(graph, seed + 1, num_groups, include_absent=absent)
    query = GroupedAssociationCountQuery(partition)
    assert_answers_equal(query.evaluate(graph), query.evaluate_arrays(graph))


@settings(max_examples=40, deadline=None)
@given(seed=st.integers(0, 10_000), max_degree=st.integers(1, 12), left=st.booleans())
def test_degree_histogram_parity(seed, max_degree, left):
    graph = random_graph(seed)
    query = DegreeHistogramQuery(side=Side.LEFT if left else Side.RIGHT, max_degree=max_degree)
    assert_answers_equal(query.evaluate(graph), query.evaluate_arrays(graph))


@settings(max_examples=40, deadline=None)
@given(seed=st.integers(0, 10_000), nl=st.integers(1, 5), nr=st.integers(1, 5))
def test_cross_group_parity(seed, nl, nr):
    graph = random_graph(seed)
    left = side_partition(graph, Side.LEFT, seed + 2, nl)
    right = side_partition(graph, Side.RIGHT, seed + 3, nr)
    query = CrossGroupCountQuery(left, right)
    assert_answers_equal(query.evaluate(graph), query.evaluate_arrays(graph))


@settings(max_examples=20, deadline=None)
@given(seed=st.integers(0, 10_000))
def test_workload_evaluate_batch_parity(seed):
    graph = random_graph(seed)
    partition = random_partition(graph, seed + 1, 5, include_absent=False)
    workload = QueryWorkload(
        [
            TotalAssociationCountQuery(),
            GroupedAssociationCountQuery(partition),
            DegreeHistogramQuery(max_degree=10),
            CrossGroupCountQuery(
                side_partition(graph, Side.LEFT, seed + 2, 3),
                side_partition(graph, Side.RIGHT, seed + 3, 3),
            ),
        ]
    )
    reference = workload.evaluate(graph)
    vectorized = workload.evaluate_batch(graph)
    assert set(reference) == set(vectorized)
    for name in reference:
        assert_answers_equal(reference[name], vectorized[name])


def test_evaluate_batch_reflects_mutation():
    """A workload answered after a mutation must see the mutated graph."""
    graph = random_graph(17)
    workload = QueryWorkload([TotalAssociationCountQuery(), DegreeHistogramQuery(max_degree=5)])
    before = workload.evaluate_batch(graph)
    graph.add_left_node("new-author")
    graph.add_right_node("new-paper")
    graph.add_association("new-author", "new-paper")
    after = workload.evaluate_batch(graph)
    assert after["total_association_count"].scalar() == before["total_association_count"].scalar() + 1
    for name in after:
        assert_answers_equal(workload.evaluate(graph)[name], after[name])


# ----------------------------------------------------------------------
# Mechanism parity
# ----------------------------------------------------------------------
@pytest.mark.parametrize("make_mechanism", MECHANISMS)
@settings(max_examples=20, deadline=None)
@given(seed=st.integers(0, 10_000), size=st.integers(1, 40))
def test_randomise_batch_matches_fresh_generator(make_mechanism, seed, size):
    values = np.arange(size, dtype=float) * 3.5
    noised = make_mechanism(seed).randomise_batch(values)
    fresh = make_mechanism(seed)
    expected = values + fresh.sample_noise(size=values.shape)
    assert np.array_equal(noised, np.atleast_1d(expected))


@pytest.mark.parametrize("make_mechanism", MECHANISMS)
def test_randomise_batch_scalar_promotes_to_array(make_mechanism):
    noised = make_mechanism(0).randomise_batch(12.0)
    assert isinstance(noised, np.ndarray) and noised.shape == (1,)


@pytest.mark.parametrize("make_mechanism", [MECHANISMS[0], MECHANISMS[2], MECHANISMS[3]])
@settings(max_examples=15, deadline=None)
@given(seed=st.integers(0, 10_000), sizes=st.lists(st.integers(1, 9), min_size=1, max_size=5))
def test_randomise_many_matches_sequential_randomise(make_mechanism, seed, sizes):
    """Gaussian/Laplace generators fill batched draws sequentially, so one
    concatenated draw equals per-answer draws under the same seed."""
    answers = [np.arange(size, dtype=float) + 100.0 * index for index, size in enumerate(sizes)]
    batched = make_mechanism(seed).randomise_many(answers)
    sequential_mechanism = make_mechanism(seed)
    sequential = [sequential_mechanism.randomise(a) for a in answers]
    assert len(batched) == len(sequential)
    for got, expected in zip(batched, sequential):
        assert np.array_equal(got, np.atleast_1d(expected))


def test_randomise_many_preserves_shapes_and_empty():
    mech = LaplaceMechanism(epsilon=1.0, rng=0)
    out = mech.randomise_many([np.zeros((2, 3)), 5.0, [1.0, 2.0]])
    assert out[0].shape == (2, 3) and out[1].shape == (1,) and out[2].shape == (2,)
    assert mech.randomise_many([]) == []


def test_geometric_randomise_batch_stays_integral():
    values = np.array([3.0, 10.0, 0.0])
    noised = GeometricMechanism(epsilon=0.5, rng=4).randomise_batch(values)
    assert np.array_equal(noised, np.round(noised))


# ----------------------------------------------------------------------
# Pipeline parity
# ----------------------------------------------------------------------
def _release_pair(mechanism: str, seed: int, queries=None):
    releases = {}
    for engine in ("reference", "vectorized"):
        graph = generate_dblp_like(num_authors=120, seed=9)
        config = DisclosureConfig(
            epsilon_g=0.8,
            mechanism=mechanism,
            specialization=SpecializationConfig(num_levels=5),
            engine=engine,
        )
        discloser = MultiLevelDiscloser(config=config, queries=queries, rng=seed)
        releases[engine] = discloser.disclose(graph)
    return releases["reference"], releases["vectorized"]


@pytest.mark.parametrize("mechanism", ["gaussian", "laplace", "analytic_gaussian"])
def test_discloser_release_parity(mechanism):
    reference, vectorized = _release_pair(mechanism, seed=31)
    assert reference.levels() == vectorized.levels()
    for level in reference.levels():
        ref_level, vec_level = reference.level(level), vectorized.level(level)
        assert ref_level.sensitivity == vec_level.sensitivity
        assert ref_level.noise_scale == vec_level.noise_scale
        assert ref_level.answers == vec_level.answers


def test_discloser_release_parity_multi_query_workload():
    queries = [TotalAssociationCountQuery(), DegreeHistogramQuery(max_degree=15)]
    reference, vectorized = _release_pair("gaussian", seed=5, queries=queries)
    for level in reference.levels():
        assert reference.level(level).answers == vectorized.level(level).answers


def test_discloser_geometric_true_answer_parity():
    """Geometric batch noise interleaves its two streams differently, so only
    the *true* answers (and calibration) are asserted identical."""
    reference, vectorized = _release_pair("geometric", seed=13)
    assert reference.levels() == vectorized.levels()
    for level in reference.levels():
        assert reference.level(level).sensitivity == vectorized.level(level).sensitivity
        assert reference.level(level).noise_scale == vectorized.level(level).noise_scale


def test_specializer_hierarchy_parity():
    """Phase-1 split scoring is bit-identical with and without compiled arrays."""
    hierarchies = {}
    for engine in ("reference", "vectorized"):
        graph = generate_dblp_like(num_authors=150, seed=21)
        if engine == "vectorized":
            graph.arrays()
        specializer = Specializer(config=SpecializationConfig(num_levels=5), rng=77)
        hierarchies[engine] = specializer.build(graph).hierarchy
    ref, vec = hierarchies["reference"], hierarchies["vectorized"]
    assert ref.level_indices() == vec.level_indices()
    for level in ref.level_indices():
        ref_groups = {g.group_id: g.members for g in ref.partition_at(level).groups()}
        vec_groups = {g.group_id: g.members for g in vec.partition_at(level).groups()}
        assert ref_groups == vec_groups


@pytest.mark.parametrize("baseline", ["individual", "naive", "uniform"])
def test_baseline_engine_parity(baseline):
    def build(engine):
        # A fresh graph per engine: the opportunistic cached-arrays fast
        # paths key off the graph object, so sharing one graph would let the
        # vectorized run leave compiled arrays behind and silently
        # accelerate (and thereby stop discriminating) the reference run.
        graph = generate_dblp_like(num_authors=200, seed=42)
        hierarchy = Specializer(config=SpecializationConfig(num_levels=5), rng=11).build(graph).hierarchy
        if baseline == "individual":
            return IndividualDPDiscloser(mechanism="gaussian", rng=3, engine=engine).as_multi_level_release(
                graph, hierarchy
            )
        if baseline == "naive":
            return NaiveGroupDPDiscloser(rng=3, engine=engine).disclose(graph, hierarchy)
        return UniformNoiseDiscloser(rng=3, engine=engine).disclose(graph, hierarchy)

    reference, vectorized = build("reference"), build("vectorized")
    assert reference.levels() == vectorized.levels()
    for level in reference.levels():
        assert reference.level(level).answers == vectorized.level(level).answers


def test_split_scores_parity_for_non_prefix_candidates():
    """The batched prefix-sum scorer must reject candidate sets that are not
    prefix cuts of one shared ordering and fall back to per-split scoring."""
    from repro.grouping.scores import BalancedAssociationScore
    from repro.grouping.splitters import CandidateSplit

    graph = BipartiteGraph()
    graph.add_left_nodes(["a0", "a1"])
    graph.add_right_nodes(["b0", "b1"])
    graph.add_associations([("a0", "b0"), ("a0", "b1"), ("a1", "b1")])
    # Same part_a, different (non-complementary) part_b: a custom splitter
    # could legally produce this shape.
    splits = [
        CandidateSplit(part_a=("a0",), part_b=("b0",)),
        CandidateSplit(part_a=("a0",), part_b=("b1",)),
        CandidateSplit(part_a=("a1", "b0"), part_b=("b1",)),
    ]
    score = BalancedAssociationScore()
    reference = [score.score(graph, split) for split in splits]
    graph.arrays()  # enable the vectorized path
    vectorized = score.scores(graph, splits)
    assert vectorized.tolist() == reference


def test_safe_grouping_engine_parity(pharmacy_graph):
    reference = SafeGroupingDiscloser(k=3, rng=7, engine="reference").disclose(pharmacy_graph)
    vectorized = SafeGroupingDiscloser(k=3, rng=7, engine="vectorized").disclose(pharmacy_graph)
    assert reference.group_pair_counts == vectorized.group_pair_counts
    assert reference.total_associations() == vectorized.total_associations()


# ----------------------------------------------------------------------
# Executor parity
# ----------------------------------------------------------------------
def _comparable(release):
    """A release document with execution provenance removed.

    ``config`` records *how* the release was produced (executor name, worker
    count); everything else — the noisy answers, guarantees, noise scales,
    level statistics — must be bit-identical across executors.
    """
    document = release.to_dict()
    config = dict(document.get("config", {}))
    config.pop("executor", None)
    config.pop("max_workers", None)
    document["config"] = config
    return document


def _executor_release(executor: str, mechanism: str = "gaussian", queries=None):
    graph = generate_dblp_like(num_authors=150, seed=4)
    config = DisclosureConfig(
        epsilon_g=0.6,
        mechanism=mechanism,
        specialization=SpecializationConfig(num_levels=5),
        executor=executor,
        max_workers=2,
    )
    return MultiLevelDiscloser(config=config, queries=queries, rng=23).disclose(graph)


@pytest.mark.parametrize("mechanism", ["gaussian", "laplace", "analytic_gaussian", "geometric"])
def test_discloser_executor_parity(mechanism):
    """Serial, thread and process disclosures are bit-identical per seed.

    Every level plan carries its own derived SeedSequence, so the executor
    cannot change which noise any level draws — for *all* mechanism families,
    including geometric (whose batched draw interleaves two streams, but
    identically so under every executor).
    """
    serial = _comparable(_executor_release("serial", mechanism))
    thread = _comparable(_executor_release("thread", mechanism))
    process = _comparable(_executor_release("process", mechanism))
    assert thread == serial
    assert process == serial


def test_discloser_executor_parity_multi_query_workload():
    queries = [TotalAssociationCountQuery(), DegreeHistogramQuery(max_degree=15)]
    serial = _comparable(_executor_release("serial", queries=queries))
    process = _comparable(_executor_release("process", queries=queries))
    assert process == serial


def test_disclose_call_executor_override_matches_config_selection():
    """`disclose(executor=...)` and `config.executor` are the same code path,
    and the release config records the executor that actually ran."""
    graph = generate_dblp_like(num_authors=150, seed=4)
    via_config = _executor_release("thread")
    discloser = MultiLevelDiscloser(
        config=DisclosureConfig(
            epsilon_g=0.6,
            specialization=SpecializationConfig(num_levels=5),
            max_workers=2,
        ),
        rng=23,
    )
    via_call = discloser.disclose(graph, executor="thread")
    assert _comparable(via_call) == _comparable(via_config)
    # Provenance: the override, not the config default, is persisted.
    assert via_call.to_dict()["config"]["executor"] == "thread"
    assert via_config.to_dict()["config"]["executor"] == "thread"


def test_figure1_result_records_executor_override():
    from repro.evaluation.figure1 import Figure1Config, run_figure1_trials

    config = Figure1Config(num_levels=4, num_trials=2, scale="tiny", seed=3)
    result = run_figure1_trials(config=config, executor="thread")
    assert result.to_dict()["config"]["executor"] == "thread"


def test_figure1_trials_executor_parity():
    """The per-trial Monte-Carlo fan-out is executor-independent: every trial
    derives its streams from ``(seed, trial index)``, never from shared
    generator state."""
    from repro.evaluation.figure1 import Figure1Config, run_figure1_trials

    config = Figure1Config(num_levels=4, num_trials=5, scale="tiny", seed=3)
    serial = run_figure1_trials(config=config, executor="serial").to_dict()
    thread = run_figure1_trials(config=config, executor="thread").to_dict()
    process = run_figure1_trials(config=config, executor="process").to_dict()
    assert thread["series"] == serial["series"]
    assert process["series"] == serial["series"]
    assert thread["sensitivities"] == serial["sensitivities"]
    assert process["sensitivities"] == serial["sensitivities"]


def test_figure1_executor_parity():
    """run_figure1 draws all noise before the fan-out (common random
    numbers), so the executor cannot perturb the golden regression."""
    from repro.evaluation.figure1 import Figure1Config, run_figure1

    config = Figure1Config(num_levels=4, num_trials=10, scale="tiny", seed=3)
    serial = run_figure1(config=config, executor="serial").to_dict()
    process = run_figure1(config=config, executor="process").to_dict()
    assert process["series"] == serial["series"]


# ----------------------------------------------------------------------
# Fault-tolerance parity: a disturbed run equals the undisturbed run.
# ----------------------------------------------------------------------
def _chaos_release(executor, plan, state_dir, retry_policy=None, mechanism="gaussian"):
    from repro.execution.faults import FaultInjectingExecutor

    graph = generate_dblp_like(num_authors=150, seed=4)
    config = DisclosureConfig(
        epsilon_g=0.6,
        mechanism=mechanism,
        specialization=SpecializationConfig(num_levels=5),
    )
    chaos = FaultInjectingExecutor(executor, plan, state_dir, retry_policy=retry_policy)
    try:
        return MultiLevelDiscloser(config=config, rng=23).disclose(graph, executor=chaos)
    finally:
        chaos.close()


@pytest.mark.parametrize("mechanism", ["gaussian", "laplace", "geometric"])
def test_disclosure_parity_under_in_worker_retries(tmp_path, mechanism):
    """Transient per-task failures absorbed by the retry layer cannot change
    the released bytes: retries re-run the *pure* task with the same derived
    seed, and the deterministic backoff never touches the noise streams."""
    from repro.execution import RetryPolicy, ThreadExecutor
    from repro.execution.faults import FaultPlan

    undisturbed = _comparable(_executor_release("serial", mechanism))
    disturbed = _comparable(
        _chaos_release(
            ThreadExecutor(max_workers=2),
            FaultPlan.transient([0, 2], attempts=(1,)),
            tmp_path,
            retry_policy=RetryPolicy(max_attempts=3, backoff_base=0.0, jitter=0.0),
            mechanism=mechanism,
        )
    )
    assert disturbed == undisturbed


def test_disclosure_parity_under_worker_crash_recovery(tmp_path):
    """A worker death mid-map breaks the process pool; the executor rebuilds
    it and resubmits only the unfinished tasks — and because tasks are pure
    and carry their own seeds, the recovered release is bit-identical."""
    from repro.execution import ProcessExecutor
    from repro.execution.faults import FaultPlan, KillWorkerFault

    undisturbed = _comparable(_executor_release("serial"))
    disturbed = _comparable(
        _chaos_release(
            ProcessExecutor(max_workers=2),
            FaultPlan({1: (KillWorkerFault(attempts=(1,)),)}),
            tmp_path,
        )
    )
    assert disturbed == undisturbed


def test_retried_map_parity_across_executors(tmp_path):
    """map_with_retries over faulted tasks returns the same rows as the
    plain serial map of the same pure function, on every executor."""
    from repro.execution import RetryPolicy, SerialExecutor, ThreadExecutor, map_with_retries
    from repro.execution.faults import FaultInjectingExecutor, FaultPlan

    def cube(task):
        return task ** 3

    expected = [cube(task) for task in range(8)]
    policy = RetryPolicy(max_attempts=3, backoff_base=0.0, jitter=0.0)
    for index, inner in enumerate((SerialExecutor(), ThreadExecutor(max_workers=3))):
        chaos = FaultInjectingExecutor(
            inner, FaultPlan.transient([1, 4, 6]), tmp_path / str(index), retry_policy=policy
        )
        try:
            assert chaos.map(cube, list(range(8))) == expected
        finally:
            chaos.close()
