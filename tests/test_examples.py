"""Smoke tests: every example script runs end to end (at reduced scale)."""

import subprocess
import sys
from pathlib import Path

import pytest

EXAMPLES_DIR = Path(__file__).resolve().parent.parent / "examples"


def run_example(name: str, *args: str) -> str:
    """Run an example script in a subprocess and return its stdout."""
    result = subprocess.run(
        [sys.executable, str(EXAMPLES_DIR / name), *args],
        capture_output=True,
        text=True,
        timeout=600,
        check=False,
    )
    assert result.returncode == 0, f"{name} failed:\n{result.stdout}\n{result.stderr}"
    return result.stdout


class TestExamples:
    def test_quickstart(self):
        output = run_example("quickstart.py", "300")
        assert "Privacy certificate" in output
        assert "I9,0" in output

    def test_pharmacy_access_tiers(self):
        output = run_example("pharmacy_access_tiers.py", "300")
        assert "regulator" in output
        assert "psychiatric" in output

    def test_dblp_figure1(self):
        output = run_example("dblp_figure1.py", "tiny")
        assert "Figure 1" in output
        assert "I9,7" in output
        assert "epsilon_g = 0.999" in output

    def test_movie_ratings_workload(self):
        output = run_example("movie_ratings_workload.py", "400")
        assert "group_dp_multilevel" in output
        assert "individual_dp" in output
        assert "naive_group_dp" in output

    def test_serving_quickstart(self):
        output = run_example("serving_quickstart.py", "300")
        assert "serving on http://" in output
        assert "role=analyst" in output
        assert "role=public" in output
        assert "privilege/accuracy trade-off verified" in output
        assert "HTTP 403" in output

    def test_publisher_budget_management(self):
        output = run_example("publisher_budget_management.py", "300")
        assert "Privacy ledger" in output
        assert "refused, as required" in output
        assert "quarterly-refresh" in output

    def test_all_examples_have_docstrings_and_main(self):
        scripts = sorted(EXAMPLES_DIR.glob("*.py"))
        assert len(scripts) >= 5
        for script in scripts:
            source = script.read_text()
            assert source.lstrip().startswith(("#!", '"""', "#")), script
            assert '__name__ == "__main__"' in source, script
