"""Snapshot reduction properties and the sweep-progress serialisation contract.

The load-bearing property (hypothesis-verified): reducing a stream of
:class:`~repro.evaluation.snapshot.TaskEvent`\\ s is a per-key *maximum*
under the total order ``(attempt, state rank)`` — commutative, associative
and idempotent — so **any interleaving or duplication of a valid event
stream reduces to the same aggregate snapshot**.  That is what makes the
append-only stream file safe to rebuild after an interrupted sweep and its
resume have both written to it.
"""

from __future__ import annotations

import json

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.evaluation.snapshot import (
    TASK_STATES,
    SnapshotRecorder,
    SweepSnapshot,
    TaskEvent,
    canonical_line,
)
from repro.exceptions import EvaluationError, ValidationError

# -- hypothesis strategies ---------------------------------------------------

event_strategy = st.builds(
    TaskEvent,
    key=st.sampled_from(["a", "b", "c", "d"]),
    state=st.sampled_from(TASK_STATES),
    attempt=st.integers(min_value=1, max_value=5),
    wall_seconds=st.one_of(st.none(), st.floats(min_value=0.0, max_value=10.0)),
    store_key=st.one_of(st.none(), st.sampled_from(["k1", "k2"])),
)


def _reduce(events):
    snapshot = SweepSnapshot(name="prop", total=4)
    for event in events:
        snapshot.record(event)
    return snapshot


class TestReductionProperties:
    @given(
        events=st.lists(event_strategy, max_size=30),
        shuffled=st.randoms(use_true_random=False),
    )
    @settings(max_examples=100, deadline=None)
    def test_interleaving_invariance(self, events, shuffled):
        """Any permutation of an event stream reduces to the same snapshot."""
        permuted = list(events)
        shuffled.shuffle(permuted)
        assert _reduce(events).to_json() == _reduce(permuted).to_json()

    @given(
        events=st.lists(event_strategy, max_size=20),
        data=st.data(),
    )
    @settings(max_examples=100, deadline=None)
    def test_duplication_invariance(self, events, data):
        """Re-delivering any subset of events never changes the reduction."""
        duplicates = (
            data.draw(st.lists(st.sampled_from(events), max_size=10)) if events else []
        )
        assert _reduce(events).to_json() == _reduce(events + duplicates).to_json()

    @given(events=st.lists(event_strategy, max_size=30))
    @settings(max_examples=100, deadline=None)
    def test_to_json_from_json_round_trips_byte_identically(self, events):
        snapshot = _reduce(events)
        line = snapshot.to_json()
        assert SweepSnapshot.from_json(line).to_json() == line

    @given(events=st.lists(event_strategy, min_size=1, max_size=30))
    @settings(max_examples=100, deadline=None)
    def test_reduced_event_is_maximal(self, events):
        snapshot = _reduce(events)
        for key, kept in snapshot.tasks.items():
            for event in events:
                if event.key == key:
                    assert kept.order >= event.order


class TestTaskEvent:
    def test_rejects_unknown_state(self):
        with pytest.raises(ValidationError, match="state must be one of"):
            TaskEvent(key="a", state="EXPLODED")

    def test_rejects_non_positive_attempt(self):
        with pytest.raises(ValidationError, match="attempt must be >= 1"):
            TaskEvent(key="a", state="RUNNING", attempt=0)

    def test_attempt_major_ordering(self):
        """A resumed run's RUNNING(2) supersedes the killed run's FAILED(1) —
        rank only breaks ties within the same attempt."""
        failed = TaskEvent(key="a", state="FAILED", attempt=1)
        rerun = TaskEvent(key="a", state="RUNNING", attempt=2)
        assert rerun.supersedes(failed)
        assert not failed.supersedes(rerun)
        running = TaskEvent(key="a", state="RUNNING", attempt=1)
        assert failed.supersedes(running)

    def test_dict_round_trip_omits_unset_fields(self):
        event = TaskEvent(key="a", state="DONE", attempt=2, wall_seconds=0.5)
        payload = event.to_dict()
        assert "store_key" not in payload and "error" not in payload
        assert TaskEvent.from_dict(payload) == event

    def test_from_dict_rejects_malformed(self):
        with pytest.raises(EvaluationError, match="malformed task event"):
            TaskEvent.from_dict({"state": "DONE"})


class TestSweepSnapshotView:
    def test_counts_include_unseen_tasks_as_pending(self):
        snapshot = SweepSnapshot(total=5)
        snapshot.record(TaskEvent(key="a", state="DONE"))
        snapshot.record(TaskEvent(key="b", state="RUNNING"))
        counts = snapshot.counts()
        assert counts["DONE"] == 1 and counts["RUNNING"] == 1
        assert counts["PENDING"] == 3

    def test_eta_from_mean_done_wall_time(self):
        snapshot = SweepSnapshot(total=4)
        snapshot.record(TaskEvent(key="a", state="DONE", wall_seconds=2.0))
        snapshot.record(TaskEvent(key="b", state="DONE", wall_seconds=4.0))
        snapshot.record(TaskEvent(key="c", state="RUNNING"))
        # mean 3.0s x (1 RUNNING + 1 unseen PENDING) open tasks
        assert snapshot.eta_seconds() == pytest.approx(6.0)

    def test_eta_none_without_wall_times(self):
        snapshot = SweepSnapshot(total=2)
        snapshot.record(TaskEvent(key="a", state="DONE"))
        assert snapshot.eta_seconds() is None

    def test_converged_requires_all_tasks_terminal(self):
        snapshot = SweepSnapshot(total=2)
        snapshot.record(TaskEvent(key="a", state="DONE"))
        assert not snapshot.is_converged()  # b never observed
        snapshot.record(TaskEvent(key="b", state="RETRYING"))
        assert not snapshot.is_converged()
        snapshot.record(TaskEvent(key="b", state="FAILED", attempt=1))
        assert snapshot.is_converged()

    def test_failed_detail_sorted_by_key(self):
        snapshot = SweepSnapshot(total=2)
        snapshot.record(TaskEvent(key="z", state="FAILED", error={"type": "E", "message": "m"}))
        snapshot.record(TaskEvent(key="a", state="FAILED", error={"type": "E", "message": "m"}))
        assert [entry["key"] for entry in snapshot.failed()] == ["a", "z"]

    def test_record_returns_false_for_superseded_events(self):
        snapshot = SweepSnapshot()
        assert snapshot.record(TaskEvent(key="a", state="DONE", attempt=2))
        assert not snapshot.record(TaskEvent(key="a", state="RUNNING", attempt=1))
        assert snapshot.state("a") == "DONE"

    def test_progress_line_is_canonical_json(self):
        snapshot = SweepSnapshot(name="s", total=3)
        snapshot.record(TaskEvent(key="a", state="DONE", wall_seconds=1.0))
        line = snapshot.progress_line()
        assert line == canonical_line(json.loads(line))
        payload = json.loads(line)
        assert payload["event"] == "sweep-progress"
        assert payload["done"] == 1 and payload["pending"] == 2
        assert payload["total"] == 3

    def test_from_json_rejects_version_mismatch(self):
        line = SweepSnapshot(name="s").to_json().replace('"version":1', '"version":99')
        with pytest.raises(EvaluationError, match="version"):
            SweepSnapshot.from_json(line)

    def test_from_json_rejects_garbage(self):
        with pytest.raises(EvaluationError, match="malformed snapshot line"):
            SweepSnapshot.from_json("not json at all")


class TestSnapshotStreamFile:
    def test_reopen_replays_the_event_stream(self, tmp_path):
        path = tmp_path / "events.jsonl"
        first = SweepSnapshot(name="s", total=2, path=path)
        first.record(TaskEvent(key="a", state="RUNNING"))
        first.record(TaskEvent(key="a", state="DONE", wall_seconds=0.2))
        first.record(TaskEvent(key="b", state="RUNNING"))

        reopened = SweepSnapshot.open(path, name="s", total=2)
        assert reopened.state("a") == "DONE"
        assert reopened.state("b") == "RUNNING"
        assert reopened.to_json() == first.to_json()

    def test_superseded_events_are_not_appended(self, tmp_path):
        path = tmp_path / "events.jsonl"
        snapshot = SweepSnapshot(path=path)
        snapshot.record(TaskEvent(key="a", state="DONE", attempt=2))
        snapshot.record(TaskEvent(key="a", state="RUNNING", attempt=1))  # no-op
        assert len(path.read_text().splitlines()) == 1

    def test_torn_trailing_line_is_dropped(self, tmp_path):
        path = tmp_path / "events.jsonl"
        SweepSnapshot(path=path).record(TaskEvent(key="a", state="DONE"))
        with path.open("a") as handle:
            handle.write('{"key":"b","state":"RUN')  # killed mid-append
        reopened = SweepSnapshot.open(path)
        assert reopened.state("a") == "DONE"
        assert reopened.state("b") is None

    def test_mid_stream_corruption_raises(self, tmp_path):
        path = tmp_path / "events.jsonl"
        path.write_text('garbage\n{"key":"a","state":"DONE","attempt":1}\n')
        with pytest.raises(EvaluationError, match="corrupt at line 1"):
            SweepSnapshot.open(path)


class TestSnapshotRecorder:
    def test_wave_lifecycle_and_progress_lines(self):
        snapshot = SweepSnapshot(name="s")
        lines = []
        recorder = SnapshotRecorder(snapshot, progress=lines.append)
        recorder.on_schedule(["a", "b"])
        recorder.on_wave_start(["a", "b"])
        recorder.on_done("a", {"elapsed_seconds": 0.1})
        recorder.on_failed("b", {"type": "Boom", "message": "x", "traceback": "..."})
        recorder.on_wave_end()
        assert snapshot.state("a") == "DONE"
        assert snapshot.tasks["a"].wall_seconds == pytest.approx(0.1)
        assert snapshot.state("b") == "FAILED"
        assert snapshot.tasks["b"].error == {"type": "Boom", "message": "x"}
        assert len(lines) == 2  # schedule + wave end
        for line in lines:
            assert json.loads(line)["event"] == "sweep-progress"

    def test_executor_retry_surfaces_as_retrying(self):
        snapshot = SweepSnapshot(name="s")
        recorder = SnapshotRecorder(snapshot)
        recorder.on_schedule(["a"])
        recorder.on_wave_start(["a"])
        recorder.on_retrying(["a"])
        assert snapshot.state("a") == "RETRYING"
        assert snapshot.attempt("a") == 2
        recorder.on_done("a", {})
        assert snapshot.state("a") == "DONE"
        assert snapshot.attempt("a") == 2

    def test_resume_supersedes_stale_running_state(self):
        """The kill/resume mechanism: a reopened snapshot's RUNNING(1) is
        superseded by the resumed run's RUNNING(2), then DONE(2)."""
        snapshot = SweepSnapshot(name="s", total=1)
        snapshot.record(TaskEvent(key="a", state="RUNNING", attempt=1))  # killed run
        recorder = SnapshotRecorder(snapshot)
        recorder.on_schedule(["a"])
        assert snapshot.state("a") == "RUNNING"  # PENDING(1) cannot supersede
        recorder.on_wave_start(["a"])
        assert snapshot.attempt("a") == 2
        recorder.on_done("a", {"elapsed_seconds": 0.3})
        assert snapshot.state("a") == "DONE"
        assert snapshot.is_converged()

    def test_reused_rows_report_done_without_new_attempt(self):
        snapshot = SweepSnapshot(name="s", total=1)
        snapshot.record(TaskEvent(key="a", state="DONE", attempt=3, wall_seconds=0.2))
        recorder = SnapshotRecorder(snapshot)
        recorder.on_schedule(["a"])
        recorder.on_reused("a", {"elapsed_seconds": 0.2})
        assert snapshot.attempt("a") == 3  # no phantom re-run
