"""Tests for the BipartiteGraph data structure."""

import pytest

from repro.exceptions import (
    DuplicateNodeError,
    EdgeNotFoundError,
    NodeNotFoundError,
    ValidationError,
)
from repro.graphs.bipartite import BipartiteGraph, Side


class TestNodeManagement:
    def test_add_left_and_right_nodes(self):
        g = BipartiteGraph()
        g.add_left_node("a")
        g.add_right_node("x")
        assert g.num_left() == 1
        assert g.num_right() == 1
        assert g.num_nodes() == 2

    def test_node_attributes_stored_and_merged(self):
        g = BipartiteGraph()
        g.add_left_node("a", zipcode="15213")
        g.add_left_node("a", age=30)
        assert g.node_attributes("a") == {"zipcode": "15213", "age": 30}

    def test_duplicate_across_sides_rejected(self):
        g = BipartiteGraph()
        g.add_left_node("a")
        with pytest.raises(DuplicateNodeError):
            g.add_right_node("a")

    def test_none_node_rejected(self):
        g = BipartiteGraph()
        with pytest.raises(ValidationError):
            g.add_left_node(None)

    def test_side_of(self):
        g = BipartiteGraph()
        g.add_left_node("a")
        g.add_right_node("x")
        assert g.side_of("a") is Side.LEFT
        assert g.side_of("x") is Side.RIGHT
        with pytest.raises(NodeNotFoundError):
            g.side_of("missing")

    def test_has_node_and_contains(self):
        g = BipartiteGraph()
        g.add_left_node("a")
        assert g.has_node("a")
        assert "a" in g
        assert "b" not in g

    def test_remove_node_removes_incident_associations(self, tiny_graph):
        before = tiny_graph.num_associations()
        tiny_graph.remove_node("bob")
        assert not tiny_graph.has_node("bob")
        assert tiny_graph.num_associations() == before - 2
        assert not tiny_graph.has_association("bob", "insulin")

    def test_remove_missing_node_raises(self):
        g = BipartiteGraph()
        with pytest.raises(NodeNotFoundError):
            g.remove_node("ghost")

    def test_remove_nodes_bulk_ignores_missing(self, tiny_graph):
        tiny_graph.remove_nodes(["bob", "ghost"])
        assert not tiny_graph.has_node("bob")

    def test_add_node_generic_with_side_enum_and_string(self):
        g = BipartiteGraph()
        g.add_node("a", Side.LEFT)
        g.add_node("x", "right")
        assert g.side_of("a") is Side.LEFT
        assert g.side_of("x") is Side.RIGHT


class TestAssociations:
    def test_add_association(self, tiny_graph):
        assert tiny_graph.num_associations() == 5
        assert tiny_graph.has_association("bob", "insulin")
        assert not tiny_graph.has_association("carol", "aspirin")

    def test_duplicate_association_not_double_counted(self, tiny_graph):
        added = tiny_graph.add_association("bob", "insulin")
        assert added is False
        assert tiny_graph.num_associations() == 5

    def test_add_association_missing_endpoint_raises(self, tiny_graph):
        with pytest.raises(NodeNotFoundError):
            tiny_graph.add_association("ghost", "insulin")
        with pytest.raises(NodeNotFoundError):
            tiny_graph.add_association("bob", "ghost-drug")

    def test_auto_add_creates_endpoints(self):
        g = BipartiteGraph()
        g.add_association("u", "v", auto_add=True)
        assert g.side_of("u") is Side.LEFT
        assert g.side_of("v") is Side.RIGHT
        assert g.num_associations() == 1

    def test_remove_association(self, tiny_graph):
        tiny_graph.remove_association("bob", "insulin")
        assert tiny_graph.num_associations() == 4
        with pytest.raises(EdgeNotFoundError):
            tiny_graph.remove_association("bob", "insulin")

    def test_associations_iteration_complete(self, tiny_graph):
        pairs = set(tiny_graph.associations())
        assert pairs == {
            ("bob", "insulin"),
            ("bob", "aspirin"),
            ("carol", "insulin"),
            ("dave", "statin"),
            ("dave", "aspirin"),
        }

    def test_add_associations_returns_new_count(self, tiny_graph):
        added = tiny_graph.add_associations([("bob", "insulin"), ("carol", "statin")])
        assert added == 1


class TestDegreesAndNeighbors:
    def test_degree(self, tiny_graph):
        assert tiny_graph.degree("bob") == 2
        assert tiny_graph.degree("erin") == 0
        assert tiny_graph.degree("insulin") == 2
        assert tiny_graph.degree("zoloft") == 0

    def test_degree_missing_node_raises(self, tiny_graph):
        with pytest.raises(NodeNotFoundError):
            tiny_graph.degree("ghost")

    def test_neighbors_returns_copy(self, tiny_graph):
        neighbours = tiny_graph.neighbors("bob")
        neighbours.add("statin")
        assert tiny_graph.degree("bob") == 2

    def test_neighbors_both_sides(self, tiny_graph):
        assert tiny_graph.neighbors("insulin") == {"bob", "carol"}
        assert tiny_graph.neighbors("dave") == {"statin", "aspirin"}


class TestCountsAndViews:
    def test_len_counts_nodes(self, tiny_graph):
        assert len(tiny_graph) == 8

    def test_nodes_iteration_by_side(self, tiny_graph):
        assert set(tiny_graph.nodes(Side.LEFT)) == {"bob", "carol", "dave", "erin"}
        assert set(tiny_graph.nodes(Side.RIGHT)) == {"insulin", "aspirin", "statin", "zoloft"}
        assert len(list(tiny_graph.nodes())) == 8

    def test_association_count_between(self, tiny_graph):
        count = tiny_graph.association_count_between(["bob", "carol"], ["insulin"])
        assert count == 2
        assert tiny_graph.association_count_between(["erin"], ["insulin"]) == 0
        assert tiny_graph.association_count_between([], ["insulin"]) == 0

    def test_association_count_between_ignores_unknown_nodes(self, tiny_graph):
        count = tiny_graph.association_count_between(["bob", "ghost"], ["aspirin", "unknown"])
        assert count == 1

    def test_associations_incident_to_group(self, tiny_graph):
        # bob (2) + carol's insulin edge (1, not double counting bob-insulin)
        assert tiny_graph.associations_incident_to(["bob", "carol"]) == 3
        # insulin (2) + dave (2) are disjoint edge sets
        assert tiny_graph.associations_incident_to(["insulin", "dave"]) == 4
        assert tiny_graph.associations_incident_to(["erin", "zoloft"]) == 0

    def test_associations_incident_to_mixed_endpoints_not_double_counted(self, tiny_graph):
        # bob and insulin share the edge (bob, insulin); it must count once.
        assert tiny_graph.associations_incident_to(["bob", "insulin"]) == 3


class TestCopyAndValidate:
    def test_copy_is_independent(self, tiny_graph):
        clone = tiny_graph.copy()
        clone.remove_node("bob")
        assert tiny_graph.has_node("bob")
        assert clone.num_associations() == tiny_graph.num_associations() - 2

    def test_copy_preserves_attributes(self):
        g = BipartiteGraph()
        g.add_left_node("a", zipcode="152")
        g.add_right_node("x")
        clone = g.copy()
        assert clone.node_attributes("a") == {"zipcode": "152"}

    def test_validate_passes_on_consistent_graph(self, tiny_graph):
        tiny_graph.validate()

    def test_validate_detects_corrupted_counter(self, tiny_graph):
        tiny_graph._num_associations += 1
        with pytest.raises(ValidationError):
            tiny_graph.validate()

    def test_repr_mentions_counts(self, tiny_graph):
        text = repr(tiny_graph)
        assert "left=4" in text and "associations=5" in text


class TestSide:
    def test_other(self):
        assert Side.LEFT.other() is Side.RIGHT
        assert Side.RIGHT.other() is Side.LEFT

    def test_from_string(self):
        assert Side("left") is Side.LEFT
        assert Side("right") is Side.RIGHT
