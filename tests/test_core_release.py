"""Tests for release objects."""

import pytest

from repro.core.release import LevelRelease, MultiLevelRelease
from repro.exceptions import AccessLevelError, ReleaseIntegrityError
from repro.mechanisms.base import PrivacyCost
from repro.privacy.guarantees import GroupPrivacyGuarantee


def make_level_release(level, value=100.0, epsilon=0.5):
    return LevelRelease(
        level=level,
        answers={"total_association_count": {"total": value}},
        guarantee=GroupPrivacyGuarantee(
            epsilon=epsilon, delta=1e-5, level=level, num_groups=2**level, max_group_size=10
        ),
        mechanism="gaussian",
        noise_scale=12.3,
        sensitivity=4.0,
    )


def make_release(levels=(0, 1, 2)):
    return MultiLevelRelease(
        dataset_name="demo",
        level_releases={level: make_level_release(level, value=100.0 + level) for level in levels},
        specialization_cost=PrivacyCost(1.0, 0.0),
        config={"epsilon_g": 0.5},
    )


class TestLevelRelease:
    def test_answer_accessors(self):
        release = make_level_release(1)
        assert release.answer("total_association_count") == {"total": 100.0}
        assert release.scalar_answer("total_association_count") == 100.0

    def test_missing_query_raises(self):
        with pytest.raises(KeyError):
            make_level_release(1).answer("degree_histogram")

    def test_scalar_answer_requires_single_value(self):
        release = make_level_release(1)
        release.answers["total_association_count"]["extra"] = 1.0
        with pytest.raises(ValueError):
            release.scalar_answer("total_association_count")

    def test_confidence_halfwidth(self):
        release = make_level_release(1)
        assert release.confidence_halfwidth(2.0) == pytest.approx(24.6)

    def test_dict_round_trip(self):
        release = make_level_release(3)
        back = LevelRelease.from_dict(release.to_dict())
        assert back.level == 3
        assert back.answers == release.answers
        assert back.guarantee.epsilon == release.guarantee.epsilon
        assert back.noise_scale == release.noise_scale


class TestMultiLevelRelease:
    def test_levels_and_access(self):
        release = make_release()
        assert release.levels() == [0, 1, 2]
        assert release.level(1).level == 1
        assert 2 in release
        assert len(release) == 3

    def test_missing_level_raises(self):
        with pytest.raises(AccessLevelError):
            make_release().level(9)

    def test_finest_and_coarsest(self):
        release = make_release()
        assert release.finest_level().level == 0
        assert release.coarsest_level().level == 2

    def test_noise_injection_cost_is_worst_level(self):
        release = make_release()
        release.level_releases[2] = make_level_release(2, epsilon=0.9)
        cost = release.noise_injection_cost()
        assert cost.epsilon == 0.9

    def test_dict_round_trip(self):
        release = make_release()
        back = MultiLevelRelease.from_dict(release.to_dict())
        assert back.levels() == release.levels()
        assert back.dataset_name == "demo"
        assert back.specialization_cost.epsilon == 1.0
        assert back.level(1).scalar_answer("total_association_count") == 101.0

    def test_malformed_document_raises(self):
        with pytest.raises(ReleaseIntegrityError):
            MultiLevelRelease.from_dict({"levels": {"0": {}}})

    def test_round_trip_via_json(self, tmp_path):
        from repro.utils.serialization import from_json_file, to_json_file

        release = make_release()
        path = to_json_file(release.to_dict(), tmp_path / "release.json")
        back = MultiLevelRelease.from_dict(from_json_file(path))
        assert back.levels() == [0, 1, 2]
