"""Tests for the extension experiments (depth sweep, delta sweep, privilege gap)."""

import pytest

from repro.evaluation.extensions import privilege_gap, run_delta_sweep, run_depth_sweep
from repro.exceptions import EvaluationError


@pytest.fixture(scope="module")
def ext_graph():
    from repro.datasets.dblp_like import generate_dblp_like

    return generate_dblp_like(num_authors=250, seed=41)


class TestPrivilegeGap:
    def test_basic_ratio(self):
        assert privilege_gap({0: 0.01, 5: 0.5}) == pytest.approx(50.0)

    def test_flat_profile_has_gap_one(self):
        assert privilege_gap({0: 0.2, 1: 0.2}) == pytest.approx(1.0)

    def test_empty_rejected(self):
        with pytest.raises(EvaluationError):
            privilege_gap({})

    def test_zero_finest_rejected(self):
        with pytest.raises(EvaluationError):
            privilege_gap({0: 0.0, 1: 0.5})


class TestDepthSweep:
    def test_rows_structure(self, ext_graph):
        rows = run_depth_sweep(depths=(3, 5), graph=ext_graph)
        kinds = {row["kind"] for row in rows}
        assert kinds == {"level", "summary"}
        summaries = [row for row in rows if row["kind"] == "summary"]
        assert {row["depth"] for row in summaries} == {3, 5}

    def test_deeper_hierarchies_release_more_levels(self, ext_graph):
        rows = run_depth_sweep(depths=(3, 6), graph=ext_graph)
        summaries = {row["depth"]: row for row in rows if row["kind"] == "summary"}
        assert summaries[6]["num_released_levels"] > summaries[3]["num_released_levels"]

    def test_deeper_hierarchies_widen_the_privilege_gap(self, ext_graph):
        rows = run_depth_sweep(depths=(3, 7), graph=ext_graph)
        summaries = {row["depth"]: row for row in rows if row["kind"] == "summary"}
        assert summaries[7]["privilege_gap"] >= summaries[3]["privilege_gap"]

    def test_level_rows_monotone_in_level(self, ext_graph):
        rows = run_depth_sweep(depths=(5,), graph=ext_graph)
        level_rows = sorted(
            (row for row in rows if row["kind"] == "level"), key=lambda r: r["level"]
        )
        rers = [row["expected_rer"] for row in level_rows]
        assert all(b >= a - 1e-12 for a, b in zip(rers, rers[1:]))


class TestDeltaSweep:
    def test_smaller_delta_more_error(self, ext_graph):
        rows = run_delta_sweep(deltas=(1e-3, 1e-9), num_levels=4, graph=ext_graph)
        by_delta = {}
        for row in rows:
            by_delta.setdefault(row["delta"], {})[row["level"]] = row["expected_rer"]
        for level in by_delta[1e-3]:
            assert by_delta[1e-9][level] > by_delta[1e-3][level]

    def test_all_levels_present_for_every_delta(self, ext_graph):
        rows = run_delta_sweep(deltas=(1e-5, 1e-7), num_levels=5, graph=ext_graph)
        for delta in (1e-5, 1e-7):
            levels = {row["level"] for row in rows if row["delta"] == delta}
            assert levels == {0, 1, 2, 3}
