"""Tests of the top-level public API surface.

These guard the package's import contract: everything advertised in
``repro.__all__`` must be importable from ``repro`` directly, carry a
docstring, and the version string must follow semantic versioning.
"""

import re

import pytest

import repro


class TestPublicApi:
    def test_version_is_semver(self):
        assert re.fullmatch(r"\d+\.\d+\.\d+", repro.__version__)

    def test_all_names_resolve(self):
        for name in repro.__all__:
            assert hasattr(repro, name), f"repro.__all__ lists {name!r} but it is not importable"

    def test_key_entry_points_exported(self):
        for name in (
            "BipartiteGraph",
            "MultiLevelDiscloser",
            "DisclosureConfig",
            "MultiLevelRelease",
            "GraphPublisher",
            "AccessPolicy",
            "GroupHierarchy",
            "Specializer",
            "GaussianMechanism",
            "ExponentialMechanism",
            "GroupPrivacyGuarantee",
            "generate_dblp_like",
            "verify_release",
        ):
            assert name in repro.__all__

    def test_public_objects_have_docstrings(self):
        undocumented = [
            name
            for name in repro.__all__
            if name != "__version__" and not (getattr(repro, name).__doc__ or "").strip()
        ]
        assert not undocumented, f"missing docstrings: {undocumented}"

    def test_subpackages_importable(self):
        import importlib

        for module in (
            "repro.graphs",
            "repro.datasets",
            "repro.mechanisms",
            "repro.privacy",
            "repro.accounting",
            "repro.grouping",
            "repro.queries",
            "repro.core",
            "repro.baselines",
            "repro.evaluation",
            "repro.cli",
        ):
            assert importlib.import_module(module) is not None

    def test_no_accidental_wildcard_reexports(self):
        # Every __all__ entry must be defined in a repro submodule, not leak
        # from numpy/networkx.
        for name in repro.__all__:
            if name == "__version__":
                continue
            obj = getattr(repro, name)
            module = getattr(obj, "__module__", "repro")
            assert module.startswith("repro"), f"{name} leaks from {module}"
