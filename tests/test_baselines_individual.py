"""Tests for the individual-DP baseline."""

import pytest

from repro.baselines.individual_dp import IndividualDPDiscloser
from repro.privacy.guarantees import PrivacyUnit


class TestIndividualDPDiscloser:
    def test_disclose_returns_noisy_count(self, dblp_graph):
        answers = IndividualDPDiscloser(epsilon_i=1.0, rng=0).disclose(dblp_graph)
        value = answers["total_association_count"]["total"]
        true = dblp_graph.num_associations()
        # Record-level sensitivity is 1; at eps=1 the noise is tiny relative to the count.
        assert abs(value - true) < 0.05 * true

    def test_guarantee_is_record_level(self):
        guarantee = IndividualDPDiscloser(epsilon_i=0.5).guarantee()
        assert guarantee.unit is PrivacyUnit.ASSOCIATION
        assert guarantee.epsilon == 0.5
        assert guarantee.delta == 0.0

    def test_gaussian_variant_has_delta(self):
        guarantee = IndividualDPDiscloser(epsilon_i=0.5, mechanism="gaussian").guarantee()
        assert guarantee.delta > 0

    def test_invalid_mechanism_rejected(self):
        with pytest.raises(ValueError):
            IndividualDPDiscloser(mechanism="geometric")

    def test_seeded_reproducibility(self, dblp_graph):
        a = IndividualDPDiscloser(epsilon_i=1.0, rng=7).disclose(dblp_graph)
        b = IndividualDPDiscloser(epsilon_i=1.0, rng=7).disclose(dblp_graph)
        assert a == b

    def test_implied_group_epsilons_grow_with_level(self, dblp_graph, dblp_hierarchy):
        implied = IndividualDPDiscloser(epsilon_i=0.5).implied_group_epsilons(dblp_graph, dblp_hierarchy)
        levels = sorted(implied)
        assert all(implied[b] >= implied[a] for a, b in zip(levels, levels[1:]))
        # At the top level a single group holds the whole graph, so the implied
        # epsilon is epsilon_i times the full association count.
        assert implied[dblp_hierarchy.top_level] == pytest.approx(0.5 * dblp_graph.num_associations())

    def test_as_multi_level_release_reuses_same_answers(self, dblp_graph, dblp_hierarchy):
        release = IndividualDPDiscloser(epsilon_i=1.0, rng=3).as_multi_level_release(
            dblp_graph, dblp_hierarchy, levels=[0, 1, 2]
        )
        values = {
            level: release.level(level).scalar_answer("total_association_count")
            for level in release.levels()
        }
        assert len(set(values.values())) == 1

    def test_release_guarantees_are_weak_at_coarse_levels(self, dblp_graph, dblp_hierarchy):
        release = IndividualDPDiscloser(epsilon_i=1.0, rng=3).as_multi_level_release(
            dblp_graph, dblp_hierarchy, levels=[0, 3]
        )
        assert release.level(3).guarantee.epsilon > release.level(0).guarantee.epsilon
        assert release.level(3).guarantee.epsilon > 1.0
