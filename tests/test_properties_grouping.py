"""Property-based tests for partitions, hierarchies and specialization."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.graphs.builders import from_association_list
from repro.grouping.partition import Partition
from repro.grouping.specialization import SpecializationConfig, Specializer
from repro.privacy.sensitivity import group_count_sensitivity

lefts = st.integers(min_value=0, max_value=12).map(lambda i: f"L{i}")
rights = st.integers(min_value=0, max_value=12).map(lambda j: f"R{j}")
association_lists = st.lists(st.tuples(lefts, rights), min_size=1, max_size=80)


class TestPartitionProperties:
    @given(elements=st.sets(st.integers(0, 200), min_size=1, max_size=60))
    @settings(max_examples=60, deadline=None)
    def test_singletons_cover_and_are_disjoint(self, elements):
        partition = Partition.singletons(elements)
        assert partition.universe() == frozenset(elements)
        assert partition.num_groups() == len(elements)
        assert partition.max_group_size() == 1

    @given(elements=st.sets(st.integers(0, 200), min_size=1, max_size=60))
    @settings(max_examples=60, deadline=None)
    def test_trivial_partition(self, elements):
        partition = Partition.trivial(elements)
        assert partition.num_groups() == 1
        assert partition.max_group_size() == len(elements)

    @given(elements=st.sets(st.text(min_size=1, max_size=3), min_size=1, max_size=40))
    @settings(max_examples=40, deadline=None)
    def test_dict_round_trip(self, elements):
        partition = Partition.singletons(elements)
        back = Partition.from_dict(partition.to_dict())
        assert back.universe() == partition.universe()


class TestSpecializationProperties:
    @given(pairs=association_lists, seed=st.integers(0, 1000), levels=st.integers(2, 5))
    @settings(max_examples=25, deadline=None)
    def test_hierarchy_invariants_hold_for_random_graphs(self, pairs, seed, levels):
        graph = from_association_list(pairs)
        config = SpecializationConfig(num_levels=levels, epsilon=0.5)
        result = Specializer(config=config, rng=seed).build(graph)
        hierarchy = result.hierarchy
        hierarchy.validate()
        universe = frozenset(graph.nodes())
        # Every level is a partition of the full universe.
        for level in hierarchy.level_indices():
            assert hierarchy.partition_at(level).universe() == universe
        # Bottom level is singletons, top level a single group.
        assert hierarchy.partition_at(hierarchy.top_level).num_groups() == 1
        assert all(g.is_singleton() for g in hierarchy.partition_at(0).groups())

    @given(pairs=association_lists, seed=st.integers(0, 1000))
    @settings(max_examples=25, deadline=None)
    def test_group_sensitivity_monotone_across_levels(self, pairs, seed):
        graph = from_association_list(pairs)
        config = SpecializationConfig(num_levels=4, epsilon=0.5)
        hierarchy = Specializer(config=config, rng=seed).build(graph).hierarchy
        values = [
            group_count_sensitivity(graph, hierarchy.partition_at(level))
            for level in hierarchy.level_indices()
        ]
        assert all(b >= a for a, b in zip(values, values[1:]))

    @given(pairs=association_lists, seed=st.integers(0, 1000))
    @settings(max_examples=25, deadline=None)
    def test_top_level_sensitivity_is_total_count(self, pairs, seed):
        graph = from_association_list(pairs)
        hierarchy = Specializer(config=SpecializationConfig(num_levels=3), rng=seed).build(graph).hierarchy
        top = group_count_sensitivity(graph, hierarchy.partition_at(hierarchy.top_level))
        assert top == max(1, graph.num_associations())
