"""Tests for repro.utils.rng."""

import numpy as np
import pytest

from repro.utils.rng import as_rng, derive_rng, spawn_rngs


class TestAsRng:
    def test_none_returns_generator(self):
        assert isinstance(as_rng(None), np.random.Generator)

    def test_int_seed_is_reproducible(self):
        a = as_rng(123).uniform(size=5)
        b = as_rng(123).uniform(size=5)
        assert np.allclose(a, b)

    def test_different_seeds_differ(self):
        a = as_rng(1).uniform(size=5)
        b = as_rng(2).uniform(size=5)
        assert not np.allclose(a, b)

    def test_generator_passthrough(self):
        gen = np.random.default_rng(0)
        assert as_rng(gen) is gen

    def test_seed_sequence_accepted(self):
        seq = np.random.SeedSequence(7)
        assert isinstance(as_rng(seq), np.random.Generator)

    def test_invalid_type_raises(self):
        with pytest.raises(TypeError):
            as_rng("not-a-seed")


class TestDeriveRng:
    def test_same_seed_same_key_reproducible(self):
        a = derive_rng(99, "phase1").uniform(size=4)
        b = derive_rng(99, "phase1").uniform(size=4)
        assert np.allclose(a, b)

    def test_different_keys_independent(self):
        a = derive_rng(99, "phase1").uniform(size=4)
        b = derive_rng(99, "phase2").uniform(size=4)
        assert not np.allclose(a, b)

    def test_different_seeds_differ(self):
        a = derive_rng(1, "k").uniform(size=4)
        b = derive_rng(2, "k").uniform(size=4)
        assert not np.allclose(a, b)

    def test_derive_from_generator(self):
        parent = np.random.default_rng(5)
        child = derive_rng(parent, "child")
        assert isinstance(child, np.random.Generator)

    def test_derive_from_none(self):
        assert isinstance(derive_rng(None, "x"), np.random.Generator)

    def test_derive_from_seed_sequence(self):
        seq = np.random.SeedSequence(3)
        a = derive_rng(seq, "k").uniform(size=3)
        b = derive_rng(np.random.SeedSequence(3), "k").uniform(size=3)
        assert np.allclose(a, b)

    def test_invalid_parent_raises(self):
        with pytest.raises(TypeError):
            derive_rng(object(), "k")


class TestSpawnRngs:
    def test_one_per_key(self):
        rngs = spawn_rngs(0, ["a", "b", "c"])
        assert len(rngs) == 3
        assert all(isinstance(r, np.random.Generator) for r in rngs)

    def test_reproducible_per_key(self):
        first = spawn_rngs(42, ["a", "b"])
        second = spawn_rngs(42, ["a", "b"])
        for x, y in zip(first, second):
            assert np.allclose(x.uniform(size=3), y.uniform(size=3))

    def test_keys_produce_distinct_streams(self):
        a, b = spawn_rngs(42, ["a", "b"])
        assert not np.allclose(a.uniform(size=5), b.uniform(size=5))

    def test_none_parent_gives_fresh_generators(self):
        rngs = spawn_rngs(None, ["a", "b"])
        assert len(rngs) == 2

    def test_invalid_parent_raises(self):
        with pytest.raises(TypeError):
            spawn_rngs(3.5, ["a"])
