"""Tests for the uniform-noise strawman baseline."""

import pytest

from repro.baselines.uniform_noise import UniformNoiseDiscloser
from repro.core.config import DisclosureConfig
from repro.core.discloser import MultiLevelDiscloser
from repro.grouping.specialization import SpecializationConfig
from repro.privacy.sensitivity import group_count_sensitivity


class TestUniformNoiseDiscloser:
    def test_all_levels_share_the_same_noise_scale(self, dblp_graph, dblp_hierarchy):
        release = UniformNoiseDiscloser(epsilon_g=0.5, rng=1).disclose(dblp_graph, dblp_hierarchy)
        scales = {release.level(level).noise_scale for level in release.levels()}
        assert len(scales) == 1

    def test_scale_matches_coarsest_level_sensitivity(self, dblp_graph, dblp_hierarchy):
        release = UniformNoiseDiscloser(epsilon_g=0.5, rng=1).disclose(
            dblp_graph, dblp_hierarchy, levels=[0, 1, 2, 3]
        )
        worst = group_count_sensitivity(dblp_graph, dblp_hierarchy.partition_at(3))
        for level in release.levels():
            assert release.level(level).sensitivity == pytest.approx(worst)

    def test_fine_levels_noisier_than_paper_approach(self, dblp_graph, dblp_hierarchy):
        uniform = UniformNoiseDiscloser(epsilon_g=0.5, rng=1).disclose(dblp_graph, dblp_hierarchy)
        config = DisclosureConfig(epsilon_g=0.5, specialization=SpecializationConfig(num_levels=5))
        paper = MultiLevelDiscloser(config=config, rng=1).disclose(dblp_graph, hierarchy=dblp_hierarchy)
        finest = paper.levels()[0]
        assert uniform.level(finest).noise_scale >= paper.level(finest).noise_scale

    def test_explicit_levels_respected(self, dblp_graph, dblp_hierarchy):
        release = UniformNoiseDiscloser(epsilon_g=0.5, rng=1).disclose(
            dblp_graph, dblp_hierarchy, levels=[2, 4]
        )
        assert release.levels() == [2, 4]

    def test_config_recorded(self, dblp_graph, dblp_hierarchy):
        release = UniformNoiseDiscloser(epsilon_g=0.4, rng=1).disclose(dblp_graph, dblp_hierarchy, levels=[1])
        assert release.config["baseline"] == "uniform_noise"
