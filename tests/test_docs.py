"""Docs-freshness checks: the documentation must track the code.

CI runs this module explicitly (see ``.github/workflows/ci.yml``), so a PR
that adds a CLI subcommand without documenting it — or renames a pipeline
stage without updating the architecture notes — fails fast.
"""

from pathlib import Path

import argparse

from repro.cli import build_parser

REPO_ROOT = Path(__file__).resolve().parent.parent
README = REPO_ROOT / "README.md"
ARCHITECTURE = REPO_ROOT / "docs" / "ARCHITECTURE.md"


def cli_subcommands():
    """The subcommand names `repro --help` advertises, from the parser itself."""
    parser = build_parser()
    for action in parser._actions:
        if isinstance(action, argparse._SubParsersAction):
            return sorted(action.choices)
    raise AssertionError("repro parser has no subcommands")


class TestReadme:
    def test_readme_exists(self):
        assert README.is_file(), "top-level README.md is missing"

    def test_readme_documents_every_cli_subcommand(self):
        text = README.read_text(encoding="utf-8")
        missing = [
            name for name in cli_subcommands() if f"repro {name}" not in text
        ]
        assert not missing, f"README.md does not mention: {missing}"

    def test_readme_has_the_two_tier_test_commands(self):
        text = README.read_text(encoding="utf-8")
        assert "python -m pytest -x -q" in text
        assert "-m slow benchmarks" in text

    def test_readme_covers_the_switches(self):
        text = README.read_text(encoding="utf-8")
        for switch in ("engine", "executor", "ReleaseStore"):
            assert switch in text, f"README.md does not mention {switch!r}"


class TestArchitecture:
    def test_architecture_doc_exists(self):
        assert ARCHITECTURE.is_file(), "docs/ARCHITECTURE.md is missing"

    def test_architecture_names_the_five_stages(self):
        text = ARCHITECTURE.read_text(encoding="utf-8")
        for stage in ("specialize", "compile", "calibrate", "perturb", "assemble"):
            assert stage in text.lower(), f"ARCHITECTURE.md does not mention {stage!r}"

    def test_architecture_covers_the_new_layers(self):
        text = ARCHITECTURE.read_text(encoding="utf-8")
        for term in ("StoreBackend", "ReleaseServer", "Executor", "vectorized"):
            assert term in text, f"ARCHITECTURE.md does not mention {term!r}"

    def test_architecture_covers_the_fault_tolerance_layer(self):
        text = ARCHITECTURE.read_text(encoding="utf-8")
        for term in ("RetryPolicy", "RunJournal", "max_in_flight", "quarantin"):
            assert term in text, f"ARCHITECTURE.md does not mention {term!r}"

    def test_readme_covers_the_fault_tolerance_knobs(self):
        text = README.read_text(encoding="utf-8")
        for switch in ("RetryPolicy", "task_timeout", "journal", "max_in_flight"):
            assert switch in text, f"README.md does not mention {switch!r}"

    def test_architecture_covers_serving_at_scale(self):
        text = ARCHITECTURE.read_text(encoding="utf-8")
        for term in ("ResponseCache", "ServerFleet", "SO_REUSEPORT", "ETag", "304"):
            assert term in text, f"ARCHITECTURE.md does not mention {term!r}"

    def test_readme_covers_the_serving_scale_switches(self):
        text = README.read_text(encoding="utf-8")
        for switch in (
            "--processes",
            "--no-gzip",
            "response_cache_size",
            "ServerFleet",
        ):
            assert switch in text, f"README.md does not mention {switch!r}"

    def test_architecture_covers_the_release_catalog(self):
        text = ARCHITECTURE.read_text(encoding="utf-8")
        for term in (
            "SqliteBackend",
            "ReleaseCatalog",
            "ReleaseFilter",
            "schema_version",
            "MIGRATIONS",
            "BEGIN IMMEDIATE",
            "graph fingerprint",
        ):
            assert term in text, f"ARCHITECTURE.md does not mention {term!r}"

    def test_readme_covers_the_query_cli_and_sqlite_store(self):
        text = README.read_text(encoding="utf-8")
        for switch in (
            "catalog.db",
            "SqliteBackend",
            "--key-glob",
            "--since",
            "--format json",
            "repro query",
        ):
            assert switch in text, f"README.md does not mention {switch!r}"

    def test_architecture_covers_incremental_redisclosure(self):
        text = ARCHITECTURE.read_text(encoding="utf-8")
        for term in (
            "mutation log",
            "delta_compile",
            "fingerprint_level",
            "refresh_release",
            "StalenessIndex",
            "bit-identical",
            "repro refresh",
        ):
            assert term in text, f"ARCHITECTURE.md does not mention {term!r}"

    def test_readme_covers_the_refresh_switches(self):
        text = README.read_text(encoding="utf-8")
        for switch in (
            "GraphPublisher.refresh",
            "repro refresh",
            "staleness",
            "revision-qualified",
        ):
            assert switch in text, f"README.md does not mention {switch!r}"

    def test_architecture_covers_sweep_orchestration(self):
        text = ARCHITECTURE.read_text(encoding="utf-8")
        for term in (
            "SweepSnapshot",
            "TaskEvent",
            "RETRYING",
            "WorkerBudget",
            "SweepScheduler",
            "ManagerExecutor",
            "sweep-progress",
            "on_retry",
        ):
            assert term in text, f"ARCHITECTURE.md does not mention {term!r}"

    def test_readme_covers_the_sweep_orchestration_switches(self):
        text = README.read_text(encoding="utf-8")
        for switch in (
            "--progress",
            "--workers",
            "--inner-workers",
            "--worker-budget",
            "--executor manager",
            "sweep-progress",
            "SweepScheduler",
            "SweepSnapshot",
        ):
            assert switch in text, f"README.md does not mention {switch!r}"
