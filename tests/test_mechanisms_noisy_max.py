"""Tests for Report-Noisy-Max."""

import numpy as np
import pytest

from repro.exceptions import ValidationError
from repro.mechanisms.noisy_max import ReportNoisyMax


class TestReportNoisyMax:
    def test_selects_clear_winner(self):
        mech = ReportNoisyMax(epsilon=10.0, rng=0)
        assert mech.select(["a", "b"], [0.0, 1000.0]) == "b"

    def test_invalid_noise_kind(self):
        with pytest.raises(ValidationError):
            ReportNoisyMax(epsilon=1.0, noise="uniform")

    def test_gumbel_noise_supported(self):
        mech = ReportNoisyMax(epsilon=1.0, noise="gumbel", rng=0)
        assert mech.select(["a", "b", "c"], [1.0, 2.0, 3.0]) in ("a", "b", "c")

    def test_empty_candidates_raise(self):
        with pytest.raises(ValidationError):
            ReportNoisyMax(epsilon=1.0).select_index([])

    def test_non_finite_scores_rejected(self):
        with pytest.raises(ValidationError):
            ReportNoisyMax(epsilon=1.0).select_index([np.nan, 1.0])

    def test_length_mismatch_rejected(self):
        with pytest.raises(ValidationError):
            ReportNoisyMax(epsilon=1.0).select(["a"], [1.0, 2.0])

    def test_privacy_cost(self):
        cost = ReportNoisyMax(epsilon=0.9).privacy_cost()
        assert cost.epsilon == 0.9 and cost.delta == 0.0

    def test_seeded_reproducibility(self):
        a = ReportNoisyMax(1.0, rng=6).select_index([1.0, 1.1, 0.9])
        b = ReportNoisyMax(1.0, rng=6).select_index([1.0, 1.1, 0.9])
        assert a == b

    def test_prefers_higher_scores_statistically(self):
        mech = ReportNoisyMax(epsilon=5.0, rng=8)
        scores = [0.0, 3.0]
        picks = [mech.select_index(scores) for _ in range(1000)]
        assert sum(picks) > 700

    def test_gumbel_matches_exponential_mechanism_distribution(self):
        # Gumbel-noise arg-max is distributionally identical to the
        # Exponential Mechanism; compare empirical selection frequencies.
        from repro.mechanisms.exponential import ExponentialMechanism

        scores = [0.0, 1.0, 2.0]
        em = ExponentialMechanism(epsilon=2.0, rng=1)
        expected = em.selection_probabilities(scores)
        rnm = ReportNoisyMax(epsilon=2.0, noise="gumbel", rng=2)
        counts = np.zeros(3)
        trials = 4000
        for _ in range(trials):
            counts[rnm.select_index(scores)] += 1
        assert np.allclose(counts / trials, expected, atol=0.04)
