"""Tests for induced subgraphs and restrictions."""

from repro.graphs.subgraphs import (
    induced_subgraph,
    restrict_left,
    restrict_right,
    subgraph_association_count,
)


class TestInducedSubgraph:
    def test_keeps_only_internal_associations(self, tiny_graph):
        sub = induced_subgraph(tiny_graph, ["bob", "insulin", "aspirin"])
        assert sub.num_associations() == 2
        assert sub.has_association("bob", "insulin")
        assert sub.has_association("bob", "aspirin")
        assert not sub.has_node("carol")

    def test_ignores_unknown_nodes(self, tiny_graph):
        sub = induced_subgraph(tiny_graph, ["bob", "ghost"])
        assert sub.num_nodes() == 1
        assert sub.num_associations() == 0

    def test_preserves_attributes(self, pharmacy_graph):
        some_patient = next(pharmacy_graph.left_nodes())
        sub = induced_subgraph(pharmacy_graph, [some_patient])
        assert "zipcode" in sub.node_attributes(some_patient)

    def test_empty_selection(self, tiny_graph):
        sub = induced_subgraph(tiny_graph, [])
        assert sub.num_nodes() == 0
        assert sub.num_associations() == 0


class TestRestrictions:
    def test_restrict_left(self, tiny_graph):
        sub = restrict_left(tiny_graph, ["bob"])
        assert sub.num_left() == 1
        assert sub.num_right() == 4
        assert sub.num_associations() == 2

    def test_restrict_right(self, tiny_graph):
        sub = restrict_right(tiny_graph, ["insulin"])
        assert sub.num_right() == 1
        assert sub.num_left() == 4
        assert sub.num_associations() == 2

    def test_restrictions_keep_all_other_side_nodes(self, tiny_graph):
        sub = restrict_left(tiny_graph, [])
        assert sub.num_left() == 0
        assert sub.num_right() == 4
        assert sub.num_associations() == 0


class TestSubgraphAssociationCount:
    def test_matches_induced_subgraph(self, tiny_graph):
        nodes = ["bob", "carol", "insulin", "aspirin"]
        assert subgraph_association_count(tiny_graph, nodes) == induced_subgraph(
            tiny_graph, nodes
        ).num_associations()

    def test_whole_graph(self, tiny_graph):
        all_nodes = list(tiny_graph.nodes())
        assert subgraph_association_count(tiny_graph, all_nodes) == 5

    def test_single_side_selection_has_no_internal_edges(self, tiny_graph):
        assert subgraph_association_count(tiny_graph, ["bob", "carol", "dave"]) == 0

    def test_matches_on_generated_graph(self, dblp_graph):
        import itertools

        nodes = list(itertools.islice(dblp_graph.left_nodes(), 40))
        nodes += list(itertools.islice(dblp_graph.right_nodes(), 60))
        expected = induced_subgraph(dblp_graph, nodes).num_associations()
        assert subgraph_association_count(dblp_graph, nodes) == expected
