"""Tests for the store-backend abstraction: the persisted key index, the
in-memory backend, and the LRU read-through cache with integrity re-checks."""

import json
import os
import shutil

import pytest

from backend_matrix import make_release_store, store_backend_matrix
from repro.core.config import DisclosureConfig
from repro.core.discloser import MultiLevelDiscloser
from repro.core.store import DirectoryBackend, MemoryBackend, ReleaseStore
from repro.exceptions import ReleaseIntegrityError, ValidationError
from repro.grouping.specialization import SpecializationConfig


@pytest.fixture(scope="module")
def release(dblp_graph):
    config = DisclosureConfig(
        epsilon_g=0.5, specialization=SpecializationConfig(num_levels=4)
    )
    return MultiLevelDiscloser(config, rng=11).disclose(dblp_graph)


@pytest.fixture
def store(tmp_path):
    return ReleaseStore(tmp_path / "releases")


def read_index(store):
    path = store.backend.index_path
    return json.loads(path.read_text()) if path.is_file() else None


class TestPersistedIndex:
    def test_index_written_on_save(self, store, release):
        store.save(release, key="alpha")
        store.save(release, key="beta")
        assert read_index(store) == {"version": 1, "keys": ["alpha", "beta"]}

    def test_index_updated_on_delete(self, store, release):
        store.save(release, key="alpha")
        store.save(release, key="beta")
        store.delete("alpha")
        assert read_index(store)["keys"] == ["beta"]
        assert store.keys() == ["beta"]

    def test_keys_reads_index_not_directories(self, store, release, monkeypatch):
        """keys() is O(1): it must not iterate the store directory."""
        store.save(release, key="alpha")

        def forbidden(*args, **kwargs):
            raise AssertionError("keys() scanned the directory despite the index")

        monkeypatch.setattr(type(store.backend), "_scan_keys", forbidden)
        assert store.keys() == ["alpha"]

    def test_legacy_store_without_index_is_rebuilt(self, store, release):
        store.save(release, key="alpha")
        store.save(release, key="beta")
        store.backend.index_path.unlink()
        assert store.keys() == ["alpha", "beta"]
        # ... and the rebuild persisted the index for the next call.
        assert read_index(store)["keys"] == ["alpha", "beta"]

    def test_corrupt_index_is_rebuilt(self, store, release):
        store.save(release, key="alpha")
        store.backend.index_path.write_text("{broken")
        assert store.keys() == ["alpha"]
        assert read_index(store)["keys"] == ["alpha"]

    def test_drift_release_copied_in_behind_the_stores_back(self, store, release):
        """A release directory copied in by hand is invisible to the index
        until rebuild_index() — but load() still finds it and read-repairs."""
        store.save(release, key="alpha")
        shutil.copytree(store.path_for("alpha"), store.backend.root / "copied")
        assert store.keys() == ["alpha"]  # index does not know yet

        assert store.load("copied").to_dict() == release.to_dict()
        assert "copied" in read_index(store)["keys"]  # read-repaired

    def test_drift_rebuild_index_rescans(self, store, release):
        store.save(release, key="alpha")
        shutil.copytree(store.path_for("alpha"), store.backend.root / "copied")
        assert store.backend.rebuild_index() == ["alpha", "copied"]
        assert store.keys() == ["alpha", "copied"]

    def test_drift_release_removed_behind_the_stores_back(self, store, release):
        store.save(release, key="alpha")
        store.save(release, key="beta")
        shutil.rmtree(store.path_for("alpha"))
        assert store.keys() == ["alpha", "beta"]  # stale, by design
        with pytest.raises(ReleaseIntegrityError):
            store.load("alpha")
        # The failed load dropped the dangling entry.
        assert store.keys() == ["beta"]

    def test_keys_on_missing_store_creates_nothing(self, tmp_path):
        """Listing a store that does not exist must not materialise it."""
        store = ReleaseStore(tmp_path / "nope")
        assert store.keys() == []
        assert not (tmp_path / "nope").exists()

    def test_dot_keys_cannot_escape_the_store_root(self, store, release, tmp_path):
        """'.'/'..' keys are neutralised by slugification — a caller-supplied
        key can never address artefacts outside the store directory."""
        (tmp_path / "release.json").write_text('{"levels": {}}')  # bait outside root
        store.save(release, key="alpha")
        assert not store.exists("..")
        assert not store.exists(".")
        with pytest.raises(ReleaseIntegrityError):
            store.load("..")
        # Saving under a dot key lands on a safe, digest-suffixed slug.
        slug = store.save(release, key="..")
        assert slug.startswith("release-")
        assert store.path_for(slug).parent == store.root

    def test_backend_rejects_raw_traversal_keys(self, store):
        for evil in ("..", ".", "", "a/b", "a\\b"):
            with pytest.raises(ValidationError):
                store.backend.path_for(evil)

    def test_put_leaves_no_temp_files(self, store, release):
        """Artefacts are written via temp-file + rename (no torn reads); the
        temp files never outlive a successful put."""
        key = store.save(release)
        names = sorted(path.name for path in store.path_for(key).iterdir())
        assert names == [ReleaseStore.ANSWERS_NAME, ReleaseStore.DOCUMENT_NAME]

    def test_delete_sweeps_interrupted_put_leftovers(self, store, release):
        key = store.save(release)
        (store.path_for(key) / "release.json.tmp").write_text("half-written")
        store.delete(key)
        assert not store.path_for(key).exists()

    def test_index_name_is_a_reserved_key(self, store, release):
        with pytest.raises(ValidationError):
            store.save(release, key=DirectoryBackend.INDEX_NAME)

    def test_index_file_is_not_listed_as_a_release(self, store, release):
        store.save(release, key="alpha")
        assert store.backend.index_path.is_file()
        assert store.keys() == ["alpha"]
        assert store.backend.rebuild_index() == ["alpha"]


class TestBackendContract:
    """The seven-method StoreBackend contract, run over every backend kind.

    One parameterized suite instead of per-backend copies: whatever backend
    ``REPRO_STORE_BACKEND`` pins (CI re-runs this SQLite-only), the same
    assertions must hold.
    """

    @pytest.fixture(params=store_backend_matrix())
    def any_store(self, request, tmp_path):
        return make_release_store(request.param, tmp_path, cache_size=4)

    @pytest.fixture(params=store_backend_matrix("memory", "sqlite"))
    def revision_store(self, request, tmp_path):
        """Backends whose fingerprint is a monotonic revision counter.

        The directory backend's mtime+size token is only as fine as the
        filesystem clock (two rewrites inside one tick can share it), so
        the strict changes-on-every-republish property is asserted for the
        counter-based backends.
        """
        return make_release_store(request.param, tmp_path, cache_size=4)

    def test_round_trip_is_lossless(self, any_store, release):
        key = any_store.save(release)
        assert any_store.load(key).to_dict() == release.to_dict()

    def test_keys_exists_delete(self, any_store, release):
        any_store.save(release, key="beta")
        any_store.save(release, key="alpha")
        assert any_store.keys() == ["alpha", "beta"]
        assert any_store.exists("alpha")
        any_store.delete("alpha")
        assert not any_store.exists("alpha")
        assert any_store.keys() == ["beta"]
        any_store.delete("alpha")  # idempotent

    def test_fingerprint_absent_is_none(self, any_store):
        assert any_store.fingerprint("nope") is None

    def test_fingerprint_changes_on_republish(self, revision_store, release):
        key = revision_store.save(release, key="run")
        before = revision_store.fingerprint(key)
        assert before is not None
        revision_store.save(release, key="run")
        assert revision_store.fingerprint(key) != before

    def test_fingerprint_never_reused_across_delete_and_reput(
        self, revision_store, release
    ):
        """delete + re-put must yield a fresh token — a reused one would
        let the LRU/response caches serve the old entry for the new bytes."""
        key = revision_store.save(release, key="run")
        first = revision_store.fingerprint(key)
        revision_store.delete(key)
        revision_store.save(release, key="run")
        assert revision_store.fingerprint(key) != first

    def test_cache_invalidated_by_republish(self, any_store, release):
        key = any_store.save(release, key="run")
        first = any_store.load(key)
        any_store.save(release, key="run")
        second = any_store.load(key)
        assert second is not first  # re-read, not served stale
        assert second.to_dict() == first.to_dict()

    def test_document_bytes_identical_to_directory_backend(
        self, any_store, release, tmp_path
    ):
        reference = ReleaseStore(tmp_path / "reference-store")
        key = reference.save(release, key="same")
        any_store.save(release, key="same")
        assert any_store.backend.get_document(key) == reference.backend.get_document(
            key
        )

    def test_missing_key_raises_integrity_error(self, any_store):
        with pytest.raises(ReleaseIntegrityError):
            any_store.load("nope")

    def test_cache_info_adds_up(self, any_store, release):
        """The LRU audit invariant: hits + misses == lookups through a mix
        of cold loads, warm hits and an invalidating republish."""
        key = any_store.save(release, key="run")
        any_store.load(key)  # miss
        any_store.load(key)  # hit
        any_store.save(release, key="run")
        any_store.load(key)  # miss (fresh fingerprint)
        any_store.load(key)  # hit
        info = any_store.cache_info()
        assert info["hits"] + info["misses"] == info["lookups"]
        assert info["lookups"] == 4
        assert (info["hits"], info["misses"]) == (2, 2)


class TestTornPairReadRepair:
    """An answers file deleted out from under the store makes the pair torn:
    keys() must stop listing it and the failed load must read-repair the
    index, exactly like a fully vanished release."""

    def test_keys_skip_torn_pair_on_rebuild(self, store, release):
        store.save(release, key="whole")
        store.save(release, key="torn")
        (store.path_for("torn") / ReleaseStore.ANSWERS_NAME).unlink()
        assert store.backend.rebuild_index() == ["whole"]
        assert store.keys() == ["whole"]

    def test_failed_load_drops_torn_index_entry(self, store, release):
        store.save(release, key="whole")
        store.save(release, key="torn")
        (store.path_for("torn") / ReleaseStore.ANSWERS_NAME).unlink()
        assert store.keys() == ["torn", "whole"]  # stale index, by design
        with pytest.raises(ReleaseIntegrityError):
            store.load("torn")
        # The failed load read-repaired the index, like a vanished release.
        assert store.keys() == ["whole"]

    def test_document_only_reads_survive_the_torn_pair(self, store, release):
        """Serving metadata/roles read only the document, so a torn pair must
        not break them — the repair happens on the answers path alone."""
        store.save(release, key="torn")
        (store.path_for("torn") / ReleaseStore.ANSWERS_NAME).unlink()
        document = store.load_document("torn")
        assert set(document["levels"]) == {str(level) for level in release.levels()}
        # The document-only read did not touch the index...
        assert store.keys() == ["torn"]
        # ...but the first answers read repairs it.
        assert store.backend.get_answers("torn") is None
        assert store.keys() == []

    def test_torn_key_can_be_republished(self, store, release):
        store.save(release, key="torn")
        (store.path_for("torn") / ReleaseStore.ANSWERS_NAME).unlink()
        with pytest.raises(ReleaseIntegrityError):
            store.load("torn")
        store.save(release, key="torn")
        assert store.keys() == ["torn"]
        assert store.load("torn").to_dict() == release.to_dict()


class TestDocumentOnlyLoad:
    def test_load_document_never_reads_answer_arrays(self, store, release, monkeypatch):
        key = store.save(release)

        def forbidden(key):
            raise AssertionError("load_document read the answer arrays")

        monkeypatch.setattr(store.backend, "get_answers", forbidden)
        document = store.load_document(key)
        assert set(document["levels"]) == {str(level) for level in release.levels()}
        for level_doc in document["levels"].values():
            for ref in level_doc["answers"].values():
                assert set(ref) == {"labels", "npz_key"}  # still npz references

    def test_load_document_missing_key_raises(self, store):
        with pytest.raises(ReleaseIntegrityError):
            store.load_document("nope")

    def test_load_level_wraps_corrupt_document(self, store, release):
        key = store.save_level(release.level(release.levels()[0]), key="view")
        (store.path_for(key) / ReleaseStore.DOCUMENT_NAME).write_text("{broken")
        with pytest.raises(ReleaseIntegrityError):
            store.load_level(key)


class TestMemoryBackend:
    def test_round_trip_is_lossless(self, release):
        store = ReleaseStore.in_memory()
        key = store.save(release)
        assert store.load(key).to_dict() == release.to_dict()

    def test_keys_exists_delete(self, release):
        store = ReleaseStore.in_memory()
        store.save(release, key="beta")
        store.save(release, key="alpha")
        assert store.keys() == ["alpha", "beta"]
        assert store.exists("alpha")
        store.delete("alpha")
        assert not store.exists("alpha")
        assert store.keys() == ["beta"]

    def test_missing_key_raises_integrity_error(self):
        store = ReleaseStore.in_memory()
        with pytest.raises(ReleaseIntegrityError):
            store.load("nope")

    def test_get_or_create_resumes(self, release):
        store = ReleaseStore.in_memory()
        first, created_first = store.get_or_create("run", lambda: release)
        second, created_second = store.get_or_create("run", lambda: release)
        assert (created_first, created_second) == (True, False)
        assert second.to_dict() == first.to_dict()

    def test_level_view_round_trip(self, release):
        store = ReleaseStore.in_memory()
        view = release.level(release.levels()[0])
        store.save_level(view, key="owner-view")
        assert store.load_level("owner-view").to_dict() == view.to_dict()

    def test_path_for_is_rejected(self, release):
        store = ReleaseStore.in_memory()
        with pytest.raises(TypeError):
            store.path_for("anything")

    def test_document_bytes_identical_to_directory_backend(self, release, tmp_path):
        """Both backends persist the canonical serialisation, so the stored
        document bytes — and anything derived from them — are byte-equal."""
        directory_store = ReleaseStore(tmp_path / "store")
        memory_store = ReleaseStore.in_memory()
        key = directory_store.save(release, key="same")
        memory_store.save(release, key="same")
        assert (
            directory_store.backend.get_document(key)
            == memory_store.backend.get_document(key)
        )


class TestReadThroughCache:
    def _counted(self, store, monkeypatch):
        calls = []
        original = store.backend.get_document

        def counting(key):
            calls.append(key)
            return original(key)

        monkeypatch.setattr(store.backend, "get_document", counting)
        return calls

    def test_cache_disabled_by_default(self, tmp_path, release, monkeypatch):
        store = ReleaseStore(tmp_path / "store")
        key = store.save(release)
        calls = self._counted(store, monkeypatch)
        store.load(key)
        store.load(key)
        assert len(calls) == 2

    def test_hot_release_served_from_memory(self, tmp_path, release, monkeypatch):
        store = ReleaseStore(tmp_path / "store", cache_size=4)
        key = store.save(release)
        calls = self._counted(store, monkeypatch)
        first = store.load(key)
        second = store.load(key)
        assert len(calls) == 1
        assert second is first  # served from memory, not re-parsed
        info = store.cache_info()
        assert (info["hits"], info["misses"]) == (1, 1)

    def test_integrity_recheck_detects_rewrite(self, tmp_path, release, monkeypatch):
        """A release rewritten behind the store is re-read, never served stale."""
        store = ReleaseStore(tmp_path / "store", cache_size=4)
        key = store.save(release)
        calls = self._counted(store, monkeypatch)
        store.load(key)
        document = store.path_for(key) / ReleaseStore.DOCUMENT_NAME
        os.utime(document, ns=(1, 1))  # same bytes, different fingerprint
        store.load(key)
        assert len(calls) == 2

    def test_integrity_recheck_detects_corruption(self, tmp_path, release):
        store = ReleaseStore(tmp_path / "store", cache_size=4)
        key = store.save(release)
        store.load(key)
        (store.path_for(key) / ReleaseStore.DOCUMENT_NAME).write_text("{broken")
        with pytest.raises(ReleaseIntegrityError):
            store.load(key)

    def test_save_invalidates_cached_entry(self, tmp_path, release, monkeypatch):
        store = ReleaseStore(tmp_path / "store", cache_size=4)
        key = store.save(release, key="run")
        store.load(key)
        store.save(release, key="run")
        calls = self._counted(store, monkeypatch)
        store.load(key)
        assert len(calls) == 1

    def test_delete_invalidates_cached_entry(self, tmp_path, release):
        store = ReleaseStore(tmp_path / "store", cache_size=4)
        key = store.save(release)
        store.load(key)
        store.delete(key)
        with pytest.raises(ReleaseIntegrityError):
            store.load(key)

    def test_lru_eviction(self, tmp_path, release, monkeypatch):
        store = ReleaseStore(tmp_path / "store", cache_size=1)
        key_a = store.save(release, key="a")
        key_b = store.save(release, key="b")
        calls = self._counted(store, monkeypatch)
        store.load(key_a)
        store.load(key_b)  # evicts a
        store.load(key_a)  # miss again
        assert calls == ["a", "b", "a"]
        assert store.cache_info()["size"] == 1

    def test_memory_backend_cache_invalidated_by_put(self, release):
        store = ReleaseStore(MemoryBackend(), cache_size=4)
        key = store.save(release, key="run")
        first = store.load(key)
        store.save(release, key="run")  # bumps the backend revision
        second = store.load(key)
        assert second is not first
        assert second.to_dict() == first.to_dict()
