"""Property-based tests (hypothesis) for the graph substrate."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.graphs.bipartite import BipartiteGraph
from repro.graphs.builders import from_association_list, from_networkx, to_networkx
from repro.graphs.stats import degree_sequence
from repro.graphs.subgraphs import induced_subgraph, subgraph_association_count

# Strategy: association lists over small label alphabets, so duplicate pairs
# and high-degree nodes occur frequently.
lefts = st.integers(min_value=0, max_value=15).map(lambda i: f"L{i}")
rights = st.integers(min_value=0, max_value=15).map(lambda j: f"R{j}")
association_lists = st.lists(st.tuples(lefts, rights), max_size=120)


@st.composite
def graphs(draw):
    pairs = draw(association_lists)
    return from_association_list(pairs)


class TestGraphInvariants:
    @given(pairs=association_lists)
    @settings(max_examples=60, deadline=None)
    def test_association_count_equals_distinct_pairs(self, pairs):
        graph = from_association_list(pairs)
        assert graph.num_associations() == len(set(pairs))

    @given(graph=graphs())
    @settings(max_examples=60, deadline=None)
    def test_degree_sums_equal_on_both_sides(self, graph):
        left_sum = int(degree_sequence(graph, "left").sum()) if graph.num_left() else 0
        right_sum = int(degree_sequence(graph, "right").sum()) if graph.num_right() else 0
        assert left_sum == right_sum == graph.num_associations()

    @given(graph=graphs())
    @settings(max_examples=60, deadline=None)
    def test_internal_consistency(self, graph):
        graph.validate()

    @given(graph=graphs())
    @settings(max_examples=40, deadline=None)
    def test_networkx_round_trip(self, graph):
        back = from_networkx(to_networkx(graph))
        assert set(back.associations()) == set(graph.associations())
        assert set(back.left_nodes()) == set(graph.left_nodes())
        assert set(back.right_nodes()) == set(graph.right_nodes())

    @given(graph=graphs(), data=st.data())
    @settings(max_examples=40, deadline=None)
    def test_removing_a_node_removes_exactly_its_degree(self, graph, data):
        nodes = list(graph.nodes())
        if not nodes:
            return
        node = data.draw(st.sampled_from(nodes))
        degree = graph.degree(node)
        before = graph.num_associations()
        graph.remove_node(node)
        assert graph.num_associations() == before - degree

    @given(graph=graphs(), data=st.data())
    @settings(max_examples=40, deadline=None)
    def test_induced_subgraph_count_matches_helper(self, graph, data):
        nodes = list(graph.nodes())
        subset = data.draw(st.lists(st.sampled_from(nodes), unique=True)) if nodes else []
        assert (
            induced_subgraph(graph, subset).num_associations()
            == subgraph_association_count(graph, subset)
        )

    @given(graph=graphs())
    @settings(max_examples=40, deadline=None)
    def test_incident_count_bounded_by_total(self, graph):
        nodes = list(graph.left_nodes())
        assert 0 <= graph.associations_incident_to(nodes) <= graph.num_associations()
        assert graph.associations_incident_to(graph.nodes()) == graph.num_associations()

    @given(graph=graphs())
    @settings(max_examples=40, deadline=None)
    def test_copy_equivalence(self, graph):
        clone = graph.copy()
        assert set(clone.associations()) == set(graph.associations())
        assert clone.num_nodes() == graph.num_nodes()
