"""Tests for the SQLite store backend: schema migrations (with the v1 → v2
catalog backfill), WAL crash-safety under kill -9 (reusing the
:class:`KillWorkerFault` toolkit), monotonic revision fingerprints, and the
SQL catalog path's parity with the full-scan fallback."""

import multiprocessing
import sqlite3
import threading

import pytest

from repro.core.catalog import (
    ReleaseCatalog,
    ReleaseFilter,
    catalog_row,
    graph_fingerprint,
)
from repro.core.config import DisclosureConfig
from repro.core.discloser import MultiLevelDiscloser
from repro.core.sqlite_backend import (
    SQLITE_MAGIC,
    SqliteBackend,
    is_sqlite_path,
)
from repro.core import sqlite_backend as sqlite_backend_module
from repro.core.store import ReleaseStore
from repro.exceptions import ReleaseIntegrityError
from repro.grouping.specialization import SpecializationConfig


@pytest.fixture(scope="module")
def release(dblp_graph):
    config = DisclosureConfig(
        epsilon_g=0.5, specialization=SpecializationConfig(num_levels=4)
    )
    return MultiLevelDiscloser(config, rng=11).disclose(dblp_graph)


@pytest.fixture(scope="module")
def laplace_release(dblp_graph):
    config = DisclosureConfig(
        epsilon_g=1.0,
        mechanism="laplace",
        specialization=SpecializationConfig(num_levels=4),
    )
    return MultiLevelDiscloser(config, rng=11).disclose(dblp_graph)


@pytest.fixture
def db_path(tmp_path):
    return tmp_path / "releases.db"


class TestPathDetection:
    def test_db_suffix_selects_sqlite_even_before_the_file_exists(self, db_path):
        assert is_sqlite_path(db_path)
        store = ReleaseStore(db_path)
        assert isinstance(store.backend, SqliteBackend)

    def test_magic_header_detected_whatever_the_name(self, tmp_path, release):
        oddly_named = tmp_path / "releases.store"
        seed = ReleaseStore(tmp_path / "seed.db")
        seed.save(release, key="k")
        # Fold the WAL into the main file so a byte copy is self-contained.
        seed.backend._conn.execute("PRAGMA wal_checkpoint(TRUNCATE)")
        seed.backend.close()
        oddly_named.write_bytes((tmp_path / "seed.db").read_bytes())
        assert oddly_named.read_bytes().startswith(SQLITE_MAGIC)
        assert is_sqlite_path(oddly_named)
        assert ReleaseStore(oddly_named).keys() == ["k"]

    def test_plain_directory_path_still_gets_a_directory_backend(self, tmp_path):
        from repro.core.store import DirectoryBackend

        store = ReleaseStore(tmp_path / "releases")
        assert isinstance(store.backend, DirectoryBackend)

    def test_existing_directory_named_like_a_db_stays_a_directory(self, tmp_path):
        from repro.core.store import DirectoryBackend

        trap = tmp_path / "releases.db"
        trap.mkdir()
        assert not is_sqlite_path(trap)
        assert isinstance(ReleaseStore(trap).backend, DirectoryBackend)


class TestSchemaMigrations:
    def test_fresh_store_is_at_the_latest_version(self, db_path):
        backend = SqliteBackend(db_path)
        assert backend.schema_version() == sqlite_backend_module.SCHEMA_VERSION

    def test_reopen_is_idempotent(self, db_path, release):
        ReleaseStore(db_path).save(release, key="k")
        again = ReleaseStore(db_path)
        assert again.keys() == ["k"]
        assert again.load("k").to_dict() == release.to_dict()

    def test_v1_database_is_upgraded_and_backfilled(self, db_path, release):
        """A database created at schema v1 (bytes only, no catalog columns)
        must upgrade on open and answer catalog queries identically to a
        store written at v2 from the start."""
        seed = ReleaseStore.in_memory()
        key = seed.save(release, key="legacy")
        document = seed.backend.get_document(key)
        answers = seed.backend.get_answers(key)

        conn = sqlite3.connect(str(db_path))
        conn.execute("CREATE TABLE schema_version (version INTEGER NOT NULL)")
        sqlite_backend_module._migration_1_initial(conn)
        conn.execute("INSERT INTO schema_version (version) VALUES (1)")
        conn.execute("UPDATE meta SET value = 1 WHERE name = 'revision'")
        conn.execute(
            "INSERT INTO releases (key, document, answers, revision, created_at)"
            " VALUES (?, ?, ?, 1, NULL)",
            (key, sqlite3.Binary(document), sqlite3.Binary(answers)),
        )
        conn.commit()
        conn.close()

        backend = SqliteBackend(db_path)
        assert backend.schema_version() == 2
        (row,) = backend.query_catalog(ReleaseFilter())
        assert row == catalog_row(key, document, created_at=None)
        assert row["mechanism"] == "gaussian"
        assert row["epsilon"] == 0.5

    def test_newer_schema_is_refused(self, db_path):
        SqliteBackend(db_path)
        conn = sqlite3.connect(str(db_path))
        conn.execute("INSERT INTO schema_version (version) VALUES (99)")
        conn.commit()
        conn.close()
        with pytest.raises(ReleaseIntegrityError, match="newer"):
            SqliteBackend(db_path)

    def test_wal_mode_is_on(self, db_path):
        backend = SqliteBackend(db_path)
        (mode,) = backend._conn.execute("PRAGMA journal_mode").fetchone()
        assert mode == "wal"


class TestRevisionFingerprints:
    def test_revisions_are_store_wide_monotonic(self, db_path, release):
        store = ReleaseStore(db_path)
        store.save(release, key="a")
        store.save(release, key="b")
        assert store.fingerprint("a") == "rev:1"
        assert store.fingerprint("b") == "rev:2"
        store.save(release, key="a")
        assert store.fingerprint("a") == "rev:3"

    def test_delete_and_reput_never_reuses_a_revision(self, db_path, release):
        store = ReleaseStore(db_path)
        store.save(release, key="a")
        first = store.fingerprint("a")
        store.delete("a")
        assert store.fingerprint("a") is None
        store.save(release, key="a")
        assert store.fingerprint("a") not in (None, first)


class TestForeignBytes:
    def test_unparseable_document_keeps_byte_contract_with_null_catalog(
        self, db_path
    ):
        """The backend contract is bytes-in bytes-out; catalog extraction
        must not make it reject non-JSON documents (fault-injection tests
        store garbage on purpose)."""
        backend = SqliteBackend(db_path)
        backend.put("junk", b"not json", b"not npz")
        assert backend.get_document("junk") == b"not json"
        assert backend.get_answers("junk") == b"not npz"
        (row,) = backend.query_catalog(ReleaseFilter())
        assert row["mechanism"] is None and row["epsilon"] is None

    def test_threaded_readers_each_get_their_own_connection(self, db_path, release):
        store = ReleaseStore(db_path)
        key = store.save(release, key="k")
        document = store.backend.get_document(key)
        failures = []

        def read():
            try:
                for _ in range(5):
                    assert store.backend.get_document(key) == document
            except Exception as exc:  # pragma: no cover - failure path
                failures.append(exc)

        threads = [threading.Thread(target=read) for _ in range(4)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert failures == []


def _crashy_put_worker(db_path: str, document: bytes, answers: bytes) -> None:
    """Forked child: start a put transaction, die (kill -9 style) pre-COMMIT.

    Replays the backend's own put sequence — revision bump plus row upsert
    inside ``BEGIN IMMEDIATE`` — then dies via :class:`KillWorkerFault`
    (``os._exit``) with the transaction still open, which is what a power
    cut or OOM-kill mid-``put`` looks like to the database file.
    """
    from repro.execution.faults import KillWorkerFault

    backend = SqliteBackend(db_path)
    conn = backend._conn
    conn.execute("BEGIN IMMEDIATE")
    conn.execute("UPDATE meta SET value = value + 1 WHERE name = 'revision'")
    conn.execute(
        "INSERT OR REPLACE INTO releases"
        " (key, document, answers, revision, created_at,"
        "  dataset, mechanism, epsilon, levels, graph_fingerprint)"
        " VALUES ('victim', ?, ?, 1, NULL, NULL, NULL, NULL, NULL, NULL)",
        (sqlite3.Binary(document), sqlite3.Binary(answers)),
    )
    KillWorkerFault(attempts=(1,)).trigger(0, 1)  # os._exit: COMMIT never runs


class TestCrashSafety:
    def test_kill_nine_mid_put_rolls_back_and_retry_is_bit_identical(
        self, db_path, release, tmp_path
    ):
        """The satellite acceptance: a writer killed -9 mid-``put`` leaves a
        database that reopens clean, without the half-written release, and a
        retried ``put`` under the same key lands bit-identically."""
        seed = ReleaseStore.in_memory()
        seed.save(release, key="victim")
        document = seed.backend.get_document("victim")
        answers = seed.backend.get_answers("victim")

        SqliteBackend(db_path)  # create + migrate before the writer forks
        context = multiprocessing.get_context("fork")
        writer = context.Process(
            target=_crashy_put_worker, args=(str(db_path), document, answers)
        )
        writer.start()
        writer.join(timeout=30)
        assert writer.exitcode == 17  # KillWorkerFault's os._exit status

        # The database reopens clean and the half-written release is absent.
        store = ReleaseStore(db_path)
        assert store.keys() == []
        assert not store.exists("victim")
        assert store.fingerprint("victim") is None

        # A retried put under the same key succeeds, bit-identically.
        assert store.save(release, key="victim") == "victim"
        assert store.backend.get_document("victim") == document
        assert store.backend.get_answers("victim") == answers
        assert store.load("victim").to_dict() == release.to_dict()


class TestCatalogParity:
    """The SQL path and the full-scan fallback must return identical rows
    for identically seeded stores — the tentpole acceptance criterion."""

    @pytest.fixture
    def seeded(self, tmp_path, release, laplace_release):
        sqlite_store = ReleaseStore(tmp_path / "cat.db")
        directory_store = ReleaseStore(tmp_path / "cat-dir")
        for store in (sqlite_store, directory_store):
            store.save(release, key="gauss-half")
            store.save(laplace_release, key="laplace-one")
        return sqlite_store, directory_store

    @pytest.mark.parametrize(
        "release_filter",
        [
            ReleaseFilter(),
            ReleaseFilter(epsilon=0.5),
            ReleaseFilter(mechanism="laplace"),
            ReleaseFilter(mechanism="laplace", epsilon=0.5),  # conjunction: empty
            ReleaseFilter(key_glob="gauss-*"),
            ReleaseFilter(key_glob="*-o?e"),
            ReleaseFilter(key_glob="[gl]*"),
            ReleaseFilter(since="2020-01-01"),  # no clock: nothing matches
            ReleaseFilter(epsilon=99.0),
        ],
        ids=lambda f: repr(f)[:60],
    )
    def test_sql_and_scan_paths_agree(self, seeded, release_filter):
        sqlite_store, directory_store = seeded
        sql_rows = ReleaseCatalog(sqlite_store).rows(release_filter)
        scan_rows = ReleaseCatalog(directory_store).rows(release_filter)
        assert sql_rows == scan_rows

    def test_graph_filter_agrees_and_spans_mechanisms(self, seeded, release):
        sqlite_store, directory_store = seeded
        fingerprint = graph_fingerprint(release.to_dict())
        release_filter = ReleaseFilter(graph=fingerprint)
        sql_rows = ReleaseCatalog(sqlite_store).rows(release_filter)
        assert sql_rows == ReleaseCatalog(directory_store).rows(release_filter)
        # Same graph + same specialization ⇒ same fingerprint for both
        # mechanisms, so the graph filter finds both releases.
        assert [row["key"] for row in sql_rows] == ["gauss-half", "laplace-one"]

    def test_clocked_store_supports_since(self, tmp_path, release):
        ticks = iter(["2026-01-01T00:00:00+00:00", "2026-06-01T00:00:00+00:00"])
        store = ReleaseStore(tmp_path / "clocked.db", clock=lambda: next(ticks))
        store.save(release, key="old")
        store.save(release, key="new")
        rows = ReleaseCatalog(store).rows(ReleaseFilter(since="2026-03-01"))
        assert [row["key"] for row in rows] == ["new"]
        assert rows[0]["created_at"] == "2026-06-01T00:00:00+00:00"

    def test_query_catalog_reads_no_document_blobs(self, seeded, monkeypatch):
        """The indexed path answers from catalog columns alone."""
        sqlite_store, _ = seeded

        def forbidden(key):
            raise AssertionError("query_catalog read a document blob")

        monkeypatch.setattr(sqlite_store.backend, "get_document", forbidden)
        rows = ReleaseCatalog(sqlite_store).rows(ReleaseFilter(epsilon=0.5))
        assert [row["key"] for row in rows] == ["gauss-half"]
