"""Tests for the degree-histogram query."""

import numpy as np
import pytest

from repro.graphs.bipartite import Side
from repro.grouping.partition import Group, Partition
from repro.queries.degree import DegreeHistogramQuery


class TestDegreeHistogramQuery:
    def test_evaluate_left_side(self, tiny_graph):
        answer = DegreeHistogramQuery(side=Side.LEFT, max_degree=3).evaluate(tiny_graph)
        histogram = answer.as_dict()
        assert histogram["degree=0"] == 1  # erin
        assert histogram["degree=1"] == 1  # carol
        assert histogram["degree=2"] == 2  # bob, dave
        assert histogram["degree>=3"] == 0

    def test_counts_sum_to_side_size(self, dblp_graph):
        answer = DegreeHistogramQuery(side=Side.LEFT, max_degree=20).evaluate(dblp_graph)
        assert int(answer.values.sum()) == dblp_graph.num_left()

    def test_clamping_into_last_bin(self, tiny_graph):
        answer = DegreeHistogramQuery(side=Side.LEFT, max_degree=1).evaluate(tiny_graph)
        histogram = answer.as_dict()
        assert histogram["degree>=1"] == 3  # carol, bob, dave all clamp to >=1

    def test_individual_sensitivity(self, tiny_graph):
        assert DegreeHistogramQuery().l1_sensitivity(tiny_graph, "individual") == 2.0

    def test_node_sensitivity(self, tiny_graph):
        query = DegreeHistogramQuery(max_degree=5)
        assert query.l1_sensitivity(tiny_graph, "node") == 1.0 + 2.0 * 5

    def test_group_sensitivity_bounded_by_group_mass(self, tiny_graph):
        partition = Partition(
            [Group("g1", ["bob", "carol"]), Group("g2", ["dave", "erin", "insulin", "aspirin", "statin", "zoloft"])]
        )
        query = DegreeHistogramQuery(side=Side.LEFT, max_degree=5)
        sensitivity = query.l1_sensitivity(tiny_graph, "group", partition=partition)
        # g2 = {dave, erin, insulin, aspirin, statin, zoloft} touches 5 of the
        # 5 associations (all except none: dave-statin, dave-aspirin,
        # bob-insulin, carol-insulin, bob-aspirin) and contains 2 left nodes,
        # so the bound is 2 + 2*5 = 12.
        assert sensitivity == 12.0

    def test_l2_sensitivity_is_sqrt_of_l1(self, tiny_graph):
        query = DegreeHistogramQuery(max_degree=5)
        l1 = query.l1_sensitivity(tiny_graph, "individual")
        assert query.l2_sensitivity(tiny_graph, "individual") == pytest.approx(np.sqrt(l1))

    def test_invalid_max_degree(self):
        with pytest.raises(ValueError):
            DegreeHistogramQuery(max_degree=0)
