"""Tests for attribute-driven partitions and hierarchies."""

import pytest

from repro.exceptions import GroupingError
from repro.graphs.bipartite import BipartiteGraph, Side
from repro.grouping.attribute_grouping import (
    MISSING_VALUE,
    hierarchy_from_attribute_levels,
    partition_by_attribute,
)


@pytest.fixture
def geo_graph():
    """Patients with zipcode/city/state attributes, drugs with categories."""
    graph = BipartiteGraph(name="geo-pharmacy")
    patients = [
        ("p1", "15213", "pittsburgh", "pa"),
        ("p2", "15213", "pittsburgh", "pa"),
        ("p3", "15217", "pittsburgh", "pa"),
        ("p4", "19104", "philadelphia", "pa"),
        ("p5", "10001", "new-york", "ny"),
    ]
    for pid, zipcode, city, state in patients:
        graph.add_left_node(pid, zipcode=zipcode, city=city, state=state)
    for drug, category in [("insulin", "cardiac"), ("zoloft", "psychiatric")]:
        graph.add_right_node(drug, category=category)
    graph.add_associations(
        [("p1", "insulin"), ("p2", "zoloft"), ("p3", "insulin"), ("p4", "zoloft"), ("p5", "insulin")]
    )
    return graph


class TestPartitionByAttribute:
    def test_groups_by_zipcode(self, geo_graph):
        partition = partition_by_attribute(geo_graph, "zipcode", include_other_side=False)
        assert partition.num_groups() == 4
        assert partition.group("zipcode:15213").members == frozenset(["p1", "p2"])

    def test_other_side_group_included_by_default(self, geo_graph):
        partition = partition_by_attribute(geo_graph, "zipcode")
        assert partition.universe() == frozenset(geo_graph.nodes())
        assert partition.group("other-side").members == frozenset(["insulin", "zoloft"])

    def test_right_side_attribute(self, geo_graph):
        partition = partition_by_attribute(geo_graph, "category", side=Side.RIGHT, include_other_side=False)
        assert partition.group("category:psychiatric").members == frozenset(["zoloft"])

    def test_missing_attribute_bucket(self, geo_graph):
        geo_graph.add_left_node("p6")
        geo_graph.add_association("p6", "insulin")
        partition = partition_by_attribute(geo_graph, "zipcode", include_other_side=False)
        assert partition.group(f"zipcode:{MISSING_VALUE}").members == frozenset(["p6"])

    def test_empty_side_rejected(self):
        graph = BipartiteGraph()
        graph.add_right_node("only-drug")
        with pytest.raises(GroupingError):
            partition_by_attribute(graph, "zipcode", side=Side.LEFT)

    def test_level_recorded(self, geo_graph):
        partition = partition_by_attribute(geo_graph, "zipcode", level=3, include_other_side=False)
        assert all(group.level == 3 for group in partition.groups())

    def test_usable_as_protection_partition(self, geo_graph):
        from repro.privacy.sensitivity import group_count_sensitivity

        partition = partition_by_attribute(geo_graph, "zipcode")
        assert group_count_sensitivity(geo_graph, partition) >= 2.0


class TestHierarchyFromAttributes:
    def test_levels_and_structure(self, geo_graph):
        hierarchy = hierarchy_from_attribute_levels(geo_graph, ["zipcode", "city", "state"])
        assert hierarchy.level_indices() == [0, 1, 2, 3, 4]
        assert hierarchy.partition_at(4).num_groups() == 1
        assert hierarchy.partition_at(3).group("state:pa").members >= frozenset(["p1", "p4"])
        assert hierarchy.partition_at(1).group("zipcode:15213").members == frozenset(["p1", "p2"])

    def test_parent_links_follow_geography(self, geo_graph):
        hierarchy = hierarchy_from_attribute_levels(geo_graph, ["zipcode", "city", "state"])
        assert hierarchy.parent_of("zipcode:15213") == "city:pittsburgh"
        assert hierarchy.parent_of("city:pittsburgh") == "state:pa"
        assert hierarchy.parent_of("state:ny") == "root"

    def test_individual_level_optional(self, geo_graph):
        hierarchy = hierarchy_from_attribute_levels(
            geo_graph, ["zipcode", "city"], include_individual_level=False
        )
        assert 0 not in hierarchy.level_indices()

    def test_inconsistent_nesting_rejected(self, geo_graph):
        # Make a zipcode span two cities.
        geo_graph.node_attributes("p2")["city"] = "philadelphia"
        with pytest.raises(GroupingError):
            hierarchy_from_attribute_levels(geo_graph, ["zipcode", "city"])

    def test_empty_attribute_list_rejected(self, geo_graph):
        with pytest.raises(GroupingError):
            hierarchy_from_attribute_levels(geo_graph, [])

    def test_hierarchy_usable_by_discloser(self, geo_graph):
        from repro.core.config import DisclosureConfig
        from repro.core.discloser import MultiLevelDiscloser
        from repro.grouping.specialization import SpecializationConfig

        hierarchy = hierarchy_from_attribute_levels(geo_graph, ["zipcode", "city", "state"])
        config = DisclosureConfig(
            epsilon_g=1.0,
            specialization=SpecializationConfig(num_levels=4),
            release_levels=[1, 2, 3],
        )
        release = MultiLevelDiscloser(config=config, rng=0).disclose(geo_graph, hierarchy=hierarchy)
        assert release.levels() == [1, 2, 3]
        # Coarser attribute levels have at least the sensitivity of finer ones.
        sens = [release.level(level).sensitivity for level in release.levels()]
        assert sens == sorted(sens)
