"""Tests for dataset generators and the registry."""

import pytest

from repro.datasets.dblp_like import DBLP_PAPER_STATS, dblp_paper_scale, generate_dblp_like
from repro.datasets.movielens_like import generate_movie_ratings
from repro.datasets.pharmacy import generate_pharmacy_purchases
from repro.datasets.registry import available_datasets, load_dataset
from repro.exceptions import DatasetError
from repro.graphs.stats import summarize


class TestDblpLike:
    def test_paper_stats_recorded(self):
        assert DBLP_PAPER_STATS["num_associations"] == 6_384_117

    def test_scale_keeps_ratios(self):
        scaled = dblp_paper_scale(10_000)
        assert scaled["num_papers"] == pytest.approx(10_000 * 2_281_341 / 1_295_100, abs=1)
        assert scaled["num_associations"] == pytest.approx(10_000 * 6_384_117 / 1_295_100, abs=1)

    def test_generation_matches_requested_counts(self):
        graph = generate_dblp_like(num_authors=400, seed=0)
        scaled = dblp_paper_scale(400)
        assert graph.num_left() == 400
        assert graph.num_right() == scaled["num_papers"]
        # Duplicate pruning may lose a handful of associations but not many.
        assert graph.num_associations() >= 0.95 * scaled["num_associations"]
        assert graph.num_associations() <= scaled["num_associations"]

    def test_seeded_reproducibility(self):
        a = generate_dblp_like(num_authors=200, seed=5)
        b = generate_dblp_like(num_authors=200, seed=5)
        assert set(a.associations()) == set(b.associations())

    def test_different_seeds_differ(self):
        a = generate_dblp_like(num_authors=200, seed=1)
        b = generate_dblp_like(num_authors=200, seed=2)
        assert set(a.associations()) != set(b.associations())

    def test_heavy_tail_present(self):
        graph = generate_dblp_like(num_authors=1000, seed=3)
        summary = summarize(graph)
        assert summary.max_left_degree > 3 * summary.mean_left_degree

    def test_explicit_counts(self):
        graph = generate_dblp_like(num_authors=50, num_papers=60, num_associations=100, seed=0)
        assert graph.num_left() == 50
        assert graph.num_right() == 60
        assert graph.num_associations() <= 100

    def test_impossible_density_rejected(self):
        with pytest.raises(DatasetError):
            generate_dblp_like(num_authors=3, num_papers=3, num_associations=100)

    def test_graph_validates(self):
        generate_dblp_like(num_authors=100, seed=1).validate()


class TestPharmacy:
    def test_attributes_present(self, pharmacy_graph):
        patient = next(pharmacy_graph.left_nodes())
        drug = next(pharmacy_graph.right_nodes())
        assert pharmacy_graph.node_attributes(patient)["zipcode"].startswith("zip")
        assert pharmacy_graph.node_attributes(drug)["category"]

    def test_every_patient_has_a_purchase(self, pharmacy_graph):
        degrees = [pharmacy_graph.degree(p) for p in pharmacy_graph.left_nodes()]
        assert min(degrees) >= 1

    def test_requested_sizes(self):
        graph = generate_pharmacy_purchases(num_patients=80, num_drugs=25, seed=0)
        assert graph.num_left() == 80
        assert graph.num_right() == 25

    def test_invalid_mean_purchases(self):
        with pytest.raises(ValueError):
            generate_pharmacy_purchases(mean_purchases=0.0)

    def test_seeded_reproducibility(self):
        a = generate_pharmacy_purchases(num_patients=50, num_drugs=10, seed=9)
        b = generate_pharmacy_purchases(num_patients=50, num_drugs=10, seed=9)
        assert set(a.associations()) == set(b.associations())


class TestMovies:
    def test_attributes_present(self):
        graph = generate_movie_ratings(num_viewers=60, num_movies=20, seed=1)
        viewer = next(graph.left_nodes())
        movie = next(graph.right_nodes())
        assert graph.node_attributes(viewer)["age_band"]
        assert graph.node_attributes(movie)["genre"]

    def test_blockbusters_attract_more_ratings(self):
        graph = generate_movie_ratings(num_viewers=800, num_movies=100, seed=2)
        first = graph.degree("movie0")
        last = graph.degree("movie99")
        assert first > last

    def test_invalid_mean_ratings(self):
        with pytest.raises(ValueError):
            generate_movie_ratings(mean_ratings=-1)


class TestRegistry:
    def test_available_datasets(self):
        assert available_datasets() == ["dblp", "movies", "pharmacy"]

    def test_load_each_dataset_tiny(self):
        for name in available_datasets():
            graph = load_dataset(name, scale="tiny", seed=0)
            assert graph.num_associations() > 0

    def test_unknown_dataset_rejected(self):
        with pytest.raises(DatasetError):
            load_dataset("census")

    def test_unknown_scale_rejected(self):
        with pytest.raises(DatasetError):
            load_dataset("dblp", scale="galactic")

    def test_scales_are_ordered(self):
        tiny = load_dataset("dblp", "tiny", seed=0)
        small = load_dataset("dblp", "small", seed=0)
        assert small.num_associations() > tiny.num_associations()
