"""Golden regression test for the Figure-1 harness.

``tests/golden/figure1_small.json`` was generated from the seed repository's
*reference* engine (a dblp-like graph with 250 authors, a 6-level hierarchy,
seed 20170605) and checked in.  Both execution engines must keep reproducing
those per-level error metrics within a tight tolerance, so a refactor of the
graph core, the query layer or the mechanisms cannot silently shift the
paper's headline figure.
"""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from repro.datasets.dblp_like import generate_dblp_like
from repro.evaluation.figure1 import Figure1Config, run_figure1, run_figure1_analytic

GOLDEN_PATH = Path(__file__).resolve().parent / "golden" / "figure1_small.json"

#: Tight relative tolerance: the harness is deterministic for a fixed seed,
#: so anything beyond float round-off is a real regression.
RTOL = 1e-12


@pytest.fixture(scope="module")
def golden() -> dict:
    with GOLDEN_PATH.open() as fh:
        return json.load(fh)


def _golden_config(golden: dict, engine: str) -> Figure1Config:
    spec = golden["config"]
    return Figure1Config(
        epsilons=tuple(spec["epsilons"]),
        num_levels=spec["num_levels"],
        num_trials=spec["num_trials"],
        delta=spec["delta"],
        mechanism=spec["mechanism"],
        seed=spec["seed"],
        engine=engine,
    )


def _golden_graph(golden: dict):
    graph_spec = golden["graph"]
    graph = generate_dblp_like(num_authors=graph_spec["num_authors"], seed=graph_spec["seed"])
    # The generator itself must not have drifted either.
    assert graph.num_left() == graph_spec["num_left"]
    assert graph.num_right() == graph_spec["num_right"]
    assert graph.num_associations() == graph_spec["num_associations"]
    return graph


def _assert_result_matches(result, expected: dict) -> None:
    assert result.epsilons == pytest.approx(expected["epsilons"], rel=RTOL)
    assert result.true_count == pytest.approx(expected["true_count"], rel=RTOL)
    assert {str(level) for level in result.sensitivities} == set(expected["sensitivities"])
    for level, sensitivity in result.sensitivities.items():
        assert sensitivity == pytest.approx(expected["sensitivities"][str(level)], rel=RTOL)
    assert {str(level) for level in result.series} == set(expected["series"])
    for level in result.levels():
        assert result.series_for(level) == pytest.approx(expected["series"][str(level)], rel=RTOL)


@pytest.mark.parametrize("engine", ["reference", "vectorized"])
def test_analytic_figure1_matches_golden(golden, engine):
    config = _golden_config(golden, engine)
    result = run_figure1_analytic(graph=_golden_graph(golden), config=config)
    _assert_result_matches(result, golden["analytic"])


@pytest.mark.parametrize("engine", ["reference", "vectorized"])
def test_sampled_figure1_matches_golden(golden, engine):
    config = _golden_config(golden, engine)
    result = run_figure1(graph=_golden_graph(golden), config=config)
    _assert_result_matches(result, golden["sampled"])


def test_engines_agree_exactly(golden):
    """Beyond matching the golden file, the two engines agree bit for bit."""
    results = {}
    for engine in ("reference", "vectorized"):
        config = _golden_config(golden, engine)
        results[engine] = run_figure1(graph=_golden_graph(golden), config=config)
    reference, vectorized = results["reference"], results["vectorized"]
    assert reference.sensitivities == vectorized.sensitivities
    for level in reference.levels():
        assert reference.series_for(level) == vectorized.series_for(level)
