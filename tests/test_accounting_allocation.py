"""Tests for budget allocation strategies."""

import pytest

from repro.accounting.allocation import (
    GeometricAllocation,
    ProportionalToSensitivityAllocation,
    UniformAllocation,
    make_allocation,
)
from repro.exceptions import ValidationError


class TestUniformAllocation:
    def test_equal_shares(self):
        shares = UniformAllocation().allocate(1.0, [1, 2, 3, 4])
        assert all(v == pytest.approx(0.25) for v in shares.values())

    def test_sums_to_total(self):
        shares = UniformAllocation().allocate(0.9, [0, 1, 2])
        assert sum(shares.values()) == pytest.approx(0.9)

    def test_empty_levels_rejected(self):
        with pytest.raises(ValidationError):
            UniformAllocation().allocate(1.0, [])

    def test_invalid_total(self):
        with pytest.raises(ValidationError):
            UniformAllocation().allocate(0.0, [1])


class TestGeometricAllocation:
    def test_coarser_levels_get_more(self):
        shares = GeometricAllocation(ratio=2.0).allocate(1.0, [1, 2, 3])
        assert shares[3] > shares[2] > shares[1]

    def test_sums_to_total(self):
        shares = GeometricAllocation(ratio=3.0).allocate(2.0, [0, 1, 2, 3])
        assert sum(shares.values()) == pytest.approx(2.0)

    def test_ratio_of_consecutive_levels(self):
        shares = GeometricAllocation(ratio=2.0).allocate(1.0, [5, 6])
        assert shares[6] / shares[5] == pytest.approx(2.0)

    def test_ratio_one_rejected(self):
        with pytest.raises(ValidationError):
            GeometricAllocation(ratio=1.0)

    def test_levels_order_does_not_matter(self):
        a = GeometricAllocation(2.0).allocate(1.0, [3, 1, 2])
        b = GeometricAllocation(2.0).allocate(1.0, [1, 2, 3])
        assert a == pytest.approx(b)


class TestProportionalAllocation:
    def test_shares_proportional_to_sensitivity(self):
        strategy = ProportionalToSensitivityAllocation()
        shares = strategy.allocate(1.0, [1, 2], sensitivities={1: 10.0, 2: 30.0})
        assert shares[2] == pytest.approx(3 * shares[1])
        assert sum(shares.values()) == pytest.approx(1.0)

    def test_equalises_noise_scale(self):
        # sigma ~ sensitivity / epsilon, so proportional shares make it constant.
        sensitivities = {1: 5.0, 2: 50.0, 3: 500.0}
        shares = ProportionalToSensitivityAllocation().allocate(1.0, [1, 2, 3], sensitivities=sensitivities)
        scales = {level: sensitivities[level] / shares[level] for level in shares}
        values = list(scales.values())
        assert all(v == pytest.approx(values[0]) for v in values)

    def test_missing_sensitivity_rejected(self):
        with pytest.raises(ValidationError):
            ProportionalToSensitivityAllocation().allocate(1.0, [1, 2], sensitivities={1: 2.0})

    def test_nonpositive_sensitivity_rejected(self):
        with pytest.raises(ValidationError):
            ProportionalToSensitivityAllocation().allocate(1.0, [1], sensitivities={1: 0.0})


class TestRegistry:
    def test_make_by_name(self):
        assert isinstance(make_allocation("uniform"), UniformAllocation)
        assert isinstance(make_allocation("geometric", ratio=4.0), GeometricAllocation)
        assert isinstance(make_allocation("proportional"), ProportionalToSensitivityAllocation)

    def test_unknown_name_rejected(self):
        with pytest.raises(ValidationError):
            make_allocation("magic")
