"""Tests for privacy certificates and release verification."""

import pytest

from repro.core.certificate import PrivacyCertificate, verify_release
from repro.core.config import DisclosureConfig
from repro.core.discloser import MultiLevelDiscloser
from repro.exceptions import ReleaseIntegrityError
from repro.grouping.specialization import SpecializationConfig


@pytest.fixture(scope="module")
def release(request):
    from repro.datasets.dblp_like import generate_dblp_like

    graph = generate_dblp_like(num_authors=150, seed=3)
    config = DisclosureConfig(epsilon_g=0.8, specialization=SpecializationConfig(num_levels=4))
    return MultiLevelDiscloser(config=config, rng=2).disclose(graph)


class TestVerifyRelease:
    def test_valid_release_passes(self, release):
        certificate = verify_release(release)
        assert isinstance(certificate, PrivacyCertificate)
        assert len(certificate.entries) == len(release.levels())

    def test_certificate_contents(self, release):
        certificate = PrivacyCertificate.from_release(release)
        entry = certificate.entries[0]
        assert entry.epsilon == pytest.approx(0.8)
        assert entry.unit == "group"
        assert certificate.specialization_epsilon == pytest.approx(1.0)

    def test_summary_lines_mention_levels(self, release):
        lines = verify_release(release).summary_lines()
        assert any("level 0" in line for line in lines)
        assert "Privacy certificate" in lines[0]

    def test_certificate_to_dict(self, release):
        data = PrivacyCertificate.from_release(release).to_dict()
        assert data["dataset_name"] == release.dataset_name
        assert len(data["entries"]) == len(release.levels())

    def test_tampered_noise_scale_detected(self, release):
        import copy

        tampered = copy.deepcopy(release)
        tampered.level(0).noise_scale *= 0.5
        with pytest.raises(ReleaseIntegrityError):
            verify_release(tampered)

    def test_tampered_sensitivity_detected(self, release):
        import copy

        tampered = copy.deepcopy(release)
        tampered.level(1).sensitivity = -1.0
        with pytest.raises(ReleaseIntegrityError):
            verify_release(tampered)

    def test_unknown_mechanism_detected(self, release):
        import copy

        tampered = copy.deepcopy(release)
        tampered.level(0).mechanism = "homebrew"
        with pytest.raises(ReleaseIntegrityError):
            verify_release(tampered)

    def test_laplace_release_verifies(self):
        from repro.datasets.dblp_like import generate_dblp_like

        graph = generate_dblp_like(num_authors=120, seed=5)
        config = DisclosureConfig(
            epsilon_g=0.5, mechanism="laplace", specialization=SpecializationConfig(num_levels=3)
        )
        release = MultiLevelDiscloser(config=config, rng=4).disclose(graph)
        verify_release(release)

    def test_geometric_release_verifies(self):
        from repro.datasets.dblp_like import generate_dblp_like

        graph = generate_dblp_like(num_authors=120, seed=5)
        config = DisclosureConfig(
            epsilon_g=0.5, mechanism="geometric", specialization=SpecializationConfig(num_levels=3)
        )
        release = MultiLevelDiscloser(config=config, rng=4).disclose(graph)
        verify_release(release)
