"""Chaos suite: the fault-tolerance contract under injected failures.

Two properties anchor everything here (the PR's acceptance criteria):

* an interrupted, journaled sweep **resumes** — completed combinations are
  never re-run (and never re-disclosed);
* a run disturbed by injected worker crashes, transient task failures or
  transient store IO errors produces a release **bit-identical** to the
  undisturbed run under the same seed.
"""

from __future__ import annotations

import json
import os
from pathlib import Path

import pytest

from repro.core.config import DisclosureConfig
from repro.core.discloser import MultiLevelDiscloser
from repro.core.store import MemoryBackend, ReleaseStore
from repro.datasets.dblp_like import generate_dblp_like
from repro.evaluation.journal import RunJournal
from repro.evaluation.scalability import run_scalability, scalability_key
from repro.evaluation.sweep import ParameterSweep, combination_key
from repro.exceptions import (
    EvaluationError,
    SweepInterrupted,
    TaskTimeoutError,
    TransientError,
    WorkerCrashError,
)
from repro.execution import (
    ProcessExecutor,
    RetryPolicy,
    SerialExecutor,
    ThreadExecutor,
)
from repro.execution.faults import (
    AttemptLedger,
    DelayFault,
    FaultInjectingBackend,
    FaultInjectingExecutor,
    FaultPlan,
    KillWorkerFault,
    RaiseFault,
)
from repro.grouping.specialization import SpecializationConfig
from repro.utils.serialization import canonical_json_bytes

FAST_RETRY = RetryPolicy(max_attempts=3, backoff_base=0.0, jitter=0.0)


def _release_bytes(release) -> bytes:
    """Canonical bytes of a release minus execution provenance.

    ``config`` records *which executor* produced the artefact (that is the
    point of provenance — a chaos-wrapped executor names itself); everything
    else — answers, guarantees, noise scales, statistics — must be
    bit-identical between disturbed and undisturbed runs.
    """
    document = release.to_dict()
    config = dict(document.get("config", {}))
    config.pop("executor", None)
    config.pop("max_workers", None)
    document["config"] = config
    return canonical_json_bytes(document)


def _disclose(graph, executor=None, seed=11):
    config = DisclosureConfig(
        epsilon_g=0.5, specialization=SpecializationConfig(num_levels=4)
    )
    return MultiLevelDiscloser(config=config, rng=seed).disclose(graph, executor=executor)


def _square(task):
    return task * task


class TestFaultPlan:
    def test_raise_fault_triggers_on_listed_attempts_only(self):
        fault = RaiseFault(attempts=(1, 3))
        with pytest.raises(TransientError):
            fault.trigger(0, 1)
        fault.trigger(0, 2)  # attempt 2: clean
        with pytest.raises(TransientError):
            fault.trigger(0, 3)

    def test_plan_is_per_task(self):
        plan = FaultPlan.transient([0, 2])
        assert len(plan.for_task(0)) == 1
        assert plan.for_task(1) == ()

    def test_ledger_counts_attempts_per_scope(self, tmp_path):
        ledger = AttemptLedger(tmp_path)
        assert ledger.record("map-1", 0) == 1
        assert ledger.record("map-1", 0) == 2
        assert ledger.record("map-2", 0) == 1
        assert ledger.attempts("map-1", 0) == 2
        assert ledger.attempts("map-9", 5) == 0


class TestInjectedTransientFaults:
    def test_retry_absorbs_transient_faults(self, tmp_path):
        chaos = FaultInjectingExecutor(
            SerialExecutor(),
            FaultPlan.transient([0, 2]),
            tmp_path,
            retry_policy=FAST_RETRY,
        )
        assert chaos.map(_square, [1, 2, 3]) == [1, 4, 9]
        # Faulted tasks ran twice, the clean one once.
        assert chaos.ledger.attempts("map-1", 0) == 2
        assert chaos.ledger.attempts("map-1", 1) == 1
        assert chaos.ledger.attempts("map-1", 2) == 2

    def test_without_retry_the_fault_escapes(self, tmp_path):
        chaos = FaultInjectingExecutor(SerialExecutor(), FaultPlan.transient([0]), tmp_path)
        with pytest.raises(TransientError):
            chaos.map(_square, [1, 2])

    def test_disclosure_bit_identical_under_transient_faults(self, tmp_path):
        """Acceptance: injected transient failures + retries leave the
        released artefact bit-for-bit identical to the undisturbed run."""
        graph = generate_dblp_like(num_authors=60, seed=0)
        baseline = _disclose(graph)
        inner = ThreadExecutor(max_workers=2)
        chaos = FaultInjectingExecutor(
            inner, FaultPlan.transient([0, 1]), tmp_path, retry_policy=FAST_RETRY
        )
        try:
            disturbed = _disclose(graph, executor=chaos)
        finally:
            chaos.close()
        assert _release_bytes(disturbed) == _release_bytes(baseline)


class TestWorkerDeath:
    def test_pool_rebuild_recovers_killed_worker(self, tmp_path):
        plan = FaultPlan({1: (KillWorkerFault(attempts=(1,)),)})
        inner = ProcessExecutor(max_workers=2)
        chaos = FaultInjectingExecutor(inner, plan, tmp_path)
        try:
            assert chaos.map(_square, [3, 4, 5, 6]) == [9, 16, 25, 36]
        finally:
            chaos.close()
        # The victim ran twice (killed, then resubmitted on the fresh pool).
        assert chaos.ledger.attempts("map-1", 1) == 2

    def test_repeated_deaths_exhaust_rebuild_budget(self, tmp_path):
        plan = FaultPlan({0: (KillWorkerFault(attempts=(1, 2, 3, 4)),)})
        inner = ProcessExecutor(max_workers=2, max_pool_rebuilds=2)
        chaos = FaultInjectingExecutor(inner, plan, tmp_path)
        try:
            with pytest.raises(WorkerCrashError) as excinfo:
                chaos.map(_square, [1, 2])
            assert 0 in excinfo.value.unfinished
        finally:
            chaos.close()

    def test_disclosure_bit_identical_after_worker_crash(self, tmp_path):
        """Acceptance: a worker killed mid-disclosure is recovered by the
        pool rebuild and the release still matches the fault-free run."""
        graph = generate_dblp_like(num_authors=60, seed=0)
        baseline = _disclose(graph)
        plan = FaultPlan({0: (KillWorkerFault(attempts=(1,)),)})
        inner = ProcessExecutor(max_workers=2)
        chaos = FaultInjectingExecutor(inner, plan, tmp_path)
        try:
            disturbed = _disclose(graph, executor=chaos)
        finally:
            chaos.close()
        assert _release_bytes(disturbed) == _release_bytes(baseline)


class TestInjectedDelays:
    def test_delay_fault_trips_task_timeout(self, tmp_path):
        plan = FaultPlan({0: (DelayFault(seconds=5.0),)})
        inner = ThreadExecutor(max_workers=2)
        chaos = FaultInjectingExecutor(inner, plan, tmp_path)
        try:
            with pytest.raises(TaskTimeoutError):
                chaos.map(_square, [1, 2], timeout=0.2)
        finally:
            chaos.close()


class TestFaultInjectingBackend:
    def test_scripted_call_fails_then_recovers(self):
        backend = FaultInjectingBackend(MemoryBackend(), fail={"put": (1,)})
        store = ReleaseStore(backend)
        graph = generate_dblp_like(num_authors=40, seed=2)
        release = _disclose(graph)
        with pytest.raises(TransientError):
            store.save(release, key="r")
        # A retried save (same already-disclosed artefact, no budget
        # re-spend) lands and round-trips bit-identically.
        FAST_RETRY.call(lambda: store.save(release, key="r"), key="save-r", sleep=lambda _: None)
        assert _release_bytes(store.load("r")) == _release_bytes(release)

    def test_transient_store_io_preserves_release_bytes(self):
        """Acceptance: transient IO faults on the store path never alter
        the persisted artefact — only delay it."""
        graph = generate_dblp_like(num_authors=40, seed=2)
        release = _disclose(graph)
        clean_store = ReleaseStore(MemoryBackend())
        clean_store.save(release, key="r")

        flaky = ReleaseStore(FaultInjectingBackend(MemoryBackend(), fail={"put": (1,)}))
        FAST_RETRY.call(lambda: flaky.save(release, key="r"), key="r", sleep=lambda _: None)
        assert flaky.backend.inner.get_document("r") == clean_store.backend.get_document("r")

    def test_delay_is_applied_without_failing(self):
        backend = FaultInjectingBackend(MemoryBackend(), delay={"exists": 0.01})
        assert backend.exists("nope") is False
        assert backend.calls["exists"] == 1


class _CountingRunner:
    """Sweep runner that discloses, counts its invocations on disk, and
    fails one scripted combination until a flag file disappears."""

    def __init__(self, state_dir, fail_levels=None):
        self.state_dir = state_dir
        self.fail_levels = fail_levels

    def __call__(self, epsilon_g, levels):
        marker = self.state_dir / f"run-eps{epsilon_g}-l{levels}"
        count = int(marker.read_text()) if marker.is_file() else 0
        marker.write_text(str(count + 1))
        if self.fail_levels == levels and (self.state_dir / "failures-armed").is_file():
            raise EvaluationError(f"scripted failure at levels={levels}")
        graph = generate_dblp_like(num_authors=40, seed=7)
        config = DisclosureConfig(
            epsilon_g=epsilon_g, specialization=SpecializationConfig(num_levels=levels)
        )
        release = MultiLevelDiscloser(config=config, rng=7).disclose(graph)
        return {"digest": canonical_json_bytes(release.to_dict()).hex()[:32]}

    def invocations(self, epsilon_g, levels):
        marker = self.state_dir / f"run-eps{epsilon_g}-l{levels}"
        return int(marker.read_text()) if marker.is_file() else 0


class TestSweepResume:
    GRID = {"epsilon_g": [0.5], "levels": [3, 4, 5]}

    def test_interrupted_sweep_resumes_without_redisclosing(self, tmp_path):
        """Acceptance: resume re-runs only unfinished combinations; done
        rows come back verbatim from the journal."""
        runner = _CountingRunner(tmp_path, fail_levels=5)
        (tmp_path / "failures-armed").write_text("")
        sweep = ParameterSweep(runner, self.GRID, name="chaos")
        journal_path = tmp_path / "journal.json"

        with pytest.raises(SweepInterrupted):
            sweep.run(journal=journal_path, on_error="fail_fast")
        journal = RunJournal(journal_path)
        done = [k for k in journal.entries if journal.status(k) == "done"]
        assert len(done) == 2  # levels 3 and 4 completed before the stop
        first_digests = {key: journal.row(key)["digest"] for key in done}

        # Clear the fault and resume with the same journal.
        (tmp_path / "failures-armed").unlink()
        result = sweep.run(journal=journal_path, on_error="fail_fast")
        assert len(result.rows) == 3
        for levels in (3, 4):
            assert runner.invocations(0.5, levels) == 1  # never re-disclosed
        assert runner.invocations(0.5, 5) == 2  # the failed one re-ran
        for key, digest in first_digests.items():
            resumed = RunJournal(journal_path).row(key)
            assert resumed["digest"] == digest  # rows reused verbatim

    def test_collect_errors_keeps_going_and_reports(self, tmp_path):
        runner = _CountingRunner(tmp_path, fail_levels=4)
        (tmp_path / "failures-armed").write_text("")
        sweep = ParameterSweep(runner, self.GRID, name="chaos")
        result = sweep.run(journal=tmp_path / "journal.json", on_error="collect_errors")
        assert len(result.rows) == 2
        assert len(result.errors) == 1
        assert result.errors[0]["type"] == "EvaluationError"
        key = combination_key({"epsilon_g": 0.5, "levels": 4})
        assert result.errors[0]["key"] == key

    def test_journal_refuses_a_different_sweep(self, tmp_path):
        runner = _CountingRunner(tmp_path)
        journal_path = tmp_path / "journal.json"
        ParameterSweep(runner, {"epsilon_g": [0.5], "levels": [3]}, name="a").run(
            journal=journal_path
        )
        other = ParameterSweep(runner, {"epsilon_g": [0.9], "levels": [3]}, name="a")
        with pytest.raises(EvaluationError, match="different run"):
            other.run(journal=journal_path)


def _square_row(x):
    """Pure picklable sweep runner for orchestration-visibility tests."""
    return {"y": x * x}


class _Victim100Runner:
    """100-combination sweep runner: one real (tiny) disclosure per
    combination, persisted into a store — with one scripted victim
    combination that SIGKILLs its own worker on its first invocation.

    Invocation counts live as marker files under ``state_dir`` (written
    *before* the kill), so the test can prove a resumed sweep re-disclosed
    nothing that had already completed.  Picklable: plain paths only.
    """

    def __init__(self, state_dir, store_dir, victim_eps=None):
        self.state_dir = Path(state_dir)
        self.store_dir = str(store_dir)
        self.victim_eps = victim_eps

    def __call__(self, epsilon_g):
        self.state_dir.mkdir(parents=True, exist_ok=True)
        marker = self.state_dir / f"run-eps{epsilon_g}"
        count = int(marker.read_text()) if marker.is_file() else 0
        marker.write_text(str(count + 1))
        if self.victim_eps == epsilon_g and count == 0:
            os._exit(17)  # die like a segfault: no cleanup, no journal entry
        graph = generate_dblp_like(num_authors=30, seed=13)
        config = DisclosureConfig(
            epsilon_g=epsilon_g, specialization=SpecializationConfig(num_levels=3)
        )
        release = MultiLevelDiscloser(config=config, rng=13).disclose(graph)
        key = f"rel-eps{epsilon_g}"
        ReleaseStore(self.store_dir).save(release, key=key)
        return {"store_key": key}

    def invocations(self, epsilon_g) -> int:
        marker = self.state_dir / f"run-eps{epsilon_g}"
        return int(marker.read_text()) if marker.is_file() else 0


class TestSweepOrchestrationUnderChaos:
    """The PR's acceptance criterion: a 100-combination journaled sweep
    killed mid-flight resumes with zero re-disclosed completed
    combinations, its snapshot converges to consistent terminal states,
    and the stored releases are bit-identical to an uninterrupted
    same-seed run."""

    EPSILONS = [round(0.1 * i, 1) for i in range(1, 101)]
    VICTIM = 5.0  # the 50th combination: mid-flight, several waves in

    def test_100_combination_kill_resume_bit_identity(self, tmp_path):
        runner = _Victim100Runner(tmp_path / "state", tmp_path / "store", victim_eps=self.VICTIM)
        sweep = ParameterSweep(runner, {"epsilon_g": self.EPSILONS}, name="chaos-100")
        journal_path = tmp_path / "journal.json"
        snapshot_path = tmp_path / "journal.json.events.jsonl"

        # Phase 1: the victim combination SIGKILLs its worker; with a zero
        # rebuild budget the sweep aborts mid-flight like a real crash.
        pool = ProcessExecutor(max_workers=4, max_pool_rebuilds=0)
        try:
            with pytest.raises(WorkerCrashError):
                sweep.run(executor=pool, journal=journal_path, snapshot=snapshot_path)
        finally:
            pool.close()

        interrupted = RunJournal(journal_path)
        done_keys = [
            key for key in interrupted.entries if interrupted.status(key) == "done"
        ]
        assert 0 < len(done_keys) < 100  # genuinely mid-flight
        from repro.evaluation.snapshot import SweepSnapshot

        mid = SweepSnapshot.open(snapshot_path)
        assert not mid.is_converged()  # the killed wave is still RUNNING
        assert mid.counts()["RUNNING"] > 0

        # Phase 2: resume with the same journal + snapshot stream.
        result = sweep.run(
            executor="process", max_workers=4, journal=journal_path, snapshot=snapshot_path
        )
        assert len(result.rows) == 100

        # Snapshot converged: every task terminal, nothing stuck mid-state.
        snap = result.snapshot
        counts = snap.counts()
        assert snap.is_converged()
        assert counts["DONE"] == 100
        assert counts["RUNNING"] == counts["RETRYING"] == counts["PENDING"] == 0
        # The victim carries its crash history: attempt 2, not a silent gap.
        victim_key = combination_key({"epsilon_g": self.VICTIM})
        assert snap.attempt(victim_key) >= 2

        # Zero re-disclosure: every combination journaled done before the
        # kill ran exactly once across both phases.
        for key in done_keys:
            eps = json.loads(key)["epsilon_g"]
            assert runner.invocations(eps) == 1, f"re-disclosed eps={eps}"

        # Bit-identity: an uninterrupted same-seed sweep into a fresh store
        # produces byte-for-byte the same artefacts for all 100 keys.
        clean_runner = _Victim100Runner(tmp_path / "state-clean", tmp_path / "store-clean")
        ParameterSweep(clean_runner, {"epsilon_g": self.EPSILONS}, name="chaos-100").run(
            executor="process", max_workers=4
        )
        disturbed_store = ReleaseStore(tmp_path / "store")
        clean_store = ReleaseStore(tmp_path / "store-clean")
        assert sorted(disturbed_store.keys()) == sorted(clean_store.keys())
        for key in clean_store.keys():
            assert disturbed_store.backend.get_document(key) == clean_store.backend.get_document(
                key
            ), f"store artefact differs for {key}"

    def test_in_run_pool_rebuild_surfaces_as_retrying(self, tmp_path):
        """A worker death the pool recovers *within* the run must show up in
        the snapshot as RETRYING history — never a silent gap."""
        plan = FaultPlan({0: (KillWorkerFault(attempts=(1,)),)})
        inner = ProcessExecutor(max_workers=2)  # default rebuild budget: recovers
        chaos = FaultInjectingExecutor(inner, plan, tmp_path / "faults")
        sweep = ParameterSweep(_square_row, {"x": [1, 2, 3, 4]}, name="retry-vis")
        snapshot_path = tmp_path / "events.jsonl"
        try:
            result = sweep.run(
                executor=chaos, journal=tmp_path / "journal.json", snapshot=snapshot_path
            )
        finally:
            chaos.close()
        assert [row["y"] for row in result.rows] == [1, 4, 9, 16]
        snap = result.snapshot
        assert snap.is_converged() and snap.counts()["DONE"] == 4
        # The fault plan kills wave-local task 0 of each map call: the event
        # stream records the RETRYING transition and the bumped attempt.
        stream = snapshot_path.read_text()
        assert '"state":"RETRYING"' in stream
        assert any(snap.attempt(key) >= 2 for key in snap.tasks)


class TestScalabilityResume:
    def test_resumed_run_reuses_rows_and_stored_releases(self, tmp_path):
        store = ReleaseStore(tmp_path / "store")
        journal_path = tmp_path / "journal.json"
        kwargs = dict(
            author_counts=(60, 90),
            num_levels=3,
            epsilon_g=0.5,
            seed=5,
            store=store,
            journal=journal_path,
        )
        first = run_scalability(**kwargs)
        assert len(first.rows) == 2
        key = scalability_key("vectorized", 3, 0.5, 5, 60)
        fingerprint = store.fingerprint(key)
        assert fingerprint is not None

        resumed = run_scalability(**kwargs)
        # Rows come back from the journal (identical, including timings)
        # and the stored artefacts were not rewritten.
        assert resumed.rows == first.rows
        assert store.fingerprint(key) == fingerprint
