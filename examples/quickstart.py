#!/usr/bin/env python
"""Quickstart: disclose a DBLP-like association graph with group privacy.

Runs the paper's two-phase pipeline end to end on a small synthetic
author-paper graph and prints, for every information level ``I_{9,i}``:

* the noisy association count released at that level,
* the noise scale and group-level sensitivity it was calibrated to,
* the relative error against the (normally hidden) true count, and
* the privacy certificate of the whole release.

The pipeline runs on the vectorized execution engine
(``DisclosureConfig(engine="vectorized")``, the default): the graph is
compiled once into array form and whole workloads are answered with batched
NumPy kernels.  Pass ``engine="reference"`` to run the pure-Python path —
the answers are identical, just slower.  The example also shows the batched
query API, ``QueryWorkload.evaluate_batch``, which answers several queries
from one compiled view.

Two orchestration features of the staged pipeline are demonstrated at the
end:

* ``DisclosureConfig(executor="process")`` fans the independent per-level
  perturbations out across cores (``"serial"``/``"thread"``/``"process"``
  all produce bit-identical releases for the same seed);
* :class:`repro.ReleaseStore` persists the release (JSON + npz) so it can
  be served — or re-reported with ``repro report`` — without re-spending
  privacy budget on a fresh disclosure.

Run with ``python examples/quickstart.py [num_authors]``.
"""

from __future__ import annotations

import sys
import tempfile

from repro import (
    DisclosureConfig,
    DegreeHistogramQuery,
    MultiLevelDiscloser,
    QueryWorkload,
    ReleaseStore,
    TotalAssociationCountQuery,
    generate_dblp_like,
    verify_release,
)
from repro.evaluation.metrics import relative_error_rate
from repro.evaluation.reporting import format_table


def main(num_authors: int = 2_000) -> None:
    graph = generate_dblp_like(num_authors=num_authors, seed=7)
    print(f"Generated {graph!r}")

    config = DisclosureConfig.paper_defaults(epsilon_g=0.999)
    # paper_defaults uses engine="vectorized"; spell it out for the example:
    config.engine = "vectorized"
    discloser = MultiLevelDiscloser(config=config, rng=42)
    release = discloser.disclose(graph)

    true_count = graph.num_associations()
    rows = []
    for level in release.levels():
        level_release = release.level(level)
        noisy = level_release.scalar_answer("total_association_count")
        rows.append(
            {
                "information_level": f"I9,{level}",
                "groups": level_release.guarantee.num_groups,
                "sensitivity": level_release.sensitivity,
                "noise_scale": level_release.noise_scale,
                "noisy_count": round(noisy, 1),
                "RER": f"{100 * relative_error_rate(noisy, true_count):.3f}%",
            }
        )
    print()
    print(f"True association count (kept by the publisher): {true_count}")
    print(format_table(rows))

    print()
    certificate = verify_release(release)
    print("\n".join(certificate.summary_lines()))

    # Batched query evaluation: one compiled array view answers the whole
    # workload (here the true, un-noised values a publisher would keep).
    workload = QueryWorkload([TotalAssociationCountQuery(), DegreeHistogramQuery(max_degree=10)])
    answers = workload.evaluate_batch(graph)
    histogram = answers["degree_histogram"]
    print()
    print(
        f"Batched workload over {graph.arrays()!r}: total="
        f"{answers['total_association_count'].scalar():.0f}, "
        f"histogram bins={histogram.values.size}"
    )

    # Parallel disclosure: the per-level perturbations are independent, so
    # executor="process" fans them out across cores.  Same seed, same bits —
    # the release matches the serial one above exactly (compare the noisy
    # counts), only the wall clock changes.
    parallel_config = DisclosureConfig.paper_defaults(epsilon_g=0.999)
    parallel_config.executor = "process"
    parallel_release = MultiLevelDiscloser(config=parallel_config, rng=42).disclose(graph)
    level0 = release.level(0).scalar_answer("total_association_count")
    parallel_level0 = parallel_release.level(0).scalar_answer("total_association_count")
    print()
    print(
        f"Process-parallel disclosure, level 0 noisy count: {parallel_level0:.1f} "
        f"(serial run produced {level0:.1f}; identical={parallel_level0 == level0})"
    )

    # Persist the release: the budget is spent either way, so keep the
    # artefact and serve it instead of re-disclosing.  The round-trip is
    # lossless down to the last bit.
    store = ReleaseStore(tempfile.mkdtemp(prefix="repro-releases-"))
    key = store.save(release)
    restored = store.load(key)
    print(
        f"Persisted release under key {key!r} "
        f"(lossless round-trip: {restored.to_dict() == release.to_dict()}); "
        f"re-render metrics any time with: repro report --store {store.root} --key {key}"
    )


if __name__ == "__main__":
    size = int(sys.argv[1]) if len(sys.argv) > 1 else 2_000
    main(size)
