#!/usr/bin/env python
"""Quickstart: disclose a DBLP-like association graph with group privacy.

Runs the paper's two-phase pipeline end to end on a small synthetic
author-paper graph and prints, for every information level ``I_{9,i}``:

* the noisy association count released at that level,
* the noise scale and group-level sensitivity it was calibrated to,
* the relative error against the (normally hidden) true count, and
* the privacy certificate of the whole release.

Run with ``python examples/quickstart.py [num_authors]``.
"""

from __future__ import annotations

import sys

from repro import DisclosureConfig, MultiLevelDiscloser, generate_dblp_like, verify_release
from repro.evaluation.metrics import relative_error_rate
from repro.evaluation.reporting import format_table


def main(num_authors: int = 2_000) -> None:
    graph = generate_dblp_like(num_authors=num_authors, seed=7)
    print(f"Generated {graph!r}")

    config = DisclosureConfig.paper_defaults(epsilon_g=0.999)
    discloser = MultiLevelDiscloser(config=config, rng=42)
    release = discloser.disclose(graph)

    true_count = graph.num_associations()
    rows = []
    for level in release.levels():
        level_release = release.level(level)
        noisy = level_release.scalar_answer("total_association_count")
        rows.append(
            {
                "information_level": f"I9,{level}",
                "groups": level_release.guarantee.num_groups,
                "sensitivity": level_release.sensitivity,
                "noise_scale": level_release.noise_scale,
                "noisy_count": round(noisy, 1),
                "RER": f"{100 * relative_error_rate(noisy, true_count):.3f}%",
            }
        )
    print()
    print(f"True association count (kept by the publisher): {true_count}")
    print(format_table(rows))

    print()
    certificate = verify_release(release)
    print("\n".join(certificate.summary_lines()))


if __name__ == "__main__":
    size = int(sys.argv[1]) if len(sys.argv) > 1 else 2_000
    main(size)
