#!/usr/bin/env python
"""Reproduce the paper's Figure 1 ("Impact of εg") on a synthetic DBLP-like graph.

Prints the relative error rate of the group-private association-count release
for every information level ``I9,0 … I9,7`` across the paper's εg sweep
(0.1 … 1.0), in the same long format the benchmark harness uses, plus the
narrative checkpoints at εg = 0.999.

Run with ``python examples/dblp_figure1.py [scale]`` where ``scale`` is one of
``tiny``, ``small`` (default) or ``medium``.
"""

from __future__ import annotations

import sys

from repro.datasets.registry import load_dataset
from repro.evaluation.experiments import run_e2_text_claims
from repro.evaluation.figure1 import Figure1Config, run_figure1
from repro.evaluation.reporting import format_table


def main(scale: str = "small") -> None:
    graph = load_dataset("dblp", scale=scale, seed=20170605)
    print(f"Dataset: {graph!r}")

    config = Figure1Config(num_levels=9, num_trials=40, scale=scale)
    result = run_figure1(graph=graph, config=config)

    print()
    print("Figure 1 — relative error rate vs epsilon_g (rows: epsilon_g, columns: information level)")
    print(result.format_table())

    print()
    print("Narrative checkpoints at epsilon_g = 0.999 (paper values where quoted):")
    rows = run_e2_text_claims(scale=scale, graph=graph)
    for row in rows:
        row["measured_rer"] = f"{100 * row['measured_rer']:.3f}%"
        row["paper_rer"] = f"{100 * row['paper_rer']:.2f}%" if row["paper_rer"] is not None else "-"
    print(format_table(rows, columns=["information_level", "epsilon_g", "measured_rer", "paper_rer", "sensitivity"]))


if __name__ == "__main__":
    main(sys.argv[1] if len(sys.argv) > 1 else "small")
