#!/usr/bin/env python
"""Operating a publisher: repeated releases under one end-to-end budget.

A data owner rarely publishes once.  This example drives
:class:`repro.core.publisher.GraphPublisher` through a realistic sequence:

1. fix a total privacy budget for the year (specialization included);
2. publish a first multi-level release for internal analysts;
3. publish a refreshed release a "quarter" later at a smaller εg;
4. export per-role JSON views (owner / partner / public) of the latest
   release — each file contains only the level that role may read;
5. show the ledger, and demonstrate that the publisher refuses a release
   that would overdraw the budget.

Run with ``python examples/publisher_budget_management.py [num_authors]``.
"""

from __future__ import annotations

import sys
import tempfile
from pathlib import Path

from repro import AccessPolicy, DisclosureConfig, PrivacyBudget, generate_dblp_like
from repro.core.publisher import GraphPublisher
from repro.exceptions import BudgetExceededError
from repro.evaluation.reporting import format_table
from repro.grouping.specialization import SpecializationConfig


def main(num_authors: int = 1_500) -> None:
    graph = generate_dblp_like(num_authors=num_authors, seed=13)
    print(f"Publishing {graph!r}")

    base_config = DisclosureConfig(
        epsilon_g=0.8,
        specialization=SpecializationConfig(num_levels=6, epsilon=1.0),
    )
    publisher = GraphPublisher(
        graph,
        total_budget=PrivacyBudget(epsilon=3.0, delta=1e-3),
        base_config=base_config,
        rng=2024,
    )

    first = publisher.release(label="annual-release")
    second = publisher.release(epsilon_g=0.4, label="quarterly-refresh")
    print(f"\nReleases so far: {len(publisher.releases())} "
          f"(levels {first.levels()} each)")

    policy = AccessPolicy({"owner": 0, "partner": 2, "public": 4}, top_level=6)
    with tempfile.TemporaryDirectory() as tmp:
        written = publisher.export_views(second, policy, Path(tmp) / "views")
        print("Per-role export files:")
        for role, path in written.items():
            print(f"  {role:8s} -> {path.name} "
                  f"(level {policy.level_for(role)}, {path.stat().st_size} bytes)")

    print("\nPrivacy ledger:")
    rows = [
        {"label": entry.label, "epsilon": entry.cost.epsilon, "delta": entry.cost.delta}
        for entry in publisher.ledger.entries()
    ]
    print(format_table(rows))
    spent = publisher.spent()
    remaining = publisher.remaining()
    print(f"spent: epsilon={spent.epsilon:g}, delta={spent.delta:g}; "
          f"remaining: epsilon={remaining.epsilon:g}, delta={remaining.delta:g}")

    print("\nAttempting a release that would overdraw the budget...")
    try:
        publisher.release(epsilon_g=2.0, label="over-budget")
    except BudgetExceededError as exc:
        print(f"  refused, as required: {exc}")


if __name__ == "__main__":
    main(int(sys.argv[1]) if len(sys.argv) > 1 else 1_500)
