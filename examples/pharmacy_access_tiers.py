#!/usr/bin/env python
"""Pharmacy scenario: group-private aggregates with tiered user access.

The paper motivates group privacy with a pharmacy example: the *number* of
purchases made by a neighbourhood (a group of patients) can itself be
sensitive — e.g. psychiatric-drug purchases per zipcode.  This example:

1. generates a patient-drug purchase graph whose patients carry ``zipcode``
   attributes and drugs carry ``category`` attributes;
2. builds a multi-level group hierarchy over it and releases the association
   count at every level under group differential privacy;
3. defines an :class:`~repro.core.access.AccessPolicy` with three roles
   (``regulator`` > ``insurer`` > ``public``) and shows the answer each role
   actually receives — the regulator's view is far more accurate than the
   public one, exactly the privilege/accuracy trade-off of the paper;
4. additionally releases a per-zipcode psychiatric purchase count through the
   grouped workload, demonstrating a custom (attribute-defined) protection
   partition rather than a specialization-derived one.

Run with ``python examples/pharmacy_access_tiers.py [num_patients]``.
"""

from __future__ import annotations

import sys

from repro import (
    AccessPolicy,
    DisclosureConfig,
    MultiLevelDiscloser,
    generate_pharmacy_purchases,
)
from repro.evaluation.metrics import relative_error_rate
from repro.evaluation.reporting import format_table
from repro.grouping.partition import Group, Partition
from repro.grouping.specialization import SpecializationConfig
from repro.mechanisms.laplace import LaplaceMechanism


def tiered_release(graph) -> None:
    """Release the purchase count at several levels and show per-role views."""
    config = DisclosureConfig(
        epsilon_g=0.8,
        specialization=SpecializationConfig(num_levels=6),
    )
    discloser = MultiLevelDiscloser(config=config, rng=3)
    release = discloser.disclose(graph)

    policy = AccessPolicy({"regulator": 0, "insurer": 2, "public": 4}, top_level=6)
    true_count = graph.num_associations()

    rows = []
    for role in policy.roles():
        view = policy.view_for(role, release)
        noisy = view.scalar_answer("total_association_count")
        rows.append(
            {
                "role": role,
                "information_level": policy.information_level(role).name,
                "noisy_total_purchases": round(noisy, 1),
                "RER": f"{100 * relative_error_rate(noisy, true_count):.2f}%",
                "epsilon_g": view.guarantee.epsilon,
            }
        )
    print("Per-role views of the total purchase count "
          f"(true value, never released: {true_count})")
    print(format_table(rows))


def zipcode_release(graph) -> None:
    """Release per-zipcode psychiatric purchase counts under zipcode-group privacy.

    The protection unit is a whole zipcode's patient population: the released
    vector must change by at most the worst zipcode's psychiatric purchase
    count when one zipcode is added or removed, which is exactly the
    group-workload sensitivity computed below.
    """
    by_zip = {}
    for patient in graph.left_nodes():
        by_zip.setdefault(graph.node_attributes(patient)["zipcode"], set()).add(patient)
    psychiatric = {
        d for d in graph.right_nodes() if graph.node_attributes(d)["category"] == "psychiatric"
    }

    # Protection partition: one group per zipcode over the patient universe.
    zipcode_partition = Partition(
        [
            Group(f"zip:{zipcode}", frozenset(members), side="left")
            for zipcode, members in sorted(by_zip.items())
        ]
    )
    # Removing one zipcode's patients changes only that zipcode's coordinate
    # of the released vector, by its own psychiatric purchase count — so the
    # sensitivity is the largest per-zipcode psychiatric purchase count.
    per_zip_truth = {
        group.group_id.replace("zip:", ""): graph.association_count_between(group.members, psychiatric)
        for group in zipcode_partition.groups()
    }
    epsilon = 0.8
    sensitivity = max(1.0, float(max(per_zip_truth.values())))
    mechanism = LaplaceMechanism(epsilon=epsilon, sensitivity=sensitivity, rng=11)

    rows = []
    for zipcode, true_value in per_zip_truth.items():
        rows.append(
            {
                "zipcode": zipcode,
                "true_psychiatric_purchases": true_value,
                "noisy_release": round(mechanism.randomise(true_value), 1),
            }
        )
    print()
    print(
        f"Per-zipcode psychiatric purchase counts (Laplace, epsilon={epsilon}, "
        f"zipcode-group sensitivity={sensitivity:g})"
    )
    print(format_table(rows[:10]))


def main(num_patients: int = 1_500) -> None:
    graph = generate_pharmacy_purchases(num_patients=num_patients, num_drugs=120, seed=5)
    print(f"Generated {graph!r}")
    print()
    tiered_release(graph)
    zipcode_release(graph)


if __name__ == "__main__":
    size = int(sys.argv[1]) if len(sys.argv) > 1 else 1_500
    main(size)
