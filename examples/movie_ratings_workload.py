#!/usr/bin/env python
"""Movie-rating scenario: multi-query workloads and baseline comparison.

The paper's introduction also names movie-rating databases as a source of
sensitive associations.  This example releases a richer workload — the total
rating count *and* a viewer-degree histogram ("how many viewers rated k
movies") — at three group levels, and contrasts the result with two
alternatives:

* the classical individual-DP release (very accurate, but its group-level
  guarantee at the coarsest level is enormous), and
* the naive group-DP baseline obtained from the group-privacy lemma (properly
  private but far noisier than the paper's calibrated approach).

Run with ``python examples/movie_ratings_workload.py [num_viewers]``.
"""

from __future__ import annotations

import sys

from repro import DisclosureConfig, MultiLevelDiscloser, generate_movie_ratings
from repro.baselines.individual_dp import IndividualDPDiscloser
from repro.baselines.naive_group import NaiveGroupDPDiscloser
from repro.evaluation.metrics import release_error_report
from repro.evaluation.reporting import format_table
from repro.grouping.specialization import SpecializationConfig
from repro.queries.counts import TotalAssociationCountQuery
from repro.queries.degree import DegreeHistogramQuery


def main(num_viewers: int = 2_000) -> None:
    graph = generate_movie_ratings(num_viewers=num_viewers, num_movies=300, seed=9)
    print(f"Generated {graph!r}")

    epsilon_g = 0.6
    config = DisclosureConfig(
        epsilon_g=epsilon_g,
        specialization=SpecializationConfig(num_levels=5),
        release_levels=[0, 2, 3],
    )
    workload = [TotalAssociationCountQuery(), DegreeHistogramQuery(max_degree=30)]
    discloser = MultiLevelDiscloser(config=config, queries=workload, rng=4)
    hierarchy = discloser.specializer.build(graph).hierarchy
    release = discloser.disclose(graph, hierarchy=hierarchy)

    from repro.queries.workload import QueryWorkload

    report = release_error_report(release, graph, workload=QueryWorkload(workload))
    rows = []
    for level in release.levels():
        rows.append(
            {
                "method": "group_dp_multilevel",
                "level": f"I5,{level}",
                "rer": f"{100 * report[level]['rer']:.2f}%",
                "noise_scale": round(report[level]["noise_scale"], 1),
                "group_epsilon": release.level(level).guarantee.epsilon,
            }
        )

    naive = NaiveGroupDPDiscloser(epsilon_g=epsilon_g, rng=4).disclose(graph, hierarchy, levels=release.levels())
    naive_report = release_error_report(naive, graph)
    for level in naive.levels():
        rows.append(
            {
                "method": "naive_group_dp",
                "level": f"I5,{level}",
                "rer": f"{100 * naive_report[level]['rer']:.2f}%",
                "noise_scale": round(naive_report[level]["noise_scale"], 1),
                "group_epsilon": naive.level(level).guarantee.epsilon,
            }
        )

    individual = IndividualDPDiscloser(epsilon_i=epsilon_g, rng=4)
    individual_release = individual.as_multi_level_release(graph, hierarchy, levels=release.levels())
    individual_report = release_error_report(individual_release, graph)
    for level in individual_release.levels():
        rows.append(
            {
                "method": "individual_dp",
                "level": f"I5,{level}",
                "rer": f"{100 * individual_report[level]['rer']:.4f}%",
                "noise_scale": round(individual_report[level]["noise_scale"], 2),
                "group_epsilon": round(individual_release.level(level).guarantee.epsilon, 1),
            }
        )

    print()
    print(f"Total rating count release at epsilon_g = {epsilon_g} (RER of the count query):")
    print(format_table(rows, columns=["method", "level", "rer", "noise_scale", "group_epsilon"]))
    print()
    print(
        "Note how individual DP is nearly exact but its *group*-level epsilon explodes with the\n"
        "group size, while the naive lemma-based baseline pays for proper group privacy with\n"
        "orders of magnitude more noise than the calibrated multi-level release."
    )


if __name__ == "__main__":
    main(int(sys.argv[1]) if len(sys.argv) > 1 else 2_000)
