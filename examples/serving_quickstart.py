#!/usr/bin/env python
"""Serving quickstart: disclose once, then serve per-role views over HTTP.

The paper's deployment story in one script:

1. disclose a small DBLP-like graph (this is the only step that spends
   privacy budget) and persist the release into a temporary
   :class:`~repro.core.store.ReleaseStore`;
2. start the read-only :class:`~repro.serving.ReleaseServer` on a free port
   — from here on no disclosure code runs at all;
3. fetch the views of two roles with different privileges over real HTTP
   and verify they differ exactly as the paper promises: the privileged
   role's view sits at a finer level with a smaller noise scale;
4. show the API's refusal behaviour (unknown role -> 403).

Run with ``python examples/serving_quickstart.py [num_authors]``.
"""

from __future__ import annotations

import sys
import tempfile

from repro import (
    AccessPolicy,
    DisclosureConfig,
    MultiLevelDiscloser,
    ReleaseStore,
    generate_dblp_like,
)
from repro.grouping.specialization import SpecializationConfig
from repro.serving import ReleaseServer, fetch_json, http_get


def main(num_authors: int = 400) -> None:
    # -- 1. disclose once (budget is spent here, and only here) ----------
    graph = generate_dblp_like(num_authors=num_authors, seed=7)
    config = DisclosureConfig(
        epsilon_g=0.8, specialization=SpecializationConfig(num_levels=6)
    )
    release = MultiLevelDiscloser(config, rng=1).disclose(graph)

    store = ReleaseStore(tempfile.mkdtemp(prefix="repro-store-"), cache_size=16)
    key = store.save(release)
    print(f"disclosed levels {release.levels()} and stored under key {key!r}")

    # -- 2. serve (read-only; the pipeline above is no longer involved) --
    policy = AccessPolicy({"analyst": 0, "public": 4}, top_level=6)
    with ReleaseServer(store, policy, port=0) as server:
        print(f"serving on {server.url}")
        health = fetch_json(server.url, "/healthz")
        print(f"healthz: {health['status']}, {health['releases']} release(s), "
              f"roles {health['roles']}")

        # -- 3. two roles, two very different views ----------------------
        analyst = fetch_json(server.url, f"/releases/{key}/views/analyst")
        public = fetch_json(server.url, f"/releases/{key}/views/public")
        for payload in (analyst, public):
            view = payload["release"]
            print(
                f"  role={payload['role']:<8} information_level={payload['information_level']}"
                f"  level={view['level']}  noise_scale={view['noise_scale']:.3f}"
            )

        assert analyst["release"]["level"] < public["release"]["level"], (
            "the privileged view must sit at a finer level"
        )
        assert analyst["release"]["noise_scale"] < public["release"]["noise_scale"], (
            "the privileged view must be more accurate"
        )
        print("privilege/accuracy trade-off verified: analyst view is finer and quieter")

        # -- 4. the API refuses what the policy does not grant -----------
        status, _ = http_get(f"{server.url}/releases/{key}/views/stranger")
        print(f"unknown role 'stranger' -> HTTP {status}")
        assert status == 403

    print("server stopped; the stored release remains servable at any time")


if __name__ == "__main__":
    main(int(sys.argv[1]) if len(sys.argv) > 1 else 400)
