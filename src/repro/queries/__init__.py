"""Query workloads over bipartite association graphs.

A query maps a graph (and optionally a grouping) to one or more numeric
answers and knows its own sensitivity under the supported adjacency
relations.  The paper's evaluation uses a single query — the total number of
associations in the dataset — but the disclosure pipeline accepts any query
in this package, and the extended examples release per-group counts and
degree histograms.
"""

from repro.queries.base import Query, QueryAnswer
from repro.queries.counts import (
    GroupedAssociationCountQuery,
    TotalAssociationCountQuery,
)
from repro.queries.cross import CrossGroupCountQuery
from repro.queries.degree import DegreeHistogramQuery
from repro.queries.workload import QueryWorkload

__all__ = [
    "Query",
    "QueryAnswer",
    "TotalAssociationCountQuery",
    "GroupedAssociationCountQuery",
    "DegreeHistogramQuery",
    "CrossGroupCountQuery",
    "QueryWorkload",
]
