"""Query interface.

Queries answer in the clear (``evaluate``) and report their sensitivity under
the two adjacency relations the library supports (``individual`` and
``group``), so a mechanism can be calibrated without the pipeline needing
query-specific knowledge.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass, field
from typing import Dict, List, Optional

import numpy as np

from repro.exceptions import SensitivityError
from repro.graphs.arrays import GraphArrays
from repro.graphs.bipartite import BipartiteGraph
from repro.grouping.partition import Partition


@dataclass
class QueryAnswer:
    """A (possibly vector-valued) query answer with named coordinates."""

    name: str
    values: np.ndarray
    labels: List[str] = field(default_factory=list)

    def __post_init__(self):
        self.values = np.atleast_1d(np.asarray(self.values, dtype=float))
        if self.labels and len(self.labels) != self.values.size:
            raise ValueError(
                f"{len(self.labels)} labels for {self.values.size} values in query {self.name!r}"
            )
        if not self.labels:
            self.labels = [f"{self.name}[{i}]" for i in range(self.values.size)]

    def scalar(self) -> float:
        """Return the single value of a scalar answer."""
        if self.values.size != 1:
            raise ValueError(f"answer {self.name!r} has {self.values.size} values, not 1")
        return float(self.values[0])

    def as_dict(self) -> Dict[str, float]:
        """Mapping ``label -> value``."""
        return {label: float(value) for label, value in zip(self.labels, self.values)}

    def to_dict(self) -> dict:
        """JSON-serialisable representation."""
        return {"name": self.name, "labels": list(self.labels), "values": self.values.tolist()}


class Query(abc.ABC):
    """Base class for queries over bipartite association graphs."""

    #: Short machine-readable identifier.
    name: str = "query"

    @abc.abstractmethod
    def evaluate(self, graph: BipartiteGraph) -> QueryAnswer:
        """Compute the true (un-noised) answer."""

    def evaluate_arrays(self, graph: BipartiteGraph, arrays: Optional[GraphArrays] = None) -> QueryAnswer:
        """Compute the true answer from a compiled array view.

        The vectorized engine calls this with a shared
        :class:`~repro.graphs.arrays.GraphArrays`; subclasses override it
        with a ``np.bincount``/segment-sum implementation that must agree
        with :meth:`evaluate` exactly (the parity suite enforces this).  The
        default falls back to the reference path, so custom queries work
        under either engine without changes.
        """
        return self.evaluate(graph)

    @abc.abstractmethod
    def l1_sensitivity(
        self, graph: BipartiteGraph, adjacency: str = "individual", partition: Optional[Partition] = None
    ) -> float:
        """L1 sensitivity under the given adjacency relation."""

    def l2_sensitivity(
        self, graph: BipartiteGraph, adjacency: str = "individual", partition: Optional[Partition] = None
    ) -> float:
        """L2 sensitivity; defaults to the L1 value (exact for scalar queries
        and for workloads in which an adjacent change touches one coordinate)."""
        return self.l1_sensitivity(graph, adjacency=adjacency, partition=partition)

    def _require_partition(self, adjacency: str, partition: Optional[Partition]) -> None:
        if adjacency == "group" and partition is None:
            raise SensitivityError(f"query {self.name!r} needs a partition for group adjacency")
        if adjacency not in ("individual", "group", "node"):
            raise SensitivityError(f"unknown adjacency {adjacency!r}")

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"{type(self).__name__}(name={self.name!r})"
