"""Cross-group association-count matrix query.

Releases, for a partition of the left nodes and a partition of the right
nodes, the number of associations between every (left group, right group)
pair — the noisy, differentially private analogue of the table published by
the safe-grouping baseline.  This is the natural "who is associated with
what, at group granularity" workload for bipartite graphs and a common
downstream need (e.g. purchases per neighbourhood per drug category).
"""

from __future__ import annotations

from typing import Dict, Hashable, List, Optional, Tuple

import numpy as np

from repro.exceptions import SensitivityError, ValidationError
from repro.graphs.arrays import GraphArrays
from repro.graphs.bipartite import BipartiteGraph, Side
from repro.grouping.partition import Partition
from repro.privacy.sensitivity import node_count_sensitivity
from repro.queries.base import Query, QueryAnswer

Node = Hashable


class CrossGroupCountQuery(Query):
    """Association counts between left-side groups and right-side groups.

    Parameters
    ----------
    left_partition:
        Partition of (a subset of) the left nodes.
    right_partition:
        Partition of (a subset of) the right nodes.

    Notes
    -----
    * Under **individual** adjacency one association lies in exactly one
      (left group, right group) cell, so the L1 sensitivity is 1.
    * Under **group** adjacency with a protection partition ``P``, removing a
      protected group removes every association incident to it; each such
      association changes exactly one cell by one, so the L1 sensitivity is
      the largest number of associations incident to any protected group —
      identical to the global-count sensitivity — and the L2 sensitivity is
      bounded by the same value (we report the L1 value, a safe bound).
    """

    name = "cross_group_count"

    def __init__(self, left_partition: Partition, right_partition: Partition):
        if not isinstance(left_partition, Partition) or not isinstance(right_partition, Partition):
            raise ValidationError("left_partition and right_partition must be Partition instances")
        overlap = left_partition.universe() & right_partition.universe()
        if overlap:
            raise ValidationError(
                f"left and right partitions overlap on {len(overlap)} node(s); they must cover "
                "disjoint sides of the bipartite graph"
            )
        self.left_partition = left_partition
        self.right_partition = right_partition

    def cell_labels(self) -> List[str]:
        """Labels of the flattened matrix, row-major (left group, right group)."""
        return [
            f"{left_id}|{right_id}"
            for left_id in self.left_partition.group_ids()
            for right_id in self.right_partition.group_ids()
        ]

    def true_matrix(self, graph: BipartiteGraph) -> np.ndarray:
        """The exact count matrix (num left groups x num right groups)."""
        left_ids = self.left_partition.group_ids()
        right_ids = self.right_partition.group_ids()
        left_index = {gid: i for i, gid in enumerate(left_ids)}
        right_index = {gid: j for j, gid in enumerate(right_ids)}
        matrix = np.zeros((len(left_ids), len(right_ids)), dtype=float)
        for left, right in graph.associations():
            if not self.left_partition.contains_element(left):
                continue
            if not self.right_partition.contains_element(right):
                continue
            i = left_index[self.left_partition.group_of(left).group_id]
            j = right_index[self.right_partition.group_of(right).group_id]
            matrix[i, j] += 1.0
        return matrix

    def evaluate(self, graph: BipartiteGraph) -> QueryAnswer:
        matrix = self.true_matrix(graph)
        return QueryAnswer(name=self.name, values=matrix.ravel(), labels=self.cell_labels())

    def evaluate_arrays(self, graph: BipartiteGraph, arrays: Optional[GraphArrays] = None) -> QueryAnswer:
        arrays = arrays if arrays is not None else graph.arrays()
        matrix = arrays.cross_group_matrix(self.left_partition, self.right_partition)
        return QueryAnswer(name=self.name, values=matrix.ravel(), labels=self.cell_labels())

    def l1_sensitivity(
        self, graph: BipartiteGraph, adjacency: str = "individual", partition: Optional[Partition] = None
    ) -> float:
        self._require_partition(adjacency, partition)
        if adjacency == "individual":
            return 1.0
        if adjacency == "node":
            return node_count_sensitivity(graph)
        worst = 0
        for group in partition.groups():
            worst = max(worst, graph.associations_incident_to(group.members))
        return float(worst) if worst else 1.0

    def answer_as_matrix(self, answer: Dict[str, float]) -> Dict[Tuple[str, str], float]:
        """Convert a released flat answer back into a (left, right) -> value mapping."""
        result: Dict[Tuple[str, str], float] = {}
        for label, value in answer.items():
            if "|" not in label:
                raise ValidationError(f"malformed cross-group label {label!r}")
            left_id, right_id = label.split("|", 1)
            result[(left_id, right_id)] = value
        return result

    @classmethod
    def from_attributes(
        cls, graph: BipartiteGraph, left_attribute: str, right_attribute: str
    ) -> "CrossGroupCountQuery":
        """Build the query from node attributes on each side (e.g. zipcode x category)."""
        from repro.grouping.attribute_grouping import partition_by_attribute

        left = partition_by_attribute(graph, left_attribute, side=Side.LEFT, include_other_side=False)
        right = partition_by_attribute(graph, right_attribute, side=Side.RIGHT, include_other_side=False)
        return cls(left, right)
