"""Degree-histogram query.

Used by the extended examples ("how many authors wrote k papers?"); not part
of the paper's evaluation but a natural companion workload whose sensitivity
under group adjacency the library computes correctly.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.graphs.arrays import GraphArrays
from repro.graphs.bipartite import BipartiteGraph, Side
from repro.graphs.stats import degree_sequence
from repro.grouping.partition import Partition
from repro.queries.base import Query, QueryAnswer


class DegreeHistogramQuery(Query):
    """Histogram of node degrees on one side, with a fixed number of bins.

    Parameters
    ----------
    side:
        Which side's degrees to histogram (default left).
    max_degree:
        Degrees above this value are clamped into the last bin, which also
        caps the query's sensitivity under node adjacency.
    """

    name = "degree_histogram"

    def __init__(self, side: Side = Side.LEFT, max_degree: int = 50):
        self.side = Side(side)
        if max_degree <= 0:
            raise ValueError(f"max_degree must be positive, got {max_degree}")
        self.max_degree = int(max_degree)

    def evaluate(self, graph: BipartiteGraph) -> QueryAnswer:
        degrees = degree_sequence(graph, self.side)
        clamped = np.minimum(degrees, self.max_degree)
        counts = np.bincount(clamped, minlength=self.max_degree + 1).astype(float)
        labels = [f"degree={d}" for d in range(self.max_degree)] + [f"degree>={self.max_degree}"]
        return QueryAnswer(name=self.name, values=counts, labels=labels)

    def evaluate_arrays(self, graph: BipartiteGraph, arrays: Optional[GraphArrays] = None) -> QueryAnswer:
        arrays = arrays if arrays is not None else graph.arrays()
        counts = arrays.degree_histogram(self.side, self.max_degree).astype(float)
        labels = [f"degree={d}" for d in range(self.max_degree)] + [f"degree>={self.max_degree}"]
        return QueryAnswer(name=self.name, values=counts, labels=labels)

    def l1_sensitivity(
        self, graph: BipartiteGraph, adjacency: str = "individual", partition: Optional[Partition] = None
    ) -> float:
        self._require_partition(adjacency, partition)
        if adjacency == "individual":
            # Adding/removing one association moves one node between two bins.
            return 2.0
        if adjacency == "node":
            # Adding/removing one node changes one bin by 1 and (through its
            # associations) moves up to max_degree neighbours between bins.
            return 1.0 + 2.0 * self.max_degree
        # Group adjacency: every node of the group leaves the histogram and
        # every outside neighbour of the group may shift one bin; bounded by
        # group size + 2 * (associations incident to the group).
        worst = 1.0
        for group in partition.groups():
            members_on_side = [
                m for m in group.members if graph.has_node(m) and graph.side_of(m) == self.side
            ]
            incident = graph.associations_incident_to(group.members)
            worst = max(worst, len(members_on_side) + 2.0 * incident)
        return worst

    def l2_sensitivity(
        self, graph: BipartiteGraph, adjacency: str = "individual", partition: Optional[Partition] = None
    ) -> float:
        # The histogram changes in many coordinates by +-1; the L2 norm of the
        # change is bounded by sqrt of the L1 bound.
        l1 = self.l1_sensitivity(graph, adjacency=adjacency, partition=partition)
        return float(np.sqrt(l1))
