"""Association-count queries.

:class:`TotalAssociationCountQuery` is the paper's evaluation query ("what is
the number of associations in the dataset?"); :class:`GroupedAssociationCountQuery`
generalises it to a per-group vector for richer releases.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.exceptions import SensitivityError
from repro.graphs.arrays import GraphArrays
from repro.graphs.bipartite import BipartiteGraph
from repro.graphs.subgraphs import subgraph_association_count
from repro.grouping.partition import Partition
from repro.privacy.sensitivity import (
    group_count_sensitivity,
    group_workload_l1_sensitivity,
    node_count_sensitivity,
)
from repro.queries.base import Query, QueryAnswer


class TotalAssociationCountQuery(Query):
    """The total number of associations in the graph."""

    name = "total_association_count"

    def evaluate(self, graph: BipartiteGraph) -> QueryAnswer:
        return QueryAnswer(name=self.name, values=np.array([graph.num_associations()], dtype=float), labels=["total"])

    def evaluate_arrays(self, graph: BipartiteGraph, arrays: Optional[GraphArrays] = None) -> QueryAnswer:
        arrays = arrays if arrays is not None else graph.arrays()
        return QueryAnswer(name=self.name, values=np.array([arrays.num_edges], dtype=float), labels=["total"])

    def l1_sensitivity(
        self, graph: BipartiteGraph, adjacency: str = "individual", partition: Optional[Partition] = None
    ) -> float:
        self._require_partition(adjacency, partition)
        if adjacency == "individual":
            return 1.0
        if adjacency == "node":
            return node_count_sensitivity(graph)
        return group_count_sensitivity(graph, partition)


class GroupedAssociationCountQuery(Query):
    """Per-group induced association counts for a fixed partition.

    For every group ``H`` of ``query_partition`` the answer reports the
    number of associations with both endpoints inside ``H``.

    Parameters
    ----------
    query_partition:
        The grouping whose induced subgraph counts are released.  Note this
        may differ from the *protection* partition passed to
        :meth:`l1_sensitivity` (a publisher may release fine-grained counts
        while protecting coarser groups).
    """

    name = "grouped_association_count"

    def __init__(self, query_partition: Partition):
        if not isinstance(query_partition, Partition):
            raise SensitivityError("query_partition must be a Partition")
        self.query_partition = query_partition

    def evaluate(self, graph: BipartiteGraph) -> QueryAnswer:
        labels = []
        values = []
        for group in self.query_partition.groups():
            labels.append(group.group_id)
            values.append(subgraph_association_count(graph, group.members))
        return QueryAnswer(name=self.name, values=np.array(values, dtype=float), labels=labels)

    def evaluate_arrays(self, graph: BipartiteGraph, arrays: Optional[GraphArrays] = None) -> QueryAnswer:
        arrays = arrays if arrays is not None else graph.arrays()
        counts = arrays.induced_counts(self.query_partition).astype(float)
        return QueryAnswer(name=self.name, values=counts, labels=self.query_partition.group_ids())

    def l1_sensitivity(
        self, graph: BipartiteGraph, adjacency: str = "individual", partition: Optional[Partition] = None
    ) -> float:
        self._require_partition(adjacency, partition)
        if adjacency == "individual":
            # One association lies inside at most one query group.
            return 1.0
        if adjacency == "node":
            return node_count_sensitivity(graph)
        # Group adjacency: when the protection partition coincides with the
        # query partition only one coordinate changes (see
        # repro.privacy.sensitivity); otherwise removing a protected group can
        # affect several query groups, so we bound by its total incident mass.
        if partition is self.query_partition:
            return group_workload_l1_sensitivity(graph, partition)
        return group_count_sensitivity(graph, partition)
