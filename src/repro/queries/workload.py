"""Workloads: ordered collections of queries released together."""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional

from repro.exceptions import ValidationError
from repro.graphs.bipartite import BipartiteGraph
from repro.grouping.partition import Partition
from repro.queries.base import Query, QueryAnswer


class QueryWorkload:
    """An ordered collection of queries answered as one release.

    The workload's sensitivity under an adjacency relation is the sum of the
    member queries' sensitivities (basic composition of the worst case —
    answers to different queries may all change when one group is removed).
    """

    def __init__(self, queries: Iterable[Query], name: str = "workload"):
        self.queries: List[Query] = list(queries)
        if not self.queries:
            raise ValidationError("a workload needs at least one query")
        names = [query.name for query in self.queries]
        if len(names) != len(set(names)):
            raise ValidationError(f"duplicate query names in workload: {names}")
        self.name = str(name)

    def evaluate(self, graph: BipartiteGraph) -> Dict[str, QueryAnswer]:
        """True answers of every query, keyed by query name."""
        return {query.name: query.evaluate(graph) for query in self.queries}

    def l1_sensitivity(
        self, graph: BipartiteGraph, adjacency: str = "individual", partition: Optional[Partition] = None
    ) -> float:
        """Summed L1 sensitivity of the member queries."""
        return sum(
            query.l1_sensitivity(graph, adjacency=adjacency, partition=partition)
            for query in self.queries
        )

    def l2_sensitivity(
        self, graph: BipartiteGraph, adjacency: str = "individual", partition: Optional[Partition] = None
    ) -> float:
        """Summed L2 sensitivity of the member queries (a safe upper bound)."""
        return sum(
            query.l2_sensitivity(graph, adjacency=adjacency, partition=partition)
            for query in self.queries
        )

    def num_answers(self, graph: BipartiteGraph) -> int:
        """Total number of scalar answers the workload produces."""
        return sum(answer.values.size for answer in self.evaluate(graph).values())

    def __len__(self) -> int:
        return len(self.queries)

    def __iter__(self):
        return iter(self.queries)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"QueryWorkload(name={self.name!r}, queries={[q.name for q in self.queries]})"
