"""Workloads: ordered collections of queries released together."""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict, Iterable, List, Optional

import numpy as np

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.mechanisms.base import NumericMechanism

from repro.exceptions import ValidationError
from repro.graphs.arrays import GraphArrays
from repro.graphs.bipartite import BipartiteGraph
from repro.grouping.partition import Partition
from repro.queries.base import Query, QueryAnswer


class QueryWorkload:
    """An ordered collection of queries answered as one release.

    The workload's sensitivity under an adjacency relation is the sum of the
    member queries' sensitivities (basic composition of the worst case —
    answers to different queries may all change when one group is removed).
    """

    def __init__(self, queries: Iterable[Query], name: str = "workload"):
        self.queries: List[Query] = list(queries)
        if not self.queries:
            raise ValidationError("a workload needs at least one query")
        names = [query.name for query in self.queries]
        if len(names) != len(set(names)):
            raise ValidationError(f"duplicate query names in workload: {names}")
        self.name = str(name)

    def evaluate(self, graph: BipartiteGraph) -> Dict[str, QueryAnswer]:
        """True answers of every query, keyed by query name."""
        return {query.name: query.evaluate(graph) for query in self.queries}

    def evaluate_batch(
        self, graph: BipartiteGraph, arrays: Optional[GraphArrays] = None
    ) -> Dict[str, QueryAnswer]:
        """Answer the whole workload from one compiled array view.

        The array view is compiled (or fetched from the graph's cache) once
        and shared by every member query, so a multi-query workload pays the
        node/edge scan a single time instead of once per query.  Answers are
        exactly equal to :meth:`evaluate` — the vectorized kernels compute
        the same integer counts — which ``tests/test_engine_parity.py``
        locks down.
        """
        arrays = arrays if arrays is not None else graph.arrays()
        return {query.name: query.evaluate_arrays(graph, arrays) for query in self.queries}

    def l1_sensitivity(
        self, graph: BipartiteGraph, adjacency: str = "individual", partition: Optional[Partition] = None
    ) -> float:
        """Summed L1 sensitivity of the member queries."""
        return sum(
            query.l1_sensitivity(graph, adjacency=adjacency, partition=partition)
            for query in self.queries
        )

    def l2_sensitivity(
        self, graph: BipartiteGraph, adjacency: str = "individual", partition: Optional[Partition] = None
    ) -> float:
        """Summed L2 sensitivity of the member queries (a safe upper bound)."""
        return sum(
            query.l2_sensitivity(graph, adjacency=adjacency, partition=partition)
            for query in self.queries
        )

    def num_answers(self, graph: BipartiteGraph) -> int:
        """Total number of scalar answers the workload produces."""
        return sum(answer.values.size for answer in self.evaluate(graph).values())

    def __len__(self) -> int:
        return len(self.queries)

    def __iter__(self):
        return iter(self.queries)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"QueryWorkload(name={self.name!r}, queries={[q.name for q in self.queries]})"


def noisy_workload_answers(
    mechanism: "NumericMechanism",
    true_answers: Dict[str, QueryAnswer],
    batched: bool = True,
) -> Dict[str, Dict[str, float]]:
    """Perturb evaluated workload answers into the release's label->value form.

    ``batched=True`` (the vectorized engine) draws one concatenated noise
    array for the whole workload via
    :meth:`~repro.mechanisms.base.NumericMechanism.randomise_many`;
    ``batched=False`` reproduces the reference engine's per-query draws.  For
    the Gaussian and Laplace families the two are bit-for-bit identical under
    the same seed.
    """
    answers: Dict[str, Dict[str, float]] = {}
    if batched:
        noisy_batch = mechanism.randomise_many([a.values for a in true_answers.values()])
        for (name, answer), noisy in zip(true_answers.items(), noisy_batch):
            answers[name] = {label: float(v) for label, v in zip(answer.labels, noisy)}
    else:
        for name, answer in true_answers.items():
            noisy = np.atleast_1d(np.asarray(mechanism.randomise(answer.values), dtype=float))
            answers[name] = {label: float(v) for label, v in zip(answer.labels, noisy)}
    return answers
