"""Extension experiments beyond the paper's evaluation.

The paper's figure varies only ``epsilon_g``.  Two further knobs materially
shape the privilege/accuracy trade-off and are natural follow-up questions a
user of the system asks; both are implemented here and benchmarked
(``benchmarks/test_bench_extensions.py``):

* **hierarchy depth** (:func:`run_depth_sweep`) — how the number of
  specialization levels changes the per-level error profile and the
  "privilege gap" (ratio between the coarsest and finest level's error);
* **delta** (:func:`run_delta_sweep`) — how the Gaussian mechanism's failure
  probability trades off against the error at a fixed ``epsilon_g``.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Sequence

from repro.datasets.registry import load_dataset
from repro.evaluation.figure1 import Figure1Config, build_figure1_hierarchy, level_sensitivities
from repro.evaluation.metrics import expected_rer_gaussian
from repro.exceptions import EvaluationError
from repro.graphs.bipartite import BipartiteGraph
from repro.mechanisms.calibration import gaussian_sigma


def privilege_gap(rer_by_level: Dict[int, float]) -> float:
    """Ratio of the coarsest level's error to the finest level's error.

    A gap of 1 means every privilege tier sees the same accuracy (no
    privilege gradient); the paper's setting exhibits gaps of 1-3 orders of
    magnitude.
    """
    if not rer_by_level:
        raise EvaluationError("rer_by_level must not be empty")
    finest = rer_by_level[min(rer_by_level)]
    coarsest = rer_by_level[max(rer_by_level)]
    if finest <= 0:
        raise EvaluationError("finest-level RER must be positive")
    return coarsest / finest


def run_depth_sweep(
    depths: Sequence[int] = (3, 5, 7, 9),
    epsilon_g: float = 0.999,
    delta: float = 1e-5,
    scale: str = "tiny",
    seed: int = 29,
    graph: Optional[BipartiteGraph] = None,
) -> List[Dict[str, Any]]:
    """Expected per-level RER and privilege gap as the hierarchy depth varies.

    Each depth rebuilds the hierarchy from scratch (fresh specialization seed
    derived from ``seed`` and the depth), then reports one row per released
    level plus a summary row carrying the privilege gap.
    """
    if graph is None:
        graph = load_dataset("dblp", scale, seed=seed)
    true_count = float(graph.num_associations())
    rows: List[Dict[str, Any]] = []
    for depth in depths:
        config = Figure1Config(num_levels=int(depth), scale=scale, seed=seed)
        hierarchy = build_figure1_hierarchy(graph, config, rng=seed + depth)
        levels = [level for level in range(0, depth - 1) if hierarchy.has_level(level)]
        sensitivities = level_sensitivities(graph, hierarchy, levels)
        rer_by_level: Dict[int, float] = {}
        for level in levels:
            sigma = gaussian_sigma(epsilon_g, delta, sensitivities[level])
            rer_by_level[level] = expected_rer_gaussian(sigma, true_count)
            rows.append(
                {
                    "kind": "level",
                    "depth": depth,
                    "level": level,
                    "epsilon_g": epsilon_g,
                    "expected_rer": rer_by_level[level],
                    "sensitivity": sensitivities[level],
                }
            )
        rows.append(
            {
                "kind": "summary",
                "depth": depth,
                "level": None,
                "epsilon_g": epsilon_g,
                "privilege_gap": privilege_gap(rer_by_level),
                "num_released_levels": len(levels),
            }
        )
    return rows


def run_delta_sweep(
    deltas: Sequence[float] = (1e-3, 1e-5, 1e-7, 1e-9),
    epsilon_g: float = 0.999,
    num_levels: int = 7,
    scale: str = "tiny",
    seed: int = 37,
    graph: Optional[BipartiteGraph] = None,
) -> List[Dict[str, Any]]:
    """Expected per-level RER as the Gaussian delta varies at fixed epsilon_g."""
    if graph is None:
        graph = load_dataset("dblp", scale, seed=seed)
    true_count = float(graph.num_associations())
    config = Figure1Config(num_levels=num_levels, scale=scale, seed=seed)
    hierarchy = build_figure1_hierarchy(graph, config, rng=seed)
    levels = [level for level in range(0, num_levels - 1) if hierarchy.has_level(level)]
    sensitivities = level_sensitivities(graph, hierarchy, levels)
    rows: List[Dict[str, Any]] = []
    for delta in deltas:
        for level in levels:
            sigma = gaussian_sigma(epsilon_g, delta, sensitivities[level])
            rows.append(
                {
                    "delta": delta,
                    "level": level,
                    "epsilon_g": epsilon_g,
                    "expected_rer": expected_rer_gaussian(sigma, true_count),
                }
            )
    return rows
