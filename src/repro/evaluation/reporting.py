"""Plain-text and JSON reporting helpers shared by examples and benchmarks."""

from __future__ import annotations

from pathlib import Path
from typing import Any, Iterable, List, Mapping, Optional, Sequence, Union

from repro.utils.serialization import to_json_file

PathLike = Union[str, Path]


def format_table(
    rows: Iterable[Mapping[str, Any]],
    columns: Optional[Sequence[str]] = None,
    float_format: str = "{:.4g}",
) -> str:
    """Render a list of row mappings as an aligned text table.

    Parameters
    ----------
    rows:
        Row dictionaries; missing cells render as empty strings.
    columns:
        Column order; defaults to the union of keys in first-seen order.
    float_format:
        Format applied to float cells.
    """
    rows = [dict(row) for row in rows]
    if columns is None:
        columns = []
        for row in rows:
            for key in row:
                if key not in columns:
                    columns.append(key)
    columns = list(columns)

    def render(value: Any) -> str:
        if value is None:
            return ""
        if isinstance(value, bool):
            return str(value)
        if isinstance(value, float):
            return float_format.format(value)
        return str(value)

    rendered = [[render(row.get(column)) for column in columns] for row in rows]
    widths = [
        max(len(str(column)), *(len(row[i]) for row in rendered)) if rendered else len(str(column))
        for i, column in enumerate(columns)
    ]
    lines: List[str] = []
    lines.append("  ".join(str(column).ljust(width) for column, width in zip(columns, widths)))
    lines.append("  ".join("-" * width for width in widths))
    for row in rendered:
        lines.append("  ".join(cell.ljust(width) for cell, width in zip(row, widths)))
    return "\n".join(lines)


def save_result(result: Any, path: PathLike) -> Path:
    """Persist any result object exposing ``to_dict()`` (or a plain mapping) as JSON."""
    payload = result.to_dict() if hasattr(result, "to_dict") else result
    return to_json_file(payload, path)
