"""Generic parameter-sweep runner used by the benchmark harnesses.

Sweeps can be **checkpointed**: pass ``journal=`` to :meth:`ParameterSweep.run`
and every combination's state (pending → running → done/failed, with error
detail) is persisted through a :class:`~repro.evaluation.journal.RunJournal`;
an interrupted or partially-failed sweep re-run with the same journal resumes
from the recorded rows instead of restarting — completed combinations are
never executed (and, when the runner discloses, never re-disclosed) again.
"""

from __future__ import annotations

import hashlib
import itertools
import json
import time
from contextlib import contextmanager
from dataclasses import dataclass, field
from functools import partial
from typing import Any, Callable, Dict, Iterable, List, Mapping, Optional, Union

from repro.evaluation.journal import PathLike, RunJournal, check_error_policy, checkpointed_map
from repro.evaluation.snapshot import SnapshotRecorder, SweepSnapshot
from repro.exceptions import EvaluationError
from repro.execution import ExecutorSpec, executor_scope


def combination_key(params: Mapping[str, Any]) -> str:
    """Stable journal key for one grid combination."""
    return json.dumps(params, sort_keys=True, default=str)


def _run_combination(
    params: Dict[str, Any],
    runner: Callable[..., Mapping[str, Any]],
    record_time: bool,
) -> Dict[str, Any]:
    """Run one grid combination (executor task; module-level so it pickles).

    Timing happens inside the task, so ``elapsed_seconds`` reflects the
    runner itself rather than queueing delays in a parallel run.
    """
    start = time.perf_counter()
    output = runner(**params)
    elapsed = time.perf_counter() - start
    if not isinstance(output, Mapping):
        raise EvaluationError(
            f"runner must return a mapping of result columns, got {type(output).__name__}"
        )
    row = dict(params)
    row.update(output)
    if record_time:
        row["elapsed_seconds"] = elapsed
    return row


@dataclass
class SweepResult:
    """All rows produced by a :class:`ParameterSweep` run.

    ``errors`` is non-empty only for ``on_error="collect_errors"`` runs: one
    entry per failed combination (key, exception type, message, traceback),
    with the corresponding row absent from ``rows``.
    """

    name: str
    rows: List[Dict[str, Any]] = field(default_factory=list)
    errors: List[Dict[str, Any]] = field(default_factory=list)
    #: The run's reduced :class:`~repro.evaluation.snapshot.SweepSnapshot`
    #: when the run was observed (``snapshot=``/``progress=``), else ``None``.
    snapshot: Optional[Any] = None

    def column(self, key: str) -> List[Any]:
        """All values of one column, in row order."""
        return [row.get(key) for row in self.rows]

    def filter(self, **criteria) -> "SweepResult":
        """Rows whose values match every keyword criterion."""
        rows = [
            row
            for row in self.rows
            if all(row.get(key) == value for key, value in criteria.items())
        ]
        return SweepResult(name=self.name, rows=rows)

    def to_dict(self) -> dict:
        """JSON-serialisable representation."""
        return {"name": self.name, "rows": list(self.rows), "errors": list(self.errors)}

    def __len__(self) -> int:
        return len(self.rows)


class ParameterSweep:
    """Run a callable over the Cartesian product of a parameter grid.

    Parameters
    ----------
    runner:
        Callable invoked as ``runner(**params)``; must return a mapping of
        result columns (merged with the parameter columns into one row).
    grid:
        Mapping ``parameter name -> iterable of values``.
    name:
        Label stored on the result.

    Examples
    --------
    >>> sweep = ParameterSweep(lambda x, y: {"sum": x + y}, {"x": [1, 2], "y": [10]})
    >>> len(sweep.run().rows)
    2
    """

    def __init__(
        self,
        runner: Callable[..., Mapping[str, Any]],
        grid: Mapping[str, Iterable[Any]],
        name: str = "sweep",
    ):
        if not callable(runner):
            raise EvaluationError("runner must be callable")
        if not grid:
            raise EvaluationError("grid must contain at least one parameter")
        self.runner = runner
        self.grid = {key: list(values) for key, values in grid.items()}
        for key, values in self.grid.items():
            if not values:
                raise EvaluationError(f"parameter {key!r} has no values")
        self.name = str(name)

    def with_parameter(self, name: str, values: Iterable[Any]) -> "ParameterSweep":
        """A new sweep whose grid gains one more parameter axis.

        The main use is cross-engine validation: augmenting any existing grid
        with ``engine=("reference", "vectorized")`` runs every configuration
        under both execution engines so their rows can be compared
        (``result.filter(engine="reference")`` vs ``...filter(engine="vectorized")``).
        """
        if name in self.grid:
            raise EvaluationError(f"parameter {name!r} already in the grid")
        grid = dict(self.grid)
        grid[name] = list(values)
        return ParameterSweep(self.runner, grid, name=self.name)

    def combinations(self) -> List[Dict[str, Any]]:
        """All parameter combinations, in deterministic order."""
        keys = list(self.grid)
        return [dict(zip(keys, combo)) for combo in itertools.product(*(self.grid[k] for k in keys))]

    def fingerprint(self) -> str:
        """Identifies this sweep's configuration for journal compatibility."""
        payload = json.dumps({"name": self.name, "grid": self.grid}, sort_keys=True, default=str)
        return hashlib.sha256(payload.encode("utf-8")).hexdigest()[:16]

    def run(
        self,
        record_time: bool = False,
        executor: ExecutorSpec = None,
        max_workers: Optional[int] = None,
        task_timeout: Optional[float] = None,
        journal: Union[None, PathLike, RunJournal] = None,
        on_error: str = "fail_fast",
        scheduler: Optional[Any] = None,
        snapshot: Union[None, PathLike, SweepSnapshot] = None,
        progress: Optional[Callable[[str], None]] = None,
    ) -> SweepResult:
        """Execute the runner for every combination and collect rows.

        Combinations are independent, so they fan out through ``executor``
        (``None``/``"serial"``, ``"thread"``, ``"process"`` or an
        :class:`~repro.execution.Executor` instance).  Rows always come back
        in deterministic combination order; with a process executor the
        runner must be a picklable module-level callable and should derive
        any random state from its own parameters.

        Fault tolerance
        ---------------
        ``journal`` (a path or an open
        :class:`~repro.evaluation.journal.RunJournal`) checkpoints per-
        combination state after every pool-width wave; a re-run with the
        same journal resumes from the recorded rows instead of restarting.
        ``on_error`` selects the failure policy: ``"fail_fast"`` (default)
        stops at the first failed combination — raising the runner's own
        exception when unjournaled, or a checkpointing
        :class:`~repro.exceptions.SweepInterrupted` when journaled — while
        ``"collect_errors"`` records failures (see ``SweepResult.errors``)
        and keeps going.  ``task_timeout`` bounds each combination's
        wall-clock seconds on the pool executors.

        Orchestration
        -------------
        ``scheduler`` (a :class:`~repro.execution.scheduler.SweepScheduler`)
        replaces ``executor``/``max_workers``: the sweep fans out through
        the scheduler's budget-negotiated plan, which is also stamped into
        the snapshot.  ``snapshot`` (a
        :class:`~repro.evaluation.snapshot.SweepSnapshot` or a stream-file
        path) and/or ``progress`` (a callable receiving one canonical
        ``sweep-progress`` JSON line per wave) turn the run into a monitored
        job; the reduced snapshot comes back on ``SweepResult.snapshot``.
        """
        check_error_policy(on_error)
        if scheduler is not None and (executor is not None or max_workers is not None):
            raise EvaluationError("pass either scheduler= or executor=/max_workers=, not both")
        if scheduler is not None and task_timeout is None:
            task_timeout = scheduler.task_timeout
        task = partial(_run_combination, runner=self.runner, record_time=record_time)
        combinations = self.combinations()

        plan = scheduler.plan.to_dict() if scheduler is not None else None
        snap: Optional[SweepSnapshot] = None
        observer = None
        if snapshot is not None or progress is not None:
            if isinstance(snapshot, SweepSnapshot):
                snap = snapshot
            elif snapshot is None:
                snap = SweepSnapshot(name=self.name, total=len(combinations), plan=plan)
            else:
                snap = SweepSnapshot.open(
                    snapshot, name=self.name, total=len(combinations), plan=plan
                )
            if snap.plan is None and plan is not None:
                snap.plan = plan
            observer = SnapshotRecorder(snap, progress=progress)

        @contextmanager
        def scope():
            if scheduler is not None:
                with scheduler.scope() as pool:
                    yield pool
            else:
                with executor_scope(executor, max_workers=max_workers) as pool:
                    yield pool

        if journal is None and on_error == "fail_fast" and observer is None:
            # The historical path: the first failure propagates unwrapped.
            with scope() as pool:
                rows = pool.map(task, combinations, timeout=task_timeout)
            return SweepResult(name=self.name, rows=rows)
        if not isinstance(journal, (RunJournal, type(None))):
            journal = RunJournal(journal, fingerprint=self.fingerprint())
        keys = [combination_key(params) for params in combinations]
        with scope() as pool:
            rows, errors = checkpointed_map(
                pool,
                task,
                combinations,
                keys,
                journal,
                on_error=on_error,
                timeout=task_timeout,
                observer=observer,
            )
        return SweepResult(
            name=self.name,
            rows=[row for row in rows if row is not None],
            errors=errors,
            snapshot=snap,
        )
