"""Checkpointed run state for resumable fan-out experiments.

A :class:`RunJournal` records one state entry per unit of work — ``pending``,
``running``, ``done`` (with the result row) or ``failed`` (with error
detail) — and persists the whole map atomically (temp file + rename) after
every checkpoint.  An interrupted or partially-failed sweep re-opened with
the same journal resumes from the recorded state: ``done`` rows are reused
verbatim and only unfinished combinations run again.  Because disclosure
spends irreversible privacy budget, "reused verbatim" is the point — a
resumed sweep never re-discloses a completed combination.

The journal is keyed by a caller-supplied *fingerprint* of the run
configuration (grid, seeds, parameters): re-opening a journal with a
different fingerprint is refused rather than silently mixing two
experiments' rows.

:func:`checkpointed_map` is the shared engine under
:meth:`~repro.evaluation.sweep.ParameterSweep.run` and
:func:`~repro.evaluation.scalability.run_scalability`: it fans pending items
out through an executor in pool-width waves, checkpointing the journal after
every wave, and applies the ``fail_fast`` / ``collect_errors`` error policy.
"""

from __future__ import annotations

import json
import os
import traceback
from functools import partial
from pathlib import Path
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple, Union

from repro.exceptions import EvaluationError, SweepInterrupted
from repro.execution import Executor

PathLike = Union[str, Path]

#: Recognised error policies for journaled runs.
ERROR_POLICIES: Tuple[str, ...] = ("fail_fast", "collect_errors")

#: Entry states a journal tracks.
STATES: Tuple[str, ...] = ("pending", "running", "done", "failed")


def check_error_policy(value: str) -> str:
    """Validate an ``on_error`` policy name."""
    if value not in ERROR_POLICIES:
        raise EvaluationError(f"on_error must be one of {ERROR_POLICIES}, got {value!r}")
    return value


class RunJournal:
    """Per-item run state persisted as one JSON file.

    Parameters
    ----------
    path:
        The journal file.  A missing file starts an empty journal; an
        existing file is loaded and validated against ``fingerprint``.
    fingerprint:
        Identifies the run configuration.  ``None`` skips the check (only
        sensible for ad-hoc journals).
    """

    VERSION = 1

    def __init__(self, path: PathLike, fingerprint: Optional[str] = None):
        self.path = Path(path)
        self.fingerprint = fingerprint
        self.entries: Dict[str, Dict[str, Any]] = {}
        if self.path.is_file():
            self._load()

    def _load(self) -> None:
        try:
            payload = json.loads(self.path.read_text(encoding="utf-8"))
            version = payload["version"]
            stored_fingerprint = payload.get("fingerprint")
            entries = payload["entries"]
        except (OSError, json.JSONDecodeError, KeyError, TypeError) as exc:
            raise EvaluationError(f"journal {self.path} is corrupt: {exc}") from exc
        if version != self.VERSION:
            raise EvaluationError(
                f"journal {self.path} has version {version!r}, expected {self.VERSION}"
            )
        if (
            self.fingerprint is not None
            and stored_fingerprint is not None
            and stored_fingerprint != self.fingerprint
        ):
            raise EvaluationError(
                f"journal {self.path} belongs to a different run "
                f"(fingerprint {stored_fingerprint!r} != {self.fingerprint!r}); "
                "use a fresh journal path per run configuration"
            )
        self.entries = {str(key): dict(entry) for key, entry in entries.items()}

    def flush(self) -> None:
        """Atomically persist the journal (temp file + rename)."""
        self.path.parent.mkdir(parents=True, exist_ok=True)
        payload = {
            "version": self.VERSION,
            "fingerprint": self.fingerprint,
            "entries": self.entries,
        }
        tmp_path = self.path.with_name(self.path.name + f".{os.getpid()}.tmp")
        tmp_path.write_text(json.dumps(payload, indent=2, default=str) + "\n", encoding="utf-8")
        os.replace(tmp_path, self.path)

    # -- state transitions -------------------------------------------------
    def status(self, key: str) -> str:
        entry = self.entries.get(key)
        return entry["status"] if entry else "pending"

    def row(self, key: str) -> Optional[Dict[str, Any]]:
        """The recorded result row of a ``done`` entry (``None`` otherwise)."""
        entry = self.entries.get(key)
        if entry and entry["status"] == "done":
            return entry.get("row")
        return None

    def error(self, key: str) -> Optional[Dict[str, Any]]:
        """The recorded error detail of a ``failed`` entry."""
        entry = self.entries.get(key)
        if entry and entry["status"] == "failed":
            return entry.get("error")
        return None

    def mark(
        self,
        key: str,
        status: str,
        row: Optional[Dict[str, Any]] = None,
        error: Optional[Dict[str, Any]] = None,
    ) -> None:
        if status not in STATES:
            raise EvaluationError(f"unknown journal status {status!r}")
        self.entries[key] = {"status": status, "row": row, "error": error}

    def summary(self) -> Dict[str, int]:
        """Counts per state — what a CLI progress line prints."""
        counts = {state: 0 for state in STATES}
        for entry in self.entries.values():
            counts[entry["status"]] = counts.get(entry["status"], 0) + 1
        return counts

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"RunJournal({str(self.path)!r}, {self.summary()})"


def describe_error(error: BaseException) -> Dict[str, str]:
    """JSON-serialisable error detail for a journal entry."""
    return {
        "type": type(error).__name__,
        "message": str(error),
        "traceback": "".join(
            traceback.format_exception(type(error), error, error.__traceback__)
        ),
    }


def _guarded(fn: Callable[[Any], Dict[str, Any]], item: Any) -> Tuple[str, Any]:
    """Run one item, capturing any exception as data (executor task)."""
    try:
        return ("ok", fn(item))
    except Exception as error:  # noqa: BLE001 - converted to journal detail
        return ("error", describe_error(error))


def checkpointed_map(
    pool: Executor,
    fn: Callable[[Any], Dict[str, Any]],
    items: Sequence[Any],
    keys: Sequence[str],
    journal: Optional[RunJournal],
    on_error: str = "fail_fast",
    timeout: Optional[float] = None,
    on_result: Optional[Callable[[str, Any, Dict[str, Any]], Dict[str, Any]]] = None,
    observer: Optional[Any] = None,
) -> Tuple[List[Optional[Dict[str, Any]]], List[Dict[str, Any]]]:
    """Map ``fn`` over ``items`` with journal checkpoints and an error policy.

    Items whose journal entry is already ``done`` are **not** re-run; their
    recorded rows are returned in place.  Pending/failed items run in waves
    of the pool's width, and the journal is flushed after every wave, so an
    interruption loses at most one wave of work.

    ``on_result(key, item, row)`` post-processes a fresh result before it is
    journaled (e.g. persisting a release into a store) and returns the row
    to record.

    ``observer`` (typically a
    :class:`~repro.evaluation.snapshot.SnapshotRecorder`) receives lifecycle
    callbacks — ``on_schedule``/``on_reused``/``on_wave_start``/``on_done``/
    ``on_failed``/``on_wave_end`` — and, while a wave is in flight, the
    pool's ``on_retry`` hook is bridged to ``observer.on_retrying`` with
    wave-local indices translated back to keys, so a crash-recovery
    resubmission shows up as ``RETRYING`` instead of a silent gap.

    Returns ``(rows, errors)`` where ``rows`` is in item order (``None`` for
    items that failed) and ``errors`` lists error details with their keys.
    Under ``fail_fast`` the first failed wave raises
    :class:`~repro.exceptions.SweepInterrupted` *after* journaling, so the
    journal stays resumable.
    """
    check_error_policy(on_error)
    if len(items) != len(keys):
        raise EvaluationError("items and keys must have the same length")
    rows: List[Optional[Dict[str, Any]]] = [None] * len(items)
    errors: List[Dict[str, Any]] = []

    if observer is not None:
        observer.on_schedule(list(keys))
    pending: List[int] = []
    for index, key in enumerate(keys):
        recorded = journal.row(key) if journal is not None else None
        if recorded is not None:
            rows[index] = recorded
            if observer is not None:
                observer.on_reused(key, recorded)
        else:
            pending.append(index)

    wave_size = max(1, getattr(pool, "max_workers", 1))
    task = partial(_guarded, fn)
    for start in range(0, len(pending), wave_size):
        wave = pending[start : start + wave_size]
        if journal is not None:
            for index in wave:
                journal.mark(keys[index], "running")
            journal.flush()
        if observer is not None:
            observer.on_wave_start([keys[index] for index in wave])
        previous_on_retry = getattr(pool, "on_retry", None)
        if observer is not None:
            def _bridge_retry(local_indices, _wave=wave):
                observer.on_retrying([keys[_wave[local]] for local in local_indices])

            try:
                pool.on_retry = _bridge_retry
            except AttributeError:  # pragma: no cover - read-only executor
                pass
        try:
            outcomes = pool.map(task, [items[index] for index in wave], timeout=timeout)
        finally:
            if observer is not None:
                try:
                    pool.on_retry = previous_on_retry
                except AttributeError:  # pragma: no cover - read-only executor
                    pass
        failed: List[Dict[str, Any]] = []
        for index, (status, payload) in zip(wave, outcomes):
            key = keys[index]
            if status == "ok":
                row = on_result(key, items[index], payload) if on_result else payload
                rows[index] = row
                if journal is not None:
                    journal.mark(key, "done", row=row)
                if observer is not None:
                    observer.on_done(key, row)
            else:
                detail = {"key": key, **payload}
                failed.append(detail)
                errors.append(detail)
                if journal is not None:
                    journal.mark(key, "failed", error=payload)
                if observer is not None:
                    observer.on_failed(key, payload)
        if journal is not None:
            journal.flush()
        if observer is not None:
            observer.on_wave_end()
        if failed and on_error == "fail_fast":
            first = failed[0]
            raise SweepInterrupted(
                f"combination {first['key']!r} failed with {first['type']}: "
                f"{first['message']}"
                + (" (journal checkpointed; re-run with the same journal to resume)"
                   if journal is not None else "")
            )
    return rows, errors
