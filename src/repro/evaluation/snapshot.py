"""Live run-state snapshots for observable, resumable sweeps.

A long-running sweep is a black box unless every unit of work reports where
it is.  This module turns a sweep into a *monitored job* the way ert's
ensemble evaluator does: each task emits :class:`TaskEvent`\\ s
(``PENDING → RUNNING → RETRYING → DONE | FAILED``) and a
:class:`SweepSnapshot` reduces the append-only event stream into one
consistent aggregate view — per-state counts, an ETA derived from completed
wall times, and per-failure detail — that can be streamed to a CLI as
structured ``{"event": "sweep-progress", ...}`` lines and persisted beside
the :class:`~repro.evaluation.journal.RunJournal` so a killed sweep reopens
with its full history.

Reduction contract
------------------
Events are reduced per task key by keeping the **maximal** event under the
total order ``(attempt, state rank)`` with states ranked
``PENDING < RUNNING < RETRYING < DONE < FAILED``.  A maximum is
commutative, associative and idempotent, so *any* interleaving or
duplication of a valid event stream reduces to the same snapshot — the
property ``tests/test_snapshot.py`` locks with hypothesis.  That is what
makes the snapshot safe to rebuild from an append-only file that several
runs (an interrupted sweep and its resume) have written to.

Attempt numbers are attempt-major on purpose: a resumed run re-announces an
interrupted task as ``RUNNING`` at ``attempt + 1``, which supersedes the
stale ``RUNNING`` (and even a recorded ``FAILED``) from the killed run, so
the reopened snapshot converges to consistent terminal states instead of
reporting tasks stuck mid-flight.

Serialisation
-------------
:meth:`SweepSnapshot.to_json` emits one canonical JSON line (sorted keys,
compact separators) and :meth:`SweepSnapshot.from_json` round-trips it
byte-identically; :meth:`SweepSnapshot.progress_line` emits the CLI's
``sweep-progress`` line in the same canonical form.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Callable, Dict, List, Mapping, Optional, Sequence, Tuple, Union

from repro.exceptions import EvaluationError, ValidationError

PathLike = Union[str, Path]

#: Task lifecycle states, in rank order (later states supersede earlier
#: ones at the same attempt number).
TASK_STATES: Tuple[str, ...] = ("PENDING", "RUNNING", "RETRYING", "DONE", "FAILED")

#: States a task can end in; a converged snapshot holds nothing else.
TERMINAL_STATES: Tuple[str, ...] = ("DONE", "FAILED")

_STATE_RANK: Dict[str, int] = {state: rank for rank, state in enumerate(TASK_STATES)}


def canonical_line(obj: Any) -> str:
    """One deterministic JSON line: sorted keys, compact separators.

    The snapshot's own canonical form (distinct from the store's indented
    :func:`~repro.utils.serialization.canonical_json_bytes`): progress lines
    and event records are grep-able one-liners on stderr and in the
    append-only stream file.
    """
    return json.dumps(obj, sort_keys=True, separators=(",", ":"))


@dataclass(frozen=True)
class TaskEvent:
    """One observation of one sweep task.

    Parameters
    ----------
    key:
        The task's journal key (stable across runs of the same sweep).
    state:
        One of :data:`TASK_STATES`.
    attempt:
        1-based invocation number.  Pool rebuilds and resumed runs re-emit
        the task at a higher attempt, which is what lets a fresh event
        supersede stale state from a killed run.
    wall_seconds:
        Task wall-clock seconds, when known (``DONE`` events carry it).
    store_key:
        Release-store key the task persisted its artefact under, if any.
    error:
        ``{"type": ..., "message": ...}`` detail on ``FAILED`` events.
    """

    key: str
    state: str
    attempt: int = 1
    wall_seconds: Optional[float] = None
    store_key: Optional[str] = None
    error: Optional[Mapping[str, str]] = None

    def __post_init__(self):
        if self.state not in TASK_STATES:
            raise ValidationError(f"state must be one of {TASK_STATES}, got {self.state!r}")
        if int(self.attempt) < 1:
            raise ValidationError(f"attempt must be >= 1, got {self.attempt}")
        object.__setattr__(self, "attempt", int(self.attempt))
        if self.error is not None:
            object.__setattr__(self, "error", dict(self.error))

    @property
    def order(self) -> Tuple[int, int, str]:
        """Total order used by the reduction: attempt-major, then state rank.

        The canonical serialisation breaks the remaining ties, so the order
        is total over *distinct* events — without it, two events at the same
        ``(attempt, rank)`` but different payloads (say ``DONE`` with and
        without a wall time) would reduce first-writer-wins, breaking the
        interleaving invariance the property suite locks.
        """
        return (self.attempt, _STATE_RANK[self.state], canonical_line(self.to_dict()))

    def supersedes(self, other: Optional["TaskEvent"]) -> bool:
        """Whether this event replaces ``other`` in the reduced view."""
        return other is None or self.order > other.order

    def is_terminal(self) -> bool:
        return self.state in TERMINAL_STATES

    def to_dict(self) -> dict:
        payload: Dict[str, Any] = {"key": self.key, "state": self.state, "attempt": self.attempt}
        if self.wall_seconds is not None:
            payload["wall_seconds"] = self.wall_seconds
        if self.store_key is not None:
            payload["store_key"] = self.store_key
        if self.error is not None:
            payload["error"] = dict(self.error)
        return payload

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "TaskEvent":
        try:
            return cls(
                key=str(data["key"]),
                state=str(data["state"]),
                attempt=int(data.get("attempt", 1)),
                wall_seconds=data.get("wall_seconds"),
                store_key=data.get("store_key"),
                error=data.get("error"),
            )
        except (KeyError, TypeError, ValueError) as exc:
            raise EvaluationError(f"malformed task event {data!r}: {exc}") from exc


class SweepSnapshot:
    """Append-only :class:`TaskEvent` stream reduced to one consistent view.

    Parameters
    ----------
    name:
        Label of the sweep (the :class:`~repro.evaluation.sweep.ParameterSweep`
        name, or an ad-hoc tag).
    total:
        Expected number of tasks (0 = unknown; :meth:`progress_line` then
        reports the observed task count).
    plan:
        The scheduler's :meth:`~repro.execution.scheduler.BudgetPlan.to_dict`
        record — how many outer workers times how many inner workers the run
        negotiated — stored verbatim so the plan is part of the history.
    path:
        Optional append-only event-stream file (conventionally
        ``<journal>.events.jsonl``, beside the run's journal).  Every
        *reducing* event is appended as one canonical JSON line;
        :meth:`open` replays the file so a killed sweep reopens with its
        full history.
    """

    VERSION = 1

    def __init__(
        self,
        name: str = "sweep",
        total: int = 0,
        plan: Optional[Mapping[str, Any]] = None,
        path: Optional[PathLike] = None,
    ):
        self.name = str(name)
        self.total = int(total)
        self.plan = dict(plan) if plan is not None else None
        self.path = Path(path) if path is not None else None
        self.tasks: Dict[str, TaskEvent] = {}

    # -- persistence -------------------------------------------------------
    @classmethod
    def open(
        cls,
        path: PathLike,
        name: str = "sweep",
        total: int = 0,
        plan: Optional[Mapping[str, Any]] = None,
    ) -> "SweepSnapshot":
        """Reopen (or start) a snapshot backed by an event-stream file.

        Replays every recorded event; a torn trailing line (the writer was
        killed mid-append) is dropped, any earlier corruption raises
        :class:`~repro.exceptions.EvaluationError`.
        """
        snapshot = cls(name=name, total=total, plan=plan, path=path)
        stream = Path(path)
        if stream.is_file():
            lines = stream.read_text(encoding="utf-8").splitlines()
            for number, line in enumerate(lines):
                if not line.strip():
                    continue
                try:
                    event = TaskEvent.from_dict(json.loads(line))
                except (json.JSONDecodeError, EvaluationError) as exc:
                    if number == len(lines) - 1:
                        break  # torn final line: the kill caught the writer mid-append
                    raise EvaluationError(
                        f"snapshot stream {stream} is corrupt at line {number + 1}: {exc}"
                    ) from exc
                snapshot._reduce(event)
        return snapshot

    def _append(self, event: TaskEvent) -> None:
        if self.path is None:
            return
        self.path.parent.mkdir(parents=True, exist_ok=True)
        with self.path.open("a", encoding="utf-8") as handle:
            handle.write(canonical_line(event.to_dict()) + "\n")

    # -- reduction ---------------------------------------------------------
    def _reduce(self, event: TaskEvent) -> bool:
        current = self.tasks.get(event.key)
        if not event.supersedes(current):
            return False
        self.tasks[event.key] = event
        return True

    def record(self, event: TaskEvent) -> bool:
        """Reduce one event into the view (and append it to the stream file).

        Returns whether the event changed the reduced view; superseded or
        duplicate events are no-ops and are not re-appended, so replaying a
        stream never grows it.
        """
        changed = self._reduce(event)
        if changed:
            self._append(event)
        return changed

    def attempt(self, key: str) -> int:
        """The latest recorded attempt for ``key`` (0 when never seen)."""
        event = self.tasks.get(key)
        return event.attempt if event is not None else 0

    def state(self, key: str) -> Optional[str]:
        event = self.tasks.get(key)
        return event.state if event is not None else None

    # -- aggregate view ----------------------------------------------------
    def counts(self) -> Dict[str, int]:
        """Tasks per state.  Tasks never announced count as ``PENDING``
        when ``total`` says they exist."""
        counts = {state: 0 for state in TASK_STATES}
        for event in self.tasks.values():
            counts[event.state] += 1
        unseen = self.total - len(self.tasks)
        if unseen > 0:
            counts["PENDING"] += unseen
        return counts

    def failed(self) -> List[dict]:
        """Per-failure detail, sorted by key for a deterministic view."""
        return [
            event.to_dict()
            for _, event in sorted(self.tasks.items())
            if event.state == "FAILED"
        ]

    def eta_seconds(self) -> Optional[float]:
        """Projected seconds of work left: mean DONE wall time x open tasks.

        ``None`` until at least one ``DONE`` event carried a wall time.
        Deterministic given the reduced view, so it survives the
        interleaving/duplication property like every other aggregate field.
        """
        walls = [
            event.wall_seconds
            for event in self.tasks.values()
            if event.state == "DONE" and event.wall_seconds is not None
        ]
        if not walls:
            return None
        counts = self.counts()
        open_tasks = counts["PENDING"] + counts["RUNNING"] + counts["RETRYING"]
        return round(sum(walls) / len(walls) * open_tasks, 6)

    def is_converged(self) -> bool:
        """Every expected task observed, and every observed task terminal."""
        if self.total and len(self.tasks) < self.total:
            return False
        return bool(self.tasks) and all(
            event.is_terminal() for event in self.tasks.values()
        )

    def aggregate(self) -> dict:
        """The consistent aggregate view (what a dashboard would render)."""
        counts = self.counts()
        return {
            "name": self.name,
            "total": self.total if self.total else len(self.tasks),
            "plan": self.plan,
            "counts": counts,
            "eta_seconds": self.eta_seconds(),
            "converged": self.is_converged(),
            "failed": self.failed(),
        }

    # -- serialisation -----------------------------------------------------
    def to_json(self) -> str:
        """The whole snapshot as one canonical JSON line."""
        return canonical_line(
            {
                "version": self.VERSION,
                "name": self.name,
                "total": self.total,
                "plan": self.plan,
                "tasks": {key: event.to_dict() for key, event in self.tasks.items()},
            }
        )

    @classmethod
    def from_json(cls, line: str) -> "SweepSnapshot":
        """Rebuild a snapshot from :meth:`to_json` output (byte-exact inverse)."""
        try:
            payload = json.loads(line)
            version = payload["version"]
            tasks = payload["tasks"]
        except (json.JSONDecodeError, KeyError, TypeError) as exc:
            raise EvaluationError(f"malformed snapshot line: {exc}") from exc
        if version != cls.VERSION:
            raise EvaluationError(
                f"snapshot has version {version!r}, expected {cls.VERSION}"
            )
        snapshot = cls(
            name=payload.get("name", "sweep"),
            total=payload.get("total", 0),
            plan=payload.get("plan"),
        )
        for key, event in tasks.items():
            snapshot._reduce(TaskEvent.from_dict({"key": key, **event}))
        return snapshot

    def progress_line(self) -> str:
        """One structured ``sweep-progress`` line for the CLI's stderr."""
        counts = self.counts()
        payload: Dict[str, Any] = {
            "event": "sweep-progress",
            "name": self.name,
            "total": self.total if self.total else len(self.tasks),
            "pending": counts["PENDING"],
            "running": counts["RUNNING"],
            "retrying": counts["RETRYING"],
            "done": counts["DONE"],
            "failed": counts["FAILED"],
            "eta_seconds": self.eta_seconds(),
        }
        return canonical_line(payload)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"SweepSnapshot({self.name!r}, {self.counts()})"


class SnapshotRecorder:
    """The observer :func:`~repro.evaluation.journal.checkpointed_map` drives.

    Translates the map's lifecycle hooks into :class:`TaskEvent`\\ s on a
    :class:`SweepSnapshot` and (optionally) emits a ``sweep-progress`` line
    after every wave via ``progress`` (any callable taking the line string —
    the CLI passes ``print``-to-stderr).

    Attempt numbers continue across runs: a key the reopened snapshot has
    already seen at attempt *n* is re-announced at *n + 1*, which is what
    lets resumed events supersede the stale state a killed run left behind.
    """

    def __init__(
        self,
        snapshot: SweepSnapshot,
        progress: Optional[Callable[[str], None]] = None,
    ):
        self.snapshot = snapshot
        self.progress = progress
        self._attempts: Dict[str, int] = {
            key: event.attempt for key, event in snapshot.tasks.items()
        }

    def _emit_progress(self) -> None:
        if self.progress is not None:
            self.progress(self.snapshot.progress_line())

    # -- checkpointed_map hooks -------------------------------------------
    def on_schedule(self, keys: Sequence[str]) -> None:
        """All task keys, before any wave runs (announces ``PENDING``)."""
        if self.snapshot.total < len(keys):
            self.snapshot.total = len(keys)
        for key in keys:
            if key not in self.snapshot.tasks:
                self.snapshot.record(TaskEvent(key=key, state="PENDING"))
                self._attempts.setdefault(key, 1)
        self._emit_progress()

    def on_reused(self, key: str, row: Optional[Mapping[str, Any]]) -> None:
        """A journaled ``done`` row reused verbatim (no re-run)."""
        attempt = max(1, self._attempts.get(key, 1))
        self._attempts[key] = attempt
        self.snapshot.record(
            TaskEvent(
                key=key,
                state="DONE",
                attempt=attempt,
                wall_seconds=_row_wall_seconds(row),
                store_key=_row_store_key(row),
            )
        )

    def on_wave_start(self, keys: Sequence[str]) -> None:
        """A wave was submitted to the executor (announces ``RUNNING``)."""
        for key in keys:
            previous = self.snapshot.tasks.get(key)
            attempt = self._attempts.get(key, 0)
            if previous is not None and previous.state != "PENDING":
                # Re-running an interrupted/failed task: a fresh attempt
                # supersedes the stale state the killed run left behind.
                attempt += 1
            attempt = max(1, attempt)
            self._attempts[key] = attempt
            self.snapshot.record(TaskEvent(key=key, state="RUNNING", attempt=attempt))

    def on_retrying(self, keys: Sequence[str]) -> None:
        """The executor resubmitted these tasks (worker death, pool rebuild)."""
        for key in keys:
            attempt = self._attempts.get(key, 1) + 1
            self._attempts[key] = attempt
            self.snapshot.record(TaskEvent(key=key, state="RETRYING", attempt=attempt))

    def on_done(self, key: str, row: Optional[Mapping[str, Any]]) -> None:
        self.snapshot.record(
            TaskEvent(
                key=key,
                state="DONE",
                attempt=max(1, self._attempts.get(key, 1)),
                wall_seconds=_row_wall_seconds(row),
                store_key=_row_store_key(row),
            )
        )

    def on_failed(self, key: str, error: Optional[Mapping[str, Any]]) -> None:
        detail = None
        if error is not None:
            detail = {
                "type": str(error.get("type", "Exception")),
                "message": str(error.get("message", "")),
            }
        self.snapshot.record(
            TaskEvent(
                key=key,
                state="FAILED",
                attempt=max(1, self._attempts.get(key, 1)),
                error=detail,
            )
        )

    def on_wave_end(self) -> None:
        self._emit_progress()


def _row_wall_seconds(row: Optional[Mapping[str, Any]]) -> Optional[float]:
    """Wall time a result row carries, if any (sweep rows record
    ``elapsed_seconds``; scalability rows record ``total_seconds``)."""
    if row is None:
        return None
    for column in ("elapsed_seconds", "total_seconds"):
        value = row.get(column)
        if isinstance(value, (int, float)):
            return float(value)
    return None


def _row_store_key(row: Optional[Mapping[str, Any]]) -> Optional[str]:
    if row is None:
        return None
    value = row.get("store_key")
    return str(value) if value is not None else None
