"""Evaluation harness: metrics, sweeps and the paper's figure reproduction.

The benchmark scripts under ``benchmarks/`` are thin wrappers around this
package; everything that computes numbers lives here so it is importable,
unit-testable and reusable from notebooks.
"""

from repro.evaluation.metrics import (
    absolute_error,
    expected_rer_gaussian,
    expected_rer_laplace,
    l1_error,
    l2_error,
    mean_relative_error,
    relative_error_rate,
    release_error_report,
)
from repro.evaluation.journal import (
    ERROR_POLICIES,
    RunJournal,
    check_error_policy,
    checkpointed_map,
    describe_error,
)
from repro.evaluation.snapshot import (
    TASK_STATES,
    TERMINAL_STATES,
    SnapshotRecorder,
    SweepSnapshot,
    TaskEvent,
    canonical_line,
)
from repro.evaluation.sweep import ParameterSweep, SweepResult, combination_key
from repro.evaluation.figure1 import (
    Figure1Config,
    Figure1Result,
    run_figure1,
    run_figure1_analytic,
)
from repro.evaluation.scalability import ScalabilityResult, run_scalability
from repro.evaluation.experiments import EXPERIMENTS, run_experiment
from repro.evaluation.extensions import privilege_gap, run_delta_sweep, run_depth_sweep
from repro.evaluation.reporting import format_table, save_result

__all__ = [
    "relative_error_rate",
    "mean_relative_error",
    "absolute_error",
    "l1_error",
    "l2_error",
    "expected_rer_gaussian",
    "expected_rer_laplace",
    "release_error_report",
    "ERROR_POLICIES",
    "RunJournal",
    "check_error_policy",
    "checkpointed_map",
    "combination_key",
    "describe_error",
    "canonical_line",
    "SnapshotRecorder",
    "SweepSnapshot",
    "TaskEvent",
    "TASK_STATES",
    "TERMINAL_STATES",
    "ParameterSweep",
    "SweepResult",
    "Figure1Config",
    "Figure1Result",
    "run_figure1",
    "run_figure1_analytic",
    "ScalabilityResult",
    "run_scalability",
    "EXPERIMENTS",
    "run_experiment",
    "privilege_gap",
    "run_depth_sweep",
    "run_delta_sweep",
    "format_table",
    "save_result",
]
