"""Utility metrics for noisy releases.

The paper's performance measure is the relative error rate
``RER = |P - T| / T`` where ``P`` is the perturbed and ``T`` the true answer;
the helpers here compute it for scalars, vectors, and whole release objects,
plus the closed-form expected values used by the analytic (deterministic)
variant of the Figure 1 harness.
"""

from __future__ import annotations

import math
from typing import Dict, Optional, Union

import numpy as np

from repro.core.release import MultiLevelRelease
from repro.exceptions import EvaluationError
from repro.graphs.bipartite import BipartiteGraph
from repro.queries.workload import QueryWorkload

ArrayLike = Union[float, int, np.ndarray, list, tuple]


def relative_error_rate(perturbed: ArrayLike, true: ArrayLike) -> float:
    """The paper's RER: ``|P - T| / T`` (averaged over coordinates for vectors).

    Coordinates with a true value of zero are skipped; if every coordinate is
    zero an :class:`EvaluationError` is raised because the metric is
    undefined there.
    """
    perturbed_arr = np.atleast_1d(np.asarray(perturbed, dtype=float))
    true_arr = np.atleast_1d(np.asarray(true, dtype=float))
    if perturbed_arr.shape != true_arr.shape:
        raise EvaluationError(
            f"shape mismatch: perturbed {perturbed_arr.shape} vs true {true_arr.shape}"
        )
    mask = true_arr != 0
    if not mask.any():
        raise EvaluationError("relative error rate is undefined when every true value is 0")
    return float(np.mean(np.abs(perturbed_arr[mask] - true_arr[mask]) / np.abs(true_arr[mask])))


def mean_relative_error(perturbed: ArrayLike, true: ArrayLike) -> float:
    """Alias of :func:`relative_error_rate` (kept for readability at call sites)."""
    return relative_error_rate(perturbed, true)


def absolute_error(perturbed: ArrayLike, true: ArrayLike) -> float:
    """Mean absolute error over coordinates."""
    perturbed_arr = np.atleast_1d(np.asarray(perturbed, dtype=float))
    true_arr = np.atleast_1d(np.asarray(true, dtype=float))
    return float(np.mean(np.abs(perturbed_arr - true_arr)))


def l1_error(perturbed: ArrayLike, true: ArrayLike) -> float:
    """Summed absolute error."""
    perturbed_arr = np.atleast_1d(np.asarray(perturbed, dtype=float))
    true_arr = np.atleast_1d(np.asarray(true, dtype=float))
    return float(np.sum(np.abs(perturbed_arr - true_arr)))


def l2_error(perturbed: ArrayLike, true: ArrayLike) -> float:
    """Euclidean error."""
    perturbed_arr = np.atleast_1d(np.asarray(perturbed, dtype=float))
    true_arr = np.atleast_1d(np.asarray(true, dtype=float))
    return float(np.linalg.norm(perturbed_arr - true_arr))


def expected_rer_gaussian(sigma: float, true_value: float) -> float:
    """Closed-form E[RER] for Gaussian noise: ``sigma * sqrt(2/pi) / T``."""
    if true_value == 0:
        raise EvaluationError("expected RER is undefined for a true value of 0")
    if sigma < 0:
        raise EvaluationError(f"sigma must be >= 0, got {sigma}")
    return sigma * math.sqrt(2.0 / math.pi) / abs(true_value)


def expected_rer_laplace(scale: float, true_value: float) -> float:
    """Closed-form E[RER] for Laplace noise: ``b / T``."""
    if true_value == 0:
        raise EvaluationError("expected RER is undefined for a true value of 0")
    if scale < 0:
        raise EvaluationError(f"scale must be >= 0, got {scale}")
    return scale / abs(true_value)


def release_error_report(
    release: MultiLevelRelease,
    graph: BipartiteGraph,
    workload: Optional[QueryWorkload] = None,
) -> Dict[int, Dict[str, float]]:
    """Per-level error metrics of a release against the true graph.

    Returns ``{level: {"rer": ..., "absolute_error": ..., "noise_scale": ...}}``
    computed over all answers of the workload (the workload defaults to the
    queries found in the release).
    """
    from repro.queries.counts import TotalAssociationCountQuery

    if workload is None:
        workload = QueryWorkload([TotalAssociationCountQuery()])
    true_answers = workload.evaluate(graph)
    report: Dict[int, Dict[str, float]] = {}
    for level in release.levels():
        level_release = release.level(level)
        perturbed_all = []
        true_all = []
        for query in workload:
            if query.name not in level_release.answers:
                continue
            truth = true_answers[query.name]
            noisy = level_release.answer(query.name)
            for label, true_value in zip(truth.labels, truth.values):
                if label in noisy:
                    perturbed_all.append(noisy[label])
                    true_all.append(float(true_value))
        if not true_all:
            raise EvaluationError(f"level {level} release contains none of the workload queries")
        report[level] = {
            "rer": relative_error_rate(perturbed_all, true_all),
            "absolute_error": absolute_error(perturbed_all, true_all),
            "noise_scale": level_release.noise_scale,
            "sensitivity": level_release.sensitivity,
        }
    return report
