"""Scalability measurements (experiment E3).

The paper claims the technique is "effective, scalable"; this harness times
the two pipeline phases (specialization and noise injection) on synthetic
graphs of increasing size and reports the wall-clock seconds and the realised
association counts, so the benchmark can verify near-linear scaling.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from repro.core.config import DisclosureConfig
from repro.core.discloser import MultiLevelDiscloser
from repro.datasets.dblp_like import generate_dblp_like
from repro.exceptions import EvaluationError
from repro.grouping.specialization import SpecializationConfig
from repro.utils.rng import RandomState


@dataclass
class ScalabilityResult:
    """Rows of the scalability experiment."""

    rows: List[Dict[str, float]] = field(default_factory=list)

    def sizes(self) -> List[int]:
        """Association counts of the measured graphs."""
        return [int(row["num_associations"]) for row in self.rows]

    def total_seconds(self) -> List[float]:
        """End-to-end pipeline seconds per graph."""
        return [row["total_seconds"] for row in self.rows]

    def to_dict(self) -> dict:
        """JSON-serialisable representation."""
        return {"rows": list(self.rows)}

    def format_table(self) -> str:
        """Aligned text table."""
        header = f"{'authors':>10} {'papers':>10} {'assoc':>12} {'spec_s':>9} {'noise_s':>9} {'total_s':>9}"
        lines = [header]
        for row in self.rows:
            lines.append(
                f"{int(row['num_authors']):>10} {int(row['num_papers']):>10} "
                f"{int(row['num_associations']):>12} {row['specialization_seconds']:>9.3f} "
                f"{row['noise_seconds']:>9.3f} {row['total_seconds']:>9.3f}"
            )
        return "\n".join(lines)


def run_scalability(
    author_counts: Sequence[int] = (500, 1_000, 2_000, 4_000),
    num_levels: int = 6,
    epsilon_g: float = 0.5,
    seed: RandomState = 3,
    engine: str = "vectorized",
) -> ScalabilityResult:
    """Time the full pipeline on DBLP-like graphs of increasing size.

    Parameters
    ----------
    author_counts:
        Left-node counts of the generated graphs (papers and associations
        scale with the DBLP ratios).
    num_levels:
        Hierarchy depth used for every run (kept moderate so the individual
        level does not dominate the timing at small scales).
    epsilon_g:
        Per-level budget of the phase-2 noise.
    seed:
        Base seed; each size derives its own stream.
    engine:
        ``"vectorized"`` (default) or ``"reference"`` — both are timed by
        ``benchmarks/test_bench_engines.py`` to record the speedup.
    """
    if not author_counts:
        raise EvaluationError("author_counts must not be empty")
    result = ScalabilityResult()
    for index, num_authors in enumerate(author_counts):
        graph = generate_dblp_like(num_authors=int(num_authors), seed=seed)
        config = DisclosureConfig(
            epsilon_g=epsilon_g,
            specialization=SpecializationConfig(num_levels=num_levels),
            engine=engine,
        )
        discloser = MultiLevelDiscloser(config=config, rng=index)

        start = time.perf_counter()
        if engine == "vectorized":
            graph.arrays()  # compile inside the timed phase-1 window
        hierarchy = discloser.specializer.build(graph).hierarchy
        spec_seconds = time.perf_counter() - start

        start = time.perf_counter()
        discloser.disclose(graph, hierarchy=hierarchy)
        noise_seconds = time.perf_counter() - start

        result.rows.append(
            {
                "num_authors": float(graph.num_left()),
                "num_papers": float(graph.num_right()),
                "num_associations": float(graph.num_associations()),
                "specialization_seconds": spec_seconds,
                "noise_seconds": noise_seconds,
                "total_seconds": spec_seconds + noise_seconds,
                "engine": engine,
            }
        )
    return result
