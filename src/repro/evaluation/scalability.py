"""Scalability measurements (experiment E3).

The paper claims the technique is "effective, scalable"; this harness times
the two pipeline phases (specialization and noise injection) on synthetic
graphs of increasing size and reports the wall-clock seconds and the realised
association counts, so the benchmark can verify near-linear scaling.
"""

from __future__ import annotations

import hashlib
import json
import time
from dataclasses import dataclass, field
from functools import partial
from typing import Any, Dict, List, Optional, Sequence, Tuple, Union

import numpy as np

from repro.core.config import DisclosureConfig
from repro.core.discloser import MultiLevelDiscloser
from repro.core.release import MultiLevelRelease
from repro.core.store import ReleaseStore
from repro.datasets.dblp_like import generate_dblp_like
from repro.evaluation.journal import (
    PathLike,
    RunJournal,
    check_error_policy,
    checkpointed_map,
)
from repro.evaluation.snapshot import SnapshotRecorder, SweepSnapshot
from repro.exceptions import EvaluationError
from repro.execution import ExecutorSpec, executor_scope
from repro.grouping.specialization import SpecializationConfig
from repro.utils.rng import RandomState, derive_seedseq


@dataclass
class ScalabilityResult:
    """Rows of the scalability experiment.

    ``errors`` is populated only by ``on_error="collect_errors"`` runs: one
    error-detail entry per failed size, whose row is then absent.
    """

    rows: List[Dict[str, float]] = field(default_factory=list)
    errors: List[Dict[str, Any]] = field(default_factory=list)

    def sizes(self) -> List[int]:
        """Association counts of the measured graphs."""
        return [int(row["num_associations"]) for row in self.rows]

    def total_seconds(self) -> List[float]:
        """End-to-end pipeline seconds per graph."""
        return [row["total_seconds"] for row in self.rows]

    def to_dict(self) -> dict:
        """JSON-serialisable representation."""
        return {"rows": list(self.rows), "errors": list(self.errors)}

    def format_table(self) -> str:
        """Aligned text table."""
        header = f"{'authors':>10} {'papers':>10} {'assoc':>12} {'spec_s':>9} {'noise_s':>9} {'total_s':>9}"
        lines = [header]
        for row in self.rows:
            lines.append(
                f"{int(row['num_authors']):>10} {int(row['num_papers']):>10} "
                f"{int(row['num_associations']):>12} {row['specialization_seconds']:>9.3f} "
                f"{row['noise_seconds']:>9.3f} {row['total_seconds']:>9.3f}"
            )
        return "\n".join(lines)


def _measure_size(
    task: Tuple[int, int, Optional[np.random.SeedSequence]],
    num_levels: int,
    epsilon_g: float,
    engine: str,
) -> Tuple[Dict[str, float], MultiLevelRelease]:
    """Time one graph size end to end (executor task; self-contained).

    Each size generates its own graph — from its own derived seed material,
    per the execution layer's contract that tasks never share a mutable
    generator — and times its own phases locally, so rows are meaningful
    whether the sizes run serially or on separate workers (wall-clock
    numbers from concurrent runs share the machine, of course — benchmarks
    that compare absolute timings keep the serial default).
    """
    index, num_authors, graph_seed = task
    graph = generate_dblp_like(num_authors=int(num_authors), seed=graph_seed)
    config = DisclosureConfig(
        epsilon_g=epsilon_g,
        specialization=SpecializationConfig(num_levels=num_levels),
        engine=engine,
    )
    discloser = MultiLevelDiscloser(config=config, rng=index)

    start = time.perf_counter()
    if engine == "vectorized":
        graph.arrays()  # compile inside the timed phase-1 window
    hierarchy = discloser.specializer.build(graph).hierarchy
    spec_seconds = time.perf_counter() - start

    start = time.perf_counter()
    release = discloser.disclose(graph, hierarchy=hierarchy)
    noise_seconds = time.perf_counter() - start

    row = {
        "num_authors": float(graph.num_left()),
        "num_papers": float(graph.num_right()),
        "num_associations": float(graph.num_associations()),
        "specialization_seconds": spec_seconds,
        "noise_seconds": noise_seconds,
        "total_seconds": spec_seconds + noise_seconds,
        "engine": engine,
    }
    return row, release


def scalability_key(
    engine: str, num_levels: int, epsilon_g: float, seed: RandomState, num_authors: int
) -> str:
    """Store/journal key for one measured graph size."""
    return f"scalability-{engine}-l{num_levels}-eps{epsilon_g}-seed{seed}-{int(num_authors)}"


def scalability_fingerprint(
    author_counts: Sequence[int],
    num_levels: int,
    epsilon_g: float,
    seed: RandomState,
    engine: str,
) -> str:
    """Identifies one scalability configuration for journal compatibility."""
    payload = json.dumps(
        {
            "experiment": "scalability",
            "author_counts": [int(count) for count in author_counts],
            "num_levels": num_levels,
            "epsilon_g": epsilon_g,
            "seed": str(seed),
            "engine": engine,
        },
        sort_keys=True,
    )
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()[:16]


def run_scalability(
    author_counts: Sequence[int] = (500, 1_000, 2_000, 4_000),
    num_levels: int = 6,
    epsilon_g: float = 0.5,
    seed: RandomState = 3,
    engine: str = "vectorized",
    executor: ExecutorSpec = None,
    store: Optional[ReleaseStore] = None,
    task_timeout: Optional[float] = None,
    journal: Union[None, PathLike, RunJournal] = None,
    on_error: str = "fail_fast",
    snapshot: Union[None, PathLike, "SweepSnapshot"] = None,
    progress: Optional[Any] = None,
) -> ScalabilityResult:
    """Time the full pipeline on DBLP-like graphs of increasing size.

    Parameters
    ----------
    author_counts:
        Left-node counts of the generated graphs (papers and associations
        scale with the DBLP ratios).
    num_levels:
        Hierarchy depth used for every run (kept moderate so the individual
        level does not dominate the timing at small scales).
    epsilon_g:
        Per-level budget of the phase-2 noise.
    seed:
        Base seed; each size derives its own stream.
    engine:
        ``"vectorized"`` (default) or ``"reference"`` — both are timed by
        ``benchmarks/test_bench_engines.py`` to record the speedup.
    executor:
        Fan the independent sizes out through an executor (default serial —
        the right choice when absolute timings matter).
    store:
        Optional :class:`~repro.core.store.ReleaseStore`; each size's
        release is persisted under :func:`scalability_key` so runs with
        different parameters keep distinct artefacts that can be inspected
        or served without re-running.
    task_timeout:
        Per-size wall-clock bound (pool executors only).
    journal:
        Checkpoint per-size state through a
        :class:`~repro.evaluation.journal.RunJournal` (path or open
        journal); a re-run with the same journal resumes from the recorded
        rows, re-measuring only unfinished sizes.  Each size's release is
        saved to ``store`` *before* its journal entry turns ``done``, so a
        resumed run pairs every recorded row with a persisted artefact
        (resume with the same store).
    on_error:
        ``"fail_fast"`` (default) or ``"collect_errors"`` — see
        :meth:`~repro.evaluation.sweep.ParameterSweep.run`.
    snapshot / progress:
        Observe the run through a
        :class:`~repro.evaluation.snapshot.SweepSnapshot` (instance or
        stream-file path) and/or per-wave ``sweep-progress`` lines — same
        contract as :meth:`~repro.evaluation.sweep.ParameterSweep.run`.
    """
    if not author_counts:
        raise EvaluationError("author_counts must not be empty")
    check_error_policy(on_error)
    # Derive per-size seed material up front (in the caller, so a Generator
    # parent is only ever advanced here): tasks must carry their own seeds,
    # never a shared generator, for serial/thread/process runs to agree.
    tasks = [
        (
            index,
            count,
            derive_seedseq(seed, f"scalability-size-{index}") if seed is not None else None,
        )
        for index, count in enumerate(author_counts)
    ]
    keys = [
        scalability_key(engine, num_levels, epsilon_g, seed, count) for count in author_counts
    ]
    task = partial(_measure_size, num_levels=num_levels, epsilon_g=epsilon_g, engine=engine)

    def persist(key: str, item: Any, payload: Tuple[Dict[str, float], MultiLevelRelease]):
        row, release = payload
        if store is not None:
            store.save(release, key=key)
        return row

    if not isinstance(journal, (RunJournal, type(None))):
        journal = RunJournal(
            journal,
            fingerprint=scalability_fingerprint(
                author_counts, num_levels, epsilon_g, seed, engine
            ),
        )
    observer = None
    if snapshot is not None or progress is not None:
        if isinstance(snapshot, SweepSnapshot):
            snap = snapshot
        elif snapshot is None:
            snap = SweepSnapshot(name=f"scalability-{engine}", total=len(tasks))
        else:
            snap = SweepSnapshot.open(
                snapshot, name=f"scalability-{engine}", total=len(tasks)
            )
        observer = SnapshotRecorder(snap, progress=progress)
    with executor_scope(executor) as pool:
        rows, errors = checkpointed_map(
            pool,
            task,
            tasks,
            keys,
            journal,
            on_error=on_error,
            timeout=task_timeout,
            on_result=persist,
            observer=observer,
        )
    return ScalabilityResult(rows=[row for row in rows if row is not None], errors=errors)
