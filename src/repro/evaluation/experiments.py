"""Experiment registry: one runner per table/figure in DESIGN.md.

Each runner is an importable function that produces plain rows (lists of
dictionaries) so the same code backs the pytest benchmarks, the examples and
ad-hoc exploration.  ``EXPERIMENTS`` maps the experiment identifiers used in
DESIGN.md (E1 ... E6) to their runners.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, List, Optional, Sequence

from repro.core.store import ReleaseStore
from repro.baselines.individual_dp import IndividualDPDiscloser
from repro.baselines.naive_group import NaiveGroupDPDiscloser
from repro.baselines.safe_grouping import SafeGroupingDiscloser
from repro.baselines.uniform_noise import UniformNoiseDiscloser
from repro.core.config import DisclosureConfig
from repro.core.discloser import MultiLevelDiscloser
from repro.datasets.registry import load_dataset
from repro.evaluation.figure1 import (
    PAPER_TEXT_EPSILON,
    Figure1Config,
    Figure1Result,
    build_figure1_hierarchy,
    level_sensitivities,
    run_figure1,
    run_figure1_analytic,
)
from repro.evaluation.metrics import expected_rer_gaussian, release_error_report
from repro.evaluation.scalability import ScalabilityResult, run_scalability
from repro.exceptions import EvaluationError
from repro.graphs.bipartite import BipartiteGraph
from repro.grouping.specialization import (
    DeterministicSpecializer,
    RandomSpecializer,
    SpecializationConfig,
    Specializer,
)
from repro.mechanisms.calibration import analytic_gaussian_sigma, gaussian_sigma, laplace_scale
from repro.privacy.sensitivity import group_count_sensitivity


# ----------------------------------------------------------------------
# E1 — Figure 1: RER vs epsilon_g per information level
# ----------------------------------------------------------------------
def run_e1_figure1(
    scale: str = "small",
    analytic: bool = True,
    num_levels: int = 9,
    num_trials: int = 25,
    seed: int = 20170605,
    graph: Optional[BipartiteGraph] = None,
) -> Figure1Result:
    """Reproduce Figure 1 (analytic expected RER by default)."""
    config = Figure1Config(num_levels=num_levels, num_trials=num_trials, scale=scale, seed=seed)
    if analytic:
        return run_figure1_analytic(graph=graph, config=config)
    return run_figure1(graph=graph, config=config)


# ----------------------------------------------------------------------
# E2 — the narrative claims at epsilon_g = 0.999
# ----------------------------------------------------------------------
#: RER values the paper quotes at eps_g = 0.999, per information level.
PAPER_TEXT_CLAIMS: Dict[int, float] = {1: 0.002, 2: 0.0033, 5: 0.04, 6: 0.11, 7: 0.35}


def run_e2_text_claims(
    scale: str = "small",
    num_levels: int = 9,
    seed: int = 20170605,
    graph: Optional[BipartiteGraph] = None,
) -> List[Dict[str, Any]]:
    """RER of every information level at the paper's quoted ``eps_g = 0.999``.

    Returns one row per level with our measured (expected) RER next to the
    value quoted in the paper where one exists.
    """
    config = Figure1Config(
        epsilons=(PAPER_TEXT_EPSILON,), num_levels=num_levels, scale=scale, seed=seed
    )
    result = run_figure1_analytic(graph=graph, config=config)
    rows: List[Dict[str, Any]] = []
    for level in result.levels():
        rows.append(
            {
                "information_level": result.information_level_name(level),
                "level": level,
                "epsilon_g": PAPER_TEXT_EPSILON,
                "measured_rer": result.series_for(level)[0],
                "paper_rer": PAPER_TEXT_CLAIMS.get(level),
                "sensitivity": result.sensitivities[level],
            }
        )
    return rows


# ----------------------------------------------------------------------
# E3 — scalability
# ----------------------------------------------------------------------
def run_e3_scalability(
    author_counts: Sequence[int] = (500, 1_000, 2_000),
    num_levels: int = 6,
    epsilon_g: float = 0.5,
    seed: int = 3,
) -> ScalabilityResult:
    """Time specialization + noise injection over increasing graph sizes."""
    return run_scalability(
        author_counts=author_counts, num_levels=num_levels, epsilon_g=epsilon_g, seed=seed
    )


# ----------------------------------------------------------------------
# E4 — ablation: split selection strategy
# ----------------------------------------------------------------------
def run_e4_ablation_split(
    scale: str = "tiny",
    num_levels: int = 6,
    epsilon_g: float = 0.5,
    delta: float = 1e-5,
    seed: int = 11,
    graph: Optional[BipartiteGraph] = None,
) -> List[Dict[str, Any]]:
    """Compare Exponential-Mechanism, deterministic and random specialization.

    For every method the hierarchy is rebuilt from scratch and the expected
    RER of the count query is reported per released level, together with the
    specialization privacy cost.
    """
    if graph is None:
        graph = load_dataset("dblp", scale, seed=seed)
    true_count = float(graph.num_associations())
    spec_config = SpecializationConfig(num_levels=num_levels)
    methods = {
        "exponential": Specializer(config=spec_config, rng=seed),
        "deterministic": DeterministicSpecializer(config=spec_config, rng=seed),
        "random": RandomSpecializer(config=spec_config, rng=seed),
    }
    rows: List[Dict[str, Any]] = []
    for name, specializer in methods.items():
        result = specializer.build(graph)
        hierarchy = result.hierarchy
        levels = [level for level in range(0, num_levels - 1) if hierarchy.has_level(level)]
        sensitivities = level_sensitivities(graph, hierarchy, levels)
        for level in levels:
            sigma = gaussian_sigma(epsilon_g, delta, sensitivities[level])
            rows.append(
                {
                    "method": name,
                    "level": level,
                    "epsilon_g": epsilon_g,
                    "sensitivity": sensitivities[level],
                    "expected_rer": expected_rer_gaussian(sigma, true_count),
                    "specialization_epsilon": result.privacy_cost.epsilon,
                }
            )
    return rows


# ----------------------------------------------------------------------
# E5 — ablation: phase-2 mechanism and budget allocation
# ----------------------------------------------------------------------
def run_e5_ablation_mechanism(
    scale: str = "tiny",
    num_levels: int = 6,
    epsilon_g: float = 0.5,
    delta: float = 1e-5,
    seed: int = 13,
    graph: Optional[BipartiteGraph] = None,
) -> List[Dict[str, Any]]:
    """Compare Gaussian / analytic-Gaussian / Laplace noise and budget allocations.

    The mechanism comparison uses the paper's per-level budget semantics; the
    allocation comparison spreads a single total ``epsilon_g`` over all levels
    with the three strategies from :mod:`repro.accounting.allocation`.
    """
    if graph is None:
        graph = load_dataset("dblp", scale, seed=seed)
    true_count = float(graph.num_associations())
    config = Figure1Config(num_levels=num_levels, scale=scale, seed=seed)
    hierarchy = build_figure1_hierarchy(graph, config, rng=seed)
    levels = [level for level in range(0, num_levels - 1) if hierarchy.has_level(level)]
    sensitivities = level_sensitivities(graph, hierarchy, levels)

    rows: List[Dict[str, Any]] = []
    for mechanism in ("gaussian", "analytic_gaussian", "laplace"):
        for level in levels:
            sensitivity = sensitivities[level]
            if mechanism == "gaussian":
                scale_value = gaussian_sigma(epsilon_g, delta, sensitivity)
                rer = expected_rer_gaussian(scale_value, true_count)
            elif mechanism == "analytic_gaussian":
                scale_value = analytic_gaussian_sigma(epsilon_g, delta, sensitivity)
                rer = expected_rer_gaussian(scale_value, true_count)
            else:
                scale_value = laplace_scale(epsilon_g, sensitivity)
                rer = scale_value / true_count
            rows.append(
                {
                    "comparison": "mechanism",
                    "variant": mechanism,
                    "level": level,
                    "epsilon_g": epsilon_g,
                    "noise_scale": scale_value,
                    "expected_rer": rer,
                }
            )

    from repro.accounting.allocation import make_allocation

    for allocation in ("uniform", "geometric", "proportional"):
        strategy = make_allocation(allocation) if allocation != "geometric" else make_allocation(allocation, ratio=2.0)
        per_level = strategy.allocate(epsilon_g, levels, sensitivities=sensitivities)
        for level in levels:
            sigma = gaussian_sigma(per_level[level], delta, sensitivities[level])
            rows.append(
                {
                    "comparison": "allocation",
                    "variant": allocation,
                    "level": level,
                    "epsilon_g": per_level[level],
                    "noise_scale": sigma,
                    "expected_rer": expected_rer_gaussian(sigma, true_count),
                }
            )
    return rows


# ----------------------------------------------------------------------
# E6 — baseline comparison
# ----------------------------------------------------------------------
def run_e6_baselines(
    scale: str = "tiny",
    num_levels: int = 6,
    epsilon: float = 0.5,
    delta: float = 1e-5,
    seed: int = 17,
    graph: Optional[BipartiteGraph] = None,
    store: Optional["ReleaseStore"] = None,
) -> List[Dict[str, Any]]:
    """Compare the paper's discloser with the four baselines.

    Reports, per level and per method, the measured RER of the released count
    and the group epsilon actually guaranteed at that level (infinite for the
    non-DP safe-grouping release, enormous for the individual-DP baseline).

    When a :class:`~repro.core.store.ReleaseStore` is given, each DP method's
    multi-level release is persisted under a key of the form
    ``e6-<graph>-<NxMxE>-<scale>-<seed>-l<levels>-eps<epsilon>-d<delta>-<method>``
    (the ``NxMxE`` node/edge counts fingerprint the graph, so a different
    graph — even one with the same name — never resumes from another graph's
    artefacts) and an interrupted run resumes from the stored releases
    instead of re-disclosing (and re-spending budget on) the methods already
    done.  The safe-grouping baseline produces a grouped summary rather than
    a :class:`~repro.core.release.MultiLevelRelease`, so it is recomputed on
    every run.
    """
    if graph is None:
        graph = load_dataset("dblp", scale, seed=seed)
    spec_config = SpecializationConfig(num_levels=num_levels)
    config = DisclosureConfig(epsilon_g=epsilon, delta=delta, specialization=spec_config)
    discloser = MultiLevelDiscloser(config=config, rng=seed)
    hierarchy = discloser.specializer.build(graph).hierarchy
    levels = [level for level in range(0, num_levels - 1) if hierarchy.has_level(level)]

    rows: List[Dict[str, Any]] = []

    def build_release(method: str, builder) -> Any:
        if store is None:
            return builder()
        # The key carries every parameter that shapes the release, including
        # the graph's name and size fingerprint for caller-supplied graphs,
        # so a resumed run can never be served a release disclosed under
        # different settings (or a different graph with the same name).
        fingerprint = f"{graph.num_left()}x{graph.num_right()}x{graph.num_associations()}"
        key = (
            f"e6-{graph.name}-{fingerprint}-{scale}-{seed}-l{num_levels}"
            f"-eps{epsilon}-d{delta}-{method}"
        )
        release, _ = store.get_or_create(key, builder)
        return release

    def add_release_rows(method: str, release) -> None:
        report = release_error_report(release, graph)
        for level in levels:
            if level not in report:
                continue
            guarantee = release.level(level).guarantee
            rows.append(
                {
                    "method": method,
                    "level": level,
                    "rer": report[level]["rer"],
                    "noise_scale": report[level]["noise_scale"],
                    "group_epsilon": guarantee.epsilon,
                    "group_delta": guarantee.delta,
                }
            )

    add_release_rows(
        "group_dp_multilevel",
        build_release(
            "group_dp_multilevel", lambda: discloser.disclose(graph, hierarchy=hierarchy)
        ),
    )
    add_release_rows(
        "naive_group_dp",
        build_release(
            "naive_group_dp",
            lambda: NaiveGroupDPDiscloser(epsilon_g=epsilon, delta=delta, rng=seed).disclose(
                graph, hierarchy, levels=levels
            ),
        ),
    )
    add_release_rows(
        "uniform_noise",
        build_release(
            "uniform_noise",
            lambda: UniformNoiseDiscloser(epsilon_g=epsilon, delta=delta, rng=seed).disclose(
                graph, hierarchy, levels=levels
            ),
        ),
    )
    individual = IndividualDPDiscloser(epsilon_i=epsilon, delta=delta, mechanism="gaussian", rng=seed)
    add_release_rows(
        "individual_dp",
        build_release(
            "individual_dp",
            lambda: individual.as_multi_level_release(graph, hierarchy, levels=levels),
        ),
    )

    safe = SafeGroupingDiscloser(k=3, rng=seed).disclose(graph)
    true_count = float(graph.num_associations())
    safe_error = abs(safe.total_associations() - true_count) / true_count
    for level in levels:
        rows.append(
            {
                "method": "safe_grouping",
                "level": level,
                "rer": safe_error,
                "noise_scale": 0.0,
                "group_epsilon": float("inf"),
                "group_delta": 0.0,
            }
        )
    return rows


EXPERIMENTS: Dict[str, Callable[..., Any]] = {
    "E1": run_e1_figure1,
    "E2": run_e2_text_claims,
    "E3": run_e3_scalability,
    "E4": run_e4_ablation_split,
    "E5": run_e5_ablation_mechanism,
    "E6": run_e6_baselines,
}


def run_experiment(identifier: str, **kwargs) -> Any:
    """Run an experiment by its DESIGN.md identifier (``"E1"`` ... ``"E6"``)."""
    key = identifier.upper()
    if key not in EXPERIMENTS:
        raise EvaluationError(f"unknown experiment {identifier!r}; available: {sorted(EXPERIMENTS)}")
    return EXPERIMENTS[key](**kwargs)
