"""Reproduction harness for the paper's Figure 1 ("Impact of εg").

Figure 1 plots the relative error rate (RER) of the noisy association-count
answer against the group privacy budget ``εg ∈ {0.1, ..., 1.0}``, with one
curve per information level ``I9,0 ... I9,7`` of a 9-level hierarchy built
over the DBLP association graph.

The harness mirrors the pipeline exactly:

1. build the group hierarchy once with the Exponential-Mechanism specializer;
2. compute the group-level sensitivity of the count query at every released
   level;
3. for every ``εg`` draw Gaussian noise calibrated to each level's
   sensitivity and report the RER (mean over ``num_trials`` independent
   draws), or — in the :func:`run_figure1_analytic` variant — report the
   closed-form expected RER, which is deterministic and is what the
   regression tests assert against.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from functools import partial
from typing import Any, Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.core.release import MultiLevelRelease
from repro.datasets.registry import load_dataset
from repro.evaluation.metrics import expected_rer_gaussian, expected_rer_laplace
from repro.exceptions import EvaluationError
from repro.execution import ExecutorSpec, check_executor_name, executor_name, executor_scope
from repro.graphs.bipartite import BipartiteGraph
from repro.grouping.hierarchy import GroupHierarchy
from repro.grouping.specialization import SpecializationConfig, Specializer
from repro.mechanisms.calibration import gaussian_sigma, laplace_scale
from repro.privacy.sensitivity import group_count_sensitivity
from repro.utils.rng import RandomState, as_rng, derive_rng
from repro.utils.validation import check_engine

#: The εg values on the x-axis of Figure 1.
PAPER_EPSILONS: Tuple[float, ...] = (0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9, 1.0)

#: The εg value quoted in the paper's narrative ("when εg = 0.999 ...").
PAPER_TEXT_EPSILON: float = 0.999


@dataclass
class Figure1Config:
    """Parameters of a Figure 1 reproduction run.

    ``engine`` selects the execution path: ``"vectorized"`` (default)
    compiles the graph's :class:`~repro.graphs.arrays.GraphArrays` once so
    specialization scoring and per-level sensitivities run on the array fast
    path; ``"reference"`` keeps the pure-Python path.  Both produce identical
    results for the same seed — the golden regression test runs both.
    """

    epsilons: Tuple[float, ...] = PAPER_EPSILONS
    num_levels: int = 9
    num_trials: int = 25
    delta: float = 1e-5
    mechanism: str = "gaussian"
    dataset: str = "dblp"
    scale: str = "small"
    specialization_epsilon: float = 1.0
    seed: int = 20170605
    engine: str = "vectorized"
    executor: str = "serial"
    max_workers: Optional[int] = None

    def __post_init__(self):
        check_engine(self.engine)
        check_executor_name(self.executor)

    def release_levels(self) -> List[int]:
        """The information levels plotted in the figure: ``I_{L,0} .. I_{L,L-2}``."""
        return list(range(0, self.num_levels - 1))

    def to_dict(self, executor_override: ExecutorSpec = None) -> dict:
        """JSON-serialisable representation.

        ``executor_override`` records provenance when a run was handed an
        executor directly (overriding :attr:`executor`): the resulting
        document names the executor that actually ran.
        """
        return {
            "epsilons": list(self.epsilons),
            "num_levels": self.num_levels,
            "num_trials": self.num_trials,
            "delta": self.delta,
            "mechanism": self.mechanism,
            "dataset": self.dataset,
            "scale": self.scale,
            "specialization_epsilon": self.specialization_epsilon,
            "seed": self.seed,
            "engine": self.engine,
            "executor": (
                executor_name(executor_override)
                if executor_override is not None
                else self.executor
            ),
            "max_workers": self.max_workers,
        }


@dataclass
class Figure1Result:
    """The reproduced figure: one RER series per information level."""

    epsilons: List[float]
    series: Dict[int, List[float]]
    true_count: float
    sensitivities: Dict[int, float]
    num_levels: int
    config: dict = field(default_factory=dict)

    def information_level_name(self, level: int) -> str:
        """The paper's curve label, e.g. ``"I9,3"``."""
        return f"I{self.num_levels},{level}"

    def levels(self) -> List[int]:
        """Released levels, ascending."""
        return sorted(self.series)

    def series_for(self, level: int) -> List[float]:
        """The RER values of one level across the epsilon sweep."""
        if level not in self.series:
            raise EvaluationError(f"level {level} not in result (has {self.levels()})")
        return list(self.series[level])

    def rer_at(self, level: int, epsilon: float) -> float:
        """The RER of one level at one epsilon."""
        values = self.series_for(level)
        for eps, value in zip(self.epsilons, values):
            if abs(eps - epsilon) < 1e-12:
                return value
        raise EvaluationError(f"epsilon {epsilon} not in sweep {self.epsilons}")

    def as_rows(self) -> List[dict]:
        """Long-format rows (one per level x epsilon), convenient for tables."""
        rows = []
        for level in self.levels():
            for eps, rer in zip(self.epsilons, self.series[level]):
                rows.append(
                    {
                        "information_level": self.information_level_name(level),
                        "level": level,
                        "epsilon_g": eps,
                        "rer": rer,
                        "sensitivity": self.sensitivities.get(level),
                    }
                )
        return rows

    def format_table(self, percent: bool = True) -> str:
        """A text table shaped like the figure: one row per εg, one column per level."""
        levels = self.levels()
        header = ["eps_g"] + [self.information_level_name(level) for level in levels]
        lines = ["\t".join(header)]
        for index, eps in enumerate(self.epsilons):
            cells = [f"{eps:.3g}"]
            for level in levels:
                value = self.series[level][index]
                cells.append(f"{100.0 * value:.3f}%" if percent else f"{value:.6f}")
            lines.append("\t".join(cells))
        return "\n".join(lines)

    def to_dict(self) -> dict:
        """JSON-serialisable representation."""
        return {
            "epsilons": list(self.epsilons),
            "series": {str(level): list(values) for level, values in self.series.items()},
            "true_count": self.true_count,
            "sensitivities": {str(level): value for level, value in self.sensitivities.items()},
            "num_levels": self.num_levels,
            "config": dict(self.config),
        }


def build_figure1_hierarchy(
    graph: BipartiteGraph, config: Figure1Config, rng: RandomState = None
) -> GroupHierarchy:
    """Run the phase-1 specialization used by the figure (9 levels, 4-way splits)."""
    spec_config = SpecializationConfig(
        num_levels=config.num_levels,
        epsilon=config.specialization_epsilon,
        include_individual_level=True,
    )
    if config.engine == "vectorized":
        graph.arrays()  # compile once so split scoring takes the array fast path
    specializer = Specializer(config=spec_config, rng=rng if rng is not None else config.seed)
    return specializer.build(graph).hierarchy


def level_sensitivities(
    graph: BipartiteGraph, hierarchy: GroupHierarchy, levels: Sequence[int]
) -> Dict[int, float]:
    """Group-level sensitivity of the association count at each level."""
    return {
        level: group_count_sensitivity(graph, hierarchy.partition_at(level))
        for level in levels
        if hierarchy.has_level(level)
    }


def _noise_scale(mechanism: str, epsilon: float, delta: float, sensitivity: float) -> float:
    if mechanism == "gaussian":
        return gaussian_sigma(epsilon, delta, sensitivity)
    if mechanism == "laplace":
        return laplace_scale(epsilon, sensitivity)
    raise EvaluationError(f"figure 1 harness supports 'gaussian' and 'laplace', got {mechanism!r}")


def _expected_rer(mechanism: str, scale: float, true_count: float) -> float:
    if mechanism == "gaussian":
        return expected_rer_gaussian(scale, true_count)
    return expected_rer_laplace(scale, true_count)


def _epsilon_rer_row(
    task: Tuple[float, np.ndarray],
    mechanism: str,
    delta: float,
    sensitivities: Dict[int, float],
    levels: List[int],
    true_count: float,
) -> List[float]:
    """Per-level RER at one epsilon from a precomputed unit-noise row.

    Module-level executor task: the noise is drawn *before* the fan-out, so
    the executor choice cannot change the sampled values — serial, thread and
    process runs of :func:`run_figure1` are bit-identical, and the golden
    regression (``tests/golden/figure1_small.json``) stays valid.
    """
    epsilon, unit_noise = task
    mean_unit_magnitude = float(np.mean(np.abs(unit_noise)))
    return [
        mean_unit_magnitude
        * _noise_scale(mechanism, epsilon, delta, sensitivities[level])
        / true_count
        for level in levels
    ]


def run_figure1(
    graph: Optional[BipartiteGraph] = None,
    config: Optional[Figure1Config] = None,
    hierarchy: Optional[GroupHierarchy] = None,
    rng: RandomState = None,
    executor: ExecutorSpec = None,
) -> Figure1Result:
    """Reproduce Figure 1 by Monte-Carlo sampling of the calibrated noise.

    Parameters
    ----------
    graph:
        The association graph; defaults to the configured synthetic dataset.
    config:
        A :class:`Figure1Config`; defaults mirror the paper's sweep.
    hierarchy:
        Reuse an existing hierarchy (skips specialization).
    rng:
        Seed / generator for the noise draws (defaults to ``config.seed``).
    executor:
        Override ``config.executor`` for the per-epsilon aggregation fan-out.
        All noise is drawn up front (common random numbers, see below), so
        every executor produces the same result bit for bit.
    """
    config = config if config is not None else Figure1Config()
    if graph is None:
        graph = load_dataset(config.dataset, config.scale, seed=config.seed)
    if config.engine == "vectorized":
        graph.arrays()  # sensitivities below take the array fast path
    if hierarchy is None:
        hierarchy = build_figure1_hierarchy(graph, config, rng=derive_rng(config.seed, "figure1-spec"))
    noise_rng = as_rng(rng if rng is not None else derive_rng(config.seed, "figure1-noise"))

    true_count = float(graph.num_associations())
    if true_count <= 0:
        raise EvaluationError("the graph has no associations; RER is undefined")
    levels = [level for level in config.release_levels() if hierarchy.has_level(level)]
    sensitivities = level_sensitivities(graph, hierarchy, levels)

    # Common random numbers across levels: one batch of unit-scale noise per
    # epsilon, rescaled by each level's calibrated scale.  This is the
    # standard variance-reduction trick for comparing configurations and
    # keeps the sampled curves ordered by level exactly as the analytic
    # expectations are.  The vectorized engine draws the whole
    # (epsilon x trial) matrix in one generator call; numpy fills batched
    # draws sequentially from the same bit stream, so the rows are identical
    # to the reference engine's per-epsilon draws.  (For a Monte-Carlo over
    # *both* pipeline phases with per-trial derived streams, see
    # :func:`run_figure1_trials`.)
    draw = noise_rng.normal if config.mechanism == "gaussian" else noise_rng.laplace
    if config.engine == "vectorized":
        unit_matrix = draw(0.0, 1.0, size=(len(config.epsilons), config.num_trials))
        unit_rows = [unit_matrix[index] for index in range(len(config.epsilons))]
    else:
        unit_rows = [draw(0.0, 1.0, size=config.num_trials) for _ in config.epsilons]

    task = partial(
        _epsilon_rer_row,
        mechanism=config.mechanism,
        delta=config.delta,
        sensitivities=sensitivities,
        levels=levels,
        true_count=true_count,
    )
    with executor_scope(
        executor if executor is not None else config.executor, config.max_workers
    ) as pool:
        rows = pool.map(task, list(zip(config.epsilons, unit_rows)))

    series: Dict[int, List[float]] = {level: [] for level in levels}
    for row in rows:
        for position, level in enumerate(levels):
            series[level].append(row[position])
    return Figure1Result(
        epsilons=list(config.epsilons),
        series=series,
        true_count=true_count,
        sensitivities=sensitivities,
        num_levels=config.num_levels,
        config=config.to_dict(executor_override=executor),
    )


def run_figure1_analytic(
    graph: Optional[BipartiteGraph] = None,
    config: Optional[Figure1Config] = None,
    hierarchy: Optional[GroupHierarchy] = None,
) -> Figure1Result:
    """Deterministic variant of :func:`run_figure1` using closed-form expected RER.

    ``E[RER] = E[|noise|] / T`` — for Gaussian noise ``sigma * sqrt(2/pi) / T``,
    for Laplace noise ``b / T``.  Used by the regression tests and the quick
    benchmark mode because it has no Monte-Carlo variance.
    """
    config = config if config is not None else Figure1Config()
    if graph is None:
        graph = load_dataset(config.dataset, config.scale, seed=config.seed)
    if config.engine == "vectorized":
        graph.arrays()  # sensitivities below take the array fast path
    if hierarchy is None:
        hierarchy = build_figure1_hierarchy(graph, config, rng=derive_rng(config.seed, "figure1-spec"))

    true_count = float(graph.num_associations())
    if true_count <= 0:
        raise EvaluationError("the graph has no associations; RER is undefined")
    levels = [level for level in config.release_levels() if hierarchy.has_level(level)]
    sensitivities = level_sensitivities(graph, hierarchy, levels)

    series: Dict[int, List[float]] = {level: [] for level in levels}
    for epsilon in config.epsilons:
        for level in levels:
            scale = _noise_scale(config.mechanism, epsilon, config.delta, sensitivities[level])
            series[level].append(_expected_rer(config.mechanism, scale, true_count))
    return Figure1Result(
        epsilons=list(config.epsilons),
        series=series,
        true_count=true_count,
        sensitivities=sensitivities,
        num_levels=config.num_levels,
        config=config.to_dict(),
    )


# ----------------------------------------------------------------------
# Full-pipeline Monte-Carlo (per-trial derived streams, executor-parallel)
# ----------------------------------------------------------------------
def _figure1_trial(trial: int, graph: BipartiteGraph, config: Figure1Config) -> Dict[str, Any]:
    """One independent end-to-end Figure-1 trial (executor task).

    Re-runs *both* pipeline phases — a fresh Exponential-Mechanism
    specialization, fresh sensitivities, fresh noise — from streams derived
    via ``derive_rng(seed, "figure1-trial-<index>-...")``.  Keying every
    stream by the trial index (rather than advancing one shared generator
    trial after trial) is what makes a serial run and any parallel execution
    order produce identical results.
    """
    spec_rng = derive_rng(config.seed, f"figure1-trial-{trial}-spec")
    hierarchy = build_figure1_hierarchy(graph, config, rng=spec_rng)
    levels = [level for level in config.release_levels() if hierarchy.has_level(level)]
    sensitivities = level_sensitivities(graph, hierarchy, levels)
    true_count = float(graph.num_associations())

    noise_rng = derive_rng(config.seed, f"figure1-trial-{trial}-noise")
    draw = noise_rng.normal if config.mechanism == "gaussian" else noise_rng.laplace
    unit = draw(0.0, 1.0, size=(len(config.epsilons), len(levels)))
    series = {
        level: [
            abs(float(unit[eps_index][level_index]))
            * _noise_scale(config.mechanism, epsilon, config.delta, sensitivities[level])
            / true_count
            for eps_index, epsilon in enumerate(config.epsilons)
        ]
        for level_index, level in enumerate(levels)
    }
    return {"levels": levels, "sensitivities": sensitivities, "series": series}


def run_figure1_trials(
    graph: Optional[BipartiteGraph] = None,
    config: Optional[Figure1Config] = None,
    executor: ExecutorSpec = None,
) -> Figure1Result:
    """Monte-Carlo Figure 1 over the *full* pipeline, one task per trial.

    Unlike :func:`run_figure1` (which conditions on a single hierarchy and
    only samples the noise), every trial here re-runs specialization,
    sensitivity calibration and noise injection with its own derived random
    streams, then the per-level RER is averaged across trials.  Trials are
    completely independent, so they fan out through the configured
    :class:`~repro.execution.Executor` — ``executor="process"`` distributes
    them across cores with bit-identical results
    (``benchmarks/test_bench_parallel.py`` records the speedup).
    """
    config = config if config is not None else Figure1Config()
    if graph is None:
        graph = load_dataset(config.dataset, config.scale, seed=config.seed)
    true_count = float(graph.num_associations())
    if true_count <= 0:
        raise EvaluationError("the graph has no associations; RER is undefined")

    task = partial(_figure1_trial, graph=graph, config=config)
    with executor_scope(
        executor if executor is not None else config.executor, config.max_workers
    ) as pool:
        trials = pool.map(task, list(range(config.num_trials)))
    if not trials:
        raise EvaluationError("num_trials must be >= 1")

    levels = trials[0]["levels"]
    for outcome in trials[1:]:
        if outcome["levels"] != levels:
            raise EvaluationError(
                "trials produced different level sets; increase the graph size "
                f"({outcome['levels']} vs {levels})"
            )
    series = {
        level: [
            float(np.mean([outcome["series"][level][eps_index] for outcome in trials]))
            for eps_index in range(len(config.epsilons))
        ]
        for level in levels
    }
    mean_sensitivities = {
        level: float(np.mean([outcome["sensitivities"][level] for outcome in trials]))
        for level in levels
    }
    return Figure1Result(
        epsilons=list(config.epsilons),
        series=series,
        true_count=true_count,
        sensitivities=mean_sensitivities,
        num_levels=config.num_levels,
        config=config.to_dict(executor_override=executor),
    )


# ----------------------------------------------------------------------
# Re-rendering metrics from a persisted release
# ----------------------------------------------------------------------
def figure1_metrics_from_release(
    release: MultiLevelRelease, true_count: Optional[float] = None
) -> List[Dict[str, Any]]:
    """Figure-1-style per-level metrics recomputed from a stored release.

    Only published information is used: the noise scale, sensitivity and
    guarantee of each level, and — when ``true_count`` is not supplied — the
    *released noisy* total association count as the RER denominator (an
    estimate, since the true count is exactly what the release protects).
    This is how ``repro report`` re-renders metrics from a
    :class:`~repro.core.store.ReleaseStore` without re-disclosing.
    """
    rows: List[Dict[str, Any]] = []
    for level in release.levels():
        view = release.level(level)
        denominator = true_count
        if denominator is None and "total_association_count" in view.answers:
            denominator = abs(view.scalar_answer("total_association_count"))
        if denominator:
            if view.mechanism in ("gaussian", "analytic_gaussian"):
                expected = expected_rer_gaussian(view.noise_scale, denominator)
            else:
                expected = expected_rer_laplace(view.noise_scale, denominator)
        else:
            expected = None
        rows.append(
            {
                "level": level,
                "mechanism": view.mechanism,
                "epsilon": view.guarantee.epsilon,
                "delta": view.guarantee.delta,
                "noise_scale": view.noise_scale,
                "sensitivity": view.sensitivity,
                "num_groups": getattr(view.guarantee, "num_groups", None),
                "expected_rer": expected,
            }
        )
    return rows
