"""repro — Group differential privacy-preserving disclosure of multi-level association graphs.

A from-scratch reproduction of Palanisamy, Li and Krishnamurthy (ICDCS 2017).
The package provides:

* the bipartite association-graph substrate (:mod:`repro.graphs`) and
  synthetic dataset generators (:mod:`repro.datasets`);
* a differential-privacy mechanism library (:mod:`repro.mechanisms`),
  privacy definitions and sensitivities (:mod:`repro.privacy`) and budget
  accounting (:mod:`repro.accounting`);
* the multi-level specialization substrate (:mod:`repro.grouping`) and query
  workloads (:mod:`repro.queries`);
* the paper's contribution — the multi-level group-private discloser
  (:mod:`repro.core`) — plus the comparison baselines (:mod:`repro.baselines`)
  and the evaluation harness that regenerates the paper's figure
  (:mod:`repro.evaluation`).

Quickstart
----------
>>> from repro import DisclosureConfig, MultiLevelDiscloser, generate_dblp_like
>>> graph = generate_dblp_like(num_authors=500, seed=0)
>>> release = MultiLevelDiscloser(DisclosureConfig.paper_defaults(epsilon_g=0.5), rng=1).disclose(graph)
>>> release.levels()[:3]
[0, 1, 2]

Execution engines
-----------------
The pipeline has two interchangeable execution engines.  The default,
``engine="vectorized"``, compiles the graph once into a
:class:`~repro.graphs.arrays.GraphArrays` view (CSR-style edge arrays,
contiguous index maps, per-node degree vectors, cached on the graph and
invalidated on mutation) and answers whole workloads with
``np.bincount``/segment sums plus one batched noise draw per level;
``engine="reference"`` keeps the pure-Python per-group path.  Both produce
identical answers — ``tests/test_engine_parity.py`` asserts bit-for-bit
equality — while the vectorized engine is an order of magnitude faster on
large graphs (``benchmarks/results/engines.json``).

>>> config = DisclosureConfig(epsilon_g=0.5, engine="vectorized")  # the default
>>> release = MultiLevelDiscloser(config, rng=1).disclose(graph)

Batched query evaluation is also available directly: build a
:class:`~repro.queries.workload.QueryWorkload` and call
``workload.evaluate_batch(graph)`` to answer every member query from one
compiled array view, or pass ``arrays=graph.arrays()`` to share the view
across workloads.

Parallel execution
------------------
The disclosure core is a staged pipeline
(``specialize -> compile -> calibrate -> perturb -> assemble``; see
:class:`~repro.core.pipeline.DisclosurePipeline`) whose independent work —
per-level noise injection, per-trial Monte-Carlo runs — fans out through a
pluggable :class:`~repro.execution.Executor`.  Select it with
``DisclosureConfig(executor=...)``: ``"serial"`` (default), ``"thread"``, or
``"process"`` for CPU-bound fan-out across cores.  Every task carries its own
derived :class:`numpy.random.SeedSequence`, so for the same seed all three
executors produce **bit-identical** releases.

>>> config = DisclosureConfig(epsilon_g=0.5, executor="process")
>>> release = MultiLevelDiscloser(config, rng=1).disclose(graph)

The evaluation harnesses take the same selector, e.g.
``run_figure1_trials(config=Figure1Config(executor="process"))`` distributes
the 25-trial Figure-1 Monte-Carlo over all cores
(``benchmarks/results/parallel.json`` records the measured speedup).

The release store
-----------------
A release spends its privacy budget whether or not it is kept, so persist it
and serve it instead of re-disclosing.  :class:`~repro.core.store.ReleaseStore`
round-trips releases losslessly (JSON structure + float64 npz answers):

>>> import tempfile
>>> store = ReleaseStore(tempfile.mkdtemp())
>>> key = store.save(release)
>>> store.load(key).to_dict() == release.to_dict()
True

``GraphPublisher.export_views(..., store=...)`` persists the full release
alongside the per-role view documents, ``repro disclose --store DIR``
populates a store from the command line, and ``repro report --store DIR
--key KEY`` re-renders Figure-1-style per-level metrics from the stored
artefact without touching the graph again.

The store sits on a pluggable :class:`~repro.core.store.StoreBackend`
(a directory of JSON+npz pairs with a persisted O(1) key index by default,
a single queryable SQLite file when the path ends in ``.db`` —
:class:`~repro.core.sqlite_backend.SqliteBackend`, inspected with
``repro query`` / :class:`~repro.core.catalog.ReleaseCatalog` — or
:meth:`ReleaseStore.in_memory` for tests and caches) and can keep an LRU
read-through cache of parsed releases (``cache_size=...``) whose hits are
re-validated against the backend's change fingerprint.

Serving releases over HTTP
--------------------------
Disclosure spends budget once; serving the stored artefact spends nothing.
The read-only HTTP layer (:mod:`repro.serving`, stdlib ``http.server`` only)
loads releases from a store and resolves each caller's role through
:meth:`AccessPolicy.view_for`:

>>> from repro.serving import ReleaseServer, fetch_json
>>> policy = AccessPolicy({"analyst": 0, "public": 2}, top_level=3)
>>> server = ReleaseServer(store, policy, port=0).start()
>>> fetch_json(server.url, f"/releases/{key}/views/public")["release"]["level"]
2
>>> server.stop()

``repro serve --store DIR --policy FILE`` starts the same server from the
command line, and ``GraphPublisher.serve(release, policy, store)`` persists
a fresh release and hands back a ready server in one call.
"""

from repro.accounting.budget import BudgetLedger, PrivacyBudget
from repro.core.access import AccessPolicy, InformationLevel
from repro.core.certificate import PrivacyCertificate, verify_release
from repro.core.config import DisclosureConfig
from repro.core.discloser import MultiLevelDiscloser
from repro.core.publisher import GraphPublisher
from repro.core.pipeline import DisclosurePipeline
from repro.core.release import LevelRelease, MultiLevelRelease
from repro.core.store import ReleaseStore
from repro.datasets.dblp_like import generate_dblp_like
from repro.datasets.movielens_like import generate_movie_ratings
from repro.datasets.pharmacy import generate_pharmacy_purchases
from repro.datasets.registry import load_dataset
from repro.execution import ProcessExecutor, SerialExecutor, ThreadExecutor, make_executor
from repro.graphs.arrays import GraphArrays
from repro.graphs.bipartite import BipartiteGraph, Side
from repro.grouping.hierarchy import GroupHierarchy
from repro.grouping.attribute_grouping import hierarchy_from_attribute_levels, partition_by_attribute
from repro.grouping.partition import Group, Partition
from repro.grouping.specialization import (
    DeterministicSpecializer,
    RandomSpecializer,
    SpecializationConfig,
    Specializer,
)
from repro.mechanisms.exponential import ExponentialMechanism
from repro.mechanisms.gaussian import AnalyticGaussianMechanism, GaussianMechanism
from repro.mechanisms.laplace import LaplaceMechanism
from repro.privacy.adjacency import GroupAdjacency, IndividualAdjacency, NodeAdjacency
from repro.privacy.guarantees import (
    GroupPrivacyGuarantee,
    IndividualPrivacyGuarantee,
    PrivacyGuarantee,
    PrivacyUnit,
)
from repro.core.catalog import ReleaseCatalog, ReleaseFilter
from repro.core.sqlite_backend import SqliteBackend
from repro.core.store import DirectoryBackend, MemoryBackend, StoreBackend
from repro.exceptions import ServingError
from repro.serving.client import fetch_json, http_get
from repro.serving.server import ReleaseServer, create_server
from repro.queries.counts import GroupedAssociationCountQuery, TotalAssociationCountQuery
from repro.queries.cross import CrossGroupCountQuery
from repro.queries.degree import DegreeHistogramQuery
from repro.queries.workload import QueryWorkload

__version__ = "1.0.0"

__all__ = [
    "__version__",
    # core
    "DisclosureConfig",
    "MultiLevelDiscloser",
    "GraphPublisher",
    "MultiLevelRelease",
    "LevelRelease",
    "AccessPolicy",
    "InformationLevel",
    "PrivacyCertificate",
    "verify_release",
    "DisclosurePipeline",
    "ReleaseStore",
    "StoreBackend",
    "DirectoryBackend",
    "MemoryBackend",
    "SqliteBackend",
    "ReleaseCatalog",
    "ReleaseFilter",
    # serving
    "ReleaseServer",
    "create_server",
    "fetch_json",
    "http_get",
    "ServingError",
    # execution
    "SerialExecutor",
    "ThreadExecutor",
    "ProcessExecutor",
    "make_executor",
    # graphs & datasets
    "BipartiteGraph",
    "GraphArrays",
    "Side",
    "generate_dblp_like",
    "generate_movie_ratings",
    "generate_pharmacy_purchases",
    "load_dataset",
    # grouping
    "Group",
    "Partition",
    "GroupHierarchy",
    "partition_by_attribute",
    "hierarchy_from_attribute_levels",
    "PrivacyBudget",
    "BudgetLedger",
    "SpecializationConfig",
    "Specializer",
    "DeterministicSpecializer",
    "RandomSpecializer",
    # mechanisms
    "LaplaceMechanism",
    "GaussianMechanism",
    "AnalyticGaussianMechanism",
    "ExponentialMechanism",
    # privacy
    "PrivacyGuarantee",
    "IndividualPrivacyGuarantee",
    "GroupPrivacyGuarantee",
    "PrivacyUnit",
    "IndividualAdjacency",
    "NodeAdjacency",
    "GroupAdjacency",
    # queries
    "TotalAssociationCountQuery",
    "GroupedAssociationCountQuery",
    "DegreeHistogramQuery",
    "CrossGroupCountQuery",
    "QueryWorkload",
]
