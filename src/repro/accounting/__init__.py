"""Privacy-budget accounting: ledgers, composition theorems, allocation.

The disclosure pipeline spends budget in two phases (specialization and noise
injection) and across many information levels; this package tracks those
spends, composes them into an overall guarantee, and provides the allocation
strategies ablated in experiment E5.
"""

from repro.accounting.budget import BudgetLedger, LedgerEntry, PrivacyBudget
from repro.accounting.composition import (
    advanced_composition,
    basic_composition,
    parallel_composition,
)
from repro.accounting.allocation import (
    AllocationStrategy,
    GeometricAllocation,
    ProportionalToSensitivityAllocation,
    UniformAllocation,
    make_allocation,
)

__all__ = [
    "PrivacyBudget",
    "BudgetLedger",
    "LedgerEntry",
    "basic_composition",
    "advanced_composition",
    "parallel_composition",
    "AllocationStrategy",
    "UniformAllocation",
    "GeometricAllocation",
    "ProportionalToSensitivityAllocation",
    "make_allocation",
]
