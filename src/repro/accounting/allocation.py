"""Budget-allocation strategies across hierarchy levels.

The paper gives each information level its own budget ``epsilon_g`` (the
x-axis of Figure 1), i.e. every level is protected independently at the same
``epsilon_g``.  When a publisher instead wants a *single* end-to-end budget
spread over all levels, the split across levels is a free design choice with
a visible utility impact; the strategies here implement the obvious options
and are compared in the E5 ablation benchmark.
"""

from __future__ import annotations

import abc
from typing import Dict, List, Mapping, Sequence

from repro.exceptions import ValidationError
from repro.utils.validation import check_fraction, check_positive


class AllocationStrategy(abc.ABC):
    """Maps a total epsilon onto per-level epsilons."""

    @abc.abstractmethod
    def allocate(self, total_epsilon: float, levels: Sequence[int], **context) -> Dict[int, float]:
        """Return ``{level: epsilon}`` with values summing to ``total_epsilon``."""

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"{type(self).__name__}()"


class UniformAllocation(AllocationStrategy):
    """Every level receives the same share."""

    def allocate(self, total_epsilon: float, levels: Sequence[int], **context) -> Dict[int, float]:
        total_epsilon = check_positive(total_epsilon, "total_epsilon")
        levels = list(levels)
        if not levels:
            raise ValidationError("at least one level is required")
        share = total_epsilon / len(levels)
        return {level: share for level in levels}


class GeometricAllocation(AllocationStrategy):
    """Coarser levels receive geometrically larger shares.

    Coarse levels have much larger sensitivity, so giving them a larger share
    of the budget flattens the per-level error profile.  With ratio ``r`` the
    share of level ``l_k`` (sorted ascending) is proportional to ``r^k``.

    Parameters
    ----------
    ratio:
        Multiplicative factor between consecutive levels; must exceed 1 to
        favour coarse levels (values in (0, 1) would favour fine levels).
    """

    def __init__(self, ratio: float = 2.0):
        self.ratio = check_positive(ratio, "ratio")
        if self.ratio == 1.0:
            raise ValidationError("ratio must differ from 1; use UniformAllocation instead")

    def allocate(self, total_epsilon: float, levels: Sequence[int], **context) -> Dict[int, float]:
        total_epsilon = check_positive(total_epsilon, "total_epsilon")
        levels = sorted(levels)
        if not levels:
            raise ValidationError("at least one level is required")
        weights = [self.ratio**index for index in range(len(levels))]
        total_weight = sum(weights)
        return {
            level: total_epsilon * weight / total_weight for level, weight in zip(levels, weights)
        }


class ProportionalToSensitivityAllocation(AllocationStrategy):
    """Shares proportional to each level's sensitivity.

    Requires ``sensitivities={level: sensitivity}`` passed via ``context``.
    Allocating budget proportionally to sensitivity equalises the noise scale
    ``sensitivity / epsilon`` across levels (for Laplace exactly, for Gaussian
    up to the shared ``sqrt(2 ln(1.25/delta))`` factor), so every information
    level sees roughly the same *absolute* error.
    """

    def allocate(self, total_epsilon: float, levels: Sequence[int], **context) -> Dict[int, float]:
        total_epsilon = check_positive(total_epsilon, "total_epsilon")
        sensitivities: Mapping[int, float] = context.get("sensitivities") or {}
        levels = list(levels)
        if not levels:
            raise ValidationError("at least one level is required")
        missing = [level for level in levels if level not in sensitivities]
        if missing:
            raise ValidationError(f"missing sensitivities for levels {missing}")
        weights = [check_positive(sensitivities[level], f"sensitivity[{level}]") for level in levels]
        total_weight = sum(weights)
        return {
            level: total_epsilon * weight / total_weight for level, weight in zip(levels, weights)
        }


_REGISTRY = {
    "uniform": UniformAllocation,
    "geometric": GeometricAllocation,
    "proportional": ProportionalToSensitivityAllocation,
}


def make_allocation(name: str, **kwargs) -> AllocationStrategy:
    """Instantiate an allocation strategy by name (``uniform`` / ``geometric`` / ``proportional``)."""
    if name not in _REGISTRY:
        raise ValidationError(f"unknown allocation strategy {name!r}; choose from {sorted(_REGISTRY)}")
    return _REGISTRY[name](**kwargs)
