"""Privacy budgets and spend ledgers."""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import List, Optional

from repro.exceptions import BudgetExceededError, InvalidPrivacyParameterError
from repro.mechanisms.base import PrivacyCost


@dataclass(frozen=True)
class PrivacyBudget:
    """A total ``(epsilon, delta)`` budget available to a pipeline.

    Budgets are immutable; spending happens through a :class:`BudgetLedger`.
    """

    epsilon: float
    delta: float = 0.0

    def __post_init__(self):
        if not isinstance(self.epsilon, (int, float)) or isinstance(self.epsilon, bool):
            raise InvalidPrivacyParameterError("epsilon must be a number")
        if math.isnan(self.epsilon) or self.epsilon <= 0:
            raise InvalidPrivacyParameterError(f"epsilon must be > 0, got {self.epsilon}")
        if not 0.0 <= self.delta <= 1.0:
            raise InvalidPrivacyParameterError(f"delta must be in [0, 1], got {self.delta}")
        object.__setattr__(self, "epsilon", float(self.epsilon))
        object.__setattr__(self, "delta", float(self.delta))

    def split(self, fractions: List[float]) -> List["PrivacyBudget"]:
        """Split the budget into sub-budgets according to ``fractions``.

        Fractions must be positive and sum to at most 1 (a strict inequality
        leaves head-room unspent).
        """
        if not fractions or any(f <= 0 for f in fractions):
            raise InvalidPrivacyParameterError("fractions must be positive")
        if sum(fractions) > 1.0 + 1e-9:
            raise InvalidPrivacyParameterError(f"fractions sum to {sum(fractions)} > 1")
        return [PrivacyBudget(self.epsilon * f, self.delta * f) for f in fractions]

    def to_dict(self) -> dict:
        """JSON-serialisable representation."""
        return {"epsilon": self.epsilon, "delta": self.delta}


@dataclass(frozen=True)
class LedgerEntry:
    """One recorded spend against a ledger."""

    label: str
    cost: PrivacyCost

    def to_dict(self) -> dict:
        """JSON-serialisable representation."""
        return {"label": self.label, "cost": self.cost.to_dict()}


class BudgetLedger:
    """Tracks privacy spends against a :class:`PrivacyBudget`.

    Spends compose sequentially (basic composition).  Attempting to spend more
    than the remaining budget raises :class:`BudgetExceededError`; this makes
    over-spending a programming error rather than a silent privacy violation.

    Parameters
    ----------
    budget:
        The total budget, or ``None`` for an unlimited ledger that only
        records spends (useful for the non-private baselines).
    """

    def __init__(self, budget: Optional[PrivacyBudget] = None):
        self.budget = budget
        self._entries: List[LedgerEntry] = []

    def entries(self) -> List[LedgerEntry]:
        """All recorded spends, in order."""
        return list(self._entries)

    def spent(self) -> PrivacyCost:
        """Total spend so far under basic composition."""
        total = PrivacyCost(0.0, 0.0)
        for entry in self._entries:
            total = total + entry.cost
        return total

    def remaining(self) -> Optional[PrivacyCost]:
        """Remaining budget, or ``None`` for unlimited ledgers."""
        if self.budget is None:
            return None
        spent = self.spent()
        return PrivacyCost(
            max(0.0, self.budget.epsilon - spent.epsilon),
            max(0.0, self.budget.delta - spent.delta),
        )

    def can_spend(self, cost: PrivacyCost) -> bool:
        """``True`` when ``cost`` fits in the remaining budget."""
        if self.budget is None:
            return True
        spent = self.spent()
        return (
            spent.epsilon + cost.epsilon <= self.budget.epsilon + 1e-12
            and spent.delta + cost.delta <= self.budget.delta + 1e-15
        )

    def charge(self, cost: PrivacyCost, label: str = "") -> LedgerEntry:
        """Record a spend; raises :class:`BudgetExceededError` if it does not fit."""
        if not self.can_spend(cost):
            remaining = self.remaining()
            raise BudgetExceededError(cost.to_dict(), remaining.to_dict() if remaining else None)
        entry = LedgerEntry(label=label, cost=cost)
        self._entries.append(entry)
        return entry

    def __len__(self) -> int:
        return len(self._entries)

    def to_dict(self) -> dict:
        """JSON-serialisable representation."""
        return {
            "budget": self.budget.to_dict() if self.budget is not None else None,
            "entries": [entry.to_dict() for entry in self._entries],
            "spent": self.spent().to_dict(),
        }
