"""Composition theorems for differential privacy.

The disclosure pipeline releases one noisy answer per information level and a
differentially private grouping structure; these helpers compose the
individual costs into an end-to-end guarantee.

All three composition results hold for *any* adjacency relation, so they
apply unchanged to the paper's group-level adjacency: composing two
``g``-group-DP mechanisms is exactly composing two DP mechanisms under the
group adjacency relation.
"""

from __future__ import annotations

import math
from typing import Iterable, List

from repro.exceptions import InvalidPrivacyParameterError
from repro.mechanisms.base import PrivacyCost


def basic_composition(costs: Iterable[PrivacyCost]) -> PrivacyCost:
    """Sequential (basic) composition: epsilons and deltas add."""
    total_epsilon = 0.0
    total_delta = 0.0
    for cost in costs:
        total_epsilon += cost.epsilon
        total_delta += cost.delta
    return PrivacyCost(total_epsilon, min(1.0, total_delta))


def parallel_composition(costs: Iterable[PrivacyCost]) -> PrivacyCost:
    """Parallel composition: mechanisms run on disjoint sub-datasets.

    The overall guarantee is the worst (largest) of the individual costs.
    Applies to the paper's pipeline when sibling groups are perturbed
    independently: the groups are disjoint node sets, so a group-adjacent
    change touches only one sibling's answer.
    """
    worst_epsilon = 0.0
    worst_delta = 0.0
    for cost in costs:
        worst_epsilon = max(worst_epsilon, cost.epsilon)
        worst_delta = max(worst_delta, cost.delta)
    return PrivacyCost(worst_epsilon, worst_delta)


def advanced_composition(
    epsilon: float, delta: float, k: int, delta_prime: float
) -> PrivacyCost:
    """Advanced composition (Dwork–Roth Theorem 3.20).

    ``k``-fold adaptive composition of ``(epsilon, delta)``-DP mechanisms is
    ``(epsilon', k*delta + delta_prime)``-DP with

    ``epsilon' = sqrt(2 k ln(1/delta_prime)) * epsilon + k * epsilon * (e^epsilon - 1)``.

    Parameters
    ----------
    epsilon, delta:
        Per-invocation parameters.
    k:
        Number of invocations.
    delta_prime:
        Slack added to the composed delta.
    """
    if epsilon < 0:
        raise InvalidPrivacyParameterError(f"epsilon must be >= 0, got {epsilon}")
    if not 0.0 <= delta <= 1.0:
        raise InvalidPrivacyParameterError(f"delta must be in [0, 1], got {delta}")
    if not 0.0 < delta_prime < 1.0:
        raise InvalidPrivacyParameterError(f"delta_prime must be in (0, 1), got {delta_prime}")
    if k <= 0:
        raise InvalidPrivacyParameterError(f"k must be positive, got {k}")
    epsilon_prime = math.sqrt(2.0 * k * math.log(1.0 / delta_prime)) * epsilon + k * epsilon * (
        math.exp(epsilon) - 1.0
    )
    return PrivacyCost(epsilon_prime, min(1.0, k * delta + delta_prime))


def tighter_of(costs: List[PrivacyCost]) -> PrivacyCost:
    """Return the cost with the smallest epsilon (ties broken by delta).

    Useful when several composition bounds are available for the same release
    (e.g. basic vs advanced composition) and the report should quote the
    tightest valid one.
    """
    if not costs:
        raise InvalidPrivacyParameterError("at least one cost is required")
    return min(costs, key=lambda c: (c.epsilon, c.delta))
