"""Synthetic movie-rating association graphs (viewers x movies).

The second motivating association type named in the paper's introduction
("the movies rated by viewers in a movie rating database").  Viewers carry an
``age_band`` attribute and movies a ``genre`` attribute so the example can
release genre-level aggregates at several group granularities.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.graphs.bipartite import BipartiteGraph
from repro.utils.rng import RandomState, as_rng
from repro.utils.validation import check_positive_int

DEFAULT_GENRES: Sequence[str] = (
    "drama",
    "comedy",
    "action",
    "documentary",
    "horror",
    "romance",
    "scifi",
)

DEFAULT_AGE_BANDS: Sequence[str] = ("18-24", "25-34", "35-44", "45-54", "55+")


def generate_movie_ratings(
    num_viewers: int = 3_000,
    num_movies: int = 500,
    mean_ratings: float = 8.0,
    genres: Sequence[str] = DEFAULT_GENRES,
    age_bands: Sequence[str] = DEFAULT_AGE_BANDS,
    seed: RandomState = None,
    name: str = "movie-ratings",
) -> BipartiteGraph:
    """Generate a viewer-movie rating graph with genre / age-band attributes.

    Parameters
    ----------
    num_viewers, num_movies:
        Node counts (viewers are left nodes ``"viewer{i}"``, movies right
        nodes ``"movie{j}"``).
    mean_ratings:
        Mean number of movies rated per viewer (Poisson).
    genres, age_bands:
        Attribute vocabularies.
    seed:
        Seed / generator.
    """
    num_viewers = check_positive_int(num_viewers, "num_viewers")
    num_movies = check_positive_int(num_movies, "num_movies")
    if mean_ratings <= 0:
        raise ValueError(f"mean_ratings must be positive, got {mean_ratings}")
    genres = list(genres) or list(DEFAULT_GENRES)
    age_bands = list(age_bands) or list(DEFAULT_AGE_BANDS)

    rng = as_rng(seed)
    graph = BipartiteGraph(name=name)

    for i in range(num_viewers):
        graph.add_left_node(f"viewer{i}", age_band=age_bands[int(rng.integers(0, len(age_bands)))])
    for j in range(num_movies):
        graph.add_right_node(f"movie{j}", genre=genres[int(rng.integers(0, len(genres)))])

    # Blockbusters (small index) attract many more ratings.
    movie_weights = np.arange(1, num_movies + 1, dtype=float) ** -1.0
    movie_weights = movie_weights / movie_weights.sum()
    for i in range(num_viewers):
        count = min(num_movies, int(rng.poisson(mean_ratings)) + 1)
        movies = rng.choice(num_movies, size=count, replace=False, p=movie_weights)
        for j in movies.tolist():
            graph.add_association(f"viewer{i}", f"movie{j}")
    return graph
