"""Synthetic pharmacy purchase graphs (patients x drugs).

This is the paper's motivating example: associations record which patient
bought which drug, patients carry a ``zipcode`` attribute and drugs a
``category`` attribute, and the *group-level* secret is an aggregate such as
"how many psychiatric-drug purchases were made in zipcode 15213".  The
generator produces graphs with those attributes so the examples can
demonstrate group-private disclosure of exactly that kind of statistic.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

import numpy as np

from repro.graphs.bipartite import BipartiteGraph
from repro.utils.rng import RandomState, as_rng
from repro.utils.validation import check_positive_int

#: Default drug categories, loosely following ATC top-level classes.
DEFAULT_CATEGORIES: Sequence[str] = (
    "cardiac",
    "psychiatric",
    "antibiotic",
    "analgesic",
    "respiratory",
    "dermatological",
)


def generate_pharmacy_purchases(
    num_patients: int = 2_000,
    num_drugs: int = 300,
    mean_purchases: float = 4.0,
    num_zipcodes: int = 12,
    categories: Sequence[str] = DEFAULT_CATEGORIES,
    seed: RandomState = None,
    name: str = "pharmacy-purchases",
) -> BipartiteGraph:
    """Generate a patient-drug purchase graph with zipcode / category attributes.

    Parameters
    ----------
    num_patients, num_drugs:
        Node counts (patients are left nodes ``"patient{i}"``, drugs right
        nodes ``"drug{j}"``).
    mean_purchases:
        Mean number of distinct drugs purchased per patient (Poisson).
    num_zipcodes:
        Patients are assigned uniformly to this many synthetic zipcodes
        (``"zip00" ...``); zipcodes are the natural grouping attribute.
    categories:
        Drug categories, assigned round-robin weighted toward earlier entries.
    seed:
        Seed / generator.
    """
    num_patients = check_positive_int(num_patients, "num_patients")
    num_drugs = check_positive_int(num_drugs, "num_drugs")
    num_zipcodes = check_positive_int(num_zipcodes, "num_zipcodes")
    if mean_purchases <= 0:
        raise ValueError(f"mean_purchases must be positive, got {mean_purchases}")
    categories = list(categories) or list(DEFAULT_CATEGORIES)

    rng = as_rng(seed)
    graph = BipartiteGraph(name=name)

    zipcodes: List[str] = [f"zip{z:02d}" for z in range(num_zipcodes)]
    for i in range(num_patients):
        graph.add_left_node(f"patient{i}", zipcode=zipcodes[int(rng.integers(0, num_zipcodes))])

    category_weights = np.linspace(1.0, 0.4, num=len(categories))
    category_weights = category_weights / category_weights.sum()
    for j in range(num_drugs):
        category = categories[int(rng.choice(len(categories), p=category_weights))]
        graph.add_right_node(f"drug{j}", category=category)

    # Popular drugs (small index) are purchased more often.
    drug_weights = np.arange(1, num_drugs + 1, dtype=float) ** -0.8
    drug_weights = drug_weights / drug_weights.sum()
    for i in range(num_patients):
        basket_size = min(num_drugs, int(rng.poisson(mean_purchases)) + 1)
        drugs = rng.choice(num_drugs, size=basket_size, replace=False, p=drug_weights)
        for j in drugs.tolist():
            graph.add_association(f"patient{i}", f"drug{j}")
    return graph
