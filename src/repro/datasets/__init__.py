"""Dataset generators and loaders.

The paper evaluates on the DBLP author-paper association graph (1,295,100
authors, 2,281,341 papers, 6,384,117 associations).  The raw DBLP XML dump is
not redistributable and not available offline, so this package provides a
seeded synthetic generator with the same structural characteristics (bipartite,
heavy-tailed degree distributions, the same author : paper : association
ratios) at a configurable scale, plus two further domain generators used by
the examples (pharmacy purchases, movie ratings) and a loader for users who do
have a DBLP edge-list export.
"""

from repro.datasets.dblp_like import (
    DBLP_PAPER_STATS,
    dblp_paper_scale,
    generate_dblp_like,
)
from repro.datasets.pharmacy import generate_pharmacy_purchases
from repro.datasets.movielens_like import generate_movie_ratings
from repro.datasets.registry import available_datasets, load_dataset

__all__ = [
    "DBLP_PAPER_STATS",
    "dblp_paper_scale",
    "generate_dblp_like",
    "generate_pharmacy_purchases",
    "generate_movie_ratings",
    "available_datasets",
    "load_dataset",
]
