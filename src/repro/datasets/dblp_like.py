"""Synthetic DBLP-like author-paper association graphs.

The generator reproduces the structural features that matter for the paper's
experiment:

* a bipartite graph (authors on the left, papers on the right);
* heavy-tailed degrees on both sides (a few prolific authors, a few
  many-authored papers), produced by sampling edge endpoints from Zipf-like
  weight distributions;
* the DBLP author : paper : association ratios (1 : 1.76 : 4.93), so that a
  scaled-down instance has the same *relative* count structure as the paper's
  dataset and the relative error rates transfer.

Generation is fully seeded and vectorised; a 250k-association instance builds
in a couple of seconds and the full paper-scale instance (6.4M associations)
in a few minutes.
"""

from __future__ import annotations

from typing import Dict, Optional

import numpy as np

from repro.exceptions import DatasetError
from repro.graphs.bipartite import BipartiteGraph
from repro.utils.rng import RandomState, as_rng
from repro.utils.validation import check_positive, check_positive_int

#: The DBLP statistics quoted in the paper's evaluation section.
DBLP_PAPER_STATS: Dict[str, int] = {
    "num_authors": 1_295_100,
    "num_papers": 2_281_341,
    "num_associations": 6_384_117,
}


def dblp_paper_scale(num_authors: int) -> Dict[str, int]:
    """Scale the paper's DBLP statistics down to ``num_authors`` authors.

    Keeps the author : paper : association ratios of the original dataset.
    """
    num_authors = check_positive_int(num_authors, "num_authors")
    ratio_papers = DBLP_PAPER_STATS["num_papers"] / DBLP_PAPER_STATS["num_authors"]
    ratio_assoc = DBLP_PAPER_STATS["num_associations"] / DBLP_PAPER_STATS["num_authors"]
    return {
        "num_authors": num_authors,
        "num_papers": max(1, int(round(num_authors * ratio_papers))),
        "num_associations": max(1, int(round(num_authors * ratio_assoc))),
    }


def _power_law_weights(n: int, exponent: float, rng: np.random.Generator) -> np.ndarray:
    """Weights with a Zipf-like tail: rank^(-exponent), randomly permuted."""
    ranks = np.arange(1, n + 1, dtype=float)
    weights = ranks ** (-exponent)
    rng.shuffle(weights)
    return weights / weights.sum()


def generate_dblp_like(
    num_authors: int = 5_000,
    num_papers: Optional[int] = None,
    num_associations: Optional[int] = None,
    author_exponent: float = 0.45,
    paper_exponent: float = 0.35,
    seed: RandomState = None,
    name: str = "dblp-like",
) -> BipartiteGraph:
    """Generate a DBLP-like bipartite association graph.

    Parameters
    ----------
    num_authors:
        Number of left-side nodes.
    num_papers, num_associations:
        Right-side node count and target edge count.  When omitted they are
        derived from ``num_authors`` using the DBLP ratios
        (:func:`dblp_paper_scale`).
    author_exponent, paper_exponent:
        Power-law exponents of the endpoint weight distributions; larger
        values concentrate more associations on fewer nodes.
    seed:
        Seed / generator for reproducible instances.
    name:
        Name recorded on the resulting graph.

    Returns
    -------
    BipartiteGraph
        Authors are ``"a{i}"`` left nodes, papers ``"p{j}"`` right nodes.
        The realised association count can fall slightly below the target
        when duplicates are pruned; it never exceeds it.
    """
    num_authors = check_positive_int(num_authors, "num_authors")
    scale = dblp_paper_scale(num_authors)
    if num_papers is None:
        num_papers = scale["num_papers"]
    if num_associations is None:
        num_associations = scale["num_associations"]
    num_papers = check_positive_int(num_papers, "num_papers")
    num_associations = check_positive_int(num_associations, "num_associations")
    check_positive(author_exponent, "author_exponent")
    check_positive(paper_exponent, "paper_exponent")
    if num_associations > num_authors * num_papers:
        raise DatasetError(
            f"cannot place {num_associations} associations between {num_authors} authors "
            f"and {num_papers} papers"
        )

    rng = as_rng(seed)
    author_weights = _power_law_weights(num_authors, author_exponent, rng)
    paper_weights = _power_law_weights(num_papers, paper_exponent, rng)

    pairs: set = set()
    # Oversample in rounds; duplicate (author, paper) draws are discarded.
    remaining_rounds = 30
    while len(pairs) < num_associations and remaining_rounds > 0:
        remaining_rounds -= 1
        need = num_associations - len(pairs)
        draw = int(need * 1.2) + 16
        authors = rng.choice(num_authors, size=draw, p=author_weights)
        papers = rng.choice(num_papers, size=draw, p=paper_weights)
        for a, p in zip(authors.tolist(), papers.tolist()):
            pairs.add((a, p))
            if len(pairs) >= num_associations:
                break

    graph = BipartiteGraph(name=name)
    graph.add_left_nodes(f"a{i}" for i in range(num_authors))
    graph.add_right_nodes(f"p{j}" for j in range(num_papers))
    graph.add_associations((f"a{a}", f"p{p}") for a, p in pairs)
    return graph
