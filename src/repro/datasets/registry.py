"""Named dataset registry used by the examples and benchmark harnesses.

A single entry point, :func:`load_dataset`, returns a seeded instance of any
of the built-in synthetic datasets at one of three scales (``tiny``,
``small``, ``paper``).  The ``paper`` scale of ``dblp`` regenerates the full
1.29M-author configuration and is only intended for long benchmark runs.
"""

from __future__ import annotations

from typing import Callable, Dict, List

from repro.datasets.dblp_like import DBLP_PAPER_STATS, generate_dblp_like
from repro.datasets.movielens_like import generate_movie_ratings
from repro.datasets.pharmacy import generate_pharmacy_purchases
from repro.exceptions import DatasetError
from repro.graphs.bipartite import BipartiteGraph
from repro.utils.rng import RandomState

#: Number of left-side nodes used at each named scale.
_SCALES: Dict[str, Dict[str, int]] = {
    "dblp": {"tiny": 300, "small": 5_000, "medium": 50_000, "paper": DBLP_PAPER_STATS["num_authors"]},
    "pharmacy": {"tiny": 150, "small": 2_000, "medium": 20_000, "paper": 200_000},
    "movies": {"tiny": 200, "small": 3_000, "medium": 30_000, "paper": 300_000},
}


def _build_dblp(size: int, seed: RandomState) -> BipartiteGraph:
    return generate_dblp_like(num_authors=size, seed=seed)


def _build_pharmacy(size: int, seed: RandomState) -> BipartiteGraph:
    return generate_pharmacy_purchases(num_patients=size, num_drugs=max(20, size // 10), seed=seed)


def _build_movies(size: int, seed: RandomState) -> BipartiteGraph:
    return generate_movie_ratings(num_viewers=size, num_movies=max(30, size // 6), seed=seed)


_BUILDERS: Dict[str, Callable[[int, RandomState], BipartiteGraph]] = {
    "dblp": _build_dblp,
    "pharmacy": _build_pharmacy,
    "movies": _build_movies,
}


def available_datasets() -> List[str]:
    """Names accepted by :func:`load_dataset`."""
    return sorted(_BUILDERS)


def load_dataset(name: str = "dblp", scale: str = "small", seed: RandomState = 0) -> BipartiteGraph:
    """Build a named synthetic dataset at a named scale.

    Parameters
    ----------
    name:
        ``"dblp"``, ``"pharmacy"`` or ``"movies"``.
    scale:
        ``"tiny"`` (unit tests), ``"small"`` (examples), ``"medium"``
        (benchmarks) or ``"paper"`` (full evaluation scale).
    seed:
        Seed / generator for reproducibility.
    """
    if name not in _BUILDERS:
        raise DatasetError(f"unknown dataset {name!r}; available: {available_datasets()}")
    scales = _SCALES[name]
    if scale not in scales:
        raise DatasetError(f"unknown scale {scale!r} for {name!r}; available: {sorted(scales)}")
    return _BUILDERS[name](scales[scale], seed)
