"""Induced-subgraph utilities.

Phase 2 of the paper's pipeline answers aggregate queries on the *subgraphs
induced by each group level*; these helpers extract those subgraphs and count
their associations without materialising copies when only counts are needed.
"""

from __future__ import annotations

from typing import Hashable, Iterable, Optional, Set

from repro.graphs.bipartite import BipartiteGraph

Node = Hashable


def induced_subgraph(
    graph: BipartiteGraph,
    nodes: Iterable[Node],
    name: Optional[str] = None,
) -> BipartiteGraph:
    """Return the subgraph induced by ``nodes`` (taken from both sides).

    A node in ``nodes`` that is absent from ``graph`` is ignored.  An
    association survives iff *both* endpoints are in ``nodes``.
    """
    node_set: Set[Node] = set(nodes)
    sub = BipartiteGraph(name=name if name is not None else f"{graph.name}-induced")
    for node in graph.left_nodes():
        if node in node_set:
            sub.add_left_node(node, **graph.node_attributes(node))
    for node in graph.right_nodes():
        if node in node_set:
            sub.add_right_node(node, **graph.node_attributes(node))
    for left, right in graph.associations():
        if left in node_set and right in node_set:
            sub.add_association(left, right)
    return sub


def restrict_left(graph: BipartiteGraph, left_nodes: Iterable[Node], name: Optional[str] = None) -> BipartiteGraph:
    """Keep only the given left nodes (all right nodes are retained)."""
    keep = set(left_nodes)
    sub = BipartiteGraph(name=name if name is not None else f"{graph.name}-left-restricted")
    for node in graph.left_nodes():
        if node in keep:
            sub.add_left_node(node, **graph.node_attributes(node))
    for node in graph.right_nodes():
        sub.add_right_node(node, **graph.node_attributes(node))
    for left, right in graph.associations():
        if left in keep:
            sub.add_association(left, right)
    return sub


def restrict_right(graph: BipartiteGraph, right_nodes: Iterable[Node], name: Optional[str] = None) -> BipartiteGraph:
    """Keep only the given right nodes (all left nodes are retained)."""
    keep = set(right_nodes)
    sub = BipartiteGraph(name=name if name is not None else f"{graph.name}-right-restricted")
    for node in graph.left_nodes():
        sub.add_left_node(node, **graph.node_attributes(node))
    for node in graph.right_nodes():
        if node in keep:
            sub.add_right_node(node, **graph.node_attributes(node))
    for left, right in graph.associations():
        if right in keep:
            sub.add_association(left, right)
    return sub


def subgraph_association_count(graph: BipartiteGraph, nodes: Iterable[Node]) -> int:
    """Count associations whose *both* endpoints lie in ``nodes``.

    This is the true answer of the paper's count query restricted to the
    subgraph induced by a group, computed without building the subgraph.
    Each association is counted once, from its left endpoint.
    """
    from repro.graphs.bipartite import Side

    node_set: Set[Node] = set(nodes)
    count = 0
    for node in node_set:
        if not graph.has_node(node) or graph.side_of(node) is not Side.LEFT:
            continue
        count += sum(1 for nb in graph.neighbors(node) if nb in node_set)
    return count
