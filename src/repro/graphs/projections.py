"""One-mode projections of bipartite association graphs.

Projections are not used by the disclosure pipeline itself but are provided
as part of the substrate: published noisy graphs are frequently analysed via
their co-association projections (e.g. co-authorship from author-paper data),
and the examples use them to illustrate downstream utility.
"""

from __future__ import annotations

from itertools import combinations
from typing import Hashable

import networkx as nx

from repro.graphs.bipartite import BipartiteGraph, Side

Node = Hashable


def _project(graph: BipartiteGraph, side: Side) -> nx.Graph:
    """Project onto ``side``: connect two nodes that share a neighbour.

    Edge weights count the number of shared neighbours (e.g. the number of
    co-authored papers in a DBLP-style graph).
    """
    side = Side(side)
    projection = nx.Graph(name=f"{graph.name}-{side.value}-projection")
    nodes = list(graph.left_nodes() if side is Side.LEFT else graph.right_nodes())
    projection.add_nodes_from(nodes)
    anchor_nodes = graph.right_nodes() if side is Side.LEFT else graph.left_nodes()
    for anchor in anchor_nodes:
        neighbours = sorted(graph.neighbors(anchor), key=str)
        for u, v in combinations(neighbours, 2):
            if projection.has_edge(u, v):
                projection[u][v]["weight"] += 1
            else:
                projection.add_edge(u, v, weight=1)
    return projection


def project_left(graph: BipartiteGraph) -> nx.Graph:
    """Project onto the left node set (e.g. author co-authorship graph)."""
    return _project(graph, Side.LEFT)


def project_right(graph: BipartiteGraph) -> nx.Graph:
    """Project onto the right node set (e.g. papers sharing an author)."""
    return _project(graph, Side.RIGHT)
