"""The :class:`BipartiteGraph` data structure.

Design notes
------------
The structure is a thin, explicit adjacency representation:

* two node dictionaries (``left``/``right``), each mapping a hashable node id
  to an attribute dictionary;
* two adjacency dictionaries mapping a node id to the ``set`` of its
  neighbours on the opposite side.

Both directions are stored so that induced-subgraph extraction and degree
queries are symmetric and O(degree).  Nodes may exist with no associations
(an author with no papers still counts toward group sizes), which matters for
the group-privacy semantics: a *group* is a set of nodes, and removing a
group removes the nodes **and** every association incident to them.

The class is deliberately free of any privacy logic — it is the substrate the
disclosure pipeline operates on.
"""

from __future__ import annotations

import enum
from collections import deque
from typing import (
    TYPE_CHECKING,
    Deque,
    Dict,
    Hashable,
    Iterable,
    Iterator,
    List,
    Mapping,
    NamedTuple,
    Optional,
    Set,
    Tuple,
)

from repro.exceptions import (
    DuplicateNodeError,
    EdgeNotFoundError,
    NodeNotFoundError,
    ValidationError,
)

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.graphs.arrays import GraphArrays

Node = Hashable
Association = Tuple[Node, Node]


#: Default bound on the in-memory mutation log.  Past this many structural
#: mutations without a recompile, :meth:`BipartiteGraph.mutations_since` can
#: no longer reconstruct the delta and incremental consumers fall back to a
#: full rebuild — exactly what they would do anyway once the delta stops
#: being "small".
DEFAULT_MUTATION_LOG_LIMIT = 4096


class Mutation(NamedTuple):
    """One structural mutation, keyed by the revision it produced.

    ``op`` is one of ``"add_node"``, ``"remove_node"``, ``"add_edge"``,
    ``"remove_edge"``.  For node records ``a`` is the node id and ``b`` the
    :class:`Side` value; ``neighbors`` carries the neighbour ids a removed
    node was still attached to (the edges that died with it).  For edge
    records ``a``/``b`` are the left/right endpoints.

    Exactly one record exists per revision: every structural mutation bumps
    the revision once and appends one record, so the log's revisions are
    contiguous and a consumer holding arrays at revision ``r`` can replay
    precisely the records with revision ``> r``.
    """

    revision: int
    op: str
    a: "Node"
    b: object
    neighbors: Tuple["Node", ...] = ()


class Side(str, enum.Enum):
    """Identifies one of the two node sets of a bipartite graph."""

    LEFT = "left"
    RIGHT = "right"

    def other(self) -> "Side":
        """Return the opposite side."""
        return Side.RIGHT if self is Side.LEFT else Side.LEFT


class BipartiteGraph:
    """A bipartite association graph.

    Parameters
    ----------
    name:
        Optional human-readable name used in summaries and releases.

    Examples
    --------
    >>> g = BipartiteGraph(name="pharmacy")
    >>> g.add_left_node("bob")
    >>> g.add_right_node("insulin")
    >>> g.add_association("bob", "insulin")
    >>> g.num_associations()
    1
    """

    def __init__(
        self,
        name: str = "bipartite-graph",
        mutation_log_limit: int = DEFAULT_MUTATION_LOG_LIMIT,
    ):
        self.name = str(name)
        self._left: Dict[Node, dict] = {}
        self._right: Dict[Node, dict] = {}
        self._adj_left: Dict[Node, Set[Node]] = {}
        self._adj_right: Dict[Node, Set[Node]] = {}
        self._num_associations = 0
        self._revision = 0
        self._arrays: Optional["GraphArrays"] = None
        self._mutation_log: Deque[Mutation] = deque(maxlen=int(mutation_log_limit))

    def __getstate__(self) -> dict:
        # The compiled array view holds weakrefs (not picklable); drop it and
        # let the unpickled graph recompile lazily on first use, so graphs can
        # cross process boundaries for the parallel executors.  The mutation
        # log is copied (never shared) so the unpickled twin evolves its own
        # history.
        state = self.__dict__.copy()
        state["_arrays"] = None
        state["_mutation_log"] = deque(self._mutation_log, maxlen=self._mutation_log.maxlen)
        return state

    def __setstate__(self, state: dict) -> None:
        # Graphs pickled by older versions predate the mutation log.
        state.setdefault("_mutation_log", deque(maxlen=DEFAULT_MUTATION_LOG_LIMIT))
        self.__dict__.update(state)

    # ------------------------------------------------------------------
    # Mutation tracking and the compiled array view
    # ------------------------------------------------------------------
    @property
    def revision(self) -> int:
        """Monotonic counter incremented by every structural mutation.

        Attribute-only updates (merging attrs into an existing node) do not
        bump the revision: the compiled array view only reflects structure.
        """
        return self._revision

    def _mutated(self, op: str, a: Node, b: object, neighbors: Tuple[Node, ...] = ()) -> None:
        """Record a structural mutation, staling any compiled arrays.

        Bumps the revision once and appends exactly one :class:`Mutation`
        record, so log revisions stay contiguous.  The stale compiled view is
        *kept* (not dropped): :meth:`arrays` uses it as the base for an
        incremental :meth:`~repro.graphs.arrays.GraphArrays.delta_compile`,
        and :meth:`cached_arrays` still reports it as absent because its
        revision no longer matches.
        """
        self._revision += 1
        self._mutation_log.append(Mutation(self._revision, op, a, b, neighbors))

    def mutations_since(self, revision: int) -> Optional[List[Mutation]]:
        """The mutation records applied after ``revision``, oldest first.

        Returns ``[]`` when the graph is still at ``revision``, and ``None``
        when the delta can no longer be reconstructed — the bounded log was
        truncated past ``revision``, or ``revision`` does not belong to this
        graph's history.  ``None`` tells incremental consumers to fall back
        to a full rebuild.
        """
        revision = int(revision)
        if revision == self._revision:
            return []
        if revision > self._revision or revision < 0:
            return None
        log = self._mutation_log
        if not log or log[0].revision > revision + 1:
            return None
        # Records are contiguous (one per revision), so the delta is a slice.
        start = revision + 1 - log[0].revision
        return [log[i] for i in range(start, len(log))]

    def arrays(self) -> "GraphArrays":
        """The compiled :class:`~repro.graphs.arrays.GraphArrays` view.

        Compiled lazily and cached; any structural mutation stales the cache,
        so the returned view always matches the current graph.  When a stale
        view and a covering mutation log are available, the recompile is
        incremental (:meth:`GraphArrays.delta_compile`) — it patches the CSR
        arrays instead of rebuilding them, falling back to a full
        :meth:`GraphArrays.compile` for large deltas or after log truncation.
        """
        from repro.graphs.arrays import GraphArrays

        if self._arrays is None:
            self._arrays = GraphArrays.compile(self)
        elif self._arrays.revision != self._revision:
            self._arrays = GraphArrays.delta_compile(self._arrays, self)
        return self._arrays

    def cached_arrays(self) -> Optional["GraphArrays"]:
        """The compiled view if present *and* fresh, else ``None``.

        Fast-path helpers use this to vectorise opportunistically: the
        vectorized engine compiles arrays up front, after which every
        downstream aggregate sees them here; the reference engine never
        compiles, so it keeps the pure-Python code paths.
        """
        if self._arrays is not None and self._arrays.revision == self._revision:
            return self._arrays
        return None

    # ------------------------------------------------------------------
    # Node management
    # ------------------------------------------------------------------
    def add_left_node(self, node: Node, **attrs) -> None:
        """Add a node to the left side; merging attributes if it exists there.

        Raises :class:`DuplicateNodeError` if the node already exists on the
        *right* side (node ids must be unique across the whole graph so that
        partitions of the node universe are unambiguous).
        """
        self._add_node(node, Side.LEFT, attrs)

    def add_right_node(self, node: Node, **attrs) -> None:
        """Add a node to the right side (see :meth:`add_left_node`)."""
        self._add_node(node, Side.RIGHT, attrs)

    def add_node(self, node: Node, side: Side, **attrs) -> None:
        """Add a node to the given ``side``."""
        self._add_node(node, Side(side), attrs)

    def _add_node(self, node: Node, side: Side, attrs: Mapping) -> None:
        if node is None:
            raise ValidationError("node id must not be None")
        nodes, other_nodes = (
            (self._left, self._right) if side is Side.LEFT else (self._right, self._left)
        )
        if node in other_nodes:
            raise DuplicateNodeError(node)
        if node in nodes:
            nodes[node].update(attrs)
            return
        nodes[node] = dict(attrs)
        adj = self._adj_left if side is Side.LEFT else self._adj_right
        adj[node] = set()
        self._mutated("add_node", node, side)

    def remove_node(self, node: Node) -> None:
        """Remove a node and every association incident to it."""
        side = self.side_of(node)
        adj, other_adj = (
            (self._adj_left, self._adj_right) if side is Side.LEFT else (self._adj_right, self._adj_left)
        )
        nodes = self._left if side is Side.LEFT else self._right
        neighbours = adj.pop(node)
        for nb in neighbours:
            other_adj[nb].discard(node)
        self._num_associations -= len(neighbours)
        del nodes[node]
        # One record (and one revision) per removal; the record carries the
        # edges that died with the node so a replay can mark their endpoints.
        self._mutated("remove_node", node, side, tuple(neighbours))

    def has_node(self, node: Node) -> bool:
        """Return ``True`` if ``node`` exists on either side."""
        return node in self._left or node in self._right

    def side_of(self, node: Node) -> Side:
        """Return the :class:`Side` a node belongs to.

        Raises :class:`NodeNotFoundError` if the node is not in the graph.
        """
        if node in self._left:
            return Side.LEFT
        if node in self._right:
            return Side.RIGHT
        raise NodeNotFoundError(node)

    def node_attributes(self, node: Node) -> dict:
        """Return the (mutable) attribute dictionary of ``node``."""
        if node in self._left:
            return self._left[node]
        if node in self._right:
            return self._right[node]
        raise NodeNotFoundError(node)

    # ------------------------------------------------------------------
    # Association management
    # ------------------------------------------------------------------
    def add_association(self, left: Node, right: Node, auto_add: bool = False) -> bool:
        """Add the association ``(left, right)``.

        Parameters
        ----------
        left, right:
            Node ids.  ``left`` must be a left-side node and ``right`` a
            right-side node (or missing, when ``auto_add`` is true).
        auto_add:
            When true, missing endpoints are created on the appropriate side.

        Returns
        -------
        bool
            ``True`` if a new association was added, ``False`` if it already
            existed (associations are simple, i.e. not multi-edges).
        """
        if left not in self._left:
            if auto_add and left not in self._right:
                self.add_left_node(left)
            else:
                raise NodeNotFoundError(left, Side.LEFT)
        if right not in self._right:
            if auto_add and right not in self._left:
                self.add_right_node(right)
            else:
                raise NodeNotFoundError(right, Side.RIGHT)
        if right in self._adj_left[left]:
            return False
        self._adj_left[left].add(right)
        self._adj_right[right].add(left)
        self._num_associations += 1
        self._mutated("add_edge", left, right)
        return True

    def remove_association(self, left: Node, right: Node) -> None:
        """Remove the association ``(left, right)``.

        Raises :class:`EdgeNotFoundError` if it does not exist.
        """
        if left not in self._adj_left or right not in self._adj_left[left]:
            raise EdgeNotFoundError(left, right)
        self._adj_left[left].remove(right)
        self._adj_right[right].remove(left)
        self._num_associations -= 1
        self._mutated("remove_edge", left, right)

    def has_association(self, left: Node, right: Node) -> bool:
        """Return ``True`` if the association ``(left, right)`` exists."""
        return left in self._adj_left and right in self._adj_left[left]

    # ------------------------------------------------------------------
    # Views and counts
    # ------------------------------------------------------------------
    def left_nodes(self) -> Iterator[Node]:
        """Iterate over left-side node ids."""
        return iter(self._left)

    def right_nodes(self) -> Iterator[Node]:
        """Iterate over right-side node ids."""
        return iter(self._right)

    def nodes(self, side: Optional[Side] = None) -> Iterator[Node]:
        """Iterate over node ids, optionally restricted to one side."""
        if side is None:
            yield from self._left
            yield from self._right
        elif Side(side) is Side.LEFT:
            yield from self._left
        else:
            yield from self._right

    def associations(self) -> Iterator[Association]:
        """Iterate over all associations as ``(left, right)`` pairs."""
        for left, neighbours in self._adj_left.items():
            for right in neighbours:
                yield (left, right)

    def neighbors(self, node: Node) -> Set[Node]:
        """Return a copy of the neighbour set of ``node``."""
        if node in self._adj_left:
            return set(self._adj_left[node])
        if node in self._adj_right:
            return set(self._adj_right[node])
        raise NodeNotFoundError(node)

    def degree(self, node: Node) -> int:
        """Return the number of associations incident to ``node``."""
        if node in self._adj_left:
            return len(self._adj_left[node])
        if node in self._adj_right:
            return len(self._adj_right[node])
        raise NodeNotFoundError(node)

    def num_left(self) -> int:
        """Number of left-side nodes."""
        return len(self._left)

    def num_right(self) -> int:
        """Number of right-side nodes."""
        return len(self._right)

    def num_nodes(self) -> int:
        """Total number of nodes on both sides."""
        return len(self._left) + len(self._right)

    def num_associations(self) -> int:
        """Total number of associations (edges)."""
        return self._num_associations

    def __len__(self) -> int:
        return self.num_nodes()

    def __contains__(self, node: Node) -> bool:
        return self.has_node(node)

    def __repr__(self) -> str:  # pragma: no cover - trivial
        return (
            f"BipartiteGraph(name={self.name!r}, left={self.num_left()}, "
            f"right={self.num_right()}, associations={self.num_associations()})"
        )

    # ------------------------------------------------------------------
    # Bulk helpers
    # ------------------------------------------------------------------
    def add_left_nodes(self, nodes: Iterable[Node]) -> None:
        """Add many left-side nodes without attributes."""
        for node in nodes:
            self.add_left_node(node)

    def add_right_nodes(self, nodes: Iterable[Node]) -> None:
        """Add many right-side nodes without attributes."""
        for node in nodes:
            self.add_right_node(node)

    def add_associations(self, pairs: Iterable[Association], auto_add: bool = False) -> int:
        """Add many associations; return how many were new."""
        added = 0
        for left, right in pairs:
            if self.add_association(left, right, auto_add=auto_add):
                added += 1
        return added

    def copy(self, name: Optional[str] = None) -> "BipartiteGraph":
        """Return a deep structural copy (attribute dicts are shallow-copied).

        The clone shares **no** mutable state with the original: it starts
        with its own empty mutation log, its own revision counter, and no
        compiled :class:`~repro.graphs.arrays.GraphArrays` view, so mutating
        either graph can never leak into the other
        (``tests/test_graphs_bipartite.py::TestCopyIsolation``).
        """
        clone = BipartiteGraph(
            name=name if name is not None else self.name,
            mutation_log_limit=self._mutation_log.maxlen or DEFAULT_MUTATION_LOG_LIMIT,
        )
        for node, attrs in self._left.items():
            clone.add_left_node(node, **attrs)
        for node, attrs in self._right.items():
            clone.add_right_node(node, **attrs)
        clone.add_associations(self.associations())
        return clone

    def association_count_between(self, left_nodes: Iterable[Node], right_nodes: Iterable[Node]) -> int:
        """Count associations with one endpoint in each of the given sets.

        Nodes that are absent from the graph are silently ignored (a group
        definition may legitimately reference nodes that have since been
        removed).  The count iterates from the smaller side of the
        restriction for efficiency.
        """
        left_set = {n for n in left_nodes if n in self._adj_left}
        right_set = {n for n in right_nodes if n in self._adj_right}
        if not left_set or not right_set:
            return 0
        # Iterate from whichever restricted side has fewer incident edges.
        left_incident = sum(len(self._adj_left[n]) for n in left_set)
        right_incident = sum(len(self._adj_right[n]) for n in right_set)
        count = 0
        if left_incident <= right_incident:
            for node in left_set:
                neighbours = self._adj_left[node]
                if len(neighbours) < len(right_set):
                    count += sum(1 for nb in neighbours if nb in right_set)
                else:
                    count += sum(1 for nb in right_set if nb in neighbours)
        else:
            for node in right_set:
                neighbours = self._adj_right[node]
                if len(neighbours) < len(left_set):
                    count += sum(1 for nb in neighbours if nb in left_set)
                else:
                    count += sum(1 for nb in left_set if nb in neighbours)
        return count

    def associations_incident_to(self, nodes: Iterable[Node]) -> int:
        """Count associations with **at least one** endpoint in ``nodes``.

        This is exactly the number of associations that disappear when the
        node set ``nodes`` (a *group* in the paper's sense) is removed from
        the graph, and is therefore the quantity that drives the group-level
        sensitivity of the association-count query.
        """
        node_set = set(nodes)
        count = 0
        seen_pairs = set()
        for node in node_set:
            if node in self._adj_left:
                for nb in self._adj_left[node]:
                    pair = (node, nb)
                    if pair not in seen_pairs:
                        seen_pairs.add(pair)
                        count += 1
            elif node in self._adj_right:
                for nb in self._adj_right[node]:
                    pair = (nb, node)
                    if pair not in seen_pairs:
                        seen_pairs.add(pair)
                        count += 1
        return count

    def remove_nodes(self, nodes: Iterable[Node]) -> None:
        """Remove every node in ``nodes`` (and incident associations)."""
        for node in list(nodes):
            if self.has_node(node):
                self.remove_node(node)

    def validate(self) -> None:
        """Check internal consistency; raises :class:`ValidationError` on corruption.

        Intended for tests and for loaders that construct graphs from
        untrusted files.
        """
        total = 0
        for left, neighbours in self._adj_left.items():
            if left not in self._left:
                raise ValidationError(f"adjacency references unknown left node {left!r}")
            for right in neighbours:
                if right not in self._right:
                    raise ValidationError(f"adjacency references unknown right node {right!r}")
                if left not in self._adj_right.get(right, ()):
                    raise ValidationError(f"asymmetric adjacency for ({left!r}, {right!r})")
                total += 1
        for right, neighbours in self._adj_right.items():
            for left in neighbours:
                if right not in self._adj_left.get(left, ()):
                    raise ValidationError(f"asymmetric adjacency for ({left!r}, {right!r})")
        if total != self._num_associations:
            raise ValidationError(
                f"association counter {self._num_associations} does not match adjacency ({total})"
            )
