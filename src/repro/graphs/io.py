"""Reading and writing bipartite association graphs.

Two formats are supported:

* **edge list** — one ``left<TAB>right`` pair per line, the format the DBLP
  dump is usually converted to; isolated nodes can be declared with
  ``#left <node>`` / ``#right <node>`` directive lines;
* **JSON** — a structured document that round-trips node attributes.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Union

from repro.exceptions import ValidationError
from repro.graphs.bipartite import BipartiteGraph

PathLike = Union[str, Path]


def write_edge_list(graph: BipartiteGraph, path: PathLike, delimiter: str = "\t") -> Path:
    """Write the graph as an edge list (plus directives for isolated nodes)."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    with path.open("w", encoding="utf-8") as handle:
        for node in graph.left_nodes():
            if graph.degree(node) == 0:
                handle.write(f"#left{delimiter}{node}\n")
        for node in graph.right_nodes():
            if graph.degree(node) == 0:
                handle.write(f"#right{delimiter}{node}\n")
        for left, right in graph.associations():
            handle.write(f"{left}{delimiter}{right}\n")
    return path


def read_edge_list(path: PathLike, delimiter: str = "\t", name: str = "bipartite-graph") -> BipartiteGraph:
    """Read a graph written by :func:`write_edge_list` (node ids become ``str``)."""
    path = Path(path)
    graph = BipartiteGraph(name=name)
    with path.open("r", encoding="utf-8") as handle:
        for lineno, raw in enumerate(handle, start=1):
            line = raw.rstrip("\n")
            if not line.strip():
                continue
            parts = line.split(delimiter)
            if parts[0] == "#left" and len(parts) == 2:
                graph.add_left_node(parts[1])
                continue
            if parts[0] == "#right" and len(parts) == 2:
                graph.add_right_node(parts[1])
                continue
            if len(parts) != 2:
                raise ValidationError(f"{path}:{lineno}: expected 2 fields, got {len(parts)}")
            graph.add_association(parts[0], parts[1], auto_add=True)
    return graph


def write_json(graph: BipartiteGraph, path: PathLike) -> Path:
    """Write the graph (with node attributes) as a JSON document."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    document = {
        "name": graph.name,
        "left": {str(n): graph.node_attributes(n) for n in graph.left_nodes()},
        "right": {str(n): graph.node_attributes(n) for n in graph.right_nodes()},
        "associations": [[str(l), str(r)] for l, r in graph.associations()],
    }
    with path.open("w", encoding="utf-8") as handle:
        json.dump(document, handle, indent=2, sort_keys=True)
        handle.write("\n")
    return path


def read_json(path: PathLike) -> BipartiteGraph:
    """Read a graph written by :func:`write_json`."""
    path = Path(path)
    with path.open("r", encoding="utf-8") as handle:
        document = json.load(handle)
    for key in ("name", "left", "right", "associations"):
        if key not in document:
            raise ValidationError(f"graph JSON is missing key {key!r}")
    graph = BipartiteGraph(name=document["name"])
    for node, attrs in document["left"].items():
        graph.add_left_node(node, **attrs)
    for node, attrs in document["right"].items():
        graph.add_right_node(node, **attrs)
    for left, right in document["associations"]:
        graph.add_association(left, right)
    return graph
