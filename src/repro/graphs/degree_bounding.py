"""Degree bounding (edge clipping) pre-processing.

Group-level sensitivities are data-dependent, but the *individual* level of
the hierarchy bottoms out at the maximum node degree: one prolific author (or
one blockbuster drug) forces every fine-grained release to carry noise
proportional to their degree.  The standard remedy in differentially private
graph analysis is to **clip degrees** before release: each node keeps at most
``bound`` of its associations and the publisher calibrates to the (now
enforced) bound instead of the observed maximum.

Clipping is a graph-to-graph transformation performed *before* any mechanism
runs, so it does not consume privacy budget; it introduces a deterministic
bias (dropped associations) that trades against the variance reduction of the
smaller sensitivity.  :func:`clipping_error` quantifies that bias so callers
can choose the bound deliberately.
"""

from __future__ import annotations

from typing import Hashable, Optional

from repro.exceptions import ValidationError
from repro.graphs.bipartite import BipartiteGraph, Side
from repro.utils.rng import RandomState, as_rng
from repro.utils.validation import check_positive_int

Node = Hashable


def cap_degrees(
    graph: BipartiteGraph,
    bound: int,
    side: Optional[Side] = None,
    rng: RandomState = None,
    name: Optional[str] = None,
) -> BipartiteGraph:
    """Return a copy of ``graph`` in which no node (on ``side``) exceeds ``bound``.

    Parameters
    ----------
    graph:
        The input association graph (left untouched).
    bound:
        Maximum number of associations a node may keep.
    side:
        Clip only the given side's degrees (``None`` = both sides).  Clipping
        both sides is order-dependent; associations are processed in a
        randomly permuted order so no node systematically loses its
        lexicographically-last neighbours.
    rng:
        Seed / generator driving the permutation (clipping itself is a
        pre-processing step and consumes no privacy budget).
    name:
        Name of the returned graph (defaults to ``"<name>-capped<bound>"``).

    Returns
    -------
    BipartiteGraph
        A new graph containing every node of the input and a subset of its
        associations such that every clipped node's degree is at most
        ``bound``.
    """
    bound = check_positive_int(bound, "bound")
    if side is not None:
        side = Side(side)
    generator = as_rng(rng)

    clipped = BipartiteGraph(name=name if name is not None else f"{graph.name}-capped{bound}")
    for node in graph.left_nodes():
        clipped.add_left_node(node, **graph.node_attributes(node))
    for node in graph.right_nodes():
        clipped.add_right_node(node, **graph.node_attributes(node))

    associations = list(graph.associations())
    order = generator.permutation(len(associations))
    kept_degree = {}
    for index in order:
        left, right = associations[index]
        left_full = kept_degree.get(left, 0) >= bound and side in (None, Side.LEFT)
        right_full = kept_degree.get(right, 0) >= bound and side in (None, Side.RIGHT)
        if left_full or right_full:
            continue
        clipped.add_association(left, right)
        kept_degree[left] = kept_degree.get(left, 0) + 1
        kept_degree[right] = kept_degree.get(right, 0) + 1
    return clipped


def clipping_error(original: BipartiteGraph, clipped: BipartiteGraph) -> dict:
    """Quantify the bias introduced by :func:`cap_degrees`.

    Returns a dictionary with the number and fraction of associations dropped
    and the resulting maximum degrees, so a publisher can weigh the clipping
    bias against the noise reduction of the smaller sensitivity.
    """
    dropped = original.num_associations() - clipped.num_associations()
    if dropped < 0:
        raise ValidationError("clipped graph has more associations than the original")
    total = original.num_associations()
    max_degree_original = max((original.degree(n) for n in original.nodes()), default=0)
    max_degree_clipped = max((clipped.degree(n) for n in clipped.nodes()), default=0)
    return {
        "dropped_associations": dropped,
        "dropped_fraction": (dropped / total) if total else 0.0,
        "max_degree_before": max_degree_original,
        "max_degree_after": max_degree_clipped,
    }
