"""Aggregate statistics over bipartite association graphs.

These are the *true* (un-noised) answers that the disclosure pipeline
perturbs; they are also used by the evaluation harness to compute relative
error rates.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Hashable, Iterable, List, Optional

import numpy as np

from repro.graphs.bipartite import BipartiteGraph, Side

Node = Hashable


def association_count(graph: BipartiteGraph) -> int:
    """Total number of associations in the graph (the paper's count query)."""
    return graph.num_associations()


def cross_association_count(
    graph: BipartiteGraph, left_nodes: Iterable[Node], right_nodes: Iterable[Node]
) -> int:
    """Number of associations between the two given node sets."""
    return graph.association_count_between(left_nodes, right_nodes)


def degree_sequence(graph: BipartiteGraph, side: Side = Side.LEFT) -> np.ndarray:
    """Degrees of all nodes on ``side`` as a NumPy integer array."""
    side = Side(side)
    nodes = graph.left_nodes() if side is Side.LEFT else graph.right_nodes()
    return np.array([graph.degree(n) for n in nodes], dtype=np.int64)


def degree_histogram(graph: BipartiteGraph, side: Side = Side.LEFT) -> Dict[int, int]:
    """Histogram mapping degree value -> number of nodes with that degree."""
    degrees = degree_sequence(graph, side)
    histogram: Dict[int, int] = {}
    for value in degrees.tolist():
        histogram[value] = histogram.get(value, 0) + 1
    return histogram


def density(graph: BipartiteGraph) -> float:
    """Fraction of possible left-right associations that are present."""
    possible = graph.num_left() * graph.num_right()
    if possible == 0:
        return 0.0
    return graph.num_associations() / possible


@dataclass
class GraphSummary:
    """A compact description of a bipartite association graph."""

    name: str
    num_left: int
    num_right: int
    num_associations: int
    density: float
    max_left_degree: int
    max_right_degree: int
    mean_left_degree: float
    mean_right_degree: float
    isolated_left: int
    isolated_right: int
    extra: Dict[str, float] = field(default_factory=dict)

    def to_dict(self) -> dict:
        """Return a JSON-serialisable dictionary."""
        return {
            "name": self.name,
            "num_left": self.num_left,
            "num_right": self.num_right,
            "num_associations": self.num_associations,
            "density": self.density,
            "max_left_degree": self.max_left_degree,
            "max_right_degree": self.max_right_degree,
            "mean_left_degree": self.mean_left_degree,
            "mean_right_degree": self.mean_right_degree,
            "isolated_left": self.isolated_left,
            "isolated_right": self.isolated_right,
            "extra": dict(self.extra),
        }


def summarize(graph: BipartiteGraph) -> GraphSummary:
    """Compute a :class:`GraphSummary` for ``graph``."""
    left_degrees = degree_sequence(graph, Side.LEFT)
    right_degrees = degree_sequence(graph, Side.RIGHT)

    def _max(arr: np.ndarray) -> int:
        return int(arr.max()) if arr.size else 0

    def _mean(arr: np.ndarray) -> float:
        return float(arr.mean()) if arr.size else 0.0

    def _isolated(arr: np.ndarray) -> int:
        return int((arr == 0).sum()) if arr.size else 0

    return GraphSummary(
        name=graph.name,
        num_left=graph.num_left(),
        num_right=graph.num_right(),
        num_associations=graph.num_associations(),
        density=density(graph),
        max_left_degree=_max(left_degrees),
        max_right_degree=_max(right_degrees),
        mean_left_degree=_mean(left_degrees),
        mean_right_degree=_mean(right_degrees),
        isolated_left=_isolated(left_degrees),
        isolated_right=_isolated(right_degrees),
    )


def top_degree_nodes(graph: BipartiteGraph, side: Side, k: int) -> List[Node]:
    """Return up to ``k`` node ids with the highest degree on ``side``."""
    side = Side(side)
    nodes = list(graph.left_nodes() if side is Side.LEFT else graph.right_nodes())
    nodes.sort(key=lambda n: (-graph.degree(n), str(n)))
    return nodes[: max(k, 0)]
