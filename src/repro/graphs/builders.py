"""Constructors that build :class:`BipartiteGraph` from other representations."""

from __future__ import annotations

from typing import Hashable, Iterable, Optional, Sequence, Tuple

import networkx as nx
import numpy as np

from repro.exceptions import ValidationError
from repro.graphs.bipartite import BipartiteGraph, Side

Node = Hashable


def from_association_list(
    pairs: Iterable[Tuple[Node, Node]],
    name: str = "bipartite-graph",
    left_nodes: Optional[Iterable[Node]] = None,
    right_nodes: Optional[Iterable[Node]] = None,
) -> BipartiteGraph:
    """Build a graph from an iterable of ``(left, right)`` association pairs.

    Endpoints are created on demand.  ``left_nodes`` / ``right_nodes`` may be
    provided to register isolated nodes (entities with no associations), which
    matter for group sizes.
    """
    graph = BipartiteGraph(name=name)
    if left_nodes is not None:
        graph.add_left_nodes(left_nodes)
    if right_nodes is not None:
        graph.add_right_nodes(right_nodes)
    graph.add_associations(pairs, auto_add=True)
    return graph


def from_biadjacency(
    matrix: np.ndarray,
    left_labels: Optional[Sequence[Node]] = None,
    right_labels: Optional[Sequence[Node]] = None,
    name: str = "bipartite-graph",
) -> BipartiteGraph:
    """Build a graph from a dense 0/1 biadjacency matrix.

    ``matrix[i, j] != 0`` means left node ``i`` is associated with right node
    ``j``.  Labels default to ``"L{i}"`` and ``"R{j}"``.
    """
    matrix = np.asarray(matrix)
    if matrix.ndim != 2:
        raise ValidationError(f"biadjacency matrix must be 2-D, got shape {matrix.shape}")
    n_left, n_right = matrix.shape
    if left_labels is None:
        left_labels = [f"L{i}" for i in range(n_left)]
    if right_labels is None:
        right_labels = [f"R{j}" for j in range(n_right)]
    if len(left_labels) != n_left or len(right_labels) != n_right:
        raise ValidationError("label lengths must match matrix dimensions")
    graph = BipartiteGraph(name=name)
    graph.add_left_nodes(left_labels)
    graph.add_right_nodes(right_labels)
    rows, cols = np.nonzero(matrix)
    for i, j in zip(rows.tolist(), cols.tolist()):
        graph.add_association(left_labels[i], right_labels[j])
    return graph


def to_networkx(graph: BipartiteGraph) -> nx.Graph:
    """Convert to a :class:`networkx.Graph` with ``bipartite`` node attributes.

    Left nodes get ``bipartite=0`` and right nodes ``bipartite=1``, following
    the NetworkX bipartite convention, so the result can be fed directly to
    ``networkx.algorithms.bipartite`` functions.
    """
    nxg = nx.Graph(name=graph.name)
    for node in graph.left_nodes():
        nxg.add_node(node, bipartite=0, **graph.node_attributes(node))
    for node in graph.right_nodes():
        nxg.add_node(node, bipartite=1, **graph.node_attributes(node))
    nxg.add_edges_from(graph.associations())
    return nxg


def from_networkx(nxg: nx.Graph, name: Optional[str] = None) -> BipartiteGraph:
    """Convert a NetworkX bipartite graph (``bipartite`` attribute = 0/1).

    Raises :class:`ValidationError` if a node lacks the ``bipartite``
    attribute or an edge connects two nodes on the same side.
    """
    graph = BipartiteGraph(name=name if name is not None else nxg.graph.get("name", "bipartite-graph"))
    for node, data in nxg.nodes(data=True):
        if "bipartite" not in data:
            raise ValidationError(f"node {node!r} lacks a 'bipartite' attribute")
        attrs = {k: v for k, v in data.items() if k != "bipartite"}
        if data["bipartite"] == 0:
            graph.add_left_node(node, **attrs)
        elif data["bipartite"] == 1:
            graph.add_right_node(node, **attrs)
        else:
            raise ValidationError(f"node {node!r} has invalid bipartite value {data['bipartite']!r}")
    for u, v in nxg.edges():
        u_side = graph.side_of(u)
        v_side = graph.side_of(v)
        if u_side == v_side:
            raise ValidationError(f"edge ({u!r}, {v!r}) connects two {u_side.value} nodes")
        if u_side is Side.LEFT:
            graph.add_association(u, v)
        else:
            graph.add_association(v, u)
    return graph
