"""Compiled array view of a :class:`~repro.graphs.bipartite.BipartiteGraph`.

The dict-of-set adjacency of :class:`BipartiteGraph` is the right structure
for incremental mutation, but every aggregate query over it pays an
interpreter-loop cost per node or per edge.  :class:`GraphArrays` compiles
the graph once into contiguous NumPy arrays — CSR-style edge arrays, dense
node index maps and per-node degree vectors — so that whole workloads can be
answered with ``np.bincount``/segment-sum instead of per-group set iteration.

Layout
------
* Left nodes receive local indices ``0 .. num_left - 1`` in the graph's
  insertion order; right nodes receive ``0 .. num_right - 1`` likewise.
  The *global* index space places the left block first: a right node with
  local index ``j`` has global index ``num_left + j``.
* Edges are stored in COO form (``edge_left``/``edge_right``, one entry per
  association) sorted by ``(left index, right index)``, together with a CSR
  row pointer ``left_indptr`` over the left side, so both flat per-edge
  scans and per-node neighbour slices are O(1) to obtain.

Staleness
---------
A compiled view is only valid for the graph revision it was built from.
:meth:`GraphArrays.is_fresh` compares the stored revision against the
graph's mutation counter; :meth:`BipartiteGraph.arrays` recompiles
automatically whenever the graph has mutated since the last compile, so
callers can never observe stale arrays (see ``tests/test_graphs_arrays.py``).
"""

from __future__ import annotations

import weakref
from typing import TYPE_CHECKING, Dict, Hashable, Iterable, List, Optional, Sequence, Tuple

import numpy as np

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.graphs.bipartite import BipartiteGraph
    from repro.grouping.partition import Partition

Node = Hashable

#: Sentinel group code for nodes not covered by a partition.
NO_GROUP = -1

#: :meth:`GraphArrays.delta_compile` falls back to a full compile when the
#: mutation delta exceeds this fraction of the old view's edge count ...
DELTA_COMPILE_MAX_FRACTION = 0.25

#: ... with this absolute floor, so tiny graphs still take the delta path.
DELTA_COMPILE_MIN_THRESHOLD = 16


def _recount_right_degrees(edge_right: np.ndarray, num_right: int) -> np.ndarray:
    """Right-side degree vector from the column array (matches ``compile``)."""
    right_degrees = np.zeros(num_right, dtype=np.int64)
    if edge_right.size:
        np.add.at(right_degrees, edge_right, 1)
    return right_degrees


class GraphArrays:
    """Immutable array view of a bipartite graph at one mutation revision.

    Build with :meth:`compile` (or, preferably, via the caching
    :meth:`BipartiteGraph.arrays` accessor).  All arrays are read-only.
    """

    def __init__(
        self,
        revision: int,
        left_ids: List[Node],
        right_ids: List[Node],
        edge_left: np.ndarray,
        edge_right: np.ndarray,
        left_indptr: np.ndarray,
        left_degrees: np.ndarray,
        right_degrees: np.ndarray,
        graph: Optional["BipartiteGraph"] = None,
        left_index: Optional[Dict[Node, int]] = None,
        right_index: Optional[Dict[Node, int]] = None,
        global_index: Optional[Dict[Node, int]] = None,
    ):
        self.revision = int(revision)
        self.left_ids = left_ids
        self.right_ids = right_ids
        # The index dicts may be passed in precomputed (the delta-compile
        # fast path reuses the previous view's maps when the node sets did
        # not change); they are treated as immutable from here on.
        self.left_index: Dict[Node, int] = (
            left_index if left_index is not None else {node: i for i, node in enumerate(left_ids)}
        )
        self.right_index: Dict[Node, int] = (
            right_index if right_index is not None else {node: j for j, node in enumerate(right_ids)}
        )
        offset = len(left_ids)
        if global_index is not None:
            self.global_index: Dict[Node, int] = global_index
        else:
            self.global_index = dict(self.left_index)
            for node, j in self.right_index.items():
                self.global_index[node] = offset + j
        self.edge_left = edge_left
        self.edge_right = edge_right
        self.left_indptr = left_indptr
        self.left_degrees = left_degrees
        self.right_degrees = right_degrees
        #: Per-node degrees in global index order (left block, then right block).
        self.degrees = np.concatenate([left_degrees, right_degrees]) if offset or len(right_ids) else np.zeros(0, dtype=np.int64)
        #: Per-edge endpoint indices in the *global* index space.
        self.edge_left_global = edge_left
        self.edge_right_global = edge_right + offset
        for array in (
            self.edge_left,
            self.edge_right,
            self.left_indptr,
            self.left_degrees,
            self.right_degrees,
            self.degrees,
            self.edge_right_global,
        ):
            array.setflags(write=False)
        self._graph_ref = weakref.ref(graph) if graph is not None else None
        # Per-partition group-code memo; weak keys so dropping a Partition
        # releases its codes.  Keyed values map a scope name to the codes.
        self._partition_codes: "weakref.WeakKeyDictionary" = weakref.WeakKeyDictionary()
        #: ``True`` when this view was produced by :meth:`delta_compile`'s
        #: incremental patch path rather than a full :meth:`compile`.
        self.compiled_incrementally = False

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    @classmethod
    def compile(cls, graph: "BipartiteGraph") -> "GraphArrays":
        """Compile ``graph`` into a fresh array view."""
        left_ids = list(graph.left_nodes())
        right_ids = list(graph.right_nodes())
        right_index = {node: j for j, node in enumerate(right_ids)}

        adjacency = graph._adj_left  # noqa: SLF001 - same-package fast path
        counts = np.zeros(len(left_ids), dtype=np.int64)
        columns: List[np.ndarray] = []
        for i, node in enumerate(left_ids):
            neighbours = adjacency[node]
            counts[i] = len(neighbours)
            if neighbours:
                cols = np.fromiter(
                    (right_index[nb] for nb in neighbours), dtype=np.int64, count=len(neighbours)
                )
                cols.sort()
                columns.append(cols)
        left_indptr = np.zeros(len(left_ids) + 1, dtype=np.int64)
        np.cumsum(counts, out=left_indptr[1:])
        edge_right = np.concatenate(columns) if columns else np.zeros(0, dtype=np.int64)
        edge_left = np.repeat(np.arange(len(left_ids), dtype=np.int64), counts)

        right_degrees = np.zeros(len(right_ids), dtype=np.int64)
        if edge_right.size:
            np.add.at(right_degrees, edge_right, 1)

        return cls(
            revision=graph.revision,
            left_ids=left_ids,
            right_ids=right_ids,
            edge_left=edge_left,
            edge_right=edge_right,
            left_indptr=left_indptr,
            left_degrees=counts,
            right_degrees=right_degrees,
            graph=graph,
        )

    @classmethod
    def delta_compile(
        cls,
        old: "GraphArrays",
        graph: "BipartiteGraph",
        max_fraction: float = DELTA_COMPILE_MAX_FRACTION,
    ) -> "GraphArrays":
        """Recompile ``graph`` incrementally from a stale view ``old``.

        Replays the graph's mutation log since ``old.revision`` and patches
        only what the mutations touched: the rows of left nodes whose
        adjacency changed are recomputed from the dict adjacency exactly as
        :meth:`compile` would, while every untouched row's slice of
        ``edge_right`` is copied (and, after right-node removals, index-
        remapped) wholesale at C speed.  When no node was added or removed,
        the node id lists and index dicts of ``old`` are reused outright, so
        an edge-only delta skips the O(nodes) dict rebuilds entirely.

        The result is **bit-identical** to ``GraphArrays.compile(graph)`` —
        same arrays, dtypes, id orders and index maps — which the hypothesis
        suite in ``tests/test_graphs_delta.py`` asserts over random mutation
        sequences.  Falls back to a full :meth:`compile` when the log no
        longer covers ``old.revision`` (truncation, foreign revision) or the
        delta exceeds ``max_fraction`` of the old edge count: past that
        point patching costs more than rebuilding.
        """
        records = graph.mutations_since(old.revision)
        if records is None:
            return cls.compile(graph)
        if not records:
            return old
        if len(records) > max(DELTA_COMPILE_MIN_THRESHOLD, int(max_fraction * old.num_edges)):
            return cls.compile(graph)

        from repro.graphs.bipartite import Side

        adjacency = graph._adj_left  # noqa: SLF001 - same-package fast path
        dirty_left = set()
        node_ops = False
        right_removed = False
        for rec in records:
            if rec.op == "add_edge":
                dirty_left.add(rec.a)
            elif rec.op == "remove_edge":
                dirty_left.add(rec.a)
            elif rec.op == "add_node":
                node_ops = True
                if rec.b is Side.LEFT:
                    dirty_left.add(rec.a)
            elif rec.op == "remove_node":
                node_ops = True
                if rec.b is Side.LEFT:
                    dirty_left.discard(rec.a)
                else:
                    right_removed = True
                    # The edges that died with the node dirty their left
                    # endpoints, which is also what guarantees no clean row
                    # still references a removed (or re-added) right index.
                    dirty_left.update(rec.neighbors)
        dirty_left = {n for n in dirty_left if n in graph._left}  # noqa: SLF001

        if node_ops:
            arrays = cls._delta_general(old, graph, adjacency, dirty_left, right_removed)
        else:
            arrays = cls._delta_edges_only(old, graph, adjacency, dirty_left)
        arrays.compiled_incrementally = True
        return arrays

    @classmethod
    def _delta_edges_only(cls, old, graph, adjacency, dirty_left):
        """Delta path when no node was added or removed: same id spaces."""
        right_index = old.right_index
        counts = old.left_degrees.copy()
        dirty_rows = sorted(old.left_index[n] for n in dirty_left)
        for row in dirty_rows:
            counts[row] = len(adjacency[old.left_ids[row]])

        left_indptr = np.zeros(len(old.left_ids) + 1, dtype=np.int64)
        np.cumsum(counts, out=left_indptr[1:])
        edge_right = np.empty(int(left_indptr[-1]), dtype=np.int64)

        # Splice: bulk-copy the clean stretches between dirty rows, recompute
        # only the dirty rows from the dict adjacency (exactly like compile).
        src_cursor = dst_cursor = 0
        old_indptr = old.left_indptr
        old_edge_right = old.edge_right
        for row in dirty_rows:
            src_stop = int(old_indptr[row])
            dst_stop = int(left_indptr[row])
            edge_right[dst_cursor:dst_stop] = old_edge_right[src_cursor:src_stop]
            neighbours = adjacency[old.left_ids[row]]
            if neighbours:
                cols = np.fromiter(
                    (right_index[nb] for nb in neighbours), dtype=np.int64, count=len(neighbours)
                )
                cols.sort()
                edge_right[dst_stop : dst_stop + len(cols)] = cols
            src_cursor = int(old_indptr[row + 1])
            dst_cursor = int(left_indptr[row + 1])
        edge_right[dst_cursor:] = old_edge_right[src_cursor:]

        edge_left = np.repeat(np.arange(len(old.left_ids), dtype=np.int64), counts)
        right_degrees = _recount_right_degrees(edge_right, len(old.right_ids))
        return cls(
            revision=graph.revision,
            left_ids=old.left_ids,
            right_ids=old.right_ids,
            edge_left=edge_left,
            edge_right=edge_right,
            left_indptr=left_indptr,
            left_degrees=counts,
            right_degrees=right_degrees,
            graph=graph,
            left_index=old.left_index,
            right_index=right_index,
            global_index=old.global_index,
        )

    @classmethod
    def _delta_general(cls, old, graph, adjacency, dirty_left, right_removed):
        """Delta path after node mutations: re-derive id spaces, keep rows."""
        left_ids = list(graph.left_nodes())
        right_ids = list(graph.right_nodes())
        right_index = {node: j for j, node in enumerate(right_ids)}

        # Right-node removals shift the surviving right-local indices; the
        # shift preserves relative order (dict deletion keeps insertion
        # order), so remapping a sorted clean row keeps it sorted.  Rows that
        # referenced a removed (or removed-and-re-added) right node are dirty
        # by construction and recomputed instead.
        remap = None
        if right_removed:
            remap = np.fromiter(
                (right_index.get(node, -1) for node in old.right_ids),
                dtype=np.int64,
                count=len(old.right_ids),
            )

        old_left_index = old.left_index
        old_pos = np.fromiter(
            (
                -1 if node in dirty_left else old_left_index.get(node, -1)
                for node in left_ids
            ),
            dtype=np.int64,
            count=len(left_ids),
        )
        counts = np.fromiter(
            (len(adjacency[node]) for node in left_ids), dtype=np.int64, count=len(left_ids)
        )
        left_indptr = np.zeros(len(left_ids) + 1, dtype=np.int64)
        np.cumsum(counts, out=left_indptr[1:])
        edge_right = np.empty(int(left_indptr[-1]), dtype=np.int64)

        clean = old_pos >= 0
        lens = counts[clean]
        if lens.size and int(lens.sum()):
            total_clean = int(lens.sum())
            ends = np.cumsum(lens)
            # Per-element offset within its own row: 0,1,...,len-1 per row.
            offsets = np.arange(total_clean, dtype=np.int64) - np.repeat(ends - lens, lens)
            src = np.repeat(old.left_indptr[old_pos[clean]], lens) + offsets
            dst = np.repeat(left_indptr[:-1][clean], lens) + offsets
            values = old.edge_right[src]
            if remap is not None:
                values = remap[values]
            edge_right[dst] = values

        for row in np.flatnonzero(~clean):
            neighbours = adjacency[left_ids[row]]
            if neighbours:
                cols = np.fromiter(
                    (right_index[nb] for nb in neighbours), dtype=np.int64, count=len(neighbours)
                )
                cols.sort()
                edge_right[left_indptr[row] : left_indptr[row + 1]] = cols

        edge_left = np.repeat(np.arange(len(left_ids), dtype=np.int64), counts)
        right_degrees = _recount_right_degrees(edge_right, len(right_ids))
        return cls(
            revision=graph.revision,
            left_ids=left_ids,
            right_ids=right_ids,
            edge_left=edge_left,
            edge_right=edge_right,
            left_indptr=left_indptr,
            left_degrees=counts,
            right_degrees=right_degrees,
            graph=graph,
            right_index=right_index,
        )

    # ------------------------------------------------------------------
    # Shape and staleness
    # ------------------------------------------------------------------
    @property
    def num_left(self) -> int:
        """Number of left-side nodes."""
        return len(self.left_ids)

    @property
    def num_right(self) -> int:
        """Number of right-side nodes."""
        return len(self.right_ids)

    @property
    def num_nodes(self) -> int:
        """Total number of nodes across both sides."""
        return len(self.left_ids) + len(self.right_ids)

    @property
    def num_edges(self) -> int:
        """Number of associations."""
        return int(self.edge_left.size)

    def is_fresh(self, graph: Optional["BipartiteGraph"] = None) -> bool:
        """``True`` when the view still matches the graph's mutation counter."""
        if graph is None and self._graph_ref is not None:
            graph = self._graph_ref()
        if graph is None:
            return False
        return self.revision == graph.revision

    def neighbor_slice(self, left_local_index: int) -> np.ndarray:
        """Sorted right-side local indices adjacent to one left node."""
        start, stop = self.left_indptr[left_local_index], self.left_indptr[left_local_index + 1]
        return self.edge_right[start:stop]

    # ------------------------------------------------------------------
    # Node-set helpers
    # ------------------------------------------------------------------
    def indices_of(self, nodes: Iterable[Node], scope: str = "global") -> np.ndarray:
        """Indices of the given nodes in one index space, preserving order.

        Nodes absent from the graph (or from the requested side) are silently
        skipped, mirroring how the reference query path ignores stale group
        members.  ``scope`` is ``"global"``, ``"left"`` or ``"right"``.
        """
        index = {
            "global": self.global_index,
            "left": self.left_index,
            "right": self.right_index,
        }[scope]
        found = [index[node] for node in nodes if node in index]
        return np.asarray(found, dtype=np.int64)

    def degree_mass(self, nodes: Iterable[Node]) -> int:
        """Sum of degrees of the given nodes (absent nodes contribute 0)."""
        idx = self.indices_of(nodes)
        if not idx.size:
            return 0
        return int(self.degrees[idx].sum())

    def degrees_of(self, nodes: Iterable[Node]) -> np.ndarray:
        """Degrees of the given (present) nodes, preserving order."""
        idx = self.indices_of(nodes)
        return self.degrees[idx].astype(np.float64)

    def degrees_aligned(self, nodes: Sequence[Node]) -> np.ndarray:
        """Degree per node, position-aligned: absent nodes contribute 0.

        Unlike :meth:`degrees_of` the result has exactly ``len(nodes)``
        entries, which lets callers take prefix sums over a node ordering.
        """
        if not self.degrees.size:
            return np.zeros(len(nodes), dtype=np.int64)
        index = self.global_index
        idx = np.fromiter(
            (index.get(node, -1) for node in nodes), dtype=np.int64, count=len(nodes)
        )
        if not idx.size:
            return idx
        return np.where(idx >= 0, self.degrees[np.maximum(idx, 0)], 0)

    # ------------------------------------------------------------------
    # Partition codes
    # ------------------------------------------------------------------
    def partition_codes(self, partition: "Partition", scope: str = "global") -> np.ndarray:
        """Per-node group codes for ``partition`` over one index space.

        Returns an ``int64`` array of length ``num_nodes`` (global scope) or
        the side length, where entry ``i`` is the position of node ``i``'s
        group in ``partition.groups()`` order, or :data:`NO_GROUP` for nodes
        the partition does not cover.  Codes are memoised per partition (weak
        keys), so repeated queries against the same grouping pay the node
        scan once.
        """
        memo = self._partition_codes.get(partition)
        if memo is not None and scope in memo:
            return memo[scope]
        length = {"global": self.num_nodes, "left": self.num_left, "right": self.num_right}[scope]
        index = {
            "global": self.global_index,
            "left": self.left_index,
            "right": self.right_index,
        }[scope]
        codes = np.full(length, NO_GROUP, dtype=np.int64)
        for position, group in enumerate(partition.groups()):
            for member in group.members:
                i = index.get(member)
                if i is not None:
                    codes[i] = position
        codes.setflags(write=False)
        if memo is None:
            memo = {}
            try:
                self._partition_codes[partition] = memo
            except TypeError:  # pragma: no cover - unhashable/unweakrefable key
                pass
        memo[scope] = codes
        return codes

    # ------------------------------------------------------------------
    # Batched aggregate counts (the vectorized query kernels)
    # ------------------------------------------------------------------
    def induced_counts(self, partition: "Partition") -> np.ndarray:
        """Per-group counts of associations with *both* endpoints in the group.

        The vectorized equivalent of calling
        :func:`~repro.graphs.subgraphs.subgraph_association_count` once per
        group: one ``np.bincount`` over the edge list.
        """
        codes = self.partition_codes(partition, scope="global")
        num_groups = partition.num_groups()
        if not self.num_edges or not num_groups:
            return np.zeros(num_groups, dtype=np.int64)
        lcodes = codes[self.edge_left_global]
        rcodes = codes[self.edge_right_global]
        mask = (lcodes == rcodes) & (lcodes != NO_GROUP)
        return np.bincount(lcodes[mask], minlength=num_groups)

    def incident_counts(self, partition: "Partition") -> np.ndarray:
        """Per-group counts of associations with *at least one* endpoint in the group.

        This is the quantity driving the group-level sensitivity of the
        association-count query.  An edge whose endpoints fall in two
        different groups is counted once for each; an edge inside one group
        is counted once.
        """
        codes = self.partition_codes(partition, scope="global")
        num_groups = partition.num_groups()
        if not self.num_edges or not num_groups:
            return np.zeros(num_groups, dtype=np.int64)
        lcodes = codes[self.edge_left_global]
        rcodes = codes[self.edge_right_global]
        counts = np.bincount(lcodes[lcodes != NO_GROUP], minlength=num_groups)
        counts += np.bincount(rcodes[rcodes != NO_GROUP], minlength=num_groups)
        both_same = (lcodes == rcodes) & (lcodes != NO_GROUP)
        counts -= np.bincount(lcodes[both_same], minlength=num_groups)
        return counts

    def cross_group_matrix(self, left_partition: "Partition", right_partition: "Partition") -> np.ndarray:
        """Association counts between every (left group, right group) pair.

        Rows follow ``left_partition.groups()`` order, columns
        ``right_partition.groups()`` order; edges with an endpoint outside
        the respective partition are ignored — exactly the semantics of the
        reference :meth:`CrossGroupCountQuery.true_matrix`.
        """
        num_rows = left_partition.num_groups()
        num_cols = right_partition.num_groups()
        if not self.num_edges or not num_rows or not num_cols:
            return np.zeros((num_rows, num_cols), dtype=np.float64)
        lcodes = self.partition_codes(left_partition, scope="left")[self.edge_left]
        rcodes = self.partition_codes(right_partition, scope="right")[self.edge_right]
        mask = (lcodes != NO_GROUP) & (rcodes != NO_GROUP)
        flat = lcodes[mask] * num_cols + rcodes[mask]
        matrix = np.bincount(flat, minlength=num_rows * num_cols).astype(np.float64)
        return matrix.reshape(num_rows, num_cols)

    def degree_histogram(self, side, max_degree: int) -> np.ndarray:
        """Clamped degree histogram of one side (``max_degree + 1`` bins)."""
        from repro.graphs.bipartite import Side

        degrees = self.left_degrees if Side(side) is Side.LEFT else self.right_degrees
        clamped = np.minimum(degrees, max_degree)
        return np.bincount(clamped, minlength=max_degree + 1)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"GraphArrays(revision={self.revision}, left={self.num_left}, "
            f"right={self.num_right}, edges={self.num_edges})"
        )
