"""Compiled array view of a :class:`~repro.graphs.bipartite.BipartiteGraph`.

The dict-of-set adjacency of :class:`BipartiteGraph` is the right structure
for incremental mutation, but every aggregate query over it pays an
interpreter-loop cost per node or per edge.  :class:`GraphArrays` compiles
the graph once into contiguous NumPy arrays — CSR-style edge arrays, dense
node index maps and per-node degree vectors — so that whole workloads can be
answered with ``np.bincount``/segment-sum instead of per-group set iteration.

Layout
------
* Left nodes receive local indices ``0 .. num_left - 1`` in the graph's
  insertion order; right nodes receive ``0 .. num_right - 1`` likewise.
  The *global* index space places the left block first: a right node with
  local index ``j`` has global index ``num_left + j``.
* Edges are stored in COO form (``edge_left``/``edge_right``, one entry per
  association) sorted by ``(left index, right index)``, together with a CSR
  row pointer ``left_indptr`` over the left side, so both flat per-edge
  scans and per-node neighbour slices are O(1) to obtain.

Staleness
---------
A compiled view is only valid for the graph revision it was built from.
:meth:`GraphArrays.is_fresh` compares the stored revision against the
graph's mutation counter; :meth:`BipartiteGraph.arrays` recompiles
automatically whenever the graph has mutated since the last compile, so
callers can never observe stale arrays (see ``tests/test_graphs_arrays.py``).
"""

from __future__ import annotations

import weakref
from typing import TYPE_CHECKING, Dict, Hashable, Iterable, List, Optional, Sequence, Tuple

import numpy as np

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.graphs.bipartite import BipartiteGraph
    from repro.grouping.partition import Partition

Node = Hashable

#: Sentinel group code for nodes not covered by a partition.
NO_GROUP = -1


class GraphArrays:
    """Immutable array view of a bipartite graph at one mutation revision.

    Build with :meth:`compile` (or, preferably, via the caching
    :meth:`BipartiteGraph.arrays` accessor).  All arrays are read-only.
    """

    def __init__(
        self,
        revision: int,
        left_ids: List[Node],
        right_ids: List[Node],
        edge_left: np.ndarray,
        edge_right: np.ndarray,
        left_indptr: np.ndarray,
        left_degrees: np.ndarray,
        right_degrees: np.ndarray,
        graph: Optional["BipartiteGraph"] = None,
    ):
        self.revision = int(revision)
        self.left_ids = left_ids
        self.right_ids = right_ids
        self.left_index: Dict[Node, int] = {node: i for i, node in enumerate(left_ids)}
        self.right_index: Dict[Node, int] = {node: j for j, node in enumerate(right_ids)}
        offset = len(left_ids)
        self.global_index: Dict[Node, int] = dict(self.left_index)
        for node, j in self.right_index.items():
            self.global_index[node] = offset + j
        self.edge_left = edge_left
        self.edge_right = edge_right
        self.left_indptr = left_indptr
        self.left_degrees = left_degrees
        self.right_degrees = right_degrees
        #: Per-node degrees in global index order (left block, then right block).
        self.degrees = np.concatenate([left_degrees, right_degrees]) if offset or len(right_ids) else np.zeros(0, dtype=np.int64)
        #: Per-edge endpoint indices in the *global* index space.
        self.edge_left_global = edge_left
        self.edge_right_global = edge_right + offset
        for array in (
            self.edge_left,
            self.edge_right,
            self.left_indptr,
            self.left_degrees,
            self.right_degrees,
            self.degrees,
            self.edge_right_global,
        ):
            array.setflags(write=False)
        self._graph_ref = weakref.ref(graph) if graph is not None else None
        # Per-partition group-code memo; weak keys so dropping a Partition
        # releases its codes.  Keyed values map a scope name to the codes.
        self._partition_codes: "weakref.WeakKeyDictionary" = weakref.WeakKeyDictionary()

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    @classmethod
    def compile(cls, graph: "BipartiteGraph") -> "GraphArrays":
        """Compile ``graph`` into a fresh array view."""
        left_ids = list(graph.left_nodes())
        right_ids = list(graph.right_nodes())
        right_index = {node: j for j, node in enumerate(right_ids)}

        adjacency = graph._adj_left  # noqa: SLF001 - same-package fast path
        counts = np.zeros(len(left_ids), dtype=np.int64)
        columns: List[np.ndarray] = []
        for i, node in enumerate(left_ids):
            neighbours = adjacency[node]
            counts[i] = len(neighbours)
            if neighbours:
                cols = np.fromiter(
                    (right_index[nb] for nb in neighbours), dtype=np.int64, count=len(neighbours)
                )
                cols.sort()
                columns.append(cols)
        left_indptr = np.zeros(len(left_ids) + 1, dtype=np.int64)
        np.cumsum(counts, out=left_indptr[1:])
        edge_right = np.concatenate(columns) if columns else np.zeros(0, dtype=np.int64)
        edge_left = np.repeat(np.arange(len(left_ids), dtype=np.int64), counts)

        right_degrees = np.zeros(len(right_ids), dtype=np.int64)
        if edge_right.size:
            np.add.at(right_degrees, edge_right, 1)

        return cls(
            revision=graph.revision,
            left_ids=left_ids,
            right_ids=right_ids,
            edge_left=edge_left,
            edge_right=edge_right,
            left_indptr=left_indptr,
            left_degrees=counts,
            right_degrees=right_degrees,
            graph=graph,
        )

    # ------------------------------------------------------------------
    # Shape and staleness
    # ------------------------------------------------------------------
    @property
    def num_left(self) -> int:
        """Number of left-side nodes."""
        return len(self.left_ids)

    @property
    def num_right(self) -> int:
        """Number of right-side nodes."""
        return len(self.right_ids)

    @property
    def num_nodes(self) -> int:
        """Total number of nodes across both sides."""
        return len(self.left_ids) + len(self.right_ids)

    @property
    def num_edges(self) -> int:
        """Number of associations."""
        return int(self.edge_left.size)

    def is_fresh(self, graph: Optional["BipartiteGraph"] = None) -> bool:
        """``True`` when the view still matches the graph's mutation counter."""
        if graph is None and self._graph_ref is not None:
            graph = self._graph_ref()
        if graph is None:
            return False
        return self.revision == graph.revision

    def neighbor_slice(self, left_local_index: int) -> np.ndarray:
        """Sorted right-side local indices adjacent to one left node."""
        start, stop = self.left_indptr[left_local_index], self.left_indptr[left_local_index + 1]
        return self.edge_right[start:stop]

    # ------------------------------------------------------------------
    # Node-set helpers
    # ------------------------------------------------------------------
    def indices_of(self, nodes: Iterable[Node], scope: str = "global") -> np.ndarray:
        """Indices of the given nodes in one index space, preserving order.

        Nodes absent from the graph (or from the requested side) are silently
        skipped, mirroring how the reference query path ignores stale group
        members.  ``scope`` is ``"global"``, ``"left"`` or ``"right"``.
        """
        index = {
            "global": self.global_index,
            "left": self.left_index,
            "right": self.right_index,
        }[scope]
        found = [index[node] for node in nodes if node in index]
        return np.asarray(found, dtype=np.int64)

    def degree_mass(self, nodes: Iterable[Node]) -> int:
        """Sum of degrees of the given nodes (absent nodes contribute 0)."""
        idx = self.indices_of(nodes)
        if not idx.size:
            return 0
        return int(self.degrees[idx].sum())

    def degrees_of(self, nodes: Iterable[Node]) -> np.ndarray:
        """Degrees of the given (present) nodes, preserving order."""
        idx = self.indices_of(nodes)
        return self.degrees[idx].astype(np.float64)

    def degrees_aligned(self, nodes: Sequence[Node]) -> np.ndarray:
        """Degree per node, position-aligned: absent nodes contribute 0.

        Unlike :meth:`degrees_of` the result has exactly ``len(nodes)``
        entries, which lets callers take prefix sums over a node ordering.
        """
        if not self.degrees.size:
            return np.zeros(len(nodes), dtype=np.int64)
        index = self.global_index
        idx = np.fromiter(
            (index.get(node, -1) for node in nodes), dtype=np.int64, count=len(nodes)
        )
        if not idx.size:
            return idx
        return np.where(idx >= 0, self.degrees[np.maximum(idx, 0)], 0)

    # ------------------------------------------------------------------
    # Partition codes
    # ------------------------------------------------------------------
    def partition_codes(self, partition: "Partition", scope: str = "global") -> np.ndarray:
        """Per-node group codes for ``partition`` over one index space.

        Returns an ``int64`` array of length ``num_nodes`` (global scope) or
        the side length, where entry ``i`` is the position of node ``i``'s
        group in ``partition.groups()`` order, or :data:`NO_GROUP` for nodes
        the partition does not cover.  Codes are memoised per partition (weak
        keys), so repeated queries against the same grouping pay the node
        scan once.
        """
        memo = self._partition_codes.get(partition)
        if memo is not None and scope in memo:
            return memo[scope]
        length = {"global": self.num_nodes, "left": self.num_left, "right": self.num_right}[scope]
        index = {
            "global": self.global_index,
            "left": self.left_index,
            "right": self.right_index,
        }[scope]
        codes = np.full(length, NO_GROUP, dtype=np.int64)
        for position, group in enumerate(partition.groups()):
            for member in group.members:
                i = index.get(member)
                if i is not None:
                    codes[i] = position
        codes.setflags(write=False)
        if memo is None:
            memo = {}
            try:
                self._partition_codes[partition] = memo
            except TypeError:  # pragma: no cover - unhashable/unweakrefable key
                pass
        memo[scope] = codes
        return codes

    # ------------------------------------------------------------------
    # Batched aggregate counts (the vectorized query kernels)
    # ------------------------------------------------------------------
    def induced_counts(self, partition: "Partition") -> np.ndarray:
        """Per-group counts of associations with *both* endpoints in the group.

        The vectorized equivalent of calling
        :func:`~repro.graphs.subgraphs.subgraph_association_count` once per
        group: one ``np.bincount`` over the edge list.
        """
        codes = self.partition_codes(partition, scope="global")
        num_groups = partition.num_groups()
        if not self.num_edges or not num_groups:
            return np.zeros(num_groups, dtype=np.int64)
        lcodes = codes[self.edge_left_global]
        rcodes = codes[self.edge_right_global]
        mask = (lcodes == rcodes) & (lcodes != NO_GROUP)
        return np.bincount(lcodes[mask], minlength=num_groups)

    def incident_counts(self, partition: "Partition") -> np.ndarray:
        """Per-group counts of associations with *at least one* endpoint in the group.

        This is the quantity driving the group-level sensitivity of the
        association-count query.  An edge whose endpoints fall in two
        different groups is counted once for each; an edge inside one group
        is counted once.
        """
        codes = self.partition_codes(partition, scope="global")
        num_groups = partition.num_groups()
        if not self.num_edges or not num_groups:
            return np.zeros(num_groups, dtype=np.int64)
        lcodes = codes[self.edge_left_global]
        rcodes = codes[self.edge_right_global]
        counts = np.bincount(lcodes[lcodes != NO_GROUP], minlength=num_groups)
        counts += np.bincount(rcodes[rcodes != NO_GROUP], minlength=num_groups)
        both_same = (lcodes == rcodes) & (lcodes != NO_GROUP)
        counts -= np.bincount(lcodes[both_same], minlength=num_groups)
        return counts

    def cross_group_matrix(self, left_partition: "Partition", right_partition: "Partition") -> np.ndarray:
        """Association counts between every (left group, right group) pair.

        Rows follow ``left_partition.groups()`` order, columns
        ``right_partition.groups()`` order; edges with an endpoint outside
        the respective partition are ignored — exactly the semantics of the
        reference :meth:`CrossGroupCountQuery.true_matrix`.
        """
        num_rows = left_partition.num_groups()
        num_cols = right_partition.num_groups()
        if not self.num_edges or not num_rows or not num_cols:
            return np.zeros((num_rows, num_cols), dtype=np.float64)
        lcodes = self.partition_codes(left_partition, scope="left")[self.edge_left]
        rcodes = self.partition_codes(right_partition, scope="right")[self.edge_right]
        mask = (lcodes != NO_GROUP) & (rcodes != NO_GROUP)
        flat = lcodes[mask] * num_cols + rcodes[mask]
        matrix = np.bincount(flat, minlength=num_rows * num_cols).astype(np.float64)
        return matrix.reshape(num_rows, num_cols)

    def degree_histogram(self, side, max_degree: int) -> np.ndarray:
        """Clamped degree histogram of one side (``max_degree + 1`` bins)."""
        from repro.graphs.bipartite import Side

        degrees = self.left_degrees if Side(side) is Side.LEFT else self.right_degrees
        clamped = np.minimum(degrees, max_degree)
        return np.bincount(clamped, minlength=max_degree + 1)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"GraphArrays(revision={self.revision}, left={self.num_left}, "
            f"right={self.num_right}, edges={self.num_edges})"
        )
