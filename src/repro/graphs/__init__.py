"""Bipartite association-graph substrate.

The paper models private data as *bipartite association graphs*: nodes on the
left side are one kind of entity (e.g. authors, patients, viewers), nodes on
the right side another kind (papers, drugs, movies), and each edge is one
association (``author a wrote paper p``).  This package provides the graph
data structure used by every other subsystem, plus builders, statistics,
induced-subgraph utilities, projections and I/O.
"""

from repro.graphs.arrays import GraphArrays
from repro.graphs.bipartite import BipartiteGraph, Side
from repro.graphs.builders import (
    from_association_list,
    from_biadjacency,
    from_networkx,
    to_networkx,
)
from repro.graphs.stats import (
    GraphSummary,
    association_count,
    cross_association_count,
    degree_histogram,
    degree_sequence,
    density,
    summarize,
)
from repro.graphs.subgraphs import (
    induced_subgraph,
    restrict_left,
    restrict_right,
    subgraph_association_count,
)
from repro.graphs.degree_bounding import cap_degrees, clipping_error
from repro.graphs.projections import project_left, project_right
from repro.graphs.io import (
    read_edge_list,
    write_edge_list,
    read_json,
    write_json,
)

__all__ = [
    "BipartiteGraph",
    "GraphArrays",
    "Side",
    "from_association_list",
    "from_biadjacency",
    "from_networkx",
    "to_networkx",
    "GraphSummary",
    "association_count",
    "cross_association_count",
    "degree_histogram",
    "degree_sequence",
    "density",
    "summarize",
    "induced_subgraph",
    "restrict_left",
    "restrict_right",
    "subgraph_association_count",
    "cap_degrees",
    "clipping_error",
    "project_left",
    "project_right",
    "read_edge_list",
    "write_edge_list",
    "read_json",
    "write_json",
]
