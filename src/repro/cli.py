"""Command-line interface.

Eight subcommands cover the common publisher workflows without writing any
Python:

* ``repro generate`` — build a synthetic dataset and write it as an edge list;
* ``repro disclose`` — run the full multi-level group-private disclosure of a
  graph (synthetic or loaded from an edge list) and write the release JSON
  and/or persist it into a :class:`~repro.core.store.ReleaseStore`;
* ``repro figure1``  — regenerate the paper's Figure 1 table on a synthetic
  graph and print / save it (``--per-trial`` runs the full-pipeline
  Monte-Carlo, parallelisable with ``--executor process``);
* ``repro report``   — re-render Figure-1-style per-level metrics from a
  release persisted in a store, without re-disclosing;
* ``repro query``    — filter a store's release catalog by mechanism,
  epsilon, graph fingerprint, key glob or created-at lower bound, rendered
  as a table, CSV or canonical JSON; an indexed SQL lookup on SQLite stores
  and a full-scan fallback on directory stores;
* ``repro sweep``    — disclose an ``epsilon-g`` × ``levels`` grid into a
  store with checkpointed resume: ``--journal`` records each combination's
  state so an interrupted sweep resumes instead of re-disclosing,
  ``--on-error`` picks fail-fast or collect-and-continue, ``--progress``
  streams one ``{"event": "sweep-progress", ...}`` JSON line per wave to
  stderr, and ``--workers`` / ``--inner-workers`` / ``--worker-budget``
  negotiate the outer × inner worker split through a
  :class:`~repro.execution.scheduler.SweepScheduler`;
* ``repro refresh``  — incrementally re-disclose a *mutated* graph against a
  stored release: per-level fingerprints are diffed and only the affected
  levels are re-perturbed (unaffected levels are reused byte-for-byte at
  zero extra privacy spend); the refreshed release is archived under a
  revision-qualified key and republished at the live key, which clears the
  serving layer's staleness verdict;
* ``repro serve``    — serve the releases in a store over a read-only HTTP
  API, resolving each caller's role through an
  :class:`~repro.core.access.AccessPolicy` (no disclosure code runs while
  serving, so no budget is ever spent; ``--max-in-flight`` and
  ``--handler-timeout`` bound overload instead of queueing it).

The module exposes :func:`main` (also installed as the ``repro`` console
script) and :func:`build_parser` for testing.  :func:`main` turns expected
operational failures (:class:`~repro.exceptions.ValidationError`,
:class:`~repro.exceptions.ServingError`,
:class:`~repro.exceptions.SweepInterrupted`,
:class:`~repro.exceptions.EvaluationError` — e.g. a journal belonging to a
different run) into a one-line stderr message and a nonzero exit — never a
traceback.  ``Ctrl-C`` gets the same treatment: a one-line message and the
conventional exit status 130 instead of a ``KeyboardInterrupt`` traceback.
"""

from __future__ import annotations

import argparse
import sys
from functools import partial
from pathlib import Path
from typing import List, Optional

from repro.core.catalog import (
    OUTPUT_FORMATS,
    ReleaseCatalog,
    ReleaseFilter,
    format_rows,
    system_clock,
)
from repro.core.config import DisclosureConfig
from repro.core.discloser import MultiLevelDiscloser
from repro.core.certificate import verify_release
from repro.core.store import ReleaseStore
from repro.exceptions import (
    EvaluationError,
    ReleaseIntegrityError,
    ServingError,
    SweepInterrupted,
    ValidationError,
)
from repro.datasets.registry import available_datasets, load_dataset
from repro.evaluation.figure1 import (
    Figure1Config,
    figure1_metrics_from_release,
    run_figure1,
    run_figure1_analytic,
    run_figure1_trials,
)
from repro.evaluation.reporting import format_table
from repro.evaluation.sweep import ParameterSweep
from repro.execution import AUTO_INNER, EXECUTOR_NAMES, SweepScheduler
from repro.graphs.io import read_edge_list, write_edge_list
from repro.grouping.specialization import SpecializationConfig
from repro.utils.serialization import to_json_file

#: CLI spellings of the journal error policies.
_ON_ERROR_CHOICES = {"fail-fast": "fail_fast", "collect": "collect_errors"}


def build_parser() -> argparse.ArgumentParser:
    """Construct the argument parser for the ``repro`` CLI."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Group differential privacy-preserving disclosure of multi-level association graphs",
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    generate = subparsers.add_parser("generate", help="generate a synthetic association graph")
    generate.add_argument("--dataset", choices=available_datasets(), default="dblp")
    generate.add_argument("--scale", default="small", help="tiny / small / medium / paper")
    generate.add_argument("--seed", type=int, default=0)
    generate.add_argument("--output", type=Path, required=True, help="edge-list file to write")

    disclose = subparsers.add_parser("disclose", help="run the multi-level group-private disclosure")
    disclose.add_argument("--input", type=Path, help="edge-list file (omit to use a synthetic dataset)")
    disclose.add_argument("--dataset", choices=available_datasets(), default="dblp")
    disclose.add_argument("--scale", default="tiny")
    disclose.add_argument("--epsilon-g", type=float, default=1.0, dest="epsilon_g")
    disclose.add_argument("--delta", type=float, default=1e-5)
    disclose.add_argument("--levels", type=int, default=9, help="number of hierarchy levels")
    disclose.add_argument(
        "--mechanism",
        choices=["gaussian", "analytic_gaussian", "laplace", "geometric"],
        default="gaussian",
    )
    disclose.add_argument("--seed", type=int, default=0)
    disclose.add_argument(
        "--executor",
        choices=list(EXECUTOR_NAMES),
        default="serial",
        help="where per-level perturbation runs (bit-identical in all cases)",
    )
    disclose.add_argument("--output", type=Path, help="release JSON to write")
    disclose.add_argument(
        "--store",
        type=Path,
        help="release store to persist the release into (directory, or SQLite file for *.db paths)",
    )
    disclose.add_argument(
        "--key", help="store key for the release (defaults to <dataset>-<content hash>)"
    )

    figure1 = subparsers.add_parser("figure1", help="reproduce the paper's Figure 1 table")
    figure1.add_argument("--scale", default="tiny")
    figure1.add_argument("--levels", type=int, default=9)
    figure1.add_argument("--trials", type=int, default=25)
    figure1.add_argument("--seed", type=int, default=20170605)
    figure1_mode = figure1.add_mutually_exclusive_group()
    figure1_mode.add_argument(
        "--analytic", action="store_true", help="use the closed-form expected RER"
    )
    figure1_mode.add_argument(
        "--per-trial",
        action="store_true",
        help="Monte-Carlo over the full pipeline (fresh specialization per trial)",
    )
    figure1.add_argument(
        "--executor",
        choices=list(EXECUTOR_NAMES),
        default="serial",
        help="executor for the trial fan-out (use 'process' with --per-trial)",
    )
    figure1.add_argument("--output", type=Path, help="optional JSON file for the result")

    report = subparsers.add_parser(
        "report", help="re-render per-level metrics from a stored release (no re-disclosure)"
    )
    report.add_argument("--store", type=Path, required=True, help="release-store directory")
    report.add_argument("--key", help="release key (omit to list the stored keys)")
    report.add_argument("--output", type=Path, help="optional JSON file for the metrics rows")

    query = subparsers.add_parser(
        "query", help="filter a store's release catalog (SQL-indexed on SQLite stores)"
    )
    query.add_argument(
        "--store", type=Path, required=True, help="release store (directory or .db file)"
    )
    query.add_argument(
        "--epsilon", type=float, help="exact per-level budget (epsilon-g) filter"
    )
    query.add_argument("--mechanism", help="exact mechanism filter (e.g. gaussian)")
    query.add_argument(
        "--graph", help="exact graph-fingerprint filter (the catalog's 'graph' column)"
    )
    query.add_argument(
        "--key-glob",
        dest="key_glob",
        help="shell-style key pattern (*, ?, [...] classes; case-sensitive)",
    )
    query.add_argument(
        "--since",
        help="ISO-8601 lower bound on created_at; releases stored without a "
        "timestamp never match",
    )
    query.add_argument(
        "--format",
        choices=list(OUTPUT_FORMATS),
        default="table",
        help="table (aligned, human), csv, or json (canonical, machine-diffable)",
    )

    sweep = subparsers.add_parser(
        "sweep",
        help="disclose an epsilon-g x levels grid into a store, with checkpointed resume",
    )
    sweep.add_argument(
        "--epsilon-g",
        type=float,
        nargs="+",
        default=[0.1, 0.5, 1.0],
        dest="epsilon_g",
        help="per-level budgets to sweep",
    )
    sweep.add_argument(
        "--levels", type=int, nargs="+", default=[3, 5], help="hierarchy depths to sweep"
    )
    sweep.add_argument("--dataset", choices=available_datasets(), default="dblp")
    sweep.add_argument("--scale", default="tiny")
    sweep.add_argument("--seed", type=int, default=0)
    sweep.add_argument(
        "--store", type=Path, help="release-store directory each combination's release lands in"
    )
    sweep.add_argument(
        "--journal",
        type=Path,
        help="state-journal file; re-running with the same journal resumes the sweep "
        "instead of re-disclosing completed combinations",
    )
    sweep.add_argument(
        "--on-error",
        choices=sorted(_ON_ERROR_CHOICES),
        default="fail-fast",
        dest="on_error",
        help="stop at the first failed combination, or collect failures and continue",
    )
    sweep.add_argument(
        "--executor",
        choices=list(EXECUTOR_NAMES),
        default="serial",
        help="executor for the combination fan-out",
    )
    sweep.add_argument(
        "--task-timeout",
        type=float,
        default=None,
        dest="task_timeout",
        help="per-combination wall-clock bound in seconds (pool executors only)",
    )
    sweep.add_argument(
        "--progress",
        action="store_true",
        help="stream one structured {\"event\": \"sweep-progress\", ...} JSON line "
        "per wave to stderr",
    )
    sweep.add_argument(
        "--workers",
        type=int,
        default=None,
        help="outer workers for the combination fan-out (validated against the "
        "worker budget; pool executors only)",
    )
    sweep.add_argument(
        "--inner-workers",
        default=None,
        dest="inner_workers",
        help="per-combination threads for the nested per-level perturbation: a "
        "count, or 'auto' to hand every leftover budget slot to the inner layer "
        "(default 1)",
    )
    sweep.add_argument(
        "--worker-budget",
        type=int,
        default=None,
        dest="worker_budget",
        help="total worker slots the outer x inner split must fit in "
        "(default: CPU count)",
    )
    sweep.add_argument("--output", type=Path, help="optional JSON file for the result rows")

    refresh = subparsers.add_parser(
        "refresh",
        help="incrementally re-disclose a mutated graph, republishing only affected levels",
    )
    refresh.add_argument(
        "--store", type=Path, required=True, help="release store holding the release"
    )
    refresh.add_argument(
        "--key", required=True, help="store key of the release to refresh (republished in place)"
    )
    refresh.add_argument(
        "--input", type=Path, help="edge-list file of the current graph (omit for a synthetic dataset)"
    )
    refresh.add_argument("--dataset", choices=available_datasets(), default="dblp")
    refresh.add_argument("--scale", default="tiny")
    refresh.add_argument(
        "--seed",
        type=int,
        default=0,
        help="the original disclosure's seed — required for the refreshed release "
        "to be bit-identical to a from-scratch disclosure of the mutated graph",
    )
    refresh.add_argument(
        "--executor",
        choices=list(EXECUTOR_NAMES),
        default=None,
        help="override the stored config's executor for the affected levels",
    )
    refresh.add_argument("--output", type=Path, help="optional JSON file for the refreshed release")

    serve = subparsers.add_parser(
        "serve", help="serve stored releases over a read-only HTTP API"
    )
    serve.add_argument("--store", type=Path, required=True, help="release-store directory")
    serve.add_argument(
        "--policy",
        type=Path,
        required=True,
        help="access-policy JSON file (AccessPolicy.to_dict format)",
    )
    serve.add_argument("--host", default="127.0.0.1")
    serve.add_argument("--port", type=int, default=8080, help="0 picks a free port")
    serve.add_argument(
        "--cache-size",
        type=int,
        default=None,
        dest="cache_size",
        help="releases kept hot in the read-through cache (default 32; 0 disables)",
    )
    serve.add_argument(
        "--verbose", action="store_true", help="log one line per request to stderr"
    )
    serve.add_argument(
        "--max-in-flight",
        type=int,
        default=None,
        dest="max_in_flight",
        help="bound on concurrently-handled requests; excess requests are shed "
        "with 503 + Retry-After (default unbounded)",
    )
    serve.add_argument(
        "--handler-timeout",
        type=float,
        default=None,
        dest="handler_timeout",
        help="per-request handler wall-clock bound in seconds (default none)",
    )
    serve.add_argument(
        "--processes",
        type=int,
        default=1,
        help="serving processes sharing the port via SO_REUSEPORT "
        "(default 1; falls back to 1 where SO_REUSEPORT is unavailable)",
    )
    serve.add_argument(
        "--response-cache-size",
        type=int,
        default=None,
        dest="response_cache_size",
        help="routes whose response bytes (ETag + gzip variants) are cached "
        "per process (default 256; 0 disables)",
    )
    serve.add_argument(
        "--no-gzip",
        action="store_false",
        dest="gzip",
        default=True,
        help="never compress responses, even for Accept-Encoding: gzip clients",
    )

    return parser


def _cmd_generate(args: argparse.Namespace) -> int:
    graph = load_dataset(args.dataset, scale=args.scale, seed=args.seed)
    path = write_edge_list(graph, args.output)
    print(f"wrote {graph.num_associations()} associations "
          f"({graph.num_left()} x {graph.num_right()} nodes) to {path}")
    return 0


def _cmd_disclose(args: argparse.Namespace) -> int:
    if args.output is None and args.store is None:
        print("disclose: provide --output and/or --store", file=sys.stderr)
        return 2
    if args.input is not None:
        graph = read_edge_list(args.input, name=args.input.stem)
    else:
        graph = load_dataset(args.dataset, scale=args.scale, seed=args.seed)
    config = DisclosureConfig(
        epsilon_g=args.epsilon_g,
        delta=args.delta,
        mechanism=args.mechanism,
        specialization=SpecializationConfig(num_levels=args.levels),
        executor=args.executor,
    )
    release = MultiLevelDiscloser(config=config, rng=args.seed).disclose(graph)
    if args.output is not None:
        to_json_file(release.to_dict(), args.output)
        print(f"wrote release with levels {release.levels()} to {args.output}")
    if args.store is not None:
        key = ReleaseStore(args.store, clock=system_clock).save(release, key=args.key)
        print(f"stored release under key {key!r} in {args.store}")
    certificate = verify_release(release)
    print("\n".join(certificate.summary_lines()))
    return 0


def _cmd_figure1(args: argparse.Namespace) -> int:
    config = Figure1Config(
        num_levels=args.levels,
        num_trials=args.trials,
        scale=args.scale,
        seed=args.seed,
        executor=args.executor,
    )
    if args.analytic:
        result = run_figure1_analytic(config=config)
    elif args.per_trial:
        result = run_figure1_trials(config=config)
    else:
        result = run_figure1(config=config)
    print(result.format_table())
    if args.output is not None:
        to_json_file(result.to_dict(), args.output)
        print(f"wrote {args.output}")
    return 0


def _cmd_report(args: argparse.Namespace) -> int:
    store = ReleaseStore(args.store)
    if args.key is None:
        keys = store.keys()
        if not keys:
            print(f"no releases stored in {args.store}")
        else:
            print("\n".join(keys))
        return 0
    try:
        release = store.load(args.key)
    except ReleaseIntegrityError as error:
        print(f"report: {error}", file=sys.stderr)
        return 2
    rows = figure1_metrics_from_release(release)
    print(f"release {args.key!r}: dataset={release.dataset_name}, levels={release.levels()}")
    print(format_table(rows))
    if args.output is not None:
        to_json_file({"key": args.key, "rows": rows}, args.output)
        print(f"wrote {args.output}")
    return 0


def _cmd_query(args: argparse.Namespace) -> int:
    if not args.store.exists():
        # Querying must never materialise an empty store at the given path.
        print(f"query: store {args.store} does not exist", file=sys.stderr)
        return 2
    store = ReleaseStore(args.store)
    release_filter = ReleaseFilter(
        mechanism=args.mechanism,
        epsilon=args.epsilon,
        graph=args.graph,
        key_glob=args.key_glob,
        since=args.since,
    )
    rows = ReleaseCatalog(store).rows(release_filter)
    print(format_rows(rows, args.format))
    return 0


def _sweep_runner(
    epsilon_g: float,
    levels: int,
    dataset: str = "dblp",
    scale: str = "tiny",
    seed: int = 0,
    store: Optional[str] = None,
    inner_workers: int = 1,
) -> dict:
    """Disclose one sweep combination (module-level so it pickles).

    Persists the release under a parameter-derived key when a store is
    given — the artefact a resumed sweep serves instead of re-disclosing —
    and returns summary columns for the sweep row.  ``inner_workers`` > 1
    runs the per-level perturbation on that many threads (the scheduler's
    budget-negotiated inner layer); it is not part of the parameter grid,
    so journal keys and store keys are identical across plans.
    """
    graph = load_dataset(dataset, scale=scale, seed=seed)
    config = DisclosureConfig(
        epsilon_g=epsilon_g,
        specialization=SpecializationConfig(num_levels=levels),
        executor="thread" if inner_workers > 1 else "serial",
        max_workers=inner_workers if inner_workers > 1 else None,
    )
    release = MultiLevelDiscloser(config=config, rng=seed).disclose(graph)
    key = f"sweep-{dataset}-{scale}-l{levels}-eps{epsilon_g}-seed{seed}"
    if store is not None:
        ReleaseStore(store, clock=system_clock).save(release, key=key)
    rows = figure1_metrics_from_release(release)
    expected = [row["expected_rer"] for row in rows if row.get("expected_rer") is not None]
    return {
        "store_key": key if store is not None else None,
        "levels_disclosed": len(release.levels()),
        "mean_expected_rer": sum(expected) / len(expected) if expected else None,
    }


def _parse_inner_workers(value):
    """``--inner-workers``: ``None``, a positive count, or the 'auto' split."""
    if value is None or value == AUTO_INNER:
        return value
    try:
        return int(value)
    except ValueError:
        raise ValidationError(
            f"--inner-workers must be an integer or {AUTO_INNER!r}, got {value!r}"
        ) from None


def _cmd_sweep(args: argparse.Namespace) -> int:
    scheduler = SweepScheduler(
        executor=args.executor,
        workers=args.workers,
        inner_workers=_parse_inner_workers(args.inner_workers),
        budget=args.worker_budget,
        task_timeout=args.task_timeout,
    )
    runner = partial(
        _sweep_runner,
        dataset=args.dataset,
        scale=args.scale,
        seed=args.seed,
        store=str(args.store) if args.store is not None else None,
        inner_workers=scheduler.plan.inner_workers,
    )
    sweep = ParameterSweep(
        runner,
        {"epsilon_g": args.epsilon_g, "levels": args.levels},
        name=f"cli-sweep-{args.dataset}-{args.scale}-seed{args.seed}",
    )
    # The event stream lives beside the journal, so an interrupted sweep
    # reopens with its full history on resume.
    snapshot = Path(str(args.journal) + ".events.jsonl") if args.journal is not None else None
    progress = None
    if args.progress:
        def progress(line: str) -> None:
            print(line, file=sys.stderr, flush=True)
    result = sweep.run(
        record_time=True,
        scheduler=scheduler,
        journal=args.journal,
        on_error=_ON_ERROR_CHOICES[args.on_error],
        snapshot=snapshot,
        progress=progress,
    )
    if result.rows:
        print(format_table(result.rows))
    print(
        f"sweep {sweep.name!r}: {len(result.rows)} of {len(sweep.combinations())} "
        f"combination(s) done, {len(result.errors)} failed"
    )
    for error in result.errors:
        print(f"  failed {error['key']}: {error['type']}: {error['message']}", file=sys.stderr)
    if args.output is not None:
        to_json_file(result.to_dict(), args.output)
        print(f"wrote {args.output}")
    return 1 if result.errors else 0


def _cmd_refresh(args: argparse.Namespace) -> int:
    store = ReleaseStore(args.store, clock=system_clock)
    try:
        release = store.load(args.key)
    except ReleaseIntegrityError as error:
        print(f"refresh: {error}", file=sys.stderr)
        return 2
    if args.input is not None:
        graph = read_edge_list(args.input, name=args.input.stem)
    else:
        graph = load_dataset(args.dataset, scale=args.scale, seed=args.seed)
    config = DisclosureConfig.from_dict(release.config)
    if args.executor is not None:
        config.executor = args.executor
    # A re-loaded graph restarts its revision counter, so the new provenance
    # revision is forced past the stored one — staleness must be monotonic.
    stored_revision = release.provenance.get("graph_revision")
    revision = graph.revision
    if stored_revision is not None:
        revision = max(revision, int(stored_revision) + 1)

    discloser = MultiLevelDiscloser(config=config, rng=args.seed)
    archive_key = f"{args.key}-r{revision}"
    holder = {}

    def builder():
        holder["result"] = discloser.refresh(release, graph, revision=revision)
        return holder["result"].release

    stored, created = store.get_or_create(archive_key, builder)
    if created:
        result = holder["result"]
        print(
            f"refreshed {args.key!r}: re-perturbed level(s) "
            f"{result.affected_levels or 'none'}, reused {result.reused_levels or 'none'} "
            f"byte-for-byte (epsilon spent: {result.cost.epsilon:g})"
        )
    else:
        print(f"revision {revision} already refreshed; reusing {archive_key!r} (zero spend)")
    store.save(stored, key=args.key)
    print(f"archived as {archive_key!r} and republished {args.key!r} (staleness cleared)")
    if args.output is not None:
        to_json_file(stored.to_dict(), args.output)
        print(f"wrote {args.output}")
    return 0


def _cmd_serve(args: argparse.Namespace) -> int:
    from repro.core.store import ReleaseStore
    from repro.serving.fleet import ServerFleet, format_config_line
    from repro.serving.respcache import DEFAULT_RESPONSE_CACHE_SIZE
    from repro.serving.server import DEFAULT_CACHE_SIZE

    # A store is either a release directory or a SQLite database file.
    if not (args.store.is_dir() or args.store.is_file()):
        print(
            f"serve: store directory or file {args.store} does not exist",
            file=sys.stderr,
        )
        return 2
    if not args.policy.is_file():
        print(f"serve: policy file {args.policy} does not exist", file=sys.stderr)
        return 2
    cache_size = args.cache_size if args.cache_size is not None else DEFAULT_CACHE_SIZE
    response_cache_size = (
        args.response_cache_size
        if args.response_cache_size is not None
        else DEFAULT_RESPONSE_CACHE_SIZE
    )
    try:
        fleet = ServerFleet(
            args.store,
            args.policy,
            host=args.host,
            port=args.port,
            processes=args.processes,
            cache_size=cache_size,
            response_cache_size=response_cache_size,
            gzip_enabled=args.gzip,
            verbose=args.verbose,
            max_in_flight=args.max_in_flight,
            handler_timeout=args.handler_timeout,
        ).start()
    except (OSError, KeyError, TypeError, ValueError) as error:
        print(f"serve: {error}", file=sys.stderr)
        return 2
    # One structured line on stderr with the *effective* configuration
    # (post-fallback), so deployments are diagnosable from logs alone.
    print(format_config_line(fleet.describe()), file=sys.stderr, flush=True)
    keys = ReleaseStore(args.store, cache_size=0).keys()
    roles = fleet.policy.roles()
    print(
        f"serving {len(keys)} release(s) to {len(roles)} role(s) "
        f"from {fleet.processes} process(es) on {fleet.url}",
        flush=True,
    )
    print(f"try: GET {fleet.url}/releases", flush=True)
    fleet.serve_forever()
    return 0


_COMMANDS = {
    "generate": _cmd_generate,
    "disclose": _cmd_disclose,
    "figure1": _cmd_figure1,
    "report": _cmd_report,
    "query": _cmd_query,
    "sweep": _cmd_sweep,
    "refresh": _cmd_refresh,
    "serve": _cmd_serve,
}


def main(argv: Optional[List[str]] = None) -> int:
    """Entry point of the ``repro`` console script.

    Expected operational failures — bad parameters
    (:class:`~repro.exceptions.ValidationError`), serving problems
    (:class:`~repro.exceptions.ServingError`) and a fail-fast sweep stop
    (:class:`~repro.exceptions.SweepInterrupted`) — exit nonzero with a
    one-line message instead of a traceback; genuine bugs still raise.
    ``Ctrl-C`` anywhere in a subcommand exits 130 (the conventional
    SIGINT status) with a one-line message, never a traceback.
    """
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        return _COMMANDS[args.command](args)
    except (EvaluationError, ValidationError, ServingError, SweepInterrupted) as error:
        print(f"repro {args.command}: {error}", file=sys.stderr)
        return 2
    except KeyboardInterrupt:
        print(f"repro {args.command}: interrupted", file=sys.stderr)
        return 130


if __name__ == "__main__":  # pragma: no cover - exercised via the console script
    sys.exit(main())
