"""Command-line interface.

Three subcommands cover the common publisher workflows without writing any
Python:

* ``repro generate`` — build a synthetic dataset and write it as an edge list;
* ``repro disclose`` — run the full multi-level group-private disclosure of a
  graph (synthetic or loaded from an edge list) and write the release JSON;
* ``repro figure1``  — regenerate the paper's Figure 1 table on a synthetic
  graph and print / save it.

The module exposes :func:`main` (also installed as the ``repro`` console
script) and :func:`build_parser` for testing.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path
from typing import List, Optional

from repro.core.config import DisclosureConfig
from repro.core.discloser import MultiLevelDiscloser
from repro.core.certificate import verify_release
from repro.datasets.registry import available_datasets, load_dataset
from repro.evaluation.figure1 import Figure1Config, run_figure1, run_figure1_analytic
from repro.evaluation.reporting import format_table
from repro.graphs.io import read_edge_list, write_edge_list
from repro.grouping.specialization import SpecializationConfig
from repro.utils.serialization import to_json_file


def build_parser() -> argparse.ArgumentParser:
    """Construct the argument parser for the ``repro`` CLI."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Group differential privacy-preserving disclosure of multi-level association graphs",
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    generate = subparsers.add_parser("generate", help="generate a synthetic association graph")
    generate.add_argument("--dataset", choices=available_datasets(), default="dblp")
    generate.add_argument("--scale", default="small", help="tiny / small / medium / paper")
    generate.add_argument("--seed", type=int, default=0)
    generate.add_argument("--output", type=Path, required=True, help="edge-list file to write")

    disclose = subparsers.add_parser("disclose", help="run the multi-level group-private disclosure")
    disclose.add_argument("--input", type=Path, help="edge-list file (omit to use a synthetic dataset)")
    disclose.add_argument("--dataset", choices=available_datasets(), default="dblp")
    disclose.add_argument("--scale", default="tiny")
    disclose.add_argument("--epsilon-g", type=float, default=1.0, dest="epsilon_g")
    disclose.add_argument("--delta", type=float, default=1e-5)
    disclose.add_argument("--levels", type=int, default=9, help="number of hierarchy levels")
    disclose.add_argument(
        "--mechanism",
        choices=["gaussian", "analytic_gaussian", "laplace", "geometric"],
        default="gaussian",
    )
    disclose.add_argument("--seed", type=int, default=0)
    disclose.add_argument("--output", type=Path, required=True, help="release JSON to write")

    figure1 = subparsers.add_parser("figure1", help="reproduce the paper's Figure 1 table")
    figure1.add_argument("--scale", default="tiny")
    figure1.add_argument("--levels", type=int, default=9)
    figure1.add_argument("--trials", type=int, default=25)
    figure1.add_argument("--seed", type=int, default=20170605)
    figure1.add_argument("--analytic", action="store_true", help="use the closed-form expected RER")
    figure1.add_argument("--output", type=Path, help="optional JSON file for the result")

    return parser


def _cmd_generate(args: argparse.Namespace) -> int:
    graph = load_dataset(args.dataset, scale=args.scale, seed=args.seed)
    path = write_edge_list(graph, args.output)
    print(f"wrote {graph.num_associations()} associations "
          f"({graph.num_left()} x {graph.num_right()} nodes) to {path}")
    return 0


def _cmd_disclose(args: argparse.Namespace) -> int:
    if args.input is not None:
        graph = read_edge_list(args.input, name=args.input.stem)
    else:
        graph = load_dataset(args.dataset, scale=args.scale, seed=args.seed)
    config = DisclosureConfig(
        epsilon_g=args.epsilon_g,
        delta=args.delta,
        mechanism=args.mechanism,
        specialization=SpecializationConfig(num_levels=args.levels),
    )
    release = MultiLevelDiscloser(config=config, rng=args.seed).disclose(graph)
    to_json_file(release.to_dict(), args.output)
    certificate = verify_release(release)
    print(f"wrote release with levels {release.levels()} to {args.output}")
    print("\n".join(certificate.summary_lines()))
    return 0


def _cmd_figure1(args: argparse.Namespace) -> int:
    config = Figure1Config(num_levels=args.levels, num_trials=args.trials, scale=args.scale, seed=args.seed)
    runner = run_figure1_analytic if args.analytic else run_figure1
    result = runner(config=config)
    print(result.format_table())
    if args.output is not None:
        to_json_file(result.to_dict(), args.output)
        print(f"wrote {args.output}")
    return 0


_COMMANDS = {
    "generate": _cmd_generate,
    "disclose": _cmd_disclose,
    "figure1": _cmd_figure1,
}


def main(argv: Optional[List[str]] = None) -> int:
    """Entry point of the ``repro`` console script."""
    parser = build_parser()
    args = parser.parse_args(argv)
    return _COMMANDS[args.command](args)


if __name__ == "__main__":  # pragma: no cover - exercised via the console script
    sys.exit(main())
