"""Multi-level group hierarchies.

The paper forms ``L`` group levels by repeated specialization: the top level
(``L``) is the entire dataset (one group holding every node of the bipartite
graph), each group at level ``i`` is split into (up to) four subgroups at
level ``i - 1`` — two from the left node set and two from the right node set
— and level ``0`` is the individual level where every group is a single node.

:class:`GroupHierarchy` stores one :class:`~repro.grouping.partition.Partition`
per level together with the parent/child relation and validates the
structural invariants:

* every level is a partition of the same universe;
* the children of a group partition exactly that group's members;
* the bottom level consists of singletons.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, FrozenSet, Hashable, Iterable, Iterator, List, Mapping, Optional, Tuple

from repro.exceptions import HierarchyError
from repro.grouping.partition import Group, Partition

Element = Hashable


@dataclass(frozen=True)
class LevelStatistics:
    """Size statistics of one hierarchy level, used in reports and benches."""

    level: int
    num_groups: int
    max_group_size: int
    min_group_size: int
    mean_group_size: float

    def to_dict(self) -> dict:
        """JSON-serialisable representation."""
        return {
            "level": self.level,
            "num_groups": self.num_groups,
            "max_group_size": self.max_group_size,
            "min_group_size": self.min_group_size,
            "mean_group_size": self.mean_group_size,
        }


class GroupHierarchy:
    """An ordered stack of partitions from coarse (top) to fine (bottom).

    Parameters
    ----------
    levels:
        Mapping ``level index -> Partition``.  The largest index is the top
        (coarsest) level; index 0, when present, is the individual level.
    parents:
        Mapping ``child group id -> parent group id`` for consecutive levels.
        When omitted it is inferred by member containment.
    validate:
        Run the structural invariant checks (default ``True``).
    """

    def __init__(
        self,
        levels: Mapping[int, Partition],
        parents: Optional[Mapping[str, str]] = None,
        validate: bool = True,
    ):
        if not levels:
            raise HierarchyError("a hierarchy needs at least one level")
        self._levels: Dict[int, Partition] = dict(sorted(levels.items()))
        self._parents: Dict[str, str] = dict(parents) if parents is not None else {}
        self._children: Dict[str, List[str]] = {}
        if not self._parents:
            self._infer_parents()
        for child, parent in self._parents.items():
            self._children.setdefault(parent, []).append(child)
        if validate:
            self.validate()

    # ------------------------------------------------------------------
    # Construction helpers
    # ------------------------------------------------------------------
    def _infer_parents(self) -> None:
        """Infer the parent relation by member containment between consecutive levels."""
        indices = self.level_indices()
        for lower, upper in zip(indices, indices[1:]):
            child_partition = self._levels[lower]
            parent_partition = self._levels[upper]
            for child in child_partition.groups():
                representative = next(iter(child.members), None)
                if representative is None:
                    continue
                try:
                    parent = parent_partition.group_of(representative)
                except KeyError as exc:
                    raise HierarchyError(
                        f"element {representative!r} of group {child.group_id!r} is missing "
                        f"from level {upper}"
                    ) from exc
                self._parents[child.group_id] = parent.group_id

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def level_indices(self) -> List[int]:
        """Sorted level indices, ascending (finest first)."""
        return sorted(self._levels)

    @property
    def top_level(self) -> int:
        """Index of the coarsest level."""
        return self.level_indices()[-1]

    @property
    def bottom_level(self) -> int:
        """Index of the finest level."""
        return self.level_indices()[0]

    def num_levels(self) -> int:
        """Number of stored levels."""
        return len(self._levels)

    def partition_at(self, level: int) -> Partition:
        """The partition at ``level``."""
        if level not in self._levels:
            raise HierarchyError(f"level {level} not in hierarchy (has {self.level_indices()})")
        return self._levels[level]

    def has_level(self, level: int) -> bool:
        """``True`` when ``level`` exists in the hierarchy."""
        return level in self._levels

    def groups_at(self, level: int) -> List[Group]:
        """All groups at ``level``."""
        return self.partition_at(level).groups()

    def universe(self) -> FrozenSet[Element]:
        """The element universe (taken from the top level)."""
        return self.partition_at(self.top_level).universe()

    def parent_of(self, group_id: str) -> Optional[str]:
        """The parent group id, or ``None`` for top-level groups."""
        return self._parents.get(group_id)

    def children_of(self, group_id: str) -> List[str]:
        """The child group ids (empty for bottom-level groups)."""
        return list(self._children.get(group_id, []))

    def iter_levels(self) -> Iterator[Tuple[int, Partition]]:
        """Iterate ``(level, partition)`` pairs from fine to coarse."""
        for level in self.level_indices():
            yield level, self._levels[level]

    def level_statistics(self) -> List[LevelStatistics]:
        """Per-level size statistics, fine to coarse."""
        stats = []
        for level, partition in self.iter_levels():
            sizes = [len(group) for group in partition.groups()]
            stats.append(
                LevelStatistics(
                    level=level,
                    num_groups=len(sizes),
                    max_group_size=max(sizes) if sizes else 0,
                    min_group_size=min(sizes) if sizes else 0,
                    mean_group_size=(sum(sizes) / len(sizes)) if sizes else 0.0,
                )
            )
        return stats

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"GroupHierarchy(levels={self.level_indices()}, "
            f"universe={len(self.universe())} elements)"
        )

    # ------------------------------------------------------------------
    # Validation
    # ------------------------------------------------------------------
    def validate(self) -> None:
        """Check the hierarchy invariants; raise :class:`HierarchyError` on violation."""
        indices = self.level_indices()
        universe = self.partition_at(indices[-1]).universe()
        for level in indices:
            level_universe = self._levels[level].universe()
            if level_universe != universe:
                raise HierarchyError(
                    f"level {level} covers {len(level_universe)} elements but the top level "
                    f"covers {len(universe)}"
                )
        for lower, upper in zip(indices, indices[1:]):
            child_partition = self._levels[lower]
            parent_partition = self._levels[upper]
            members_by_parent: Dict[str, set] = {g.group_id: set() for g in parent_partition.groups()}
            for child in child_partition.groups():
                parent_id = self._parents.get(child.group_id)
                if parent_id is None:
                    raise HierarchyError(f"group {child.group_id!r} at level {lower} has no parent")
                if parent_id not in members_by_parent:
                    raise HierarchyError(
                        f"group {child.group_id!r} at level {lower} references unknown parent "
                        f"{parent_id!r} at level {upper}"
                    )
                parent_group = parent_partition.group(parent_id)
                if not child.members <= parent_group.members:
                    raise HierarchyError(
                        f"group {child.group_id!r} is not contained in its parent {parent_id!r}"
                    )
                members_by_parent[parent_id].update(child.members)
            for parent_id, covered in members_by_parent.items():
                expected = parent_partition.group(parent_id).members
                if covered != set(expected):
                    raise HierarchyError(
                        f"children of {parent_id!r} cover {len(covered)} of its "
                        f"{len(expected)} members"
                    )

    # ------------------------------------------------------------------
    # Serialization
    # ------------------------------------------------------------------
    def to_dict(self) -> dict:
        """JSON-serialisable representation."""
        return {
            "levels": {str(level): partition.to_dict() for level, partition in self._levels.items()},
            "parents": dict(self._parents),
        }

    @classmethod
    def from_dict(cls, data: Mapping) -> "GroupHierarchy":
        """Inverse of :meth:`to_dict`."""
        levels = {int(level): Partition.from_dict(p) for level, p in data["levels"].items()}
        return cls(levels, parents=data.get("parents") or None)

    # ------------------------------------------------------------------
    # Convenience constructors
    # ------------------------------------------------------------------
    @classmethod
    def two_level(cls, universe: Iterable[Element], top_level: int = 1) -> "GroupHierarchy":
        """The smallest useful hierarchy: one root group over singletons."""
        universe = list(universe)
        bottom = Partition.singletons(universe, level=0)
        top = Partition.trivial(universe, level=top_level)
        return cls({0: bottom, top_level: top})
