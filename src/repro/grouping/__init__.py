"""Universe partitions, group hierarchies and private specialization.

Phase 1 of the paper's disclosure pipeline recursively partitions the node
universe of a bipartite association graph into a multi-level hierarchy of
groups.  This package provides:

* :class:`~repro.grouping.partition.Group` and
  :class:`~repro.grouping.partition.Partition` — the static objects the
  group-adjacency relation and the sensitivity analysis are defined over;
* :class:`~repro.grouping.hierarchy.GroupHierarchy` — the multi-level
  structure (level ``L`` = whole dataset, level ``0`` = individuals);
* score functions (:mod:`repro.grouping.scores`) and splitters
  (:mod:`repro.grouping.splitters`) used to propose and choose binary splits;
* :class:`~repro.grouping.specialization.Specializer` — the
  Exponential-Mechanism-driven recursive splitting procedure, with
  deterministic and random baselines for the ablation study.
"""

from repro.grouping.partition import Group, Partition
from repro.grouping.hierarchy import GroupHierarchy, LevelStatistics
from repro.grouping.attribute_grouping import (
    hierarchy_from_attribute_levels,
    partition_by_attribute,
)
from repro.grouping.scores import (
    BalancedAssociationScore,
    BalanceScore,
    EdgeUniformityScore,
    SplitScore,
)
from repro.grouping.splitters import (
    CandidateSplit,
    DegreeOrderSplitter,
    HashOrderSplitter,
    RandomOrderSplitter,
    Splitter,
)
from repro.grouping.specialization import (
    DeterministicSpecializer,
    RandomSpecializer,
    Specializer,
    SpecializationConfig,
    SpecializationResult,
)

__all__ = [
    "Group",
    "Partition",
    "partition_by_attribute",
    "hierarchy_from_attribute_levels",
    "GroupHierarchy",
    "LevelStatistics",
    "SplitScore",
    "BalanceScore",
    "BalancedAssociationScore",
    "EdgeUniformityScore",
    "Splitter",
    "CandidateSplit",
    "DegreeOrderSplitter",
    "HashOrderSplitter",
    "RandomOrderSplitter",
    "Specializer",
    "DeterministicSpecializer",
    "RandomSpecializer",
    "SpecializationConfig",
    "SpecializationResult",
]
