"""Candidate-split generation for the specialization phase.

A *splitter* turns a set of nodes into a small list of candidate binary
splits; the Exponential Mechanism then chooses among them using a
:class:`~repro.grouping.scores.SplitScore`.  Candidates are generated from a
node ordering (by degree, by hash, or random) with cut points at a handful of
fractions — the classic approach in differentially private hierarchical
decompositions, which keeps the candidate set small and data-independent in
size.
"""

from __future__ import annotations

import abc
import hashlib
from dataclasses import dataclass
from typing import Hashable, List, Sequence, Tuple

import numpy as np

from repro.exceptions import SpecializationError
from repro.graphs.bipartite import BipartiteGraph
from repro.utils.rng import RandomState, as_rng
from repro.utils.validation import check_positive_int

Node = Hashable


@dataclass(frozen=True)
class CandidateSplit:
    """A candidate binary split of a node set into two disjoint parts."""

    part_a: Tuple[Node, ...]
    part_b: Tuple[Node, ...]
    cut_fraction: float = 0.5

    def __post_init__(self):
        overlap = set(self.part_a) & set(self.part_b)
        if overlap:
            raise SpecializationError(f"split parts overlap on {len(overlap)} node(s)")

    def size(self) -> int:
        """Total number of nodes covered by the split."""
        return len(self.part_a) + len(self.part_b)

    def parts(self) -> Tuple[Tuple[Node, ...], Tuple[Node, ...]]:
        """Both parts as a tuple pair."""
        return self.part_a, self.part_b


class Splitter(abc.ABC):
    """Interface for candidate-split generators."""

    def __init__(self, cut_fractions: Sequence[float] = (0.3, 0.4, 0.5, 0.6, 0.7)):
        fractions = [float(f) for f in cut_fractions]
        if not fractions or any(not 0.0 < f < 1.0 for f in fractions):
            raise SpecializationError("cut_fractions must be non-empty values in (0, 1)")
        self.cut_fractions = tuple(fractions)

    @abc.abstractmethod
    def order(self, graph: BipartiteGraph, members: Sequence[Node], rng: RandomState = None) -> List[Node]:
        """Return the node ordering candidate cuts are taken from."""

    def propose(
        self,
        graph: BipartiteGraph,
        members: Sequence[Node],
        rng: RandomState = None,
    ) -> List[CandidateSplit]:
        """Generate candidate binary splits of ``members``.

        At least one candidate is always returned for sets of two or more
        nodes; singletons and empty sets cannot be split and raise
        :class:`SpecializationError`.
        """
        members = list(members)
        if len(members) < 2:
            raise SpecializationError(f"cannot split a set of {len(members)} node(s)")
        ordering = self.order(graph, members, rng=rng)
        candidates: List[CandidateSplit] = []
        seen_cuts = set()
        for fraction in self.cut_fractions:
            cut = int(round(fraction * len(ordering)))
            cut = min(max(cut, 1), len(ordering) - 1)
            if cut in seen_cuts:
                continue
            seen_cuts.add(cut)
            candidates.append(
                CandidateSplit(
                    part_a=tuple(ordering[:cut]),
                    part_b=tuple(ordering[cut:]),
                    cut_fraction=cut / len(ordering),
                )
            )
        return candidates


class DegreeOrderSplitter(Splitter):
    """Order nodes by descending degree (ties broken by node id).

    Cutting a degree-sorted ordering at a middle fraction tends to spread the
    heavy-hitter nodes across both parts' *counts* poorly but makes the split
    deterministic given the graph, which is what the Exponential Mechanism
    needs (the randomness must come from the mechanism, not the candidates).
    """

    def order(self, graph: BipartiteGraph, members: Sequence[Node], rng: RandomState = None) -> List[Node]:
        return sorted(members, key=lambda n: (-graph.degree(n) if graph.has_node(n) else 0, str(n)))


class HashOrderSplitter(Splitter):
    """Order nodes by a salted hash of their id.

    The ordering is data-independent (it ignores the graph structure), which
    keeps the candidate generation itself free of privacy cost; the salt makes
    different hierarchy branches use different orderings.
    """

    def __init__(self, cut_fractions: Sequence[float] = (0.3, 0.4, 0.5, 0.6, 0.7), salt: str = ""):
        super().__init__(cut_fractions)
        self.salt = str(salt)
        # A node is re-ordered once per hierarchy transition, so the salted
        # hash is recomputed O(levels) times without this memo.  The hash is
        # a pure function of (salt, node), making the cache parity-safe.
        self._hash_cache: dict = {}

    def _hash(self, node: Node) -> int:
        cached = self._hash_cache.get(node)
        if cached is None:
            digest = hashlib.sha256(f"{self.salt}::{node}".encode("utf-8")).digest()
            cached = int.from_bytes(digest[:8], "big")
            self._hash_cache[node] = cached
        return cached

    def order(self, graph: BipartiteGraph, members: Sequence[Node], rng: RandomState = None) -> List[Node]:
        return sorted(members, key=lambda n: (self._hash(n), str(n)))


class RandomOrderSplitter(Splitter):
    """Order nodes uniformly at random (seeded).

    Used by the random-specialization ablation baseline; the ordering is not
    a function of the data, so it has no privacy cost, but candidate quality
    is left to chance.
    """

    def order(self, graph: BipartiteGraph, members: Sequence[Node], rng: RandomState = None) -> List[Node]:
        generator = as_rng(rng)
        members = list(members)
        permutation = generator.permutation(len(members))
        return [members[i] for i in permutation]


def split_into_parts(
    graph: BipartiteGraph,
    members: Sequence[Node],
    num_parts: int,
    splitter: Splitter,
    choose,
    rng: RandomState = None,
) -> List[List[Node]]:
    """Split ``members`` into up to ``num_parts`` parts by recursive bisection.

    ``choose`` is a callable ``(candidates) -> CandidateSplit`` (typically a
    closure over an Exponential Mechanism) that picks one candidate split.
    Sets too small to reach ``num_parts`` produce fewer parts; empty input
    produces no parts.
    """
    num_parts = check_positive_int(num_parts, "num_parts")
    members = list(members)
    if not members:
        return []
    parts: List[List[Node]] = [members]
    while len(parts) < num_parts:
        # Split the currently largest part that is still splittable.
        splittable = [p for p in parts if len(p) >= 2]
        if not splittable:
            break
        target = max(splittable, key=len)
        parts.remove(target)
        candidates = splitter.propose(graph, target, rng=rng)
        chosen = choose(candidates)
        parts.append(list(chosen.part_a))
        parts.append(list(chosen.part_b))
    return parts
