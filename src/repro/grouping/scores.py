"""Score (quality) functions for candidate splits.

The Exponential Mechanism needs a score ``q(D, candidate)`` with bounded
sensitivity.  The paper does not spell out the score it uses for
specialization, only that splits are chosen "through an Exponential
Mechanism"; we therefore provide a small family of bounded-sensitivity scores
and make the choice an explicit configuration knob (ablated in experiment
E4 of DESIGN.md).

All scores follow the convention *higher is better*.
"""

from __future__ import annotations

import abc
from typing import Hashable, Sequence

import numpy as np

from repro.graphs.bipartite import BipartiteGraph
from repro.grouping.splitters import CandidateSplit
from repro.utils.validation import check_positive

Node = Hashable


class SplitScore(abc.ABC):
    """Interface for split-quality functions used by the Exponential Mechanism."""

    #: Sensitivity of the score with respect to adding/removing one universe
    #: element.  Subclasses override when their score moves by more than 1.
    sensitivity: float = 1.0

    @abc.abstractmethod
    def score(self, graph: BipartiteGraph, split: CandidateSplit) -> float:
        """Return the quality of ``split`` on ``graph`` (higher is better)."""

    def scores(self, graph: BipartiteGraph, splits: Sequence[CandidateSplit]) -> np.ndarray:
        """Vectorised convenience wrapper around :meth:`score`."""
        return np.array([self.score(graph, split) for split in splits], dtype=float)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"{type(self).__name__}(sensitivity={self.sensitivity})"


class BalanceScore(SplitScore):
    """Prefers splits whose two parts have (nearly) equal **node** counts.

    ``score = -| |A| - |B| |``.  Adding or removing one node changes the
    imbalance by at most one, so the sensitivity is 1.
    """

    sensitivity = 1.0

    def score(self, graph: BipartiteGraph, split: CandidateSplit) -> float:
        return -abs(len(split.part_a) - len(split.part_b))


def _cached_arrays(graph: BipartiteGraph):
    """The graph's compiled array view, if the vectorized engine built one.

    Split scoring is the hottest loop of phase 1 (one score per candidate per
    Exponential-Mechanism round); when the disclosure pipeline runs with
    ``engine="vectorized"`` it compiles :class:`~repro.graphs.arrays.GraphArrays`
    before specialization, and the scores below read degree mass from the
    compiled degree vectors instead of per-node dict lookups.  Both paths
    compute the same integer masses, so the Exponential Mechanism sees
    bit-identical score vectors either way.
    """
    return graph.cached_arrays()


class BalancedAssociationScore(SplitScore):
    """Prefers splits whose two parts carry (nearly) equal **association** mass.

    ``score = -| assoc(A) - assoc(B) | / degree_bound`` where ``assoc(X)`` is
    the number of associations incident to the nodes in ``X`` and
    ``degree_bound`` caps how much one node can move the score, making the
    sensitivity 1 after normalisation.  This is the default specialization
    score: balancing association mass keeps the per-group sensitivities of the
    phase-2 count queries comparable across sibling groups.

    Parameters
    ----------
    degree_bound:
        An upper bound on the degree of any node (nodes with larger degree
        still work; the score simply becomes more conservative).  Defaults to
        50, a typical cap used when releasing association graphs.
    """

    def __init__(self, degree_bound: float = 50.0):
        self.degree_bound = check_positive(degree_bound, "degree_bound")
        self.sensitivity = 1.0

    def _incident(self, graph: BipartiteGraph, nodes) -> int:
        arrays = _cached_arrays(graph)
        if arrays is not None:
            return arrays.degree_mass(nodes)
        return sum(graph.degree(node) for node in nodes if graph.has_node(node))

    def score(self, graph: BipartiteGraph, split: CandidateSplit) -> float:
        mass_a = self._incident(graph, split.part_a)
        mass_b = self._incident(graph, split.part_b)
        return -abs(mass_a - mass_b) / self.degree_bound

    def scores(self, graph: BipartiteGraph, splits: Sequence[CandidateSplit]) -> np.ndarray:
        """Batched scoring of one candidate set.

        Candidates produced by a :class:`~repro.grouping.splitters.Splitter`
        are prefix cuts of one shared node ordering, so with compiled arrays
        a single aligned degree scan plus prefix sums scores every candidate
        — O(n + k) instead of O(n * k).  The masses are exact integers either
        way, so the Exponential Mechanism sees identical scores.
        """
        arrays = _cached_arrays(graph)
        if arrays is None or not splits:
            return super().scores(graph, splits)
        ordering = tuple(splits[0].part_a) + tuple(splits[0].part_b)
        shared_ordering = all(
            tuple(split.part_a) == ordering[: len(split.part_a)]
            and tuple(split.part_b) == ordering[len(split.part_a):]
            for split in splits
        )
        if not shared_ordering:
            return super().scores(graph, splits)
        prefix = np.zeros(len(ordering) + 1, dtype=np.int64)
        np.cumsum(arrays.degrees_aligned(ordering), out=prefix[1:])
        total = int(prefix[-1])
        values = [
            -abs(2 * int(prefix[len(split.part_a)]) - total) / self.degree_bound
            for split in splits
        ]
        return np.array(values, dtype=float)


class EdgeUniformityScore(SplitScore):
    """Prefers splits in which association mass is spread uniformly over nodes.

    ``score = -(std of per-node degree within each part, averaged) /
    degree_bound``.  Useful when downstream queries are per-group counts and
    heavy-hitter nodes should not be concentrated in one subgroup.
    """

    def __init__(self, degree_bound: float = 50.0):
        self.degree_bound = check_positive(degree_bound, "degree_bound")
        self.sensitivity = 1.0

    @staticmethod
    def _degree_std(graph: BipartiteGraph, nodes) -> float:
        arrays = _cached_arrays(graph)
        if arrays is not None:
            degrees_array = arrays.degrees_of(nodes)
            if not degrees_array.size:
                return 0.0
            return float(np.std(degrees_array))
        degrees = [graph.degree(node) for node in nodes if graph.has_node(node)]
        if not degrees:
            return 0.0
        return float(np.std(np.asarray(degrees, dtype=float)))

    def score(self, graph: BipartiteGraph, split: CandidateSplit) -> float:
        std_a = self._degree_std(graph, split.part_a)
        std_b = self._degree_std(graph, split.part_b)
        return -0.5 * (std_a + std_b) / self.degree_bound
