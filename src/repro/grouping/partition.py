"""Groups and partitions of a node universe.

The paper (Definition 3) assumes the universe ``U`` is partitioned into
non-overlapping subgroups ``G = {G1, ..., Gn}``; two datasets are group-level
adjacent if they differ by exactly one whole subgroup.  :class:`Partition`
captures such a grouping, enforces the cover/disjointness invariants, and
provides the lookups the sensitivity analysis needs.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Hashable, Iterable, Iterator, List, Mapping, Optional

from repro.exceptions import InvalidPartitionError, ValidationError

Element = Hashable


@dataclass(frozen=True)
class Group:
    """A named, immutable set of universe elements.

    Parameters
    ----------
    group_id:
        Unique identifier of the group within its partition/hierarchy.  The
        hierarchy uses path-style ids such as ``"L/0/1"`` (left side, first
        split's first child, second child of that).
    members:
        The elements (node ids) belonging to the group.
    side:
        ``"left"``, ``"right"`` or ``"mixed"`` — which side(s) of the
        bipartite graph the members come from.  Purely informational.
    level:
        The hierarchy level the group belongs to, when applicable.
    """

    group_id: str
    members: FrozenSet[Element]
    side: str = "mixed"
    level: Optional[int] = None

    def __post_init__(self):
        if not isinstance(self.group_id, str) or not self.group_id:
            raise ValidationError("group_id must be a non-empty string")
        object.__setattr__(self, "members", frozenset(self.members))
        if self.side not in ("left", "right", "mixed"):
            raise ValidationError(f"side must be 'left', 'right' or 'mixed', got {self.side!r}")

    def __len__(self) -> int:
        return len(self.members)

    def __contains__(self, element: Element) -> bool:
        return element in self.members

    def __iter__(self) -> Iterator[Element]:
        return iter(self.members)

    def is_singleton(self) -> bool:
        """``True`` when the group contains exactly one element."""
        return len(self.members) == 1

    def to_dict(self) -> dict:
        """JSON-serialisable representation (members sorted by string form)."""
        return {
            "group_id": self.group_id,
            "members": sorted(self.members, key=str),
            "side": self.side,
            "level": self.level,
        }

    @classmethod
    def from_dict(cls, data: Mapping) -> "Group":
        """Inverse of :meth:`to_dict`."""
        return cls(
            group_id=data["group_id"],
            members=frozenset(data["members"]),
            side=data.get("side", "mixed"),
            level=data.get("level"),
        )


class Partition:
    """A set of non-overlapping groups covering a universe.

    The constructor validates the two partition invariants from the paper's
    setup: groups are pairwise disjoint, and their union equals the declared
    universe (when a universe is given; otherwise the universe is defined as
    the union of the groups).
    """

    def __init__(self, groups: Iterable[Group], universe: Optional[Iterable[Element]] = None):
        self._groups: Dict[str, Group] = {}
        self._element_to_group: Dict[Element, str] = {}
        for group in groups:
            if not isinstance(group, Group):
                raise ValidationError(f"expected Group, got {type(group).__name__}")
            if group.group_id in self._groups:
                raise InvalidPartitionError(f"duplicate group id {group.group_id!r}")
            for element in group.members:
                if element in self._element_to_group:
                    other = self._element_to_group[element]
                    raise InvalidPartitionError(
                        f"element {element!r} belongs to both {other!r} and {group.group_id!r}"
                    )
                self._element_to_group[element] = group.group_id
            self._groups[group.group_id] = group
        if universe is not None:
            universe_set = set(universe)
            covered = set(self._element_to_group)
            missing = universe_set - covered
            extra = covered - universe_set
            if missing:
                raise InvalidPartitionError(
                    f"partition does not cover {len(missing)} universe element(s), e.g. "
                    f"{sorted(missing, key=str)[:3]!r}"
                )
            if extra:
                raise InvalidPartitionError(
                    f"partition contains {len(extra)} element(s) outside the universe, e.g. "
                    f"{sorted(extra, key=str)[:3]!r}"
                )

    # ------------------------------------------------------------------
    # Constructors
    # ------------------------------------------------------------------
    @classmethod
    def from_mapping(cls, mapping: Mapping[str, Iterable[Element]], level: Optional[int] = None) -> "Partition":
        """Build a partition from ``{group_id: members}``."""
        groups = [Group(group_id=gid, members=frozenset(members), level=level) for gid, members in mapping.items()]
        return cls(groups)

    @classmethod
    def singletons(cls, universe: Iterable[Element], level: Optional[int] = 0, prefix: str = "u") -> "Partition":
        """One group per element — the individual level of the hierarchy."""
        groups = []
        for index, element in enumerate(sorted(set(universe), key=str)):
            groups.append(
                Group(group_id=f"{prefix}:{element}", members=frozenset([element]), level=level)
            )
        return cls(groups)

    @classmethod
    def trivial(cls, universe: Iterable[Element], level: Optional[int] = None, group_id: str = "root") -> "Partition":
        """A single group containing the whole universe — the top level."""
        return cls([Group(group_id=group_id, members=frozenset(universe), level=level)])

    # ------------------------------------------------------------------
    # Lookups
    # ------------------------------------------------------------------
    def groups(self) -> List[Group]:
        """All groups, in insertion order."""
        return list(self._groups.values())

    def group_ids(self) -> List[str]:
        """All group ids, in insertion order."""
        return list(self._groups)

    def group(self, group_id: str) -> Group:
        """Return the group with the given id."""
        if group_id not in self._groups:
            raise KeyError(group_id)
        return self._groups[group_id]

    def group_of(self, element: Element) -> Group:
        """Return the group containing ``element``."""
        group_id = self._element_to_group.get(element)
        if group_id is None:
            raise KeyError(element)
        return self._groups[group_id]

    def contains_element(self, element: Element) -> bool:
        """``True`` when some group contains ``element``."""
        return element in self._element_to_group

    def universe(self) -> FrozenSet[Element]:
        """All covered elements."""
        return frozenset(self._element_to_group)

    def sizes(self) -> Dict[str, int]:
        """Mapping ``group_id -> group size``."""
        return {gid: len(group) for gid, group in self._groups.items()}

    def max_group_size(self) -> int:
        """The size of the largest group (0 for an empty partition)."""
        if not self._groups:
            return 0
        return max(len(group) for group in self._groups.values())

    def num_groups(self) -> int:
        """Number of groups."""
        return len(self._groups)

    def num_elements(self) -> int:
        """Number of covered elements."""
        return len(self._element_to_group)

    def __len__(self) -> int:
        return self.num_groups()

    def __iter__(self) -> Iterator[Group]:
        return iter(self._groups.values())

    def __contains__(self, group_id: str) -> bool:
        return group_id in self._groups

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Partition(groups={self.num_groups()}, elements={self.num_elements()})"

    # ------------------------------------------------------------------
    # Serialization
    # ------------------------------------------------------------------
    def to_dict(self) -> dict:
        """JSON-serialisable representation."""
        return {"groups": [group.to_dict() for group in self._groups.values()]}

    @classmethod
    def from_dict(cls, data: Mapping) -> "Partition":
        """Inverse of :meth:`to_dict`."""
        return cls([Group.from_dict(g) for g in data["groups"]])

    # ------------------------------------------------------------------
    # Derived partitions
    # ------------------------------------------------------------------
    def restricted_to(self, elements: Iterable[Element]) -> "Partition":
        """Intersect every group with ``elements`` and drop empty groups."""
        keep = set(elements)
        groups = []
        for group in self._groups.values():
            members = group.members & keep
            if members:
                groups.append(Group(group.group_id, members, side=group.side, level=group.level))
        return Partition(groups)

    def merged_with(self, other: "Partition") -> "Partition":
        """Union of two partitions over disjoint universes."""
        overlap = self.universe() & other.universe()
        if overlap:
            raise InvalidPartitionError(
                f"cannot merge partitions with {len(overlap)} overlapping element(s)"
            )
        return Partition(self.groups() + other.groups())
