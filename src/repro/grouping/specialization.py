"""Phase 1 of the paper: multi-level specialization of a bipartite graph.

The :class:`Specializer` recursively partitions the node universe of a
bipartite association graph into a :class:`~repro.grouping.hierarchy.GroupHierarchy`
with ``num_levels + 1`` levels:

* level ``num_levels`` (the top) is a single group containing every node;
* each group at level ``i`` is split into up to four subgroups at level
  ``i - 1`` — by default two subgroups drawn from the group's left-side nodes
  and two from its right-side nodes, exactly as described in the paper's
  evaluation setup;
* level ``0`` (optional) is the individual level: one singleton group per
  node.

Every binary split is chosen by the **Exponential Mechanism** over a small
set of candidate splits produced by a :class:`~repro.grouping.splitters.Splitter`
and scored by a :class:`~repro.grouping.scores.SplitScore`, so the published
grouping structure itself satisfies differential privacy.  Two non-private
specializers (:class:`DeterministicSpecializer`, :class:`RandomSpecializer`)
are provided for the ablation study in DESIGN.md (experiment E4).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, Hashable, List, Optional, Sequence, Tuple

from repro.exceptions import SpecializationError, ValidationError
from repro.graphs.bipartite import BipartiteGraph, Side
from repro.grouping.hierarchy import GroupHierarchy
from repro.grouping.partition import Group, Partition
from repro.grouping.scores import BalancedAssociationScore, SplitScore
from repro.grouping.splitters import CandidateSplit, HashOrderSplitter, RandomOrderSplitter, Splitter, split_into_parts
from repro.mechanisms.base import PrivacyCost
from repro.mechanisms.exponential import ExponentialMechanism
from repro.utils.rng import RandomState, as_rng, derive_rng
from repro.utils.validation import check_positive, check_positive_int

Node = Hashable


@dataclass(frozen=True)
class SpecializationConfig:
    """Configuration of the specialization (phase-1) procedure.

    Parameters
    ----------
    num_levels:
        Index of the top level.  The resulting hierarchy has levels
        ``num_levels, num_levels - 1, ..., 1`` and, when
        ``include_individual_level`` is true, level ``0`` as well.  The paper
        uses ``num_levels = 9``.
    left_fanout, right_fanout:
        How many subgroups the left-side and right-side members of a mixed
        group are split into at each level transition (paper: 2 and 2, i.e.
        four subgroups per group).
    single_side_fanout:
        How many subgroups a single-sided group is split into (paper's
        narrative of "4 subgroups per group" is preserved by the default 4).
    epsilon:
        Total privacy budget consumed by the specialization phase (spread
        uniformly over the sequential Exponential-Mechanism rounds).
    min_group_size:
        Groups at or below this size are carried down unchanged instead of
        being split further.
    include_individual_level:
        Whether to materialise level 0 (one singleton group per node).
    cut_fractions:
        Candidate cut positions handed to the splitter.
    """

    num_levels: int = 9
    left_fanout: int = 2
    right_fanout: int = 2
    single_side_fanout: int = 4
    epsilon: float = 1.0
    min_group_size: int = 2
    include_individual_level: bool = True
    cut_fractions: Tuple[float, ...] = (0.3, 0.4, 0.5, 0.6, 0.7)

    def __post_init__(self):
        check_positive_int(self.num_levels, "num_levels")
        check_positive_int(self.left_fanout, "left_fanout")
        check_positive_int(self.right_fanout, "right_fanout")
        check_positive_int(self.single_side_fanout, "single_side_fanout")
        check_positive(self.epsilon, "epsilon")
        check_positive_int(self.min_group_size, "min_group_size")
        if self.num_levels < 1:
            raise ValidationError("num_levels must be at least 1")

    def num_transitions(self) -> int:
        """Number of level transitions produced by splitting (top .. 1)."""
        return self.num_levels - 1

    def rounds_per_transition(self) -> int:
        """Sequential Exponential-Mechanism rounds needed per transition.

        Splits of disjoint node sets compose in parallel, so the sequential
        depth of one transition is the number of recursive-bisection rounds
        needed to reach the largest fanout.
        """
        max_fanout = max(self.left_fanout, self.right_fanout, self.single_side_fanout)
        return max(1, math.ceil(math.log2(max_fanout)))

    def total_rounds(self) -> int:
        """Total sequential Exponential-Mechanism rounds across the hierarchy."""
        return max(1, self.num_transitions() * self.rounds_per_transition())

    def epsilon_per_round(self) -> float:
        """Budget available to each sequential round."""
        return self.epsilon / self.total_rounds()

    def to_dict(self) -> dict:
        """JSON-serialisable representation."""
        return {
            "num_levels": self.num_levels,
            "left_fanout": self.left_fanout,
            "right_fanout": self.right_fanout,
            "single_side_fanout": self.single_side_fanout,
            "epsilon": self.epsilon,
            "min_group_size": self.min_group_size,
            "include_individual_level": self.include_individual_level,
            "cut_fractions": list(self.cut_fractions),
        }

    @classmethod
    def from_dict(cls, data: dict) -> "SpecializationConfig":
        """Rebuild from :meth:`to_dict` output (unknown keys are ignored,
        missing keys fall back to the defaults — old stored configs load)."""
        kwargs = {
            key: data[key]
            for key in (
                "num_levels",
                "left_fanout",
                "right_fanout",
                "single_side_fanout",
                "epsilon",
                "min_group_size",
                "include_individual_level",
            )
            if key in data
        }
        if data.get("cut_fractions") is not None:
            kwargs["cut_fractions"] = tuple(data["cut_fractions"])
        return cls(**kwargs)


@dataclass
class SpecializationResult:
    """Output of a specialization run."""

    hierarchy: GroupHierarchy
    privacy_cost: PrivacyCost
    num_selections: int
    config: SpecializationConfig
    method: str = "exponential"

    def to_dict(self) -> dict:
        """JSON-serialisable representation (hierarchy included)."""
        return {
            "method": self.method,
            "privacy_cost": self.privacy_cost.to_dict(),
            "num_selections": self.num_selections,
            "config": self.config.to_dict(),
            "hierarchy": self.hierarchy.to_dict(),
        }


class Specializer:
    """Exponential-Mechanism-driven multi-level specialization.

    Parameters
    ----------
    config:
        A :class:`SpecializationConfig` (defaults reproduce the paper setup).
    score:
        The split-quality function (default
        :class:`~repro.grouping.scores.BalancedAssociationScore`).
    splitter:
        Candidate generator (default
        :class:`~repro.grouping.splitters.HashOrderSplitter`).
    rng:
        Seed, generator, or ``None``.
    """

    method_name = "exponential"

    def __init__(
        self,
        config: Optional[SpecializationConfig] = None,
        score: Optional[SplitScore] = None,
        splitter: Optional[Splitter] = None,
        rng: RandomState = None,
    ):
        self.config = config if config is not None else SpecializationConfig()
        self.score = score if score is not None else BalancedAssociationScore()
        self.splitter = (
            splitter
            if splitter is not None
            else HashOrderSplitter(cut_fractions=self.config.cut_fractions)
        )
        self._rng = derive_rng(rng, "specialization")
        self._selections = 0

    # ------------------------------------------------------------------
    # Split selection (overridden by the non-private baselines)
    # ------------------------------------------------------------------
    def _choose(self, graph: BipartiteGraph, candidates: Sequence[CandidateSplit]) -> CandidateSplit:
        """Pick one candidate split with the Exponential Mechanism."""
        mechanism = ExponentialMechanism(
            epsilon=self.config.epsilon_per_round(),
            score_sensitivity=self.score.sensitivity,
            rng=self._rng,
        )
        scores = self.score.scores(graph, list(candidates))
        self._selections += 1
        return mechanism.select(list(candidates), scores=scores)

    def _privacy_cost(self) -> PrivacyCost:
        """Total cost of the specialization phase."""
        return PrivacyCost(self.config.epsilon, 0.0)

    # ------------------------------------------------------------------
    # Hierarchy construction
    # ------------------------------------------------------------------
    def build(self, graph: BipartiteGraph) -> SpecializationResult:
        """Run the specialization and return the resulting hierarchy.

        Raises :class:`SpecializationError` for empty graphs.
        """
        if graph.num_nodes() == 0:
            raise SpecializationError("cannot specialize an empty graph")
        self._selections = 0
        config = self.config
        top = config.num_levels

        left_nodes = set(graph.left_nodes())
        right_nodes = set(graph.right_nodes())
        universe = left_nodes | right_nodes

        levels: Dict[int, Partition] = {}
        parents: Dict[str, str] = {}

        root = Group(group_id="root", members=frozenset(universe), side="mixed", level=top)
        levels[top] = Partition([root])

        current_groups = [root]
        for level in range(top - 1, 0, -1):
            next_groups: List[Group] = []
            for parent in current_groups:
                children = self._split_group(graph, parent, level, left_nodes, right_nodes)
                for child in children:
                    parents[child.group_id] = parent.group_id
                next_groups.extend(children)
            levels[level] = Partition(next_groups)
            current_groups = next_groups

        if config.include_individual_level:
            singleton_groups: List[Group] = []
            for parent in current_groups:
                side = parent.side
                for member in sorted(parent.members, key=str):
                    member_side = side
                    if member_side == "mixed":
                        member_side = "left" if member in left_nodes else "right"
                    child = Group(
                        group_id=f"u:{member}",
                        members=frozenset([member]),
                        side=member_side,
                        level=0,
                    )
                    parents[child.group_id] = parent.group_id
                    singleton_groups.append(child)
            levels[0] = Partition(singleton_groups)

        hierarchy = GroupHierarchy(levels, parents=parents, validate=True)
        return SpecializationResult(
            hierarchy=hierarchy,
            privacy_cost=self._privacy_cost(),
            num_selections=self._selections,
            config=config,
            method=self.method_name,
        )

    def _split_group(
        self,
        graph: BipartiteGraph,
        parent: Group,
        child_level: int,
        left_nodes: set,
        right_nodes: set,
    ) -> List[Group]:
        """Split ``parent`` into its children at ``child_level``."""
        config = self.config
        members = list(parent.members)
        if len(members) <= config.min_group_size:
            return [
                Group(
                    group_id=f"{parent.group_id}/0",
                    members=parent.members,
                    side=parent.side,
                    level=child_level,
                )
            ]

        left_members = sorted((m for m in members if m in left_nodes), key=str)
        right_members = sorted((m for m in members if m in right_nodes), key=str)

        def choose(candidates: Sequence[CandidateSplit]) -> CandidateSplit:
            return self._choose(graph, candidates)

        parts: List[Tuple[str, List[Node]]] = []
        if left_members and right_members:
            left_parts = self._split_side(graph, left_members, config.left_fanout, choose)
            right_parts = self._split_side(graph, right_members, config.right_fanout, choose)
            parts.extend(("left", part) for part in left_parts)
            parts.extend(("right", part) for part in right_parts)
        else:
            side = "left" if left_members else "right"
            only = left_members if left_members else right_members
            side_parts = self._split_side(graph, only, config.single_side_fanout, choose)
            parts.extend((side, part) for part in side_parts)

        children: List[Group] = []
        for index, (side, part) in enumerate(parts):
            if not part:
                continue
            children.append(
                Group(
                    group_id=f"{parent.group_id}/{index}",
                    members=frozenset(part),
                    side=side,
                    level=child_level,
                )
            )
        if not children:  # pragma: no cover - defensive; members >= 2 guarantees parts
            children.append(
                Group(
                    group_id=f"{parent.group_id}/0",
                    members=parent.members,
                    side=parent.side,
                    level=child_level,
                )
            )
        return children

    def _split_side(
        self,
        graph: BipartiteGraph,
        members: List[Node],
        fanout: int,
        choose,
    ) -> List[List[Node]]:
        """Split one side of a group into up to ``fanout`` parts."""
        if not members:
            return []
        if len(members) < 2 or fanout < 2:
            return [list(members)]
        return split_into_parts(graph, members, fanout, self.splitter, choose, rng=self._rng)


class DeterministicSpecializer(Specializer):
    """Non-private baseline: always take the most balanced (median) candidate.

    Because the split choice is a deterministic function of the data it does
    not satisfy differential privacy; the reported privacy cost is infinite.
    Used in the E4 ablation to isolate how much utility the Exponential
    Mechanism's randomness costs.
    """

    method_name = "deterministic"

    def _choose(self, graph: BipartiteGraph, candidates: Sequence[CandidateSplit]) -> CandidateSplit:
        self._selections += 1
        return min(candidates, key=lambda c: abs(c.cut_fraction - 0.5))

    def _privacy_cost(self) -> PrivacyCost:
        return PrivacyCost(math.inf, 0.0)


class RandomSpecializer(Specializer):
    """Data-independent baseline: random orderings, uniformly random candidate.

    The choice never looks at the data, so the specialization phase costs no
    privacy budget; utility of the resulting grouping is left to chance.
    """

    method_name = "random"

    def __init__(
        self,
        config: Optional[SpecializationConfig] = None,
        score: Optional[SplitScore] = None,
        splitter: Optional[Splitter] = None,
        rng: RandomState = None,
    ):
        config = config if config is not None else SpecializationConfig()
        splitter = splitter if splitter is not None else RandomOrderSplitter(cut_fractions=config.cut_fractions)
        super().__init__(config=config, score=score, splitter=splitter, rng=rng)

    def _choose(self, graph: BipartiteGraph, candidates: Sequence[CandidateSplit]) -> CandidateSplit:
        self._selections += 1
        index = int(self._rng.integers(0, len(candidates)))
        return list(candidates)[index]

    def _privacy_cost(self) -> PrivacyCost:
        return PrivacyCost(0.0, 0.0)
