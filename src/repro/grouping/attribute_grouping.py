"""Attribute-driven partitions and hierarchies.

The paper's motivating examples define groups *semantically* — "the buyers in
a given neighbourhood represented by a zipcode" — rather than through the
private specialization procedure.  This module builds
:class:`~repro.grouping.partition.Partition` and
:class:`~repro.grouping.hierarchy.GroupHierarchy` objects directly from node
attributes, so a publisher can protect exactly those semantic groups:

* :func:`partition_by_attribute` — one group per attribute value on one side
  of the graph (the other side can be kept as a single reference group or
  partitioned by its own attribute);
* :func:`hierarchy_from_attribute_levels` — a multi-level hierarchy from a
  list of progressively coarser attributes (e.g. ``["zipcode", "city",
  "state"]``), with the individual level below and the whole dataset above.

Attribute-defined groupings cost no privacy budget (the attribute values are
taken to be public metadata, as zipcodes are); the sensitive quantity remains
the association structure, which is still released only through calibrated
noise.
"""

from __future__ import annotations

from typing import Dict, Hashable, List, Optional, Sequence

from repro.exceptions import GroupingError
from repro.graphs.bipartite import BipartiteGraph, Side
from repro.grouping.hierarchy import GroupHierarchy
from repro.grouping.partition import Group, Partition

Node = Hashable

#: Attribute value assigned to nodes that lack the attribute.
MISSING_VALUE = "__missing__"


def _attribute_value(graph: BipartiteGraph, node: Node, attribute: str) -> str:
    value = graph.node_attributes(node).get(attribute, MISSING_VALUE)
    return str(value)


def partition_by_attribute(
    graph: BipartiteGraph,
    attribute: str,
    side: Side = Side.LEFT,
    include_other_side: bool = True,
    other_side_group_id: str = "other-side",
    level: Optional[int] = None,
) -> Partition:
    """One group per value of ``attribute`` among the nodes of ``side``.

    Parameters
    ----------
    graph:
        The association graph.
    attribute:
        Node-attribute name (e.g. ``"zipcode"``); nodes missing it are
        collected in a ``__missing__`` group.
    side:
        Which side carries the attribute.
    include_other_side:
        When true (default) the opposite side's nodes are added as one extra
        group, so the partition covers the whole node universe and can be used
        directly as a protection partition for the global count query.
    other_side_group_id:
        Group id of that extra group.
    level:
        Optional hierarchy level recorded on the groups.
    """
    side = Side(side)
    nodes = graph.left_nodes() if side is Side.LEFT else graph.right_nodes()
    by_value: Dict[str, set] = {}
    for node in nodes:
        by_value.setdefault(_attribute_value(graph, node, attribute), set()).add(node)
    if not by_value:
        raise GroupingError(f"graph has no {side.value}-side nodes to partition")
    groups = [
        Group(
            group_id=f"{attribute}:{value}",
            members=frozenset(members),
            side=side.value,
            level=level,
        )
        for value, members in sorted(by_value.items())
    ]
    if include_other_side:
        other_nodes = graph.right_nodes() if side is Side.LEFT else graph.left_nodes()
        other_members = frozenset(other_nodes)
        if other_members:
            groups.append(
                Group(
                    group_id=other_side_group_id,
                    members=other_members,
                    side=side.other().value,
                    level=level,
                )
            )
    return Partition(groups)


def hierarchy_from_attribute_levels(
    graph: BipartiteGraph,
    attributes: Sequence[str],
    side: Side = Side.LEFT,
    include_individual_level: bool = True,
) -> GroupHierarchy:
    """Build a hierarchy from progressively coarser attributes.

    ``attributes[0]`` defines the finest grouping level (level 1),
    ``attributes[-1]`` the coarsest attribute level; the whole dataset sits
    one level above that, and level 0 (optional) holds the individuals.

    The attribute sequence must be *hierarchically consistent*: every value of
    ``attributes[k]`` must map to exactly one value of ``attributes[k+1]``
    (e.g. each zipcode lies in one city).  A :class:`GroupingError` is raised
    otherwise, because inconsistent levels would not form a tree.

    Parameters
    ----------
    graph:
        The association graph.
    attributes:
        Attribute names, finest first (e.g. ``["zipcode", "city", "state"]``).
    side:
        The side carrying the attributes; the opposite side is kept as a
        single reference group at every attribute level.
    include_individual_level:
        Whether to materialise the singleton level 0.
    """
    if not attributes:
        raise GroupingError("at least one attribute is required")
    side = Side(side)

    levels: Dict[int, Partition] = {}
    parents: Dict[str, str] = {}

    top_level = len(attributes) + 1
    universe = list(graph.nodes())
    levels[top_level] = Partition.trivial(universe, level=top_level, group_id="root")

    # Attribute levels: finest attribute is level 1, coarsest is len(attributes).
    for index, attribute in enumerate(attributes):
        level = index + 1
        levels[level] = partition_by_attribute(
            graph,
            attribute,
            side=side,
            include_other_side=True,
            other_side_group_id=f"other-side@{level}",
            level=level,
        )

    # Consistency + parent links between consecutive attribute levels.
    side_nodes = list(graph.left_nodes() if side is Side.LEFT else graph.right_nodes())
    for index in range(len(attributes) - 1):
        fine_attr, coarse_attr = attributes[index], attributes[index + 1]
        fine_to_coarse: Dict[str, str] = {}
        for node in side_nodes:
            fine_value = _attribute_value(graph, node, fine_attr)
            coarse_value = _attribute_value(graph, node, coarse_attr)
            previous = fine_to_coarse.setdefault(fine_value, coarse_value)
            if previous != coarse_value:
                raise GroupingError(
                    f"attribute {fine_attr!r} value {fine_value!r} maps to both "
                    f"{previous!r} and {coarse_value!r} of {coarse_attr!r}; levels must nest"
                )
        for fine_value, coarse_value in fine_to_coarse.items():
            parents[f"{fine_attr}:{fine_value}"] = f"{coarse_attr}:{coarse_value}"
        parents[f"other-side@{index + 1}"] = f"other-side@{index + 2}"

    # Coarsest attribute level -> root.
    for group in levels[len(attributes)].groups():
        parents[group.group_id] = "root"

    # Individual level.
    if include_individual_level:
        finest = levels[1]
        singleton_groups: List[Group] = []
        for group in finest.groups():
            for member in sorted(group.members, key=str):
                child = Group(
                    group_id=f"u:{member}",
                    members=frozenset([member]),
                    side=group.side,
                    level=0,
                )
                parents[child.group_id] = group.group_id
                singleton_groups.append(child)
        levels[0] = Partition(singleton_groups)

    return GroupHierarchy(levels, parents=parents, validate=True)
