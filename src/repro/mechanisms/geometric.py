"""The (two-sided) geometric mechanism.

A discrete analogue of the Laplace mechanism: noise is drawn from the
two-sided geometric distribution, so integer-valued count queries stay
integer-valued.  Useful as a baseline when releasing small association counts
where post-processing rounding of Laplace noise would bias the answer.
"""

from __future__ import annotations

from typing import Union

import numpy as np

from repro.mechanisms.base import NumericMechanism, PrivacyCost
from repro.mechanisms.calibration import geometric_alpha
from repro.utils.rng import RandomState
from repro.utils.validation import check_positive


class GeometricMechanism(NumericMechanism):
    """Add two-sided geometric noise for pure epsilon-DP on integer queries.

    The noise takes value ``k`` (any integer) with probability proportional to
    ``alpha^{|k|}`` where ``alpha = exp(-epsilon / sensitivity)``.
    """

    def __init__(self, epsilon: float, sensitivity: float = 1.0, rng: RandomState = None):
        super().__init__(rng=rng)
        self.epsilon = check_positive(epsilon, "epsilon")
        self.sensitivity = check_positive(sensitivity, "sensitivity")
        self.alpha = geometric_alpha(self.epsilon, self.sensitivity)

    def noise_scale(self) -> float:
        """Standard deviation of the two-sided geometric noise."""
        a = self.alpha
        return float(np.sqrt(2.0 * a) / (1.0 - a)) if a > 0 else 0.0

    def noise_variance(self) -> float:
        """Var[noise] = 2 alpha / (1 - alpha)^2."""
        a = self.alpha
        return 2.0 * a / (1.0 - a) ** 2

    def sample_noise(self, size=None) -> Union[float, np.ndarray]:
        """Draw two-sided geometric noise.

        Sampling uses the difference of two i.i.d. geometric variables, which
        has exactly the two-sided geometric distribution with parameter
        ``alpha``.
        """
        p = 1.0 - self.alpha
        if size is None:
            g1 = self.rng.geometric(p) - 1
            g2 = self.rng.geometric(p) - 1
            return float(g1 - g2)
        g1 = self.rng.geometric(p, size=size) - 1
        g2 = self.rng.geometric(p, size=size) - 1
        return (g1 - g2).astype(float)

    def randomise(self, value):
        """Perturb an integer-valued answer; the result stays integral."""
        if np.isscalar(value):
            return float(value) + self.sample_noise()
        array = np.asarray(value, dtype=float)
        return array + self.sample_noise(size=array.shape)

    def privacy_cost(self) -> PrivacyCost:
        """Pure epsilon-DP."""
        return PrivacyCost(self.epsilon, 0.0)
