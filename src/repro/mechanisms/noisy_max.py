"""Report-Noisy-Max: a selection mechanism built on additive noise.

Provided as an alternative to the Exponential Mechanism for the phase-1
specialization ablation: it adds independent Laplace (or Gumbel) noise to the
candidate scores and reports the arg-max.  With Gumbel noise it is exactly
equivalent to the Exponential Mechanism; with Laplace noise (scale
``2 * sensitivity / epsilon``) it satisfies the same epsilon-DP guarantee.
"""

from __future__ import annotations

from typing import Hashable, Optional, Sequence

import numpy as np

from repro.exceptions import ValidationError
from repro.mechanisms.base import Mechanism, PrivacyCost
from repro.utils.rng import RandomState
from repro.utils.validation import check_positive

Candidate = Hashable


class ReportNoisyMax(Mechanism):
    """Select the candidate whose noisy score is largest.

    Parameters
    ----------
    epsilon:
        Privacy budget per selection.
    score_sensitivity:
        Sensitivity of the score function.
    noise:
        ``"laplace"`` (default) or ``"gumbel"``.
    """

    _VALID_NOISE = ("laplace", "gumbel")

    def __init__(
        self,
        epsilon: float,
        score_sensitivity: float = 1.0,
        noise: str = "laplace",
        rng: RandomState = None,
    ):
        super().__init__(rng=rng)
        self.epsilon = check_positive(epsilon, "epsilon")
        self.score_sensitivity = check_positive(score_sensitivity, "score_sensitivity")
        if noise not in self._VALID_NOISE:
            raise ValidationError(f"noise must be one of {self._VALID_NOISE}, got {noise!r}")
        self.noise = noise

    def _noisy_scores(self, scores: np.ndarray) -> np.ndarray:
        if self.noise == "laplace":
            scale = 2.0 * self.score_sensitivity / self.epsilon
            return scores + self.rng.laplace(0.0, scale, size=scores.shape)
        # Gumbel noise with scale 2*sensitivity/epsilon reproduces the
        # Exponential Mechanism's selection distribution exactly.
        scale = 2.0 * self.score_sensitivity / self.epsilon
        return scores + self.rng.gumbel(0.0, scale, size=scores.shape)

    def select_index(self, scores: Sequence[float]) -> int:
        """Return the index of the noisy arg-max."""
        array = np.asarray(list(scores), dtype=float)
        if array.size == 0:
            raise ValidationError("at least one candidate is required")
        if not np.all(np.isfinite(array)):
            raise ValidationError("scores must be finite")
        return int(np.argmax(self._noisy_scores(array)))

    def select(self, candidates: Sequence[Candidate], scores: Sequence[float]) -> Candidate:
        """Select one of ``candidates`` given their ``scores``."""
        candidates = list(candidates)
        if len(candidates) != len(list(scores)):
            raise ValidationError("candidates and scores must have equal length")
        return candidates[self.select_index(scores)]

    def privacy_cost(self) -> PrivacyCost:
        """Pure epsilon-DP per selection."""
        return PrivacyCost(self.epsilon, 0.0)
