"""Randomized response for binary attributes.

Not used by the disclosure pipeline directly, but part of the mechanism
library because the individual-DP baseline and the examples use it to
privately release *individual* association indicators ("did Bob buy
insulin?") alongside the group-level aggregates.
"""

from __future__ import annotations

import math
from typing import Union

import numpy as np

from repro.mechanisms.base import Mechanism, PrivacyCost
from repro.utils.rng import RandomState
from repro.utils.validation import check_positive


class RandomizedResponse(Mechanism):
    """Warner-style randomized response over {0, 1} values.

    Each true bit is reported truthfully with probability
    ``p = e^epsilon / (1 + e^epsilon)`` and flipped otherwise, which satisfies
    epsilon-DP for a single binary attribute.
    """

    def __init__(self, epsilon: float, rng: RandomState = None):
        super().__init__(rng=rng)
        self.epsilon = check_positive(epsilon, "epsilon")
        self.p_truth = math.exp(self.epsilon) / (1.0 + math.exp(self.epsilon))

    def randomise(self, value: Union[int, bool, np.ndarray]):
        """Perturb a bit or array of bits; returns int(s) in {0, 1}."""
        if np.isscalar(value):
            bit = int(bool(value))
            keep = self.rng.uniform() < self.p_truth
            return bit if keep else 1 - bit
        bits = np.asarray(value).astype(int)
        if not np.isin(bits, (0, 1)).all():
            raise ValueError("randomized response requires binary inputs")
        keep = self.rng.uniform(size=bits.shape) < self.p_truth
        return np.where(keep, bits, 1 - bits)

    randomize = randomise

    def estimate_frequency(self, reported: np.ndarray) -> float:
        """Debias the mean of reported bits back to an estimate of the true mean.

        With truth probability ``p``, ``E[reported] = p q + (1-p)(1-q)`` for a
        true frequency ``q``; inverting gives the unbiased estimator below.
        """
        reported = np.asarray(reported, dtype=float)
        if reported.size == 0:
            return 0.0
        mean = float(reported.mean())
        p = self.p_truth
        return (mean - (1.0 - p)) / (2.0 * p - 1.0)

    def privacy_cost(self) -> PrivacyCost:
        """Pure epsilon-DP per bit."""
        return PrivacyCost(self.epsilon, 0.0)
