"""Gaussian mechanisms (classic and analytic calibration).

The paper's phase-2 noise injection uses the Gaussian Mechanism of
Dwork & Roth to perturb association counts at each group level, with the
noise calibrated to the *group-level* sensitivity of the count query.
"""

from __future__ import annotations

from typing import Union

import numpy as np

from repro.mechanisms.base import NumericMechanism, PrivacyCost
from repro.mechanisms.calibration import analytic_gaussian_sigma, gaussian_sigma
from repro.utils.rng import RandomState
from repro.utils.validation import check_fraction, check_positive


class GaussianMechanism(NumericMechanism):
    """Classic Gaussian mechanism (Dwork–Roth Theorem A.1).

    Adds ``N(0, sigma^2)`` noise with
    ``sigma = sensitivity * sqrt(2 ln(1.25/delta)) / epsilon`` and guarantees
    ``(epsilon, delta)``-differential privacy under the adjacency relation the
    ``sensitivity`` (an L2 sensitivity) was computed for.

    Parameters
    ----------
    epsilon:
        Privacy budget per invocation.
    delta:
        Failure probability; must be in (0, 1).
    sensitivity:
        L2 sensitivity of the query.
    rng:
        Seed, generator, or ``None``.
    """

    def __init__(
        self,
        epsilon: float,
        delta: float = 1e-5,
        sensitivity: float = 1.0,
        rng: RandomState = None,
    ):
        super().__init__(rng=rng)
        self.epsilon = check_positive(epsilon, "epsilon")
        self.delta = check_fraction(delta, "delta")
        self.sensitivity = check_positive(sensitivity, "sensitivity")
        self._sigma = self._calibrate()

    def _calibrate(self) -> float:
        return gaussian_sigma(self.epsilon, self.delta, self.sensitivity)

    @property
    def sigma(self) -> float:
        """The standard deviation of the injected Gaussian noise."""
        return self._sigma

    def noise_scale(self) -> float:
        """Alias of :attr:`sigma` satisfying the :class:`NumericMechanism` API."""
        return self._sigma

    def expected_absolute_error(self) -> float:
        """E[|noise|] = sigma * sqrt(2/pi) for Gaussian noise."""
        return self._sigma * float(np.sqrt(2.0 / np.pi))

    def noise_variance(self) -> float:
        """Var[noise] = sigma^2."""
        return self._sigma**2

    def sample_noise(self, size=None) -> Union[float, np.ndarray]:
        """Draw ``N(0, sigma^2)`` noise."""
        noise = self.rng.normal(loc=0.0, scale=self._sigma, size=size)
        return float(noise) if size is None else noise

    def privacy_cost(self) -> PrivacyCost:
        """Approximate DP: cost is ``(epsilon, delta)``."""
        return PrivacyCost(self.epsilon, self.delta)


class AnalyticGaussianMechanism(GaussianMechanism):
    """Gaussian mechanism with the tight calibration of Balle & Wang (2018).

    Drop-in replacement for :class:`GaussianMechanism`; for the same
    ``(epsilon, delta)`` it injects strictly less noise, and it remains valid
    for ``epsilon >= 1``.  Used in the mechanism ablation (experiment E5).
    """

    def _calibrate(self) -> float:
        return analytic_gaussian_sigma(self.epsilon, self.delta, self.sensitivity)
