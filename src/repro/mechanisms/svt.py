"""Sparse Vector Technique (AboveThreshold).

Used by the extension experiments: a publisher that wants to release *only*
the information levels whose group sensitivity stays below a utility
threshold can make that selection itself differentially private with
AboveThreshold, paying a constant budget regardless of how many levels are
examined.  The implementation follows Dwork & Roth (2014), Algorithm 1
(``AboveThreshold``) and its multi-query variant (``Sparse``).
"""

from __future__ import annotations

from typing import Iterable, List, Optional, Sequence

import numpy as np

from repro.exceptions import ValidationError
from repro.mechanisms.base import Mechanism, PrivacyCost
from repro.utils.rng import RandomState
from repro.utils.validation import check_positive, check_positive_int


class AboveThreshold(Mechanism):
    """Report which queries (in order) exceed a noisy threshold.

    Parameters
    ----------
    epsilon:
        Total budget of the run (split between the threshold noise and the
        per-query noise, as in the textbook analysis).
    threshold:
        The public threshold ``T``.
    sensitivity:
        Sensitivity of each individual query under the protected adjacency.
    max_positives:
        Stop after this many above-threshold reports (the classic
        AboveThreshold corresponds to 1; larger values give the ``Sparse``
        variant, whose budget scales with this count).
    """

    def __init__(
        self,
        epsilon: float,
        threshold: float,
        sensitivity: float = 1.0,
        max_positives: int = 1,
        rng: RandomState = None,
    ):
        super().__init__(rng=rng)
        self.epsilon = check_positive(epsilon, "epsilon")
        self.threshold = float(threshold)
        self.sensitivity = check_positive(sensitivity, "sensitivity")
        self.max_positives = check_positive_int(max_positives, "max_positives")
        # Budget split of Dwork-Roth: half to the threshold, half to answers,
        # the answer half further divided across the allowed positives.
        self._epsilon_threshold = self.epsilon / 2.0
        self._epsilon_queries = self.epsilon / 2.0

    def run(self, answers: Sequence[float]) -> List[bool]:
        """Return one boolean per query answer: did it (noisily) exceed the threshold?

        Processing stops (remaining answers reported ``False``) once
        ``max_positives`` above-threshold results have been emitted, which is
        what keeps the privacy cost independent of the number of queries.
        """
        answers = [float(a) for a in answers]
        if not answers:
            raise ValidationError("at least one query answer is required")
        results: List[bool] = []
        positives = 0
        noisy_threshold = self.threshold + self.rng.laplace(
            0.0, 2.0 * self.sensitivity / self._epsilon_threshold
        )
        per_positive_epsilon = self._epsilon_queries / self.max_positives
        for answer in answers:
            if positives >= self.max_positives:
                results.append(False)
                continue
            noisy_answer = answer + self.rng.laplace(
                0.0, 4.0 * self.sensitivity / per_positive_epsilon
            )
            if noisy_answer >= noisy_threshold:
                results.append(True)
                positives += 1
                # Re-draw the threshold noise after each positive, as in Sparse.
                noisy_threshold = self.threshold + self.rng.laplace(
                    0.0, 2.0 * self.sensitivity / self._epsilon_threshold
                )
            else:
                results.append(False)
        return results

    def first_above(self, answers: Sequence[float]) -> Optional[int]:
        """Index of the first above-threshold query, or ``None``."""
        for index, flag in enumerate(self.run(answers)):
            if flag:
                return index
        return None

    def privacy_cost(self) -> PrivacyCost:
        """Pure epsilon-DP, independent of the number of queries examined."""
        return PrivacyCost(self.epsilon, 0.0)
