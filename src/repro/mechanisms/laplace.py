"""The Laplace mechanism (Dwork et al., TCC 2006)."""

from __future__ import annotations

from typing import Optional, Union

import numpy as np

from repro.mechanisms.base import NumericMechanism, PrivacyCost
from repro.mechanisms.calibration import laplace_scale
from repro.utils.rng import RandomState
from repro.utils.validation import check_positive


class LaplaceMechanism(NumericMechanism):
    """Add Laplace noise calibrated to the L1 sensitivity of a query.

    Guarantees pure ``epsilon``-differential privacy with respect to whatever
    adjacency relation the supplied ``sensitivity`` was computed under
    (individual-level or group-level — the mechanism itself is agnostic).

    Parameters
    ----------
    epsilon:
        Privacy budget spent per invocation.
    sensitivity:
        L1 sensitivity of the query under the chosen adjacency relation.
    rng:
        Seed, generator, or ``None``.

    Examples
    --------
    >>> mech = LaplaceMechanism(epsilon=1.0, sensitivity=1.0, rng=0)
    >>> noisy = mech.randomise(100)
    >>> isinstance(noisy, float)
    True
    """

    def __init__(self, epsilon: float, sensitivity: float = 1.0, rng: RandomState = None):
        super().__init__(rng=rng)
        self.epsilon = check_positive(epsilon, "epsilon")
        self.sensitivity = check_positive(sensitivity, "sensitivity")
        self._scale = laplace_scale(self.epsilon, self.sensitivity)

    def noise_scale(self) -> float:
        """The Laplace scale parameter ``b = sensitivity / epsilon``."""
        return self._scale

    def expected_absolute_error(self) -> float:
        """E[|noise|] = b for Laplace noise."""
        return self._scale

    def noise_variance(self) -> float:
        """Var[noise] = 2 b^2 for Laplace noise."""
        return 2.0 * self._scale**2

    def sample_noise(self, size=None) -> Union[float, np.ndarray]:
        """Draw Laplace(0, b) noise."""
        noise = self.rng.laplace(loc=0.0, scale=self._scale, size=size)
        return float(noise) if size is None else noise

    def privacy_cost(self) -> PrivacyCost:
        """Pure epsilon-DP: cost is ``(epsilon, 0)``."""
        return PrivacyCost(self.epsilon, 0.0)
