"""Noise-scale calibration formulas.

These free functions compute the noise scale required for a target
``(epsilon, delta)`` given a query sensitivity; the mechanism classes call
them, and the tests exercise them directly against closed-form expectations.

References
----------
* Dwork, McSherry, Nissim, Smith — *Calibrating Noise to Sensitivity in
  Private Data Analysis*, TCC 2006 (Laplace mechanism).
* Dwork, Roth — *The Algorithmic Foundations of Differential Privacy*, 2014
  (classic Gaussian mechanism, Theorem A.1).
* Balle, Wang — *Improving the Gaussian Mechanism for Differential Privacy*,
  ICML 2018 (analytic Gaussian calibration; used as an optional tighter
  calibration, not required by the paper).
"""

from __future__ import annotations

import math

from scipy import special

from repro.exceptions import InvalidPrivacyParameterError
from repro.utils.validation import check_fraction, check_positive


def laplace_scale(epsilon: float, sensitivity: float) -> float:
    """Scale ``b`` of Laplace noise for ``epsilon``-DP with L1 ``sensitivity``."""
    epsilon = check_positive(epsilon, "epsilon")
    sensitivity = check_positive(sensitivity, "sensitivity")
    return sensitivity / epsilon


def gaussian_sigma(epsilon: float, delta: float, sensitivity: float) -> float:
    """Classic Gaussian-mechanism standard deviation (Dwork–Roth Thm A.1).

    ``sigma = sensitivity * sqrt(2 ln(1.25/delta)) / epsilon``, valid for
    ``epsilon in (0, 1)`` in the original statement; for ``epsilon >= 1`` the
    formula is still commonly used in practice and we allow it, because the
    paper sweeps ``epsilon_g`` up to 1.0.
    """
    epsilon = check_positive(epsilon, "epsilon")
    delta = check_fraction(delta, "delta")
    sensitivity = check_positive(sensitivity, "sensitivity")
    return sensitivity * math.sqrt(2.0 * math.log(1.25 / delta)) / epsilon


def geometric_alpha(epsilon: float, sensitivity: float) -> float:
    """Parameter ``alpha = exp(-epsilon / sensitivity)`` of the geometric mechanism."""
    epsilon = check_positive(epsilon, "epsilon")
    sensitivity = check_positive(sensitivity, "sensitivity")
    return math.exp(-epsilon / sensitivity)


def _phi(t: float) -> float:
    """Standard normal CDF."""
    return 0.5 * (1.0 + special.erf(t / math.sqrt(2.0)))


def analytic_gaussian_sigma(
    epsilon: float, delta: float, sensitivity: float, tolerance: float = 1e-12
) -> float:
    """Analytic (tight) Gaussian calibration of Balle & Wang (2018).

    Finds the smallest ``sigma`` such that the Gaussian mechanism with L2
    ``sensitivity`` is ``(epsilon, delta)``-DP, by bisection on the exact
    privacy-loss expression

    ``Phi(Delta/(2 sigma) - epsilon sigma / Delta)
      - e^epsilon Phi(-Delta/(2 sigma) - epsilon sigma / Delta) <= delta``.

    Unlike the classic formula this remains valid (and much tighter) for
    ``epsilon >= 1``.
    """
    epsilon = check_positive(epsilon, "epsilon")
    delta = check_fraction(delta, "delta")
    sensitivity = check_positive(sensitivity, "sensitivity")

    def privacy_loss(sigma: float) -> float:
        a = sensitivity / (2.0 * sigma) - epsilon * sigma / sensitivity
        b = -sensitivity / (2.0 * sigma) - epsilon * sigma / sensitivity
        return _phi(a) - math.exp(epsilon) * _phi(b)

    # Bracket: small sigma -> loss close to 1 (> delta); large sigma -> loss -> 0.
    low = 1e-9 * sensitivity
    high = max(gaussian_sigma(min(epsilon, 0.999), delta, sensitivity), sensitivity)
    # Grow the upper bracket until it satisfies the constraint.
    for _ in range(200):
        if privacy_loss(high) <= delta:
            break
        high *= 2.0
    else:  # pragma: no cover - defensive
        raise InvalidPrivacyParameterError(
            f"could not bracket analytic Gaussian sigma for epsilon={epsilon}, delta={delta}"
        )
    for _ in range(500):
        mid = 0.5 * (low + high)
        if privacy_loss(mid) <= delta:
            high = mid
        else:
            low = mid
        if high - low <= tolerance * max(1.0, high):
            break
    return high
