"""Common interface for differential-privacy mechanisms."""

from __future__ import annotations

import abc
from dataclasses import dataclass
from typing import List, Sequence, Union

import numpy as np

from repro.utils.rng import RandomState, as_rng

ArrayLike = Union[float, int, np.ndarray, list, tuple]


@dataclass(frozen=True)
class PrivacyCost:
    """The ``(epsilon, delta)`` privacy cost of one mechanism invocation.

    ``delta = 0`` denotes pure differential privacy.  Costs add under
    sequential composition (see :mod:`repro.accounting.composition`).
    """

    epsilon: float
    delta: float = 0.0

    def __post_init__(self):
        if self.epsilon < 0:
            raise ValueError(f"epsilon must be >= 0, got {self.epsilon}")
        if not 0.0 <= self.delta <= 1.0:
            raise ValueError(f"delta must be in [0, 1], got {self.delta}")

    def __add__(self, other: "PrivacyCost") -> "PrivacyCost":
        """Sequential (basic) composition of two costs."""
        if not isinstance(other, PrivacyCost):
            return NotImplemented
        return PrivacyCost(self.epsilon + other.epsilon, min(1.0, self.delta + other.delta))

    def scaled(self, k: int) -> "PrivacyCost":
        """Cost of ``k`` sequential invocations under basic composition."""
        if k < 0:
            raise ValueError("k must be >= 0")
        return PrivacyCost(self.epsilon * k, min(1.0, self.delta * k))

    def to_dict(self) -> dict:
        """JSON-serialisable representation."""
        return {"epsilon": self.epsilon, "delta": self.delta}


class Mechanism(abc.ABC):
    """Abstract base class for all mechanisms.

    Subclasses must implement :meth:`privacy_cost`.  Numeric (additive-noise)
    mechanisms also implement :meth:`randomise`; selection mechanisms such as
    the Exponential Mechanism expose a :meth:`select`-style API instead.
    """

    def __init__(self, rng: RandomState = None):
        self._rng = as_rng(rng)

    @property
    def rng(self) -> np.random.Generator:
        """The generator driving this mechanism's randomness."""
        return self._rng

    @abc.abstractmethod
    def privacy_cost(self) -> PrivacyCost:
        """The ``(epsilon, delta)`` cost of a single invocation."""

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        cost = self.privacy_cost()
        return f"{type(self).__name__}(epsilon={cost.epsilon}, delta={cost.delta})"


class NumericMechanism(Mechanism):
    """Base class for mechanisms that add noise to numeric query answers."""

    @abc.abstractmethod
    def noise_scale(self) -> float:
        """A scale parameter describing the magnitude of the injected noise.

        For the Laplace mechanism this is the scale ``b``; for Gaussian
        mechanisms it is the standard deviation ``sigma``.  Used by the
        evaluation harness to report expected error analytically.
        """

    @abc.abstractmethod
    def sample_noise(self, size=None) -> Union[float, np.ndarray]:
        """Draw raw noise (scalar if ``size is None``, else an array)."""

    def randomise(self, value: ArrayLike):
        """Return ``value`` plus freshly drawn noise.

        Scalars come back as ``float``; sequences and arrays come back as
        ``numpy.ndarray`` of the same shape.
        """
        if np.isscalar(value):
            return float(value) + float(self.sample_noise())
        array = np.asarray(value, dtype=float)
        return array + self.sample_noise(size=array.shape)

    def randomise_batch(self, values: ArrayLike) -> np.ndarray:
        """Perturb a whole batch of values with one vectorized noise draw.

        Unlike :meth:`randomise` this always returns an ``ndarray`` (scalars
        are promoted to shape ``(1,)``) and always draws the noise as a
        single array — one call into the generator regardless of batch size.
        For a given seed the result is identical to
        ``values + sample_noise(size=values.shape)`` from a fresh generator,
        which the parity suite asserts for every numeric mechanism.
        """
        array = np.atleast_1d(np.asarray(values, dtype=float))
        return array + self.sample_noise(size=array.shape)

    def randomise_many(self, answers: Sequence[ArrayLike]) -> List[np.ndarray]:
        """Perturb several answer vectors with one concatenated noise draw.

        All answers are flattened into a single array, noised with one
        generator call, and split back into their original shapes.  For the
        Gaussian and Laplace families numpy's generator fills batched draws
        sequentially from the same bit stream, so the result is bit-for-bit
        identical to noising each answer in turn; the two-sided geometric
        interleaves its two underlying streams differently in batch (the
        distribution is unchanged).
        """
        arrays = [np.atleast_1d(np.asarray(a, dtype=float)) for a in answers]
        if not arrays:
            return []
        sizes = [a.size for a in arrays]
        flat = np.concatenate([a.ravel() for a in arrays])
        noisy = flat + self.sample_noise(size=flat.shape)
        split_points = np.cumsum(sizes)[:-1]
        return [
            part.reshape(a.shape) for part, a in zip(np.split(noisy, split_points), arrays)
        ]

    # British/American aliases keep the public API friendly to both spellings.
    randomize = randomise
    randomize_batch = randomise_batch
    randomize_many = randomise_many
