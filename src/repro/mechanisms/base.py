"""Common interface for differential-privacy mechanisms."""

from __future__ import annotations

import abc
from dataclasses import dataclass
from typing import Union

import numpy as np

from repro.utils.rng import RandomState, as_rng

ArrayLike = Union[float, int, np.ndarray, list, tuple]


@dataclass(frozen=True)
class PrivacyCost:
    """The ``(epsilon, delta)`` privacy cost of one mechanism invocation.

    ``delta = 0`` denotes pure differential privacy.  Costs add under
    sequential composition (see :mod:`repro.accounting.composition`).
    """

    epsilon: float
    delta: float = 0.0

    def __post_init__(self):
        if self.epsilon < 0:
            raise ValueError(f"epsilon must be >= 0, got {self.epsilon}")
        if not 0.0 <= self.delta <= 1.0:
            raise ValueError(f"delta must be in [0, 1], got {self.delta}")

    def __add__(self, other: "PrivacyCost") -> "PrivacyCost":
        """Sequential (basic) composition of two costs."""
        if not isinstance(other, PrivacyCost):
            return NotImplemented
        return PrivacyCost(self.epsilon + other.epsilon, min(1.0, self.delta + other.delta))

    def scaled(self, k: int) -> "PrivacyCost":
        """Cost of ``k`` sequential invocations under basic composition."""
        if k < 0:
            raise ValueError("k must be >= 0")
        return PrivacyCost(self.epsilon * k, min(1.0, self.delta * k))

    def to_dict(self) -> dict:
        """JSON-serialisable representation."""
        return {"epsilon": self.epsilon, "delta": self.delta}


class Mechanism(abc.ABC):
    """Abstract base class for all mechanisms.

    Subclasses must implement :meth:`privacy_cost`.  Numeric (additive-noise)
    mechanisms also implement :meth:`randomise`; selection mechanisms such as
    the Exponential Mechanism expose a :meth:`select`-style API instead.
    """

    def __init__(self, rng: RandomState = None):
        self._rng = as_rng(rng)

    @property
    def rng(self) -> np.random.Generator:
        """The generator driving this mechanism's randomness."""
        return self._rng

    @abc.abstractmethod
    def privacy_cost(self) -> PrivacyCost:
        """The ``(epsilon, delta)`` cost of a single invocation."""

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        cost = self.privacy_cost()
        return f"{type(self).__name__}(epsilon={cost.epsilon}, delta={cost.delta})"


class NumericMechanism(Mechanism):
    """Base class for mechanisms that add noise to numeric query answers."""

    @abc.abstractmethod
    def noise_scale(self) -> float:
        """A scale parameter describing the magnitude of the injected noise.

        For the Laplace mechanism this is the scale ``b``; for Gaussian
        mechanisms it is the standard deviation ``sigma``.  Used by the
        evaluation harness to report expected error analytically.
        """

    @abc.abstractmethod
    def sample_noise(self, size=None) -> Union[float, np.ndarray]:
        """Draw raw noise (scalar if ``size is None``, else an array)."""

    def randomise(self, value: ArrayLike):
        """Return ``value`` plus freshly drawn noise.

        Scalars come back as ``float``; sequences and arrays come back as
        ``numpy.ndarray`` of the same shape.
        """
        if np.isscalar(value):
            return float(value) + float(self.sample_noise())
        array = np.asarray(value, dtype=float)
        return array + self.sample_noise(size=array.shape)

    # British/American aliases keep the public API friendly to both spellings.
    randomize = randomise
