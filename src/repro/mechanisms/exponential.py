"""The Exponential Mechanism (McSherry & Talwar, FOCS 2007).

Phase 1 of the paper's pipeline partitions the node universe into a hierarchy
of groups by repeatedly choosing a binary split of each group via the
Exponential Mechanism, so that the *structure* of the grouping is itself
differentially private.
"""

from __future__ import annotations

from typing import Callable, Hashable, List, Optional, Sequence, Union

import numpy as np

from repro.exceptions import ValidationError
from repro.mechanisms.base import Mechanism, PrivacyCost
from repro.utils.rng import RandomState
from repro.utils.validation import check_positive

Candidate = Hashable
ScoreFunction = Callable[[Candidate], float]


class ExponentialMechanism(Mechanism):
    """Select one of a finite set of candidates with probability
    proportional to ``exp(epsilon * score / (2 * score_sensitivity))``.

    Parameters
    ----------
    epsilon:
        Privacy budget per selection.
    score_sensitivity:
        Sensitivity of the score function with respect to the adjacency
        relation being protected (individual- or group-level).
    rng:
        Seed, generator, or ``None``.

    Notes
    -----
    Scores are shifted by their maximum before exponentiation, which leaves
    the selection distribution unchanged but avoids overflow for large
    ``epsilon * score`` products.
    """

    def __init__(self, epsilon: float, score_sensitivity: float = 1.0, rng: RandomState = None):
        super().__init__(rng=rng)
        self.epsilon = check_positive(epsilon, "epsilon")
        self.score_sensitivity = check_positive(score_sensitivity, "score_sensitivity")

    def selection_probabilities(self, scores: Sequence[float]) -> np.ndarray:
        """Return the probability assigned to each candidate given ``scores``."""
        scores = np.asarray(list(scores), dtype=float)
        if scores.size == 0:
            raise ValidationError("at least one candidate is required")
        if not np.all(np.isfinite(scores)):
            raise ValidationError("scores must be finite")
        logits = self.epsilon * scores / (2.0 * self.score_sensitivity)
        logits -= logits.max()
        weights = np.exp(logits)
        return weights / weights.sum()

    def select_index(self, scores: Sequence[float]) -> int:
        """Select a candidate index given its score array."""
        probabilities = self.selection_probabilities(scores)
        return int(self.rng.choice(len(probabilities), p=probabilities))

    def select(
        self,
        candidates: Sequence[Candidate],
        scores: Optional[Sequence[float]] = None,
        score_fn: Optional[ScoreFunction] = None,
    ) -> Candidate:
        """Select one candidate.

        Either precomputed ``scores`` (one per candidate, same order) or a
        ``score_fn`` mapping candidate -> score must be supplied.
        """
        candidates = list(candidates)
        if not candidates:
            raise ValidationError("at least one candidate is required")
        if scores is None:
            if score_fn is None:
                raise ValidationError("either scores or score_fn must be provided")
            scores = [float(score_fn(c)) for c in candidates]
        else:
            scores = [float(s) for s in scores]
            if len(scores) != len(candidates):
                raise ValidationError(
                    f"got {len(scores)} scores for {len(candidates)} candidates"
                )
        return candidates[self.select_index(scores)]

    def privacy_cost(self) -> PrivacyCost:
        """Pure epsilon-DP per selection."""
        return PrivacyCost(self.epsilon, 0.0)
