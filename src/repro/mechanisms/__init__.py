"""Differential-privacy mechanism library.

Every mechanism is implemented from scratch on top of NumPy and exposes a
consistent interface (:class:`~repro.mechanisms.base.Mechanism`):

* construction takes the privacy parameters and the query sensitivity;
* :meth:`~repro.mechanisms.base.Mechanism.randomise` perturbs a scalar or an
  array of true answers;
* :meth:`~repro.mechanisms.base.Mechanism.privacy_cost` reports the
  ``(epsilon, delta)`` spent per invocation so the accounting layer can track
  budgets.

The paper uses the **Exponential Mechanism** for phase-1 specialization and
the **Gaussian Mechanism** for phase-2 noise injection; Laplace, geometric,
report-noisy-max and randomized response are provided for the baselines and
ablations.
"""

from repro.mechanisms.base import Mechanism, NumericMechanism, PrivacyCost
from repro.mechanisms.laplace import LaplaceMechanism
from repro.mechanisms.gaussian import AnalyticGaussianMechanism, GaussianMechanism
from repro.mechanisms.geometric import GeometricMechanism
from repro.mechanisms.exponential import ExponentialMechanism
from repro.mechanisms.noisy_max import ReportNoisyMax
from repro.mechanisms.svt import AboveThreshold
from repro.mechanisms.randomized_response import RandomizedResponse
from repro.mechanisms.calibration import (
    gaussian_sigma,
    analytic_gaussian_sigma,
    laplace_scale,
    geometric_alpha,
)

__all__ = [
    "Mechanism",
    "NumericMechanism",
    "PrivacyCost",
    "LaplaceMechanism",
    "GaussianMechanism",
    "AnalyticGaussianMechanism",
    "GeometricMechanism",
    "ExponentialMechanism",
    "ReportNoisyMax",
    "AboveThreshold",
    "RandomizedResponse",
    "gaussian_sigma",
    "analytic_gaussian_sigma",
    "laplace_scale",
    "geometric_alpha",
]
