"""Privacy-guarantee records attached to releases.

A guarantee states *what* is protected (the privacy unit and, for group
privacy, which grouping), and *how strongly* (``epsilon`` and ``delta``).
Release objects carry one guarantee per information level so that a data user
— or an auditor — can read off exactly which definition the noisy answers
satisfy.
"""

from __future__ import annotations

import enum
import math
from dataclasses import dataclass, field
from typing import Mapping, Optional

from repro.exceptions import InvalidPrivacyParameterError


class PrivacyUnit(str, enum.Enum):
    """The unit of protection a guarantee refers to."""

    ASSOCIATION = "association"
    NODE = "node"
    GROUP = "group"


def _validate_epsilon(epsilon: float) -> float:
    if not isinstance(epsilon, (int, float)) or isinstance(epsilon, bool):
        raise InvalidPrivacyParameterError(f"epsilon must be a number, got {type(epsilon).__name__}")
    epsilon = float(epsilon)
    if math.isnan(epsilon) or epsilon < 0:
        raise InvalidPrivacyParameterError(f"epsilon must be >= 0, got {epsilon}")
    return epsilon


def _validate_delta(delta: float) -> float:
    if not isinstance(delta, (int, float)) or isinstance(delta, bool):
        raise InvalidPrivacyParameterError(f"delta must be a number, got {type(delta).__name__}")
    delta = float(delta)
    if math.isnan(delta) or not 0.0 <= delta <= 1.0:
        raise InvalidPrivacyParameterError(f"delta must be in [0, 1], got {delta}")
    return delta


@dataclass(frozen=True)
class PrivacyGuarantee:
    """An ``(epsilon, delta)`` differential-privacy guarantee.

    Parameters
    ----------
    epsilon, delta:
        The guarantee parameters.  ``delta = 0`` denotes pure DP; ``epsilon``
        may be ``math.inf`` for explicitly non-private baselines.
    unit:
        The protected unit (:class:`PrivacyUnit`).
    description:
        Optional free-form context (e.g. which query the guarantee covers).
    """

    epsilon: float
    delta: float = 0.0
    unit: PrivacyUnit = PrivacyUnit.ASSOCIATION
    description: str = ""

    def __post_init__(self):
        object.__setattr__(self, "epsilon", _validate_epsilon(self.epsilon))
        object.__setattr__(self, "delta", _validate_delta(self.delta))
        object.__setattr__(self, "unit", PrivacyUnit(self.unit))

    def is_pure(self) -> bool:
        """``True`` for pure (delta = 0) differential privacy."""
        return self.delta == 0.0

    def is_private(self) -> bool:
        """``True`` unless epsilon is infinite (a non-private disclosure)."""
        return math.isfinite(self.epsilon)

    def stronger_than(self, other: "PrivacyGuarantee") -> bool:
        """``True`` when this guarantee dominates ``other`` in both parameters."""
        return self.epsilon <= other.epsilon and self.delta <= other.delta

    def to_dict(self) -> dict:
        """JSON-serialisable representation."""
        return {
            "epsilon": self.epsilon,
            "delta": self.delta,
            "unit": self.unit.value,
            "description": self.description,
        }

    @classmethod
    def from_dict(cls, data: Mapping) -> "PrivacyGuarantee":
        """Inverse of :meth:`to_dict`."""
        return cls(
            epsilon=data["epsilon"],
            delta=data.get("delta", 0.0),
            unit=PrivacyUnit(data.get("unit", PrivacyUnit.ASSOCIATION)),
            description=data.get("description", ""),
        )


@dataclass(frozen=True)
class IndividualPrivacyGuarantee(PrivacyGuarantee):
    """Guarantee under individual (record-level) adjacency — Definition 2."""

    unit: PrivacyUnit = PrivacyUnit.ASSOCIATION


@dataclass(frozen=True)
class GroupPrivacyGuarantee(PrivacyGuarantee):
    """Guarantee under group-level adjacency — the paper's Definition 4.

    Parameters
    ----------
    level:
        The hierarchy level whose grouping defines the adjacency relation.
    num_groups, max_group_size:
        Descriptive statistics of the grouping, recorded so the guarantee is
        self-contained (an auditor does not need the hierarchy object to see
        what "one group" means quantitatively).
    """

    unit: PrivacyUnit = PrivacyUnit.GROUP
    level: Optional[int] = None
    num_groups: Optional[int] = None
    max_group_size: Optional[int] = None

    def to_dict(self) -> dict:
        data = super().to_dict()
        data.update(
            {
                "level": self.level,
                "num_groups": self.num_groups,
                "max_group_size": self.max_group_size,
            }
        )
        return data

    @classmethod
    def from_dict(cls, data: Mapping) -> "GroupPrivacyGuarantee":
        return cls(
            epsilon=data["epsilon"],
            delta=data.get("delta", 0.0),
            unit=PrivacyUnit(data.get("unit", PrivacyUnit.GROUP)),
            description=data.get("description", ""),
            level=data.get("level"),
            num_groups=data.get("num_groups"),
            max_group_size=data.get("max_group_size"),
        )
