"""Empirical privacy auditing.

A lightweight sanity-check harness: run a mechanism many times on a pair of
(group-)adjacent inputs, histogram the outputs into bins, and compare the
empirical log-probability ratio of every bin against the claimed epsilon.
This cannot *prove* differential privacy (no finite experiment can), but it
reliably catches gross calibration bugs — e.g. noise scaled to the individual
sensitivity when the adjacency relation is group-level — and is used by the
test suite as a defence-in-depth check on the pipeline's calibration.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Optional

import numpy as np

from repro.exceptions import ValidationError
from repro.utils.rng import RandomState, as_rng
from repro.utils.validation import check_positive, check_positive_int

#: A randomized mechanism under audit: takes a scalar true answer and an rng,
#: returns a scalar noisy answer.
MechanismFn = Callable[[float, np.random.Generator], float]


@dataclass
class AuditResult:
    """Outcome of an empirical privacy audit."""

    claimed_epsilon: float
    observed_epsilon: float
    num_trials: int
    num_bins: int
    delta_slack: float

    @property
    def consistent(self) -> bool:
        """``True`` when the observed loss does not exceed the claim (with slack).

        The slack (10% multiplicative + 0.1 additive) absorbs the sampling
        error of the histogram estimate; gross calibration bugs exceed it by
        far more than that.
        """
        return self.observed_epsilon <= self.claimed_epsilon * 1.10 + 0.10

    def to_dict(self) -> dict:
        """JSON-serialisable representation."""
        return {
            "claimed_epsilon": self.claimed_epsilon,
            "observed_epsilon": self.observed_epsilon,
            "num_trials": self.num_trials,
            "num_bins": self.num_bins,
            "delta_slack": self.delta_slack,
            "consistent": self.consistent,
        }


def audit_scalar_mechanism(
    mechanism: MechanismFn,
    answer_a: float,
    answer_b: float,
    claimed_epsilon: float,
    claimed_delta: float = 0.0,
    num_trials: int = 20_000,
    num_bins: int = 40,
    rng: RandomState = None,
) -> AuditResult:
    """Estimate the worst per-bin privacy loss between two adjacent answers.

    Parameters
    ----------
    mechanism:
        Callable ``(true_answer, rng) -> noisy_answer``; it must use the
        passed generator for all randomness so the audit is reproducible.
    answer_a, answer_b:
        The true query answers on the two adjacent datasets.  For the paper's
        group adjacency these differ by up to the group-level sensitivity.
    claimed_epsilon, claimed_delta:
        The guarantee being audited.
    num_trials:
        Samples drawn from each side.
    num_bins:
        Output bins for the histogram comparison.
    rng:
        Seed / generator.

    Returns
    -------
    AuditResult
        ``observed_epsilon`` is the largest absolute log-ratio of bin
        frequencies over bins whose combined mass exceeds the delta slack
        (bins that approximate the delta failure region are excluded).
    """
    check_positive(claimed_epsilon, "claimed_epsilon")
    check_positive_int(num_trials, "num_trials")
    check_positive_int(num_bins, "num_bins")
    if not 0.0 <= claimed_delta < 1.0:
        raise ValidationError(f"claimed_delta must be in [0, 1), got {claimed_delta}")
    generator = as_rng(rng)

    samples_a = np.array([mechanism(answer_a, generator) for _ in range(num_trials)], dtype=float)
    samples_b = np.array([mechanism(answer_b, generator) for _ in range(num_trials)], dtype=float)

    lo = min(samples_a.min(), samples_b.min())
    hi = max(samples_a.max(), samples_b.max())
    if lo == hi:
        # A constant mechanism leaks nothing.
        return AuditResult(claimed_epsilon, 0.0, num_trials, num_bins, claimed_delta)
    edges = np.linspace(lo, hi, num_bins + 1)
    hist_a, _ = np.histogram(samples_a, bins=edges)
    hist_b, _ = np.histogram(samples_b, bins=edges)
    freq_a = hist_a / num_trials
    freq_b = hist_b / num_trials

    # Only compare bins with enough mass on at least one side: low-mass bins
    # are dominated by sampling noise and by the delta failure region of
    # approximate-DP mechanisms.  Requiring ~200 expected samples keeps the
    # relative error of each bin frequency below a few percent.
    mass_floor = max(10.0 * claimed_delta, 200.0 / num_trials)
    observed = 0.0
    for pa, pb in zip(freq_a, freq_b):
        if pa < mass_floor and pb < mass_floor:
            continue
        if pa == 0.0 or pb == 0.0:
            # A well-populated bin on one side with zero mass on the other is
            # an (empirically) unbounded privacy loss — e.g. noise far too
            # small for the adjacent answers' distance.
            observed = float("inf")
            break
        if pa < mass_floor or pb < mass_floor:
            # One side well-populated, the other merely sparse: skip — the
            # sparse estimate is too noisy to quote, and genuinely large
            # losses are caught by the zero-mass rule above.
            continue
        observed = max(observed, abs(float(np.log(pa / pb))))
    return AuditResult(
        claimed_epsilon=claimed_epsilon,
        observed_epsilon=observed,
        num_trials=num_trials,
        num_bins=num_bins,
        delta_slack=mass_floor,
    )


def audit_count_release(
    noise_scale: float,
    sensitivity: float,
    claimed_epsilon: float,
    claimed_delta: float = 0.0,
    kind: str = "gaussian",
    num_trials: int = 20_000,
    rng: RandomState = None,
) -> AuditResult:
    """Audit a calibrated additive-noise count release.

    Convenience wrapper: the two adjacent answers differ by exactly
    ``sensitivity`` (the worst case the calibration must cover), and the
    mechanism adds ``kind`` noise of the given scale.
    """
    check_positive(noise_scale, "noise_scale")
    check_positive(sensitivity, "sensitivity")
    if kind not in ("gaussian", "laplace"):
        raise ValidationError(f"kind must be 'gaussian' or 'laplace', got {kind!r}")

    def mechanism(true_answer: float, generator: np.random.Generator) -> float:
        if kind == "gaussian":
            return true_answer + float(generator.normal(0.0, noise_scale))
        return true_answer + float(generator.laplace(0.0, noise_scale))

    return audit_scalar_mechanism(
        mechanism,
        answer_a=1000.0,
        answer_b=1000.0 + sensitivity,
        claimed_epsilon=claimed_epsilon,
        claimed_delta=claimed_delta,
        num_trials=num_trials,
        rng=rng,
    )
